"""Weight-stationary systolic-array timing model (SCALE-sim style).

The baseline NPU is a Google TPU-style 128×128 systolic array with a
weight-stationary dataflow (Section II-C).  Like SCALE-sim, we compute the
compute-phase cycle count of a GEMM analytically:

* the stationary operand (weights, shape K×N) is partitioned into
  ``ceil(K/rows) × ceil(N/cols)`` *folds*;
* each fold loads its weights into the array column-by-column (``rows``
  cycles), then streams ``M`` activation rows through, draining after
  ``rows + cols − 1`` further cycles.

This captures the first-order behaviour the paper's evaluation needs: the
compute phase of a tile grows with its GEMM volume while pipeline fill /
drain penalizes skinny matrices — which is what makes RNN inference
memory-phase-bound and CNNs compute-phase-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .config import NPUConfig


@dataclass(frozen=True)
class GemmShape:
    """A dense matrix multiplication C[M,N] += A[M,K] · B[K,N]."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations."""
        return self.m * self.k * self.n


class SystolicArrayModel:
    """Analytical weight-stationary compute-phase model."""

    def __init__(self, config: NPUConfig | None = None):
        self.config = config or NPUConfig()
        #: Memoized (m, k, n) -> cycles.  The model is a pure function of
        #: the config, and tile pipelines ask for the same handful of
        #: shapes once per tile step.
        self._gemm_cache: dict = {}

    def folds(self, shape: GemmShape) -> int:
        """Number of weight folds the GEMM requires."""
        rows = self.config.array_rows
        cols = self.config.array_cols
        return ceil(shape.k / rows) * ceil(shape.n / cols)

    def cycles_per_fold(self, shape: GemmShape) -> int:
        """Steady-state cycles one fold occupies the array.

        The TPU double-buffers weights inside the array ("Prefetching
        Weights for Use in a Neural Network Processor", US 9805304B2), so
        fold *n+1*'s weight shift-in overlaps fold *n*'s streaming; a fold
        therefore occupies the array for max(activation rows, weight-load
        depth) cycles.
        """
        return max(shape.m, self.config.array_rows)

    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        """Compute-phase cycles for an M×K×N GEMM.

        Steady-state fold pipeline plus one array fill + drain.
        """
        cached = self._gemm_cache.get((m, k, n))
        if cached is not None:
            return cached
        shape = GemmShape(m, k, n)
        rows = self.config.array_rows
        cols = self.config.array_cols
        fill_drain = rows + cols + min(shape.m, rows) - 2
        cycles = float(self.folds(shape) * self.cycles_per_fold(shape) + fill_drain)
        self._gemm_cache[(m, k, n)] = cycles
        return cycles

    def utilization(self, shape: GemmShape) -> float:
        """Achieved MAC throughput relative to peak (diagnostic)."""
        cycles = self.gemm_cycles(shape.m, shape.k, shape.n)
        peak = self.config.pe_count * cycles
        return shape.macs / peak if peak else 0.0


class VectorUnitModel:
    """Timing for non-GEMM element-wise work (activations, reductions).

    ReLU/bias/elementwise operations run on the post-array vector units
    (Figure 2's ReLU block); throughput is one element per PE column per
    cycle, which keeps them negligible next to GEMMs — matching the paper's
    treatment (they are never on the critical path of the dense results).
    """

    def __init__(self, config: NPUConfig | None = None):
        self.config = config or NPUConfig()

    def elementwise_cycles(self, elements: int) -> float:
        """Cycles to apply a pointwise op to ``elements`` values."""
        if elements < 0:
            raise ValueError("element count cannot be negative")
        return elements / self.config.array_cols

    def reduction_cycles(self, elements: int) -> float:
        """Cycles for a tree reduction over ``elements`` values."""
        if elements < 0:
            raise ValueError("element count cannot be negative")
        lanes = self.config.array_cols
        # Tree depth is tiny; the streaming term dominates.
        return elements / lanes + max(0, lanes.bit_length() - 1)
