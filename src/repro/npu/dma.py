"""DMA engine: tiles → linearized extents → translated memory transactions.

Section III-C: "a single tile tensor can be decomposed into multiple,
linearized memory transactions by the DMA unit.  Each of these memory
transactions require address translation".  The DMA here takes a
:class:`FetchSpec` (a rectangular tile of a row-major tensor), expands it to
contiguous extents via :class:`~repro.memory.layout.TensorLayout`, and
splits those into transactions bounded by the DMA's maximum burst size,
never crossing a 4 KB boundary (so each transaction maps to exactly one
page at either page size).

It also computes the *page divergence* of a fetch — the number of distinct
pages a single tile touches — which is Figure 6's metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..memory.address import PAGE_SIZE_4K, Extent, page_number
from ..memory.layout import TensorLayout
from .config import NPUConfig

#: One DMA transaction: (virtual address, size in bytes).
Transaction = Tuple[int, int]


@dataclass(frozen=True)
class FetchSpec:
    """A planned tile fetch: a rectangular slice of one tensor.

    ``tensor`` labels the stream ("ia" or "w"); ``signature`` (shape-only,
    no base address) is the key the FAST-fidelity simulator dedups on.
    """

    tensor: str
    layout: TensorLayout
    starts: Tuple[int, ...]
    sizes: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Bytes this fetch moves."""
        total = self.layout.elem_bytes
        for s in self.sizes:
            total *= s
        return total

    @property
    def signature(self) -> Tuple:
        """Shape-identity for dedup.

        Deliberately excludes the tensor *name* and tile *position*: two
        fetches of the same tile geometry from same-shaped tensors produce
        the same extent structure (all segments are 2 MB aligned), hence
        the same translation-timing class.  This is what lets the FAST
        fidelity mode reuse timings across repeated layers/blocks.
        """
        return (self.tensor, self.layout.shape, self.sizes)

    def extents(self) -> List[Extent]:
        """Contiguous linear extents of the tile (ascending VA)."""
        return self.layout.tile_extents(self.starts, self.sizes)


class TransactionStream(List[Transaction]):
    """A transaction list annotated with same-page *run* metadata.

    ``runs`` partitions the stream into maximal same-page runs as
    ``(end_index, streamable)`` pairs in index order; a run is *streamable*
    when every transaction in it is 256 bytes and virtually contiguous with
    its predecessor — the structure the translation engine's batched fast
    path needs, known for free at linearization time.  ``page_size`` is the
    page size the runs were computed for; consumers must ignore the
    metadata when their own page size differs.

    Being a ``list`` subclass, the stream is a drop-in transaction list for
    every existing consumer.
    """

    __slots__ = ("runs", "page_size")

    def __init__(self, page_size: int = PAGE_SIZE_4K):
        super().__init__()
        self.runs: List[Tuple[int, bool]] = []
        self.page_size = page_size


class DMAEngine:
    """Decomposes fetches into bounded, page-local transactions."""

    def __init__(self, config: NPUConfig | None = None):
        self.config = config or NPUConfig()
        #: Transactions never cross this boundary so one transaction always
        #: lives in one page (valid for both 4 KB and 2 MB translation).
        self.split_boundary = PAGE_SIZE_4K
        #: Page size used for the run metadata attached to generated
        #: streams (the MMU's translation page size; set by the simulator).
        self.run_page_size = PAGE_SIZE_4K

    def transactions(self, fetch: FetchSpec) -> TransactionStream:
        """All transactions of one tile fetch, in DMA issue order.

        Inline arithmetic equivalent of
        :meth:`repro.memory.address.Extent.split_transactions` — this runs
        for every simulated tile, so object churn is avoided.  The result
        carries same-page run metadata (:class:`TransactionStream`).
        """
        max_bytes = self.config.dma_transaction_bytes
        boundary = self.split_boundary
        offset_mask = boundary - 1
        page_size = self.run_page_size
        page_mask = ~(page_size - 1)
        txs = TransactionStream(page_size)
        runs = txs.runs
        append = txs.append
        extend = txs.extend
        vector_ok = max_bytes == 256
        idx = 0
        run_page = -1
        streamable = True
        prev_end = -1
        for extent in fetch.extents():
            va = extent.va
            remaining = extent.length
            if vector_ok and not va & 255 and remaining >= 256:
                # Vectorized emission of the dominant shape: a 256 B
                # aligned extent yields uniform back-to-back 256 B
                # transactions, whose same-page runs fall at page
                # boundaries computable arithmetically.  Bit-identical
                # to the scalar loop below (tests/test_dma.py), which
                # still handles the sub-256 B tail and unaligned heads.
                n_full = remaining >> 8
                end = va + (n_full << 8)
                page = va & page_mask
                if page != run_page:
                    if run_page >= 0:
                        runs.append((idx, streamable))
                    run_page = page
                    streamable = True
                elif va != prev_end:
                    streamable = False  # same page, but a gap in VA
                next_boundary = (va | (page_size - 1)) + 1
                if next_boundary < end:
                    for b in range(next_boundary, end, page_size):
                        runs.append((idx + ((b - va) >> 8), streamable))
                        streamable = True
                    run_page = (end - 256) & page_mask
                extend([(v, 256) for v in range(va, end, 256)])
                idx += n_full
                prev_end = end
                va = end
                remaining -= n_full << 8
            while remaining > 0:
                room = boundary - (va & offset_mask)
                chunk = room if room < max_bytes else max_bytes
                if chunk > remaining:
                    chunk = remaining
                page = va & page_mask
                if page != run_page:
                    if run_page >= 0:
                        runs.append((idx, streamable))
                    run_page = page
                    streamable = True
                elif va != prev_end:
                    streamable = False  # same page, but a gap in VA
                if chunk != 256:
                    streamable = False
                append((va, chunk))
                prev_end = va + chunk
                va = prev_end
                remaining -= chunk
                idx += 1
        if run_page >= 0:
            runs.append((idx, streamable))
        return txs

    def transaction_count(self, fetch: FetchSpec) -> int:
        """Number of transactions without materializing them."""
        return len(self.transactions(fetch))


def distinct_pages(
    extents: Sequence[Extent], page_size: int = PAGE_SIZE_4K
) -> int:
    """Exact count of distinct pages touched by ``extents``.

    Extents are sorted by VA and page runs are merged across adjacent
    extents, so overlapping or page-sharing rows are not double-counted.
    """
    last_counted = -1
    total = 0
    for ext in sorted(extents, key=lambda e: e.va):
        first = page_number(ext.va, page_size)
        last = page_number(ext.end - 1, page_size)
        if first <= last_counted:
            first = last_counted + 1
        if last >= first:
            total += last - first + 1
            last_counted = last
    return total


@dataclass
class PageDivergence:
    """Figure 6's per-workload statistic."""

    max_pages: int
    mean_pages: float
    fetches: int

    @classmethod
    def from_counts(cls, counts: Iterable[int]) -> "PageDivergence":
        values = list(counts)
        if not values:
            return cls(max_pages=0, mean_pages=0.0, fetches=0)
        return cls(
            max_pages=max(values),
            mean_pages=sum(values) / len(values),
            fetches=len(values),
        )


def page_divergence_of_fetches(
    fetches: Iterable[FetchSpec], page_size: int = PAGE_SIZE_4K
) -> PageDivergence:
    """Distinct-page statistics over every tile fetch of a schedule."""
    counts = [distinct_pages(f.extents(), page_size) for f in fetches]
    return PageDivergence.from_counts(counts)
