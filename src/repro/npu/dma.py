"""DMA engine: tiles → linearized extents → translated memory transactions.

Section III-C: "a single tile tensor can be decomposed into multiple,
linearized memory transactions by the DMA unit.  Each of these memory
transactions require address translation".  The DMA here takes a
:class:`FetchSpec` (a rectangular tile of a row-major tensor), expands it to
contiguous extents via :class:`~repro.memory.layout.TensorLayout`, and
splits those into transactions bounded by the DMA's maximum burst size,
never crossing a 4 KB boundary (so each transaction maps to exactly one
page at either page size).

It also computes the *page divergence* of a fetch — the number of distinct
pages a single tile touches — which is Figure 6's metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..memory.address import PAGE_SIZE_4K, Extent, page_number
from ..memory.layout import TensorLayout
from .config import NPUConfig

#: One DMA transaction: (virtual address, size in bytes).
Transaction = Tuple[int, int]


@dataclass(frozen=True)
class FetchSpec:
    """A planned tile fetch: a rectangular slice of one tensor.

    ``tensor`` labels the stream ("ia" or "w"); ``signature`` (shape-only,
    no base address) is the key the FAST-fidelity simulator dedups on.
    """

    tensor: str
    layout: TensorLayout
    starts: Tuple[int, ...]
    sizes: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Bytes this fetch moves."""
        total = self.layout.elem_bytes
        for s in self.sizes:
            total *= s
        return total

    @property
    def signature(self) -> Tuple:
        """Shape-identity for dedup.

        Deliberately excludes the tensor *name* and tile *position*: two
        fetches of the same tile geometry from same-shaped tensors produce
        the same extent structure (all segments are 2 MB aligned), hence
        the same translation-timing class.  This is what lets the FAST
        fidelity mode reuse timings across repeated layers/blocks.
        """
        return (self.tensor, self.layout.shape, self.sizes)

    def extents(self) -> List[Extent]:
        """Contiguous linear extents of the tile (ascending VA)."""
        return self.layout.tile_extents(self.starts, self.sizes)


class TransactionStream(List[Transaction]):
    """A transaction list annotated with same-page *run* metadata.

    ``runs`` partitions the stream into maximal same-page runs as
    ``(end_index, streamable)`` pairs in index order; a run is *streamable*
    when every transaction in it is 256 bytes and virtually contiguous with
    its predecessor — the structure the translation engine's batched fast
    path needs, known for free at linearization time.  ``page_size`` is the
    page size the runs were computed for; consumers must ignore the
    metadata when their own page size differs.

    Being a ``list`` subclass, the stream is a drop-in transaction list for
    every existing consumer.
    """

    __slots__ = ("runs", "page_size")

    def __init__(self, page_size: int = PAGE_SIZE_4K):
        super().__init__()
        self.runs: List[Tuple[int, bool]] = []
        self.page_size = page_size


class ColumnarTransactionStream:
    """Structure-of-arrays transaction stream (the ``columnar`` engine mode).

    The canonical storage is a pair of parallel NumPy columns — ``vas``
    (int64 virtual addresses) and ``sizes`` (int64 byte counts, or ``None``
    with ``uniform_size`` set when every transaction is the same size, the
    DMA's dominant 256 B shape) — plus per-*run* metadata derived once,
    vectorized, at emission time: ``run_ends`` (exclusive end index of each
    maximal same-page run) and ``run_streamable`` (whether the run is a
    contiguous uniform 256 B stream, the closed-form precondition).  The
    remaining logical columns of the representation are implicit: the run
    VPNs are ``vas[start] >> log2(page_size)`` (see :meth:`run_vpns`), page
    offsets are ``vas & (page_size - 1)`` (:meth:`offsets`), the ASID is a
    per-burst scalar (a stream never mixes address spaces; the engine's
    ``run_burst(asid=...)`` carries it), and issue cycles are affine in the
    index (one transaction per ``issue_interval``).

    The object :class:`TransactionStream` stays the golden representation;
    this class is a *view*-style drop-in over the columns: ``len``,
    indexing, slicing and iteration yield the same ``(va, size)`` tuples,
    and :attr:`runs`/:attr:`page_size` present the same metadata shape, so
    every per-object consumer works unchanged.  Hot engine loops instead
    bind :attr:`va_list`/:attr:`size_list` — plain-list projections
    materialized lazily, once per stream — and consume column slices
    between interaction points.
    """

    __slots__ = (
        "vas", "sizes", "uniform_size", "run_ends", "run_streamable",
        "page_size", "_va_list", "_size_list", "_runs",
    )

    def __init__(
        self,
        vas: np.ndarray,
        sizes: Optional[np.ndarray],
        uniform_size: int,
        page_size: int = PAGE_SIZE_4K,
    ):
        self.vas = vas
        self.sizes = sizes
        #: Common transaction size when ``sizes`` is None (0 otherwise).
        self.uniform_size = uniform_size
        self.page_size = page_size
        self.run_ends, self.run_streamable = self._compute_runs(
            vas, sizes, uniform_size, page_size
        )
        self._va_list: Optional[List[int]] = None
        self._size_list: Optional[List[int]] = None
        self._runs: Optional[List[Tuple[int, bool]]] = None

    @staticmethod
    def _compute_runs(
        vas: np.ndarray,
        sizes: Optional[np.ndarray],
        uniform_size: int,
        page_size: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized same-page run derivation.

        Element-for-element the same partition and streamability the
        scalar :meth:`DMAEngine.transactions` loop computes: a run breaks
        at every page-number change; a run is streamable when each of its
        transactions is 256 bytes and (except the run head) virtually
        contiguous with its predecessor.
        """
        n = int(vas.shape[0])
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        page_bits = page_size.bit_length() - 1
        pages = vas >> page_bits
        head = np.empty(n, dtype=bool)
        head[0] = True
        np.not_equal(pages[1:], pages[:-1], out=head[1:])
        run_starts = np.flatnonzero(head)
        run_ends = np.empty(run_starts.shape[0], dtype=np.int64)
        run_ends[:-1] = run_starts[1:]
        run_ends[-1] = n
        # A transaction breaks its run's streamability when it is not
        # 256 B, or when it follows a same-page VA gap.
        bad = np.empty(n, dtype=bool)
        bad[0] = False
        if sizes is None:
            np.not_equal(vas[1:], vas[:-1] + uniform_size, out=bad[1:])
            bad &= ~head
            if uniform_size != 256:
                bad[:] = True
        else:
            np.not_equal(vas[1:], vas[:-1] + sizes[:-1], out=bad[1:])
            bad &= ~head
            bad |= sizes != 256
        csum = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(bad, out=csum[1:])
        run_streamable = csum[run_ends] == csum[run_starts]
        return run_ends, run_streamable

    # -- plain-list projections (lazy, cached) ------------------------- #

    @property
    def va_list(self) -> List[int]:
        """Virtual addresses as a plain list (hot-loop projection)."""
        out = self._va_list
        if out is None:
            out = self._va_list = self.vas.tolist()
        return out

    @property
    def size_list(self) -> List[int]:
        """Transaction sizes as a plain list (hot-loop projection)."""
        out = self._size_list
        if out is None:
            if self.sizes is None:
                out = [self.uniform_size] * int(self.vas.shape[0])
            else:
                out = self.sizes.tolist()
            self._size_list = out
        return out

    @property
    def runs(self) -> List[Tuple[int, bool]]:
        """Legacy ``(end_index, streamable)`` run metadata view."""
        out = self._runs
        if out is None:
            out = self._runs = list(
                zip(self.run_ends.tolist(), self.run_streamable.tolist())
            )
        return out

    # -- derived columns ----------------------------------------------- #

    def run_vpns(self) -> np.ndarray:
        """Virtual page number of each run (at :attr:`page_size`)."""
        page_bits = self.page_size.bit_length() - 1
        if self.run_ends.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        starts = np.empty_like(self.run_ends)
        starts[0] = 0
        starts[1:] = self.run_ends[:-1]
        return self.vas[starts] >> page_bits

    def offsets(self) -> np.ndarray:
        """Per-transaction page offsets (at :attr:`page_size`)."""
        return self.vas & (self.page_size - 1)

    # -- per-object drop-in protocol ----------------------------------- #

    def __len__(self) -> int:
        return int(self.vas.shape[0])

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return list(zip(self.va_list[idx], self.size_list[idx]))
        return (self.va_list[idx], self.size_list[idx])

    def __iter__(self):
        return iter(zip(self.va_list, self.size_list))

    def __eq__(self, other):
        return list(self) == list(other)

    def __ne__(self, other):
        return not self.__eq__(other)

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[Transaction], page_size: int = PAGE_SIZE_4K
    ) -> "ColumnarTransactionStream":
        """Columns from an object-path transaction list (tests, replay)."""
        n = len(pairs)
        vas = np.fromiter((va for va, _ in pairs), dtype=np.int64, count=n)
        size_arr = np.fromiter((s for _, s in pairs), dtype=np.int64, count=n)
        if n and (size_arr == size_arr[0]).all():
            return cls(vas, None, int(size_arr[0]), page_size)
        return cls(vas, size_arr, 0, page_size)


class DMAEngine:
    """Decomposes fetches into bounded, page-local transactions."""

    def __init__(self, config: NPUConfig | None = None):
        self.config = config or NPUConfig()
        #: Transactions never cross this boundary so one transaction always
        #: lives in one page (valid for both 4 KB and 2 MB translation).
        self.split_boundary = PAGE_SIZE_4K
        #: Page size used for the run metadata attached to generated
        #: streams (the MMU's translation page size; set by the simulator).
        self.run_page_size = PAGE_SIZE_4K
        #: When True, :meth:`transactions` emits columns natively
        #: (:class:`ColumnarTransactionStream`) instead of the per-object
        #: stream — set by the simulator for ``engine_mode="columnar"``.
        self.emit_columns = False
        #: Optional ``id(fetch) -> ColumnarTransactionStream`` memo, set by
        #: the simulator when its schedules come from the construction
        #: cache (pinned fetch identities).  Columnar streams are immutable
        #: array bundles, so sharing them across runs is safe; the mutable
        #: object-mode stream is never cached.
        self._stream_cache: Optional[Dict[int, ColumnarTransactionStream]] = None

    def transactions(self, fetch: FetchSpec) -> TransactionStream:
        """All transactions of one tile fetch, in DMA issue order.

        Inline arithmetic equivalent of
        :meth:`repro.memory.address.Extent.split_transactions` — this runs
        for every simulated tile, so object churn is avoided.  The result
        carries same-page run metadata (:class:`TransactionStream`).
        """
        if self.emit_columns:
            cache = self._stream_cache
            if cache is None:
                return self._transactions_columnar(fetch)
            # simlint: disable=det-hash-order -- id(fetch) is an opaque memo key (keyed lookup only, never ordered or iterated); the fetch list outlives the memo so the id cannot be recycled
            key = id(fetch)
            stream = cache.get(key)
            if stream is None:
                stream = cache[key] = self._transactions_columnar(fetch)
            return stream
        max_bytes = self.config.dma_transaction_bytes
        boundary = self.split_boundary
        offset_mask = boundary - 1
        page_size = self.run_page_size
        page_mask = ~(page_size - 1)
        txs = TransactionStream(page_size)
        runs = txs.runs
        append = txs.append
        extend = txs.extend
        vector_ok = max_bytes == 256
        idx = 0
        run_page = -1
        streamable = True
        prev_end = -1
        for extent in fetch.extents():
            va = extent.va
            remaining = extent.length
            if vector_ok and not va & 255 and remaining >= 256:
                # Vectorized emission of the dominant shape: a 256 B
                # aligned extent yields uniform back-to-back 256 B
                # transactions, whose same-page runs fall at page
                # boundaries computable arithmetically.  Bit-identical
                # to the scalar loop below (tests/test_dma.py), which
                # still handles the sub-256 B tail and unaligned heads.
                n_full = remaining >> 8
                end = va + (n_full << 8)
                page = va & page_mask
                if page != run_page:
                    if run_page >= 0:
                        runs.append((idx, streamable))
                    run_page = page
                    streamable = True
                elif va != prev_end:
                    streamable = False  # same page, but a gap in VA
                next_boundary = (va | (page_size - 1)) + 1
                if next_boundary < end:
                    for b in range(next_boundary, end, page_size):
                        runs.append((idx + ((b - va) >> 8), streamable))
                        streamable = True
                    run_page = (end - 256) & page_mask
                extend([(v, 256) for v in range(va, end, 256)])
                idx += n_full
                prev_end = end
                va = end
                remaining -= n_full << 8
            while remaining > 0:
                room = boundary - (va & offset_mask)
                chunk = room if room < max_bytes else max_bytes
                if chunk > remaining:
                    chunk = remaining
                page = va & page_mask
                if page != run_page:
                    if run_page >= 0:
                        runs.append((idx, streamable))
                    run_page = page
                    streamable = True
                elif va != prev_end:
                    streamable = False  # same page, but a gap in VA
                if chunk != 256:
                    streamable = False
                append((va, chunk))
                prev_end = va + chunk
                va = prev_end
                remaining -= chunk
                idx += 1
        if run_page >= 0:
            runs.append((idx, streamable))
        return txs

    def _transactions_columnar(self, fetch: FetchSpec) -> ColumnarTransactionStream:
        """Native column emission for one tile fetch.

        Same transaction sequence as the scalar path
        (``tests/test_columnar.py`` pins them to each other), but the
        dominant aligned-256 B extents are emitted as ``np.arange`` column
        segments instead of per-object tuples, and the same-page run
        metadata is derived vectorized over the finished columns.
        """
        max_bytes = self.config.dma_transaction_bytes
        boundary = self.split_boundary
        offset_mask = boundary - 1
        vector_ok = max_bytes == 256
        # Segment accumulator: every aligned extent is one (start, count)
        # range of back-to-back 256 B transactions; every boundary/tail
        # chunk is a (start, 1) singleton with its own size.  The columns
        # are then produced by ONE ragged-range expansion per burst — the
        # per-extent work stays pure-Python appends, so a tile of many
        # short rows pays no per-extent NumPy fixed cost.
        seg_va: List[int] = []
        seg_n: List[int] = []
        seg_size: List[int] = []
        uniform = True
        total = 0
        for extent in fetch.extents():
            va = extent.va
            remaining = extent.length
            if vector_ok and not va & 255 and remaining >= 256:
                n_full = remaining >> 8
                seg_va.append(va)
                seg_n.append(n_full)
                seg_size.append(256)
                total += n_full
                va += n_full << 8
                remaining -= n_full << 8
            while remaining > 0:
                room = boundary - (va & offset_mask)
                chunk = room if room < max_bytes else max_bytes
                if chunk > remaining:
                    chunk = remaining
                if chunk != 256:
                    uniform = False
                seg_va.append(va)
                seg_n.append(1)
                seg_size.append(chunk)
                total += 1
                va += chunk
                remaining -= chunk
        m = len(seg_va)
        if m == 0:
            vas = np.empty(0, dtype=np.int64)
            sizes = None
        elif m == 1:
            # Single segment: a bare range (or singleton) needs no ragged
            # expansion.
            vas = np.arange(
                seg_va[0], seg_va[0] + (seg_n[0] << 8), 256, dtype=np.int64
            ) if seg_n[0] > 1 else np.array(seg_va, dtype=np.int64)
            sizes = None if uniform else np.array(seg_size, dtype=np.int64)
        else:
            starts = np.fromiter(seg_va, dtype=np.int64, count=m)
            counts = np.fromiter(seg_n, dtype=np.int64, count=m)
            cum = np.cumsum(counts)
            # Index of each transaction within its segment, via the
            # ragged-range identity arange(total) - repeat(seg_base).
            base = np.repeat(cum - counts, counts)
            vas = np.repeat(starts, counts) + (
                (np.arange(total, dtype=np.int64) - base) << 8
            )
            sizes = (
                None
                if uniform
                else np.repeat(
                    np.fromiter(seg_size, dtype=np.int64, count=m), counts
                )
            )
        return ColumnarTransactionStream(vas, sizes, 256 if uniform else 0,
                                         self.run_page_size)

    def transaction_count(self, fetch: FetchSpec) -> int:
        """Number of transactions without materializing them."""
        return len(self.transactions(fetch))


def distinct_pages(
    extents: Sequence[Extent], page_size: int = PAGE_SIZE_4K
) -> int:
    """Exact count of distinct pages touched by ``extents``.

    Extents are sorted by VA and page runs are merged across adjacent
    extents, so overlapping or page-sharing rows are not double-counted.
    """
    last_counted = -1
    total = 0
    for ext in sorted(extents, key=lambda e: e.va):
        first = page_number(ext.va, page_size)
        last = page_number(ext.end - 1, page_size)
        if first <= last_counted:
            first = last_counted + 1
        if last >= first:
            total += last - first + 1
            last_counted = last
    return total


@dataclass
class PageDivergence:
    """Figure 6's per-workload statistic."""

    max_pages: int
    mean_pages: float
    fetches: int

    @classmethod
    def from_counts(cls, counts: Iterable[int]) -> "PageDivergence":
        values = list(counts)
        if not values:
            return cls(max_pages=0, mean_pages=0.0, fetches=0)
        return cls(
            max_pages=max(values),
            mean_pages=sum(values) / len(values),
            fetches=len(values),
        )


def page_divergence_of_fetches(
    fetches: Iterable[FetchSpec], page_size: int = PAGE_SIZE_4K
) -> PageDivergence:
    """Distinct-page statistics over every tile fetch of a schedule."""
    counts = [distinct_pages(f.extents(), page_size) for f in fetches]
    return PageDivergence.from_counts(counts)
