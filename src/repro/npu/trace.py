"""Translation-trace capture and replay.

A downstream user evaluating an MMU design rarely wants to re-specify a
whole network: they have a *trace* — the DMA's sequence of (VA, size)
transactions, burst by burst.  This module makes traces first-class:

* :func:`capture_trace` records the transaction stream of any workload on
  the Table-I NPU (tile order, burst boundaries and all);
* :class:`TranslationTrace` saves/loads a compact, diff-able text format;
* :func:`replay_trace` pushes a trace through any
  :class:`~repro.core.mmu.MMUConfig`, synthesizing the page table the
  trace needs, and returns burst timings plus the MMU summary.

Replay is exactly the engine the simulator uses, so a captured trace
reproduces the same translation behaviour as the full simulation — minus
compute phases, which is precisely what an MMU study wants to isolate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..core.engine import BurstResult, TranslationEngine
from ..core.mmu import MMU, MMUConfig
from ..core.stats import RunSummary
from ..memory.address import PAGE_SIZE_4K, page_number
from ..memory.dram import MainMemory
from ..memory.page_table import PageTable
from .config import NPUConfig
from .dma import DMAEngine, Transaction

#: Trace-file format marker (first line of every saved trace).
_MAGIC = "neummu-trace-v1"


@dataclass
class TranslationTrace:
    """A DMA transaction stream grouped into bursts (tile fetches)."""

    name: str
    bursts: List[List[Transaction]] = field(default_factory=list)

    @property
    def transaction_count(self) -> int:
        """Total transactions across all bursts."""
        return sum(len(b) for b in self.bursts)

    @property
    def total_bytes(self) -> int:
        """Total bytes the trace moves."""
        return sum(size for burst in self.bursts for _, size in burst)

    def distinct_pages(self, page_size: int = PAGE_SIZE_4K) -> int:
        """Distinct pages the trace touches at ``page_size``."""
        pages = set()
        for burst in self.bursts:
            for va, size in burst:
                pages.add(page_number(va, page_size))
                pages.add(page_number(va + size - 1, page_size))
        return len(pages)

    # ------------------------------------------------------------------ #
    # persistence                                                        #
    # ------------------------------------------------------------------ #

    def save(self, path: Path) -> Path:
        """Write the trace as text: one ``va size`` pair per line, bursts
        separated by ``B`` markers."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [_MAGIC, self.name]
        for burst in self.bursts:
            lines.append(f"B {len(burst)}")
            for va, size in burst:
                lines.append(f"{va:x} {size}")
        path.write_text("\n".join(lines) + "\n")
        return path

    @classmethod
    def load(cls, path: Path) -> "TranslationTrace":
        """Read a trace written by :meth:`save`."""
        lines = Path(path).read_text().splitlines()
        if not lines or lines[0] != _MAGIC:
            raise ValueError(f"{path} is not a {_MAGIC} file")
        if len(lines) < 2:
            raise ValueError(f"{path} is truncated: missing trace name")
        trace = cls(name=lines[1])
        current: Optional[List[Transaction]] = None
        for lineno, line in enumerate(lines[2:], start=3):
            if not line.strip():
                continue
            if line.startswith("B "):
                current = []
                trace.bursts.append(current)
                continue
            if current is None:
                raise ValueError(f"{path}:{lineno}: transaction before burst marker")
            va_hex, size_str = line.split()
            current.append((int(va_hex, 16), int(size_str)))
        return trace


def capture_trace(workload, npu_config: Optional[NPUConfig] = None) -> TranslationTrace:
    """Record the DMA transaction stream a workload generates.

    One burst per tile fetch, in schedule order — the exact stream the
    simulator replays, captured without running any timing.
    """
    from .simulator import NPUSimulator  # deferred: simulator imports dma too
    from ..core.mmu import oracle_config

    sim = NPUSimulator(workload, oracle_config(), npu_config=npu_config)
    dma = DMAEngine(sim.npu_config)
    trace = TranslationTrace(name=workload.name)
    for schedule in sim.schedules:
        for step in schedule.steps:
            for fetch in step.fetches:
                trace.bursts.append(dma.transactions(fetch))
    return trace


@dataclass
class ReplayResult:
    """Outcome of replaying a trace through one MMU configuration."""

    trace_name: str
    mmu_name: str
    total_cycles: float
    bursts: List[BurstResult]
    mmu_summary: RunSummary

    @property
    def stall_cycles(self) -> float:
        """Total DMA-blocked cycles across the replay."""
        return sum(b.stall_cycles for b in self.bursts)


def synthesize_page_table(
    trace: TranslationTrace, page_size: int = PAGE_SIZE_4K
) -> PageTable:
    """Build a page table mapping every page the trace touches.

    Frames are assigned in ascending-VA order, which is what a fresh
    device allocation gives.
    """
    pages = set()
    for burst in trace.bursts:
        for va, size in burst:
            first = page_number(va, page_size)
            last = page_number(va + size - 1, page_size)
            pages.update(range(first, last + 1))
    table = PageTable()
    for pfn, vpn in enumerate(sorted(pages)):
        table.map_page(vpn * page_size, pfn, page_size)
    return table


def replay_trace(
    trace: TranslationTrace,
    mmu_config: MMUConfig,
    npu_config: Optional[NPUConfig] = None,
    inter_burst_gap: float = 0.0,
) -> ReplayResult:
    """Replay a trace through ``mmu_config``; returns burst-level timing.

    ``inter_burst_gap`` inserts idle cycles between bursts, modelling
    compute phases that separate tile fetches.
    """
    if inter_burst_gap < 0:
        raise ValueError("inter-burst gap cannot be negative")
    npu_config = npu_config or NPUConfig()
    table = synthesize_page_table(trace, mmu_config.page_size)
    mmu = MMU(mmu_config, table)
    engine = TranslationEngine(mmu, MainMemory(npu_config.memory))
    cycle = 0.0
    results: List[BurstResult] = []
    end = 0.0
    for burst in trace.bursts:
        result = engine.run_burst(burst, cycle)
        results.append(result)
        cycle = result.issue_end_cycle + inter_burst_gap
        if result.data_end_cycle > end:
            end = result.data_end_cycle
    mmu.drain()
    return ReplayResult(
        trace_name=trace.name,
        mmu_name=mmu_config.name,
        total_cycles=end,
        bursts=results,
        mmu_summary=mmu.summary(),
    )
