"""NPU substrate: configuration, compute models, SPM, tiling, DMA, simulator.

The baseline machine is Table I's TPU-style 128×128 weight-stationary
systolic array with double-buffered scratchpads; :mod:`repro.npu.spatial`
provides the Section VI-B spatial-array alternative.
"""

from .config import TABLE1, InterconnectConfig, NPUConfig
from .dma import DMAEngine, FetchSpec, PageDivergence, distinct_pages
from .simulator import (
    ARBITRATION_POLICIES,
    Fidelity,
    LayerResult,
    MultiTenantResult,
    MultiTenantSimulator,
    NPUSimulator,
    RunResult,
    TenantResult,
    normalized_performance,
    normalized_vs_oracle,
    run_multi_tenant,
    run_workload,
)
from .spatial import SpatialArrayConfig, SpatialArrayModel
from .spm import Scratchpad, SPMCapacityError
from .systolic import GemmShape, SystolicArrayModel, VectorUnitModel
from .trace import (
    ReplayResult,
    TranslationTrace,
    capture_trace,
    replay_trace,
    synthesize_page_table,
)
from .tiling import (
    ConvGeometry,
    LayerSchedule,
    TileStep,
    plan_conv,
    plan_gemm,
    plan_recurrent,
)

__all__ = [
    "ARBITRATION_POLICIES",
    "TABLE1",
    "ConvGeometry",
    "DMAEngine",
    "FetchSpec",
    "Fidelity",
    "GemmShape",
    "InterconnectConfig",
    "LayerResult",
    "LayerSchedule",
    "MultiTenantResult",
    "MultiTenantSimulator",
    "NPUConfig",
    "NPUSimulator",
    "PageDivergence",
    "TenantResult",
    "ReplayResult",
    "RunResult",
    "SPMCapacityError",
    "TranslationTrace",
    "capture_trace",
    "replay_trace",
    "synthesize_page_table",
    "Scratchpad",
    "SpatialArrayConfig",
    "SpatialArrayModel",
    "SystolicArrayModel",
    "TileStep",
    "VectorUnitModel",
    "distinct_pages",
    "normalized_performance",
    "normalized_vs_oracle",
    "plan_conv",
    "plan_gemm",
    "plan_recurrent",
    "run_multi_tenant",
    "run_workload",
]
