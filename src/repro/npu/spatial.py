"""Spatial-array NPU compute model (Section VI-B).

To show NeuMMU generalizes beyond systolic designs, the paper also models a
spatial architecture "similar to DaDianNao or Eyeriss, which employs a
two-dimensional grid of PEs, each of which contains a vector ALU that
handles dot-product operations".  What matters for the MMU study is that
the design is *also* SPM-centric — the translation-burst behaviour is
unchanged — while its compute-phase timing differs (less pipeline fill
overhead, lower peak utilization on ragged shapes).

The model: a ``grid_rows × grid_cols`` PE grid, each PE a ``vector_lanes``
wide MAC unit.  A GEMM is spatially blocked over output tiles; each pass
processes one output block with dot-products streamed ``vector_lanes`` at a
time, plus a fixed per-pass pipeline overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .config import NPUConfig
from .systolic import GemmShape


@dataclass(frozen=True)
class SpatialArrayConfig:
    """Geometry of the spatial NPU (DaDianNao/Eyeriss flavoured)."""

    grid_rows: int = 16
    grid_cols: int = 16
    vector_lanes: int = 64
    #: Cycles of pipeline setup per output-block pass.
    pass_overhead_cycles: int = 64

    def __post_init__(self) -> None:
        if min(self.grid_rows, self.grid_cols, self.vector_lanes) <= 0:
            raise ValueError("spatial array dimensions must be positive")

    @property
    def pe_count(self) -> int:
        """Total PEs in the grid."""
        return self.grid_rows * self.grid_cols


class SpatialArrayModel:
    """Analytical compute model with the same interface as the systolic one.

    Usable as a drop-in ``compute_model`` for
    :class:`repro.npu.simulator.NPUSimulator`, which is exactly how the
    Section VI-B experiment swaps architectures.
    """

    def __init__(
        self,
        config: NPUConfig | None = None,
        spatial: SpatialArrayConfig | None = None,
    ):
        self.config = config or NPUConfig()
        self.spatial = spatial or SpatialArrayConfig()

    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        """Compute-phase cycles for an M×K×N GEMM on the PE grid.

        Output elements are distributed across the grid; each PE computes
        its dot products ``vector_lanes`` MACs per cycle.
        """
        shape = GemmShape(m, k, n)
        grid = self.spatial.pe_count
        outputs = shape.m * shape.n
        # Each pass maps up to `grid` output elements; a pass runs its
        # K-long dot products in ceil(K / lanes) cycles.
        passes = ceil(outputs / grid)
        dot_cycles = ceil(shape.k / self.spatial.vector_lanes)
        return float(passes * dot_cycles + self.spatial.pass_overhead_cycles)

    def utilization(self, shape: GemmShape) -> float:
        """Achieved MAC throughput relative to peak (diagnostic)."""
        cycles = self.gemm_cycles(shape.m, shape.k, shape.n)
        peak = self.spatial.pe_count * self.spatial.vector_lanes * cycles
        return shape.macs / peak if peak else 0.0
