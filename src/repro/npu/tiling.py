"""Tile planning: blocking GEMMs/convolutions into SPM-sized tiles.

"Because the size of IA and W can be hundreds to thousands of MBs, the DMA
unit blocks the IA and W into smaller tiles and sequence them in and out of
the SPM across multiple iterations" (Section II-A, Figure 3).  This module
produces those tile sequences:

* :func:`plan_gemm` — FC/RNN-style layers where IA is an (M, K) matrix and
  W a (K, N) matrix; tiles N (and K when necessary) under a
  weight-stationary order.
* :func:`plan_conv` — convolutions, tiling output rows and filters; the IA
  tile is a 4-D (B, H-slice, W, C) region whose rows are the linearized
  extents of Figure 14.

Each schedule step carries the fetches (tile loads) that must complete
before the step's compute phase — the implicit barrier of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from math import ceil
from typing import List, Optional, Sequence, Tuple

from ..memory.layout import TensorLayout
from .config import NPUConfig
from .dma import FetchSpec
from .spm import Scratchpad, SPMCapacityError
from .systolic import GemmShape


@dataclass(frozen=True)
class TileStep:
    """One (memory phase, compute phase) unit of the schedule."""

    fetches: Tuple[FetchSpec, ...]
    compute: GemmShape

    @property
    def fetch_bytes(self) -> int:
        """Bytes this step's memory phase moves."""
        return sum(f.nbytes for f in self.fetches)

    @cached_property
    def signature(self) -> Tuple:
        """Dedup key: identical signatures have identical timing class.

        Cached: the timing caches and the event-driven scheduler's quiet
        probes read it on every step instance (``cached_property``
        writes through ``__dict__``, which frozen dataclasses permit).
        """
        return tuple(f.signature for f in self.fetches) + (
            self.compute.m,
            self.compute.k,
            self.compute.n,
        )


@dataclass
class LayerSchedule:
    """The full tile sequence of one layer."""

    name: str
    steps: List[TileStep]

    @property
    def total_fetch_bytes(self) -> int:
        """Total DRAM traffic of the layer's memory phases."""
        return sum(step.fetch_bytes for step in self.steps)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates across all steps."""
        return sum(step.compute.macs for step in self.steps)

    def all_fetches(self) -> List[FetchSpec]:
        """Every tile fetch in order (Figure 6/14 instrumentation)."""
        return [f for step in self.steps for f in step.fetches]


def _tile_ranges(total: int, tile: int) -> List[Tuple[int, int]]:
    """(start, size) blocks covering ``[0, total)`` in ``tile``-sized chunks."""
    return [(start, min(tile, total - start)) for start in range(0, total, tile)]


def _largest_tile(total: int, budget_elems: int, quantum: int = 1) -> int:
    """Largest tile ≤ budget, a multiple of ``quantum`` when possible."""
    tile = min(total, max(1, budget_elems))
    if quantum > 1 and tile < total:
        tile = max(quantum, (tile // quantum) * quantum)
        tile = min(tile, total)
    return tile


# --------------------------------------------------------------------- #
# GEMM layers (fully-connected, RNN/LSTM projections)                   #
# --------------------------------------------------------------------- #


def plan_gemm(
    name: str,
    m: int,
    k: int,
    n: int,
    ia_layout: TensorLayout,
    w_layout: TensorLayout,
    config: NPUConfig,
    ia_resident_hint: bool = True,
) -> LayerSchedule:
    """Weight-stationary tile schedule for C[M,N] += A[M,K]·B[K,N].

    ``ia_layout`` must be the (M, K) activation matrix and ``w_layout`` the
    (K, N) weight matrix.  Tiling strategy (mirrors the paper's TPU model):

    1. keep K whole when a (K × array-width) weight tile fits the W budget;
       otherwise block K;
    2. block N so each weight tile fills the W budget;
    3. block M so each activation tile fits the IA budget; when the whole
       (M, K) IA fits, fetch it once up front (``ia_resident_hint``).
    """
    elem = config.elem_bytes
    ia_spm = Scratchpad("ia", config.ia_spm_bytes, config.double_buffered)
    w_spm = Scratchpad("w", config.w_spm_bytes, config.double_buffered)

    # --- choose K tile -------------------------------------------------
    min_n = min(n, config.array_cols)
    kt = _largest_tile(k, w_spm.tile_budget // (elem * min_n), config.array_rows)
    # --- choose N tile -------------------------------------------------
    nt = _largest_tile(n, w_spm.tile_budget // (elem * kt), config.array_cols)
    # --- choose M tile -------------------------------------------------
    mt = _largest_tile(m, ia_spm.tile_budget // (elem * kt), config.array_rows)

    w_spm.check_tile(kt * nt * elem)
    ia_spm.check_tile(mt * kt * elem)

    ia_resident = ia_resident_hint and ia_spm.fits(m * k * elem)

    steps: List[TileStep] = []
    first = True
    for n0, ns in _tile_ranges(n, nt):
        for k0, ks in _tile_ranges(k, kt):
            w_fetch = FetchSpec("w", w_layout, (k0, n0), (ks, ns))
            if ia_resident:
                fetches: Tuple[FetchSpec, ...]
                if first:
                    fetches = (
                        FetchSpec("ia", ia_layout, (0, 0), (m, k)),
                        w_fetch,
                    )
                    first = False
                else:
                    fetches = (w_fetch,)
                steps.append(TileStep(fetches, GemmShape(m, ks, ns)))
            else:
                for m0, ms in _tile_ranges(m, mt):
                    ia_fetch = FetchSpec("ia", ia_layout, (m0, k0), (ms, ks))
                    fetches = (ia_fetch, w_fetch) if m0 == 0 else (ia_fetch,)
                    steps.append(TileStep(fetches, GemmShape(ms, ks, ns)))
    return LayerSchedule(name=name, steps=steps)


# --------------------------------------------------------------------- #
# Convolutions                                                          #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ConvGeometry:
    """Shape parameters of a 2-D convolution (NHWC activations, FHWC weights)."""

    batch: int
    in_h: int
    in_w: int
    in_c: int
    out_c: int
    kernel: int
    stride: int = 1
    pad: int = 0

    def __post_init__(self) -> None:
        dims = (self.batch, self.in_h, self.in_w, self.in_c, self.out_c, self.kernel)
        if any(d <= 0 for d in dims):
            raise ValueError(f"conv dims must be positive: {self}")
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if self.out_h <= 0 or self.out_w <= 0:
            raise ValueError(f"conv produces empty output: {self}")

    @property
    def out_h(self) -> int:
        return (self.in_h + 2 * self.pad - self.kernel) // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.in_w + 2 * self.pad - self.kernel) // self.stride + 1

    @property
    def gemm_k(self) -> int:
        """im2col reduction dimension."""
        return self.kernel * self.kernel * self.in_c


def plan_conv(
    name: str,
    geom: ConvGeometry,
    ia_layout: TensorLayout,
    w_layout: TensorLayout,
    config: NPUConfig,
) -> LayerSchedule:
    """Tile schedule for a convolution.

    ``ia_layout`` is the (B, H, W, C) activation tensor; ``w_layout`` the
    (F, k, k, C) filter tensor (each filter contiguous).  Output rows and
    filters are blocked; the IA tile for an output-row block is the input
    row slab it consumes (including halo rows).
    """
    elem = config.elem_bytes
    ia_spm = Scratchpad("ia", config.ia_spm_bytes, config.double_buffered)
    w_spm = Scratchpad("w", config.w_spm_bytes, config.double_buffered)

    filter_bytes = geom.gemm_k * elem
    ft = _largest_tile(geom.out_c, w_spm.tile_budget // filter_bytes, config.array_cols)
    w_spm.check_tile(ft * filter_bytes)

    ia_resident = ia_spm.fits(geom.batch * geom.in_h * geom.in_w * geom.in_c * elem)

    if ia_resident:
        # Whole activation fits: no need to block output rows at all.
        oht = geom.out_h
    else:
        row_bytes = geom.batch * geom.in_w * geom.in_c * elem
        # Output-row block: its IA slab has (oht-1)*stride + kernel input rows.
        max_in_rows = max(geom.kernel, ia_spm.tile_budget // row_bytes)
        oht = max(1, min(geom.out_h, (max_in_rows - geom.kernel) // geom.stride + 1))

    steps: List[TileStep] = []
    ia_fetched_once = False
    for f0, fs in _tile_ranges(geom.out_c, ft):
        w_fetch = FetchSpec(
            "w",
            w_layout,
            (f0, 0, 0, 0),
            (fs, geom.kernel, geom.kernel, geom.in_c),
        )
        for oh0, ohs in _tile_ranges(geom.out_h, oht):
            # Input rows feeding this output-row block, clipped to the
            # unpadded tensor (padding rows are generated on-chip).
            ih0 = max(0, oh0 * geom.stride - geom.pad)
            ih_last = min(
                geom.in_h - 1,
                (oh0 + ohs - 1) * geom.stride - geom.pad + geom.kernel - 1,
            )
            ih_rows = max(1, ih_last - ih0 + 1)
            fetches: List[FetchSpec] = []
            if oh0 == 0:
                fetches.append(w_fetch)
            if ia_resident:
                if not ia_fetched_once:
                    fetches.append(
                        FetchSpec(
                            "ia",
                            ia_layout,
                            (0, 0, 0, 0),
                            (geom.batch, geom.in_h, geom.in_w, geom.in_c),
                        )
                    )
                    ia_fetched_once = True
            else:
                fetches.append(
                    FetchSpec(
                        "ia",
                        ia_layout,
                        (0, ih0, 0, 0),
                        (geom.batch, ih_rows, geom.in_w, geom.in_c),
                    )
                )
            compute = GemmShape(
                m=geom.batch * ohs * geom.out_w, k=geom.gemm_k, n=fs
            )
            steps.append(TileStep(tuple(fetches), compute))
    return LayerSchedule(name=name, steps=steps)


# --------------------------------------------------------------------- #
# Recurrent layers                                                      #
# --------------------------------------------------------------------- #


def plan_recurrent(
    name: str,
    batch: int,
    input_size: int,
    hidden_size: int,
    seq_len: int,
    gates: int,
    ia_layout: TensorLayout,
    w_layout: TensorLayout,
    config: NPUConfig,
) -> LayerSchedule:
    """Tile schedule for an RNN/LSTM layer run over ``seq_len`` timesteps.

    Each timestep computes GEMM(M=batch, K=input+hidden, N=gates·hidden).
    The recurrence serializes timesteps, so when the (K, N) weight matrix
    exceeds the W scratchpad it must be *re-streamed every timestep* —
    the root cause of RNN inference being memory-phase bound (Section II-C
    picked DeepBench RNNs for exactly this).  When weights fit, they are
    fetched once and reused across timesteps.

    ``ia_layout`` is the (seq_len, batch, input+hidden) activation tensor
    (x_t concatenated with h_{t-1}); ``w_layout`` is (K, N).
    """
    elem = config.elem_bytes
    w_spm = Scratchpad("w", config.w_spm_bytes, config.double_buffered)

    k = input_size + hidden_size
    n = gates * hidden_size
    min_n = min(n, config.array_cols)
    kt = _largest_tile(k, w_spm.tile_budget // (elem * min_n), config.array_rows)
    nt = _largest_tile(n, w_spm.tile_budget // (elem * kt), config.array_cols)
    w_spm.check_tile(kt * nt * elem)

    weights_resident = w_spm.fits(k * n * elem)

    steps: List[TileStep] = []
    for t in range(seq_len):
        ia_fetch = FetchSpec("ia", ia_layout, (t, 0, 0), (1, batch, k))
        if weights_resident:
            fetches: Tuple[FetchSpec, ...]
            if t == 0:
                fetches = (ia_fetch, FetchSpec("w", w_layout, (0, 0), (k, n)))
            else:
                fetches = (ia_fetch,)
            steps.append(TileStep(fetches, GemmShape(batch, k, n)))
        else:
            first_tile = True
            for n0, ns in _tile_ranges(n, nt):
                for k0, ks in _tile_ranges(k, kt):
                    w_fetch = FetchSpec("w", w_layout, (k0, n0), (ks, ns))
                    if first_tile:
                        steps.append(
                            TileStep((ia_fetch, w_fetch), GemmShape(batch, ks, ns))
                        )
                        first_tile = False
                    else:
                        steps.append(
                            TileStep((w_fetch,), GemmShape(batch, ks, ns))
                        )
    return LayerSchedule(name=name, steps=steps)
