"""End-to-end NPU performance simulator.

Composes everything below it:

1. allocates each layer's IA/W tensors as virtual segments backed by the
   shared page table (Section II-B's unified address space);
2. builds per-layer tile schedules (Section II-A's double-buffered DMA
   sequencing, Figure 3);
3. replays each tile's memory phase through the
   :class:`~repro.core.engine.TranslationEngine` against the configured MMU
   (oracle / IOMMU / NeuMMU) and the bandwidth-limited memory system;
4. pipelines memory phases against compute phases with double buffering:
   tile *n+1*'s fetch overlaps tile *n*'s compute, and the tile barrier of
   Figure 3 is enforced.

Normalized performance — the paper's headline metric — is obtained by
running the same workload under an oracular MMU and dividing.

Fidelity
--------
``EXACT`` simulates every tile fetch.  ``FAST`` (the default) simulates the
first ``warmup`` instances of each distinct tile signature per layer with
full MMU/memory state and reuses the converged timing for the remaining
instances; dense layers repeat identical tiles tens-to-thousands of times,
so this cuts runtime by 1-2 orders of magnitude.  Tests verify FAST agrees
with EXACT within a few percent on complete workloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import TranslationEngine
from ..core.mmu import MMU, MMUConfig, oracle_config
from ..core.stats import RunSummary
from ..memory.allocator import AddressSpace
from ..memory.dram import MainMemory
from ..memory.layout import TensorLayout
from .config import NPUConfig
from .dma import DMAEngine, PageDivergence, distinct_pages
from .systolic import SystolicArrayModel
from .tiling import LayerSchedule, TileStep


class Fidelity(enum.Enum):
    """Simulation fidelity mode."""

    EXACT = "exact"
    FAST = "fast"


@dataclass
class LayerResult:
    """Per-layer timing summary."""

    name: str
    steps: int
    cycles: float
    compute_cycles: float
    fetch_bytes: int
    simulated_steps: int


@dataclass
class RunResult:
    """One workload execution under one MMU configuration."""

    workload: str
    mmu_name: str
    total_cycles: float
    layers: List[LayerResult]
    mmu_summary: RunSummary
    page_divergence: Dict[str, PageDivergence]
    #: (window_start_cycle, translation_count) pairs when tracing enabled.
    translation_timeline: List[Tuple[int, int]] = field(default_factory=list)
    #: (step_index, va_lo, va_hi, tensor) per fetch when tracing enabled.
    va_trace: List[Tuple[int, int, int, str]] = field(default_factory=list)

    @property
    def total_fetch_bytes(self) -> int:
        return sum(l.fetch_bytes for l in self.layers)


def normalized_performance(oracle: RunResult, candidate: RunResult) -> float:
    """The paper's metric: oracle cycles / candidate cycles (≤ 1)."""
    if candidate.total_cycles <= 0:
        raise ValueError("candidate run has non-positive cycle count")
    return oracle.total_cycles / candidate.total_cycles


class NPUSimulator:
    """Runs one workload under one MMU configuration."""

    def __init__(
        self,
        workload,
        mmu_config: MMUConfig,
        npu_config: Optional[NPUConfig] = None,
        compute_model=None,
        fidelity: Fidelity = Fidelity.FAST,
        warmup: int = 4,
        timeline_window: int = 0,
        trace_va: bool = False,
        memory_bytes: int = 64 * 1024**3,
    ):
        self.workload = workload
        self.mmu_config = mmu_config
        self.npu_config = npu_config or NPUConfig()
        self.compute_model = compute_model or SystolicArrayModel(self.npu_config)
        self.fidelity = fidelity
        self.warmup = max(1, warmup)
        self.timeline_window = timeline_window
        self.trace_va = trace_va

        self.address_space = AddressSpace(
            memory_bytes=memory_bytes, page_size=mmu_config.page_size
        )
        self.dma = DMAEngine(self.npu_config)
        # Run metadata on generated streams must match the MMU's page size
        # for the engine's batched fast path to use it.
        self.dma.run_page_size = mmu_config.page_size
        self.memory = MainMemory(self.npu_config.memory)
        self.mmu = MMU(mmu_config, self.address_space.page_table)
        self.engine = TranslationEngine(
            self.mmu, self.memory, timeline_window=timeline_window
        )
        self._schedules = self._build_schedules()

    # ------------------------------------------------------------------ #
    # setup                                                              #
    # ------------------------------------------------------------------ #

    def _build_schedules(self) -> List[LayerSchedule]:
        """Allocate tensors and plan every layer."""
        elem = self.npu_config.elem_bytes
        schedules: List[LayerSchedule] = []
        for layer in self.workload.layers:
            layouts: Dict[str, TensorLayout] = {}
            for role, shape in layer.tensor_shapes().items():
                nbytes = elem
                for d in shape:
                    nbytes *= d
                seg = self.address_space.alloc_segment(f"{layer.name}.{role}", nbytes)
                layouts[role] = TensorLayout(
                    name=f"{layer.name}.{role}", base_va=seg.va, shape=shape,
                    elem_bytes=elem,
                )
            schedules.append(layer.build_schedule(self.npu_config, layouts))
        return schedules

    @property
    def schedules(self) -> List[LayerSchedule]:
        """Planned tile schedules, one per layer."""
        return self._schedules

    # ------------------------------------------------------------------ #
    # instrumentation helpers                                            #
    # ------------------------------------------------------------------ #

    def page_divergence(self) -> Dict[str, PageDivergence]:
        """Figure 6: distinct pages per tile fetch, split by stream."""
        per_stream: Dict[str, List[int]] = {"ia": [], "w": [], "all": []}
        page_size = self.mmu_config.page_size
        for schedule in self._schedules:
            for fetch in schedule.all_fetches():
                pages = distinct_pages(fetch.extents(), page_size)
                per_stream.setdefault(fetch.tensor, []).append(pages)
                per_stream["all"].append(pages)
        return {
            stream: PageDivergence.from_counts(counts)
            for stream, counts in per_stream.items()
            if counts
        }

    # ------------------------------------------------------------------ #
    # execution                                                          #
    # ------------------------------------------------------------------ #

    def run(self) -> RunResult:
        """Execute the workload; returns timing + translation statistics."""
        cycle = 0.0
        layer_results: List[LayerResult] = []
        va_trace: List[Tuple[int, int, int, str]] = []
        step_counter = 0

        # FAST-mode cache: step signature -> list of simulated durations
        # (memory-phase length, issue-port occupancy).
        timing_cache: Dict[Tuple, List[Tuple[float, float]]] = {}

        for schedule in self._schedules:
            layer_compute = 0.0
            simulated_steps = 0

            # Double-buffer pipeline state:
            #   mem_end[i]   — when step i's tile is fully in SPM
            #   comp_end[i]  — when step i's compute finishes
            # Fetch i+1 may start once fetch i's issue port frees and the
            # receiving buffer is free (compute i-1 done); compute i starts
            # at max(mem_end[i], comp_end[i-1]).
            prev_comp_end = cycle
            prev_prev_comp_end = cycle
            mem_free = cycle  # when the DMA issue port frees

            for step in schedule.steps:
                mem_start = max(mem_free, prev_prev_comp_end)
                mem_duration, issue_duration, simulated = self._step_memory_phase(
                    step, mem_start, timing_cache
                )
                if simulated:
                    simulated_steps += 1
                    if self.trace_va:
                        for fetch in step.fetches:
                            extents = fetch.extents()
                            lo = min(e.va for e in extents)
                            hi = max(e.end for e in extents)
                            va_trace.append((step_counter, lo, hi, fetch.tensor))
                mem_end = mem_start + mem_duration
                mem_free = mem_start + issue_duration

                compute_cycles = self.compute_model.gemm_cycles(
                    step.compute.m, step.compute.k, step.compute.n
                )
                comp_start = max(mem_end, prev_comp_end)
                comp_end = comp_start + compute_cycles

                layer_compute += compute_cycles
                prev_prev_comp_end = prev_comp_end
                prev_comp_end = comp_end
                step_counter += 1

            layer_end = prev_comp_end
            layer_results.append(
                LayerResult(
                    name=schedule.name,
                    steps=len(schedule.steps),
                    cycles=layer_end - cycle,
                    compute_cycles=layer_compute,
                    fetch_bytes=schedule.total_fetch_bytes,
                    simulated_steps=simulated_steps,
                )
            )
            cycle = layer_end

        self.mmu.drain()
        return RunResult(
            workload=self.workload.name,
            mmu_name=self.mmu_config.name,
            total_cycles=cycle,
            layers=layer_results,
            mmu_summary=self.mmu.summary(),
            page_divergence=self.page_divergence() if self.trace_va else {},
            translation_timeline=self.engine.timeline_series(),
            va_trace=va_trace,
        )

    def _step_memory_phase(
        self,
        step: TileStep,
        mem_start: float,
        timing_cache: Dict[Tuple, List[Tuple[float, float]]],
    ) -> Tuple[float, float, bool]:
        """Memory-phase (duration, issue-occupancy, was_simulated) of a step.

        In FAST mode, once ``warmup`` instances of a signature have been
        simulated, the mean of the post-cold-start instances is reused.
        """
        if not step.fetches:
            return (0.0, 0.0, False)
        signature = step.signature
        history = timing_cache.get(signature)
        if (
            self.fidelity is Fidelity.FAST
            and history is not None
            and len(history) >= self.warmup
        ):
            # Skip the first (cold) instance when averaging if we can.
            samples = history[1:] if len(history) > 1 else history
            mean_duration = sum(s[0] for s in samples) / len(samples)
            mean_issue = sum(s[1] for s in samples) / len(samples)
            return (mean_duration, mean_issue, False)

        bursts = [self.dma.transactions(fetch) for fetch in step.fetches]
        results, data_end = self.engine.run_bursts(bursts, mem_start)
        duration = data_end - mem_start
        issue = results[-1].issue_end_cycle - mem_start
        if history is None:
            timing_cache[signature] = [(duration, issue)]
        else:
            history.append((duration, issue))
        return (duration, issue, True)


def run_workload(
    workload,
    mmu_config: MMUConfig,
    npu_config: Optional[NPUConfig] = None,
    **kwargs,
) -> RunResult:
    """One-call convenience wrapper around :class:`NPUSimulator`."""
    return NPUSimulator(workload, mmu_config, npu_config, **kwargs).run()


def normalized_vs_oracle(
    workload_factory,
    mmu_config: MMUConfig,
    npu_config: Optional[NPUConfig] = None,
    **kwargs,
) -> Tuple[float, RunResult, RunResult]:
    """Run a workload under ``mmu_config`` and under the oracle; return
    (normalized performance, oracle result, candidate result).

    ``workload_factory`` is called twice (once per run) so each simulator
    gets a fresh workload/address space.
    """
    oracle = run_workload(
        workload_factory(), oracle_config(mmu_config.page_size), npu_config, **kwargs
    )
    candidate = run_workload(workload_factory(), mmu_config, npu_config, **kwargs)
    return normalized_performance(oracle, candidate), oracle, candidate
