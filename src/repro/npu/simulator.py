"""End-to-end NPU performance simulator.

Composes everything below it:

1. allocates each layer's IA/W tensors as virtual segments backed by the
   shared page table (Section II-B's unified address space);
2. builds per-layer tile schedules (Section II-A's double-buffered DMA
   sequencing, Figure 3);
3. replays each tile's memory phase through the
   :class:`~repro.core.engine.TranslationEngine` against the configured MMU
   (oracle / IOMMU / NeuMMU) and the bandwidth-limited memory system;
4. pipelines memory phases against compute phases with double buffering:
   tile *n+1*'s fetch overlaps tile *n*'s compute, and the tile barrier of
   Figure 3 is enforced.

Normalized performance — the paper's headline metric — is obtained by
running the same workload under an oracular MMU and dividing.

Fidelity
--------
``EXACT`` simulates every tile fetch.  ``FAST`` (the default) simulates the
first ``warmup`` instances of each distinct tile signature per layer with
full MMU/memory state and reuses the converged timing for the remaining
instances; dense layers repeat identical tiles tens-to-thousands of times,
so this cuts runtime by 1-2 orders of magnitude.  Tests verify FAST agrees
with EXACT within a few percent on complete workloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import TranslationEngine
from ..core.mmu import MMU, MMUConfig, SharedMMU, TenantUsage, oracle_config
from ..core.qos import (
    ARBITRATION_POLICIES,
    SHARE_POLICIES,
    Arbiter,
    make_arbiter,
    make_share_policy,
)
from ..core.stats import RunSummary
from ..memory.allocator import AddressSpace
from ..memory.dram import MainMemory
from ..memory.layout import TensorLayout
from ..memory.tiering import LocalMemoryTier, MigrationFabric, TieringConfig
from .config import NPUConfig
from .dma import DMAEngine, PageDivergence, distinct_pages
from .systolic import SystolicArrayModel
from .tiling import LayerSchedule, TileStep


class Fidelity(enum.Enum):
    """Simulation fidelity mode."""

    EXACT = "exact"
    FAST = "fast"


class _TimingCache:
    """One tenant run's FAST-fidelity tile-timing state.

    ``history`` maps a tile-step signature to the list of simulated
    ``(memory-phase duration, issue occupancy)`` samples; once ``warmup``
    samples exist, their mean is computed a single time into
    ``converged`` and reused for every later instance of the signature
    (the mean is stable — history stops growing at convergence — so
    memoizing it is bit-identical to recomputing per step).

    ``epoch`` is the *contention epoch* the cached timings were measured
    under: the shared MMU bumps its epoch whenever the set of active
    tenants, their weights, or the share-policy state changes
    (:attr:`~repro.core.mmu.SharedMMU.contention_epoch`), and a run whose
    cache carries a stale epoch drops all of it and re-warms — converged
    timings embed the contention of the tenants that were active when
    they were measured, so they are only valid within one epoch.

    ``residency_epoch`` is the analogous stamp for demand paging: the
    paging tier bumps a tenant's epoch whenever a page is *evicted* from
    its resident set
    (:meth:`~repro.memory.tiering.LocalMemoryTier.residency_epoch`), so
    timings measured while a tile's pages were local are dropped once an
    eviction moves the tenant into a different residency regime instead
    of being replayed as if nothing changed.  Pages migrating *in* leave
    the stamp alone — they cannot stale a timing measured before them —
    so cold-start fault storms still warm the cache normally.
    """

    __slots__ = ("history", "converged", "epoch", "residency_epoch")

    def __init__(self, epoch: int = 0, residency_epoch: int = 0):
        self.history: Dict[Tuple, List[Tuple[float, float]]] = {}
        self.converged: Dict[Tuple, Tuple[float, float]] = {}
        self.epoch = epoch
        self.residency_epoch = residency_epoch

    def invalidate(self, epoch: int, residency_epoch: int = 0) -> None:
        """Drop every cached timing and adopt the new epochs."""
        self.history.clear()
        self.converged.clear()
        self.epoch = epoch
        self.residency_epoch = residency_epoch


@dataclass
class LayerResult:
    """Per-layer timing summary."""

    name: str
    steps: int
    cycles: float
    compute_cycles: float
    fetch_bytes: int
    simulated_steps: int


@dataclass
class RunResult:
    """One workload execution under one MMU configuration."""

    workload: str
    mmu_name: str
    total_cycles: float
    layers: List[LayerResult]
    mmu_summary: RunSummary
    page_divergence: Dict[str, PageDivergence]
    #: (window_start_cycle, translation_count) pairs when tracing enabled.
    translation_timeline: List[Tuple[int, int]] = field(default_factory=list)
    #: (step_index, va_lo, va_hi, tensor) per fetch when tracing enabled.
    va_trace: List[Tuple[int, int, int, str]] = field(default_factory=list)

    @property
    def total_fetch_bytes(self) -> int:
        return sum(l.fetch_bytes for l in self.layers)


def normalized_performance(oracle: RunResult, candidate: RunResult) -> float:
    """The paper's metric: oracle cycles / candidate cycles (≤ 1)."""
    if candidate.total_cycles <= 0:
        raise ValueError("candidate run has non-positive cycle count")
    return oracle.total_cycles / candidate.total_cycles



#: (id(workload), page_size, memory_bytes, npu config) -> (workload,
#: address space, schedules, columnar stream cache).  See NPUSimulator.
_CONSTRUCTION_CACHE: Dict[tuple, tuple] = {}

class NPUSimulator:
    """Runs one workload under one MMU configuration."""

    def __init__(
        self,
        workload,
        mmu_config: MMUConfig,
        npu_config: Optional[NPUConfig] = None,
        compute_model=None,
        fidelity: Fidelity = Fidelity.FAST,
        warmup: int = 4,
        timeline_window: int = 0,
        trace_va: bool = False,
        memory_bytes: int = 64 * 1024**3,
        shared_mmu: Optional[SharedMMU] = None,
        asid: int = 0,
        paging_tier: Optional[LocalMemoryTier] = None,
        memory_budget: Optional[int] = None,
    ):
        self.workload = workload
        self.mmu_config = mmu_config
        self.npu_config = npu_config or NPUConfig()
        self.compute_model = compute_model or SystolicArrayModel(self.npu_config)
        self.fidelity = fidelity
        self.warmup = max(1, warmup)
        self.timeline_window = timeline_window
        self.trace_va = trace_va
        self.asid = asid
        #: Demand-paged mode: tensors are reserved but unmapped, and first
        #: touch faults through the tier's migration fabric
        #: (:mod:`repro.memory.tiering`).  ``memory_budget`` bounds this
        #: tenant's local residency (the tier default when None).
        self._paging = paging_tier

        # Construction cache: tensor allocation, page-table population and
        # tile planning are pure functions of (workload, page size, memory
        # size, NPU config), and policy sweeps rebuild the same tenant
        # dozens of times.  Demand-paged tenants are excluded — their page
        # tables mutate during the run.  Keys carry a strong reference to
        # the workload, so an id() can never be recycled while its entry
        # is alive.
        cached = None
        construction_key = None
        if paging_tier is None:
            construction_key = (
                # simlint: disable=det-hash-order -- id(workload) is an opaque cache key (keyed lookup only, never ordered); the key holds a strong reference so the id cannot be recycled
                id(workload), mmu_config.page_size, memory_bytes,
                repr(self.npu_config),
            )
            cached = _CONSTRUCTION_CACHE.get(construction_key)
        if cached is not None:
            _, self.address_space, prebuilt_schedules, stream_cache = cached
        else:
            self.address_space = AddressSpace(
                memory_bytes=memory_bytes, page_size=mmu_config.page_size
            )
            prebuilt_schedules = None
            stream_cache = {}
        self.dma = DMAEngine(self.npu_config)
        # Run metadata on generated streams must match the MMU's page size
        # for the engine's batched fast path to use it.
        self.dma.run_page_size = mmu_config.page_size
        # Columnar engine mode: the DMA emits structure-of-arrays streams
        # natively; the reference mode keeps the per-object golden path.
        self.dma.emit_columns = mmu_config.engine_mode == "columnar"
        self._shared = shared_mmu
        if shared_mmu is not None:
            # Multi-tenant mode: this simulator is one tenant of a shared
            # translation stack.  Its address space registers under ``asid``
            # and every burst routes through the shared engine (which also
            # attributes per-tenant usage).  Timeline capture belongs to the
            # shared engine's owner, so it is unsupported here.
            if timeline_window:
                raise ValueError("timeline_window is unsupported with shared_mmu")
            self.memory = shared_mmu.memory
            self.mmu = shared_mmu.mmu
            self.engine = shared_mmu.engine
            shared_mmu.add_tenant(asid, self.address_space.page_table)
            if paging_tier is not None:
                shared_mmu.attach_paging(paging_tier)
        else:
            self.memory = MainMemory(self.npu_config.memory)
            self.mmu = MMU(mmu_config, self.address_space.page_table)
            self.engine = TranslationEngine(
                self.mmu, self.memory, timeline_window=timeline_window
            )
            if paging_tier is not None:
                paging_tier.bind(self.mmu)
                self.engine.fault_handler = paging_tier.handle_fault
        if paging_tier is not None:
            paging_tier.register_tenant(
                asid, self.address_space, memory_budget
            )
        if prebuilt_schedules is not None:
            self._schedules = prebuilt_schedules
        else:
            self._schedules = self._build_schedules()
            if construction_key is not None:
                if len(_CONSTRUCTION_CACHE) > 64:
                    _CONSTRUCTION_CACHE.clear()
                _CONSTRUCTION_CACHE[construction_key] = (
                    workload, self.address_space, self._schedules,
                    stream_cache,
                )
        if construction_key is not None and self.dma.emit_columns:
            # Columnar streams are immutable array bundles, so tile
            # fetches of a cached schedule can share them across runs;
            # the object-mode stream is rebuilt per run as before.
            self.dma._stream_cache = stream_cache

    # ------------------------------------------------------------------ #
    # setup                                                              #
    # ------------------------------------------------------------------ #

    def _build_schedules(self) -> List[LayerSchedule]:
        """Allocate tensors and plan every layer.

        In demand-paged mode tensors are reserved but left unmapped —
        first touch faults and migrates through the paging tier.
        """
        elem = self.npu_config.elem_bytes
        populate = self._paging is None
        schedules: List[LayerSchedule] = []
        for layer in self.workload.layers:
            layouts: Dict[str, TensorLayout] = {}
            for role, shape in layer.tensor_shapes().items():
                nbytes = elem
                for d in shape:
                    nbytes *= d
                seg = self.address_space.alloc_segment(
                    f"{layer.name}.{role}", nbytes, populate=populate
                )
                layouts[role] = TensorLayout(
                    name=f"{layer.name}.{role}", base_va=seg.va, shape=shape,
                    elem_bytes=elem,
                )
            schedules.append(layer.build_schedule(self.npu_config, layouts))
        return schedules

    @property
    def schedules(self) -> List[LayerSchedule]:
        """Planned tile schedules, one per layer."""
        return self._schedules

    # ------------------------------------------------------------------ #
    # instrumentation helpers                                            #
    # ------------------------------------------------------------------ #

    def page_divergence(self) -> Dict[str, PageDivergence]:
        """Figure 6: distinct pages per tile fetch, split by stream."""
        per_stream: Dict[str, List[int]] = {"ia": [], "w": [], "all": []}
        page_size = self.mmu_config.page_size
        for schedule in self._schedules:
            for fetch in schedule.all_fetches():
                pages = distinct_pages(fetch.extents(), page_size)
                per_stream.setdefault(fetch.tensor, []).append(pages)
                per_stream["all"].append(pages)
        return {
            stream: PageDivergence.from_counts(counts)
            for stream, counts in per_stream.items()
            if counts
        }

    # ------------------------------------------------------------------ #
    # execution                                                          #
    # ------------------------------------------------------------------ #

    def run(self) -> RunResult:
        """Execute the workload; returns timing + translation statistics.

        The double-buffered tile pipeline itself lives in
        :class:`_TenantRun` (the stepwise form the multi-tenant arbiter
        interleaves); a single-tenant run simply steps it to completion.
        """
        run = _TenantRun(self)
        while not run.done:
            if not run.advance_quiet():
                run.advance()
        self.mmu.drain()
        return RunResult(
            workload=self.workload.name,
            mmu_name=self.mmu_config.name,
            total_cycles=run.cycle,
            layers=run.layer_results,
            mmu_summary=self.mmu.summary(),
            page_divergence=self.page_divergence() if self.trace_va else {},
            translation_timeline=self.engine.timeline_series(),
            va_trace=run.va_trace,
        )

    def _step_memory_phase(
        self,
        step: TileStep,
        mem_start: float,
        cache: _TimingCache,
    ) -> Tuple[float, float, bool]:
        """Memory-phase (duration, issue-occupancy, was_simulated) of a step.

        In FAST mode, once ``warmup`` instances of a signature have been
        simulated, the mean of the post-cold-start instances is computed
        once into ``cache.converged`` and reused.
        """
        if not step.fetches:
            return (0.0, 0.0, False)
        signature = step.signature
        fast = self.fidelity is Fidelity.FAST
        if fast:
            converged = cache.converged.get(signature)
            if converged is not None:
                return (converged[0], converged[1], False)
        history = cache.history.get(signature)
        if fast and history is not None and len(history) >= self.warmup:
            # Skip the first (cold) instance when averaging if we can.
            samples = history[1:] if len(history) > 1 else history
            mean_duration = sum(s[0] for s in samples) / len(samples)
            mean_issue = sum(s[1] for s in samples) / len(samples)
            cache.converged[signature] = (mean_duration, mean_issue)
            return (mean_duration, mean_issue, False)

        bursts = [self.dma.transactions(fetch) for fetch in step.fetches]
        if self._shared is not None:
            results, data_end = self._shared.run_bursts(self.asid, bursts, mem_start)
        else:
            results, data_end = self.engine.run_bursts(bursts, mem_start)
        duration = data_end - mem_start
        issue = results[-1].issue_end_cycle - mem_start
        if history is None:
            cache.history[signature] = [(duration, issue)]
        else:
            history.append((duration, issue))
        return (duration, issue, True)


# --------------------------------------------------------------------- #
# multi-tenant execution                                                #
# --------------------------------------------------------------------- #

# ARBITRATION_POLICIES now lives in repro.core.qos (imported above) and is
# re-exported here for backwards compatibility.


@dataclass
class TenantResult:
    """One tenant's outcome under a shared MMU."""

    asid: int
    workload: str
    total_cycles: float
    layers: List[LayerResult]
    usage: TenantUsage


@dataclass
class MultiTenantResult:
    """One multi-tenant contention run (N workloads, one shared MMU)."""

    mmu_name: str
    arbitration: str
    tenants: List[TenantResult]
    #: Cycle at which the slowest tenant finished.
    makespan_cycles: float
    #: Combined translation activity of the shared MMU.
    mmu_summary: RunSummary
    #: QoS share policy the shared structures ran under.
    qos: str = "full_share"
    #: Per-tenant share weights, aligned with :attr:`tenants`.
    weights: Tuple[float, ...] = ()

    def tenant(self, asid: int) -> TenantResult:
        """Look up one tenant's result by ASID."""
        for result in self.tenants:
            if result.asid == asid:
                return result
        raise KeyError(f"no tenant with ASID {asid}")


class _TenantRun:
    """Stepwise replay of one simulator's double-buffered tile pipeline.

    The pipeline's canonical form: :meth:`NPUSimulator.run` steps one of
    these to completion, and the multi-tenant arbiter interleaves tile
    steps from several of them onto one shared MMU.  Per tile step,
    fetch *i+1* may start once fetch *i*'s issue port frees and the
    receiving buffer is free (compute *i-1* done); compute *i* starts at
    ``max(mem_end[i], comp_end[i-1])``.  All pipeline state (the overlap
    bookkeeping, the FAST-fidelity timing cache, the optional VA trace)
    is private to the run; only the translation machinery and memory
    system underneath may be shared.
    """

    def __init__(self, sim: NPUSimulator):
        self.sim = sim
        # FAST-mode cache: simulated timing history plus converged means,
        # keyed by step signature and stamped with the contention epoch
        # the timings were measured under (see _TimingCache).
        self.timing_cache = _TimingCache(
            sim._shared.contention_epoch if sim._shared is not None else 0,
            sim._paging.residency_epoch(sim.asid)
            if sim._paging is not None
            else 0,
        )
        self.layer_idx = 0
        self.step_idx = 0
        self.step_counter = 0
        self.cycle = 0.0  # current layer's start cycle
        self.prev_comp_end = 0.0
        self.prev_prev_comp_end = 0.0
        self.mem_free = 0.0  # when the DMA issue port frees
        self.layer_results: List[LayerResult] = []
        self.va_trace: List[Tuple[int, int, int, str]] = []
        self.layer_compute = 0.0
        self.simulated_steps = 0
        self.done = not sim._schedules
        self._skip_empty_layers()

    def _close_layer(self) -> None:
        schedule = self.sim._schedules[self.layer_idx]
        layer_end = self.prev_comp_end
        self.layer_results.append(
            LayerResult(
                name=schedule.name,
                steps=len(schedule.steps),
                cycles=layer_end - self.cycle,
                compute_cycles=self.layer_compute,
                fetch_bytes=schedule.total_fetch_bytes,
                simulated_steps=self.simulated_steps,
            )
        )
        self.cycle = layer_end
        self.layer_compute = 0.0
        self.simulated_steps = 0
        self.step_idx = 0
        self.layer_idx += 1
        self.prev_comp_end = self.cycle
        self.prev_prev_comp_end = self.cycle
        self.mem_free = self.cycle
        if self.layer_idx >= len(self.sim._schedules):
            self.done = True

    def _skip_empty_layers(self) -> None:
        while not self.done and not self.sim._schedules[self.layer_idx].steps:
            self._close_layer()

    @property
    def clock(self) -> float:
        """Cycle at which this run's next step touches shared state.

        Tenants simulate on private clocks against shared walker and
        memory-channel occupancy, so clock-ordered arbiters service the
        laggard first to bound cross-tenant clock skew (see
        :class:`~repro.core.qos.WeightedQuantumArbiter`).
        """
        return max(self.mem_free, self.prev_prev_comp_end)

    def _sync_timing_epochs(self) -> None:
        """Drop cached timings measured under a stale regime.

        Two regimes stamp the cache: the shared MMU's contention epoch
        (tenant set / weights / policy state) and the paging tier's
        per-tenant residency epoch (which pages are local).  Converged
        timings are only valid while both stand still; when either moves
        the cache re-warms against the new regime.
        """
        sim = self.sim
        cache = self.timing_cache
        shared = sim._shared
        contention = (
            shared.contention_epoch if shared is not None else cache.epoch
        )
        paging = sim._paging
        residency = (
            paging.residency_epoch(sim.asid)
            if paging is not None
            else cache.residency_epoch
        )
        if cache.epoch != contention or cache.residency_epoch != residency:
            cache.invalidate(contention, residency)

    def advance(self) -> int:
        """Execute one tile step (fetch + compute bookkeeping).

        Returns the number of translation requests the step issued on the
        underlying MMU — the *cost* quantum-based arbiters debit (0 for
        compute-only or FAST-fidelity cached steps).  Only this run's
        pipeline advances during the call, so the MMU counter delta is
        attributable to this tenant even on a shared translation stack.
        """
        if self.done:
            raise RuntimeError("tenant already finished")
        sim = self.sim
        self._sync_timing_epochs()
        requests_before = sim.mmu.stats.requests
        step = sim._schedules[self.layer_idx].steps[self.step_idx]

        mem_start = max(self.mem_free, self.prev_prev_comp_end)
        mem_duration, issue_duration, simulated = sim._step_memory_phase(
            step, mem_start, self.timing_cache
        )
        if simulated:
            self.simulated_steps += 1
            if sim.trace_va:
                for fetch in step.fetches:
                    extents = fetch.extents()
                    lo = min(e.va for e in extents)
                    hi = max(e.end for e in extents)
                    self.va_trace.append((self.step_counter, lo, hi, fetch.tensor))
        mem_end = mem_start + mem_duration
        self.mem_free = mem_start + issue_duration

        compute_cycles = sim.compute_model.gemm_cycles(
            step.compute.m, step.compute.k, step.compute.n
        )
        comp_start = max(mem_end, self.prev_comp_end)
        self.layer_compute += compute_cycles
        self.prev_prev_comp_end = self.prev_comp_end
        self.prev_comp_end = comp_start + compute_cycles

        self.step_idx += 1
        self.step_counter += 1
        if self.step_idx >= len(sim._schedules[self.layer_idx].steps):
            self._close_layer()
            self._skip_empty_layers()
        return sim.mmu.stats.requests - requests_before

    def advance_quiet(self, limit: Optional[int] = None) -> int:
        """Execute up to ``limit`` consecutive *quiet* tile steps.

        A quiet step cannot touch shared state: it is compute-only, or
        its FAST-fidelity timing has converged so the memory phase is
        replayed from the cache.  The stretch is the closed form of the
        double-buffer recurrence — the same float operations
        :meth:`advance` performs, run in a tight loop against locals —
        and stops at the run's next *interaction point*: the first step
        that must simulate against the shared MMU/memory system (or
        completion).  Event-driven schedulers hoist these stretches out
        of their service loops; because quiet steps read and write only
        this run's private pipeline state, executing a stretch ahead of
        other tenants' turns is observationally identical to
        interleaving it (the bit-identity tests lock this in).

        Returns the number of steps executed (0 when the next step must
        interact, the run is finished, or fidelity is EXACT).

        Migration completions are interaction points: while the paging
        tier's fabric has a migration in flight past this run's clock,
        no stretch is hoisted (the next step simulates, observing the
        fabric/channel state the migration leaves behind).  An idle
        fabric — no tenant faulting — skips the check's cost entirely,
        so fault-free runs batch quiet stretches bit-identically to the
        pre-paging scheduler.
        """
        sim = self.sim
        if sim.fidelity is not Fidelity.FAST or self.done:
            return 0
        paging = sim._paging
        if paging is not None and paging.fabric.busy_beyond(self.clock):
            return 0
        self._sync_timing_epochs()
        converged = self.timing_cache.converged
        gemm_cycles = sim.compute_model.gemm_cycles
        schedules = sim._schedules
        executed = 0
        while limit is None or executed < limit:
            if self.done:
                break
            step = schedules[self.layer_idx].steps[self.step_idx]
            if step.fetches:
                timing = converged.get(step.signature)
                if timing is None:
                    break  # interaction point: this step must simulate
                mem_duration, issue_duration = timing
            else:
                mem_duration = 0.0
                issue_duration = 0.0
            mem_free = self.mem_free
            prev_prev = self.prev_prev_comp_end
            mem_start = mem_free if mem_free > prev_prev else prev_prev
            mem_end = mem_start + mem_duration
            self.mem_free = mem_start + issue_duration
            compute = step.compute
            compute_cycles = gemm_cycles(compute.m, compute.k, compute.n)
            prev_comp_end = self.prev_comp_end
            comp_start = mem_end if mem_end > prev_comp_end else prev_comp_end
            self.layer_compute += compute_cycles
            self.prev_prev_comp_end = prev_comp_end
            self.prev_comp_end = comp_start + compute_cycles
            self.step_idx += 1
            self.step_counter += 1
            executed += 1
            if self.step_idx >= len(schedules[self.layer_idx].steps):
                self._close_layer()
                self._skip_empty_layers()
        return executed


class MultiTenantSimulator:
    """Runs N tenant workloads against one shared translation stack.

    Each tenant owns a private address space (registered under its ASID on
    the shared :class:`~repro.core.mmu.SharedMMU`) and a private tile
    pipeline; the TLB, PTS/walker pool, PRMB capacity, path caches and
    memory bandwidth are shared, governed by the pluggable QoS layer
    (:mod:`repro.core.qos`):

    * ``qos`` selects the tenant share policy each shared structure
      consults — ``full_share`` (free-for-all, the default),
      ``static_partition`` (weight-proportional hard quotas) or
      ``weighted`` (work-conserving weight-proportional quotas).
    * ``arbitration`` selects the :class:`~repro.core.qos.Arbiter` that
      decides whose tile step the shared DMA front-end services next:
      ``round_robin`` (strict turns, one whole tile step each — the
      contention regime), ``priority`` (lower ASIDs run to completion
      first) or ``weighted_quantum`` (deficit round robin over
      weight-proportional translation-slot quanta).
    * ``weights`` (one positive float per tenant, default all-equal)
      feeds both the share policy's quotas and the quantum arbiter.
    * ``paging`` / ``memory_budgets`` enable the demand-paged memory
      tier (:mod:`repro.memory.tiering`): each tenant's tensors are
      reserved but unmapped, first touch faults and migrates the page
      over one shared :class:`~repro.memory.tiering.MigrationFabric`
      (slot quotas governed by the same share policy), and per-tenant
      local budgets force evictions through the ASID-tagged shootdown
      path.  ``memory_budgets`` is one byte budget per tenant; ``paging``
      a :class:`~repro.memory.tiering.TieringConfig` (defaults apply
      when only ``memory_budgets`` is given).

    The defaults (``full_share`` + ``round_robin``) are bit-identical to
    the pre-QoS engine.
    """

    def __init__(
        self,
        workloads: Sequence,
        mmu_config: MMUConfig,
        npu_config: Optional[NPUConfig] = None,
        arbitration: str = "round_robin",
        compute_model=None,
        fidelity: Fidelity = Fidelity.FAST,
        warmup: int = 4,
        memory_bytes: int = 64 * 1024**3,
        qos: Optional[str] = None,
        weights: Optional[Sequence[float]] = None,
        quantum: int = 2048,
        paging: Optional[TieringConfig] = None,
        memory_budgets: Optional[Sequence[int]] = None,
    ):
        if not workloads:
            raise ValueError("need at least one tenant workload")
        if arbitration not in ARBITRATION_POLICIES:
            raise ValueError(
                f"unknown arbitration policy {arbitration!r}; "
                f"choose from {', '.join(ARBITRATION_POLICIES)}"
            )
        if weights is not None:
            if len(weights) != len(workloads):
                raise ValueError(
                    f"got {len(weights)} weights for {len(workloads)} tenants; "
                    f"pass exactly one positive weight per tenant"
                )
            bad = [w for w in weights if w <= 0]
            if bad:
                raise ValueError(
                    f"tenant weights must all be positive, got {bad[0]}"
                )
        self.mmu_config = mmu_config
        self.npu_config = npu_config or NPUConfig()
        self.arbitration = arbitration
        self.qos = qos if qos is not None else mmu_config.qos
        self.weights = tuple(weights) if weights is not None else tuple(
            1.0 for _ in workloads
        )
        self.arbiter: Arbiter = make_arbiter(
            arbitration, weights=self.weights, quantum=quantum
        )
        self.shared = SharedMMU(
            mmu_config,
            MainMemory(self.npu_config.memory),
            share_policy=make_share_policy(self.qos),
        )
        self.paging: Optional[LocalMemoryTier] = None
        budgets: Sequence[Optional[int]] = [None] * len(workloads)
        if paging is not None or memory_budgets is not None:
            tier_cfg = paging if paging is not None else TieringConfig()
            if memory_budgets is not None:
                if len(memory_budgets) != len(workloads):
                    raise ValueError(
                        f"got {len(memory_budgets)} memory budgets for "
                        f"{len(workloads)} tenants; pass exactly one "
                        f"positive byte budget per tenant"
                    )
                bad = [b for b in memory_budgets if b <= 0]
                if bad:
                    raise ValueError(
                        f"tenant memory budgets must all be positive, "
                        f"got {bad[0]}"
                    )
                budgets = list(memory_budgets)
            else:
                budgets = [tier_cfg.default_budget_bytes] * len(workloads)
            # Deferred: repro.sparse imports this module at package level.
            from ..sparse.numa import nvlink_link

            fabric = MigrationFabric(
                nvlink_link(self.npu_config.interconnect),
                slots=tier_cfg.fabric_slots,
                policy=self.shared.share_policy,
            )
            self.paging = LocalMemoryTier(
                fabric,
                page_size=mmu_config.page_size,
                fault_overhead_cycles=tier_cfg.fault_overhead_cycles,
                eviction=tier_cfg.eviction,
            )
            self.shared.attach_paging(self.paging)
        self.tenants = [
            NPUSimulator(
                workload,
                mmu_config,
                self.npu_config,
                compute_model=compute_model,
                fidelity=fidelity,
                warmup=warmup,
                memory_bytes=memory_bytes,
                shared_mmu=self.shared,
                asid=asid,
                paging_tier=self.paging,
                memory_budget=budgets[asid],
            )
            for asid, workload in enumerate(workloads)
        ]
        for asid, weight in enumerate(self.weights):
            self.shared.set_tenant_weight(asid, weight)

    def run(self) -> MultiTenantResult:
        """Execute all tenants to completion under the arbitration policy.

        The arbiter hierarchy is event-driven (:class:`~repro.core.qos.Arbiter`):
        each tenant run advances to its next *interaction point* — a tile
        step that must simulate against the shared walker pool, PRMB,
        TLB quotas or memory channels — in one closed-form stretch
        (:meth:`_TenantRun.advance_quiet`), instead of being stepped one
        translation-slot quantum at a time; within a simulated burst the
        engine's batched paths bound their segments by the same
        interaction points.  Service order for the interacting steps is
        bit-identical to the historical quantum-by-quantum arbiters.
        """
        runs = [_TenantRun(tenant) for tenant in self.tenants]
        self.arbiter.run(runs)
        self.shared.mmu.drain()
        tenants = [
            TenantResult(
                asid=tenant.asid,
                workload=tenant.workload.name,
                total_cycles=run.cycle,
                layers=run.layer_results,
                usage=self.shared.usage[tenant.asid],
            )
            for tenant, run in zip(self.tenants, runs)
        ]
        return MultiTenantResult(
            mmu_name=self.mmu_config.name,
            arbitration=self.arbitration,
            tenants=tenants,
            makespan_cycles=max(t.total_cycles for t in tenants),
            mmu_summary=self.shared.mmu.summary(),
            qos=self.qos,
            weights=self.weights,
        )


def run_multi_tenant(
    workload_factory,
    mmu_config: MMUConfig,
    n_tenants: Optional[int] = None,
    npu_config: Optional[NPUConfig] = None,
    **kwargs,
) -> MultiTenantResult:
    """Run one tenant workload per context on a shared MMU.

    Two forms:

    * homogeneous — ``workload_factory`` is a zero-arg callable, invoked
      ``n_tenants`` times so each context gets a fresh workload instance
      backed by its own address space (the original serving scenario);
    * heterogeneous — ``workload_factory`` is a *sequence* of distinct
      workloads (or zero-arg factories, called once each), e.g. the
      CNN + RNN + recsys mixes of
      :func:`repro.workloads.registry.mix_factories`.  ``n_tenants``,
      when given, must match the sequence length.
    """
    if callable(workload_factory):
        if n_tenants is None:
            raise ValueError(
                "n_tenants is required when passing a single workload factory"
            )
        if n_tenants <= 0:
            raise ValueError("need at least one tenant")
        workloads = [workload_factory() for _ in range(n_tenants)]
    else:
        workloads = [
            item() if callable(item) else item for item in workload_factory
        ]
        if not workloads:
            raise ValueError("need at least one tenant workload")
        if n_tenants is not None and n_tenants != len(workloads):
            raise ValueError(
                f"n_tenants={n_tenants} does not match the "
                f"{len(workloads)} workloads passed; drop n_tenants or "
                f"pass exactly one workload per tenant"
            )
    sim = MultiTenantSimulator(workloads, mmu_config, npu_config, **kwargs)
    return sim.run()


def run_workload(
    workload,
    mmu_config: MMUConfig,
    npu_config: Optional[NPUConfig] = None,
    **kwargs,
) -> RunResult:
    """One-call convenience wrapper around :class:`NPUSimulator`."""
    return NPUSimulator(workload, mmu_config, npu_config, **kwargs).run()


def normalized_vs_oracle(
    workload_factory,
    mmu_config: MMUConfig,
    npu_config: Optional[NPUConfig] = None,
    **kwargs,
) -> Tuple[float, RunResult, RunResult]:
    """Run a workload under ``mmu_config`` and under the oracle; return
    (normalized performance, oracle result, candidate result).

    ``workload_factory`` is called twice (once per run) so each simulator
    gets a fresh workload/address space.
    """
    oracle = run_workload(
        workload_factory(), oracle_config(mmu_config.page_size), npu_config, **kwargs
    )
    candidate = run_workload(workload_factory(), mmu_config, npu_config, **kwargs)
    return normalized_performance(oracle, candidate), oracle, candidate
