"""NPU and system configuration (Table I).

All defaults reproduce the paper's baseline: a Google TPU-style 128×128
systolic array at 1 GHz, scratchpad-based on-chip memory with
double-buffering, an 8-channel 600 GB/s local memory with 100-cycle access
latency, and the system-interconnect parameters used by the NUMA case study
(Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..memory.address import PAGE_SIZE_4K
from ..memory.dram import MemoryConfig

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class InterconnectConfig:
    """System-interconnect parameters (Table I, bottom block).

    Bandwidths are converted to bytes/cycle at the NPU's 1 GHz clock:
    16 GB/s PCIe ⇒ 16 B/cycle, 160 GB/s NVLINK-class ⇒ 160 B/cycle.
    """

    numa_latency_cycles: int = 150
    cpu_npu_bandwidth_bytes_per_cycle: float = 16.0
    npu_npu_bandwidth_bytes_per_cycle: float = 160.0

    def __post_init__(self) -> None:
        if self.numa_latency_cycles < 0:
            raise ValueError("NUMA latency cannot be negative")
        if self.cpu_npu_bandwidth_bytes_per_cycle <= 0:
            raise ValueError("CPU-NPU bandwidth must be positive")
        if self.npu_npu_bandwidth_bytes_per_cycle <= 0:
            raise ValueError("NPU-NPU bandwidth must be positive")


@dataclass(frozen=True)
class NPUConfig:
    """Baseline NPU architecture (Table I, top blocks)."""

    #: Systolic array dimensions (rows x cols).
    array_rows: int = 128
    array_cols: int = 128
    #: Operating frequency; all latencies in this codebase are cycles at
    #: this clock, so the frequency only matters when converting to seconds.
    frequency_hz: float = 1e9
    #: Scratchpad capacities.  Table I: 15 MB for activations, 10 MB for
    #: weights; both double-buffered, so per-tile budgets are half.
    ia_spm_bytes: int = 15 * MB
    w_spm_bytes: int = 10 * MB
    double_buffered: bool = True
    #: Bytes per tensor element (fp32 to match the CNN/RNN suites).
    elem_bytes: int = 4
    #: Maximum linearized DMA transaction size.  A multi-MB tile therefore
    #: decomposes into thousands of transactions (Section III-C), and a
    #: 4 KB page sees a run of ~16 back-to-back same-page translations —
    #: the intra-tile burst locality the PRMB harvests (Figure 10).
    dma_transaction_bytes: int = 256
    #: Local memory system.
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: System interconnect for the multi-NPU / NUMA experiments.
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    #: Page size used when sizing per-tile translation work.
    page_size: int = PAGE_SIZE_4K

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        if self.ia_spm_bytes <= 0 or self.w_spm_bytes <= 0:
            raise ValueError("scratchpad sizes must be positive")
        if self.elem_bytes <= 0:
            raise ValueError("element size must be positive")
        if self.dma_transaction_bytes <= 0:
            raise ValueError("DMA transaction size must be positive")

    @property
    def ia_tile_budget(self) -> int:
        """Bytes available for one in-flight IA tile."""
        return self.ia_spm_bytes // 2 if self.double_buffered else self.ia_spm_bytes

    @property
    def w_tile_budget(self) -> int:
        """Bytes available for one in-flight weight tile."""
        return self.w_spm_bytes // 2 if self.double_buffered else self.w_spm_bytes

    @property
    def pe_count(self) -> int:
        """Total processing elements in the array."""
        return self.array_rows * self.array_cols

    def scaled(self, factor: float) -> "NPUConfig":
        """A proportionally smaller/larger NPU (sensitivity studies)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            ia_spm_bytes=max(1, int(self.ia_spm_bytes * factor)),
            w_spm_bytes=max(1, int(self.w_spm_bytes * factor)),
        )


#: The Table I design point, importable everywhere.
TABLE1 = NPUConfig()
