"""Scratchpad-memory accounting.

NPUs "utilize most of its on-chip SRAM as a scratchpad memory" and
double-buffer it so tile *n+1*'s memory phase hides behind tile *n*'s
compute phase (Section II-A, Figure 3).  The SPM needs no timing model —
its whole point is that PE↔SPM accesses are deterministic and never
translated — but the tiler must respect its capacity, and the simulator
must know the double-buffer budget.  This module is that bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass


class SPMCapacityError(ValueError):
    """A tile was planned that exceeds its scratchpad partition."""


@dataclass(frozen=True)
class Scratchpad:
    """One SPM partition (the paper splits IA and W partitions)."""

    name: str
    capacity_bytes: int
    double_buffered: bool = True

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise SPMCapacityError(
                f"SPM {self.name!r} needs positive capacity, got {self.capacity_bytes}"
            )

    @property
    def tile_budget(self) -> int:
        """Bytes one in-flight tile may occupy.

        Double buffering halves the usable capacity: one buffer holds the
        tile being computed on while the other receives the next tile.
        """
        return self.capacity_bytes // 2 if self.double_buffered else self.capacity_bytes

    def check_tile(self, nbytes: int) -> None:
        """Raise :class:`SPMCapacityError` when a tile exceeds the budget."""
        if nbytes > self.tile_budget:
            raise SPMCapacityError(
                f"tile of {nbytes} bytes exceeds SPM {self.name!r} budget "
                f"of {self.tile_budget} bytes"
            )

    def fits(self, nbytes: int) -> bool:
        """True when a tile of ``nbytes`` fits the per-tile budget."""
        return nbytes <= self.tile_budget
