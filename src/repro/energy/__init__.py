"""Energy/area substrate: 45 nm event energies, CACTI-style SRAM estimates,
and per-run translation-energy accounting (Sections IV-C/D/E, Figure 12b).
"""

from .accounting import EnergyBreakdown, energy_ratio, translation_energy
from .cacti import NeuMMUOverhead, SramEstimate, estimate_sram, neummu_overhead
from .tables import DEFAULT_ENERGY_TABLE, EnergyTable

__all__ = [
    "DEFAULT_ENERGY_TABLE",
    "EnergyBreakdown",
    "EnergyTable",
    "NeuMMUOverhead",
    "SramEstimate",
    "energy_ratio",
    "estimate_sram",
    "neummu_overhead",
    "translation_energy",
]
