"""Translation-energy accounting (Figures 12b, Section IV-C/D claims).

Energy of the translation path is assembled from the activity counters a
run produces (:class:`repro.core.stats.RunSummary`):

* every page-table-walk memory reference costs one DRAM access — the
  dominant term, and the one PRMB (fewer redundant walks) and TPreg
  (fewer levels per walk) attack;
* every translation request probes the TLB and, on a miss, the PTS;
* merges charge a PRMB write (+ replay read);
* walks charge a TPreg or path-cache probe.

All reported results are *ratios* between design points, so only relative
event energies matter (see :mod:`repro.energy.tables`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stats import RunSummary
from .tables import DEFAULT_ENERGY_TABLE, EnergyTable


@dataclass(frozen=True)
class EnergyBreakdown:
    """Translation-path energy of one run, picojoules per component."""

    walk_dram_pj: float
    tlb_pj: float
    pts_pj: float
    prmb_pj: float
    path_cache_pj: float

    @property
    def total_pj(self) -> float:
        return (
            self.walk_dram_pj
            + self.tlb_pj
            + self.pts_pj
            + self.prmb_pj
            + self.path_cache_pj
        )

    @property
    def total_uj(self) -> float:
        """Total in microjoules (readability in reports)."""
        return self.total_pj / 1e6


def translation_energy(
    summary: RunSummary,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
    uses_tpreg: bool = False,
) -> EnergyBreakdown:
    """Energy of the translation activity captured in ``summary``."""
    tlb_misses = summary.requests - summary.tlb_hits
    probe_pj = table.tpreg_access_pj if uses_tpreg else table.path_cache_access_pj
    return EnergyBreakdown(
        walk_dram_pj=summary.walk_level_accesses * table.dram_access_pj,
        tlb_pj=summary.requests * table.tlb_access_pj,
        pts_pj=tlb_misses * table.pts_access_pj,
        # One write on merge plus one read at drain/replay.
        prmb_pj=summary.merges * 2 * table.prmb_access_pj,
        path_cache_pj=summary.walks * probe_pj,
    )


def energy_ratio(baseline: EnergyBreakdown, candidate: EnergyBreakdown) -> float:
    """How many times more energy ``baseline`` burns than ``candidate``.

    The paper's headline: NeuMMU consumes 16.3× less translation energy
    than the baseline IOMMU.
    """
    if candidate.total_pj <= 0:
        raise ValueError("candidate energy must be positive")
    return baseline.total_pj / candidate.total_pj
