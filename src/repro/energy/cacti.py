"""CACTI-flavoured SRAM area/energy/leakage estimator (Section IV-E).

The paper sizes NeuMMU's added structures with CACTI 6.5: "All these amount
to an area of 0.10 mm² under 32 nm with 13.65 mW of leakage power".  A full
CACTI is out of scope; this module provides a first-order analytical model
with the scaling behaviour that matters — area and access energy grow
roughly linearly with capacity for small SRAM arrays, with a fixed
peripheral overhead — calibrated so the paper's total (≈36.75 KB of state
⇒ ≈0.10 mm², ≈13.65 mW at 32 nm) is recovered.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Calibration anchors at 32 nm, derived from the paper's Section IV-E
#: figure: 36.75 KB of SRAM state ⇒ 0.10 mm² and 13.65 mW leakage.
_MM2_PER_KB_32NM = 0.10 / 36.75
_LEAKAGE_MW_PER_KB_32NM = 13.65 / 36.75

#: Dynamic read energy scale for small arrays (≈10 pJ at 8 KB ⇒
#: ≈1.25 pJ/KB) with a fixed sense/decode floor.
_PJ_PER_KB = 1.25
_PJ_FLOOR = 0.4


@dataclass(frozen=True)
class SramEstimate:
    """First-order SRAM macro estimate."""

    capacity_bytes: int
    area_mm2: float
    leakage_mw: float
    read_energy_pj: float

    def __add__(self, other: "SramEstimate") -> "SramEstimate":
        return SramEstimate(
            capacity_bytes=self.capacity_bytes + other.capacity_bytes,
            area_mm2=self.area_mm2 + other.area_mm2,
            leakage_mw=self.leakage_mw + other.leakage_mw,
            read_energy_pj=self.read_energy_pj + other.read_energy_pj,
        )


def estimate_sram(capacity_bytes: int, node_nm: int = 32) -> SramEstimate:
    """Estimate a small SRAM array at the given process node.

    Area/leakage scale quadratically/linearly with feature size relative to
    the 32 nm calibration point (the usual first-order Dennard estimate).
    """
    if capacity_bytes <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bytes}")
    if node_nm <= 0:
        raise ValueError(f"node must be positive, got {node_nm}")
    kb = capacity_bytes / 1024.0
    area_scale = (node_nm / 32.0) ** 2
    leak_scale = node_nm / 32.0
    return SramEstimate(
        capacity_bytes=capacity_bytes,
        area_mm2=kb * _MM2_PER_KB_32NM * area_scale,
        leakage_mw=kb * _LEAKAGE_MW_PER_KB_32NM * leak_scale,
        read_energy_pj=_PJ_FLOOR + kb * _PJ_PER_KB,
    )


@dataclass(frozen=True)
class NeuMMUOverhead:
    """Section IV-E's implementation-overhead breakdown."""

    prmb: SramEstimate
    tpreg: SramEstimate
    pts: SramEstimate

    @property
    def total(self) -> SramEstimate:
        return self.prmb + self.tpreg + self.pts


def neummu_overhead(
    n_walkers: int = 128,
    prmb_slots: int = 32,
    prmb_slot_bytes: int = 8,
    tpreg_bytes: int = 16,
    pts_entry_bytes: int = 6,
    node_nm: int = 32,
) -> NeuMMUOverhead:
    """Reproduce the paper's overhead arithmetic.

    Defaults give exactly the paper's numbers: 8 B × 32 slots × 128 PTWs =
    32 KB of PRMB, 16 B × 128 = 2 KB of TPreg, 6 B × 128 = 768 B of PTS.
    """
    prmb_bytes = prmb_slot_bytes * prmb_slots * n_walkers
    tpreg_total = tpreg_bytes * n_walkers
    pts_total = pts_entry_bytes * n_walkers
    return NeuMMUOverhead(
        prmb=estimate_sram(max(1, prmb_bytes), node_nm),
        tpreg=estimate_sram(max(1, tpreg_total), node_nm),
        pts=estimate_sram(max(1, pts_total), node_nm),
    )
