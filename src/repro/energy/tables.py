"""45 nm energy table (Horowitz-style) — Section IV's energy methodology.

The paper derives translation energy from "the energy table for a 45 nm
CMOS process [Horowitz, ISSCC'14]" for DRAM accesses plus CACTI for SRAM
structures.  The well-known figures from that table: a DRAM access costs
orders of magnitude more than small-SRAM reads (≈1.3–2.6 nJ per 64-bit
DRAM access vs ≈10 pJ for an 8 KB SRAM read), which is why eliminating
redundant page-table-walk memory references (PRMB) and skipping walk
levels (TPreg) dominate the MMU's energy story (Figures 12b, §IV-C/D).

Absolute joules are irrelevant to the reproduction — every paper result is
a normalized ratio — but the *relative* magnitudes below match the 45 nm
table so those ratios are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Energy per DRAM access (one page-table-entry read burst), picojoules.
DRAM_ACCESS_PJ = 2600.0

#: Energy per 8 KB SRAM access, picojoules (Horowitz: ~10 pJ).
SRAM_8KB_ACCESS_PJ = 10.0

#: Energy per 32 KB cache access, picojoules (Horowitz: ~20 pJ).
SRAM_32KB_ACCESS_PJ = 20.0

#: Energy per 32-bit integer add — the table's scale anchor (~0.1 pJ).
INT_ADD_PJ = 0.1


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energies (picojoules) used by the accounting model."""

    dram_access_pj: float = DRAM_ACCESS_PJ
    tlb_access_pj: float = SRAM_8KB_ACCESS_PJ
    pts_access_pj: float = 2.0  # tiny fully-associative CAM (≤ 768 B)
    prmb_access_pj: float = 4.0  # 8-byte slots, ≤ 32 KB total (Section IV-E)
    tpreg_access_pj: float = 0.5  # a 16-byte register
    path_cache_access_pj: float = 4.0  # small shared TPC/UPTC

    def __post_init__(self) -> None:
        fields = (
            self.dram_access_pj,
            self.tlb_access_pj,
            self.pts_access_pj,
            self.prmb_access_pj,
            self.tpreg_access_pj,
            self.path_cache_access_pj,
        )
        if any(v < 0 for v in fields):
            raise ValueError("energies cannot be negative")


#: Default table used across the benchmarks.
DEFAULT_ENERGY_TABLE = EnergyTable()
