"""NeuMMU reproduction (ASPLOS 2020).

A from-scratch Python implementation of *NeuMMU: Architectural Support for
Efficient Address Translations in Neural Processing Units* (Hyun, Kwon,
Choi, Kim, Rhu — KAIST), including every substrate the paper's evaluation
depends on:

* an x86-64-style virtual-memory system (:mod:`repro.memory`),
* the MMU design space — oracle, baseline IOMMU, and NeuMMU with PRMB,
  a throughput-centric walker pool, and TPreg (:mod:`repro.core`),
* a TPU-style NPU simulator with scratchpad double-buffering and a
  translation-burst-faithful DMA model (:mod:`repro.npu`),
* the dense CNN/RNN and sparse NCF/DLRM workload zoo
  (:mod:`repro.workloads`),
* the multi-NPU NUMA / demand-paging case study (:mod:`repro.sparse`),
* energy/area models (:mod:`repro.energy`),
* and one experiment entry point per paper table/figure
  (:mod:`repro.analysis`).

Quickstart::

    from repro.core import neummu_config
    from repro.npu import normalized_vs_oracle
    from repro.workloads import alexnet

    perf, _, _ = normalized_vs_oracle(lambda: alexnet(batch=1),
                                      neummu_config())
    print(f"NeuMMU achieves {perf:.1%} of an oracular MMU")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
