"""Command-line front end: ``neummu`` / ``python -m repro``.

Examples::

    neummu list                      # available experiments and workloads
    neummu run fig8                  # reproduce Figure 8
    neummu run fig8 --batches 1      # trimmed batch grid
    neummu run all --out results/    # the full evaluation
    neummu compare CNN-1 --batch 4   # oracle vs IOMMU vs NeuMMU, one net
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from . import analysis
from .analysis.figures import FigureResult
from .core.mmu import (
    ENGINE_MODES,
    baseline_iommu_config,
    neummu_config,
    oracle_config,
)
from .core.qos import ARBITRATION_POLICIES, SHARE_POLICIES
from .npu.simulator import NPUSimulator
from .workloads.registry import DENSE_WORKLOADS, dense_workload

#: experiment name -> zero/one-arg callable returning a FigureResult.
EXPERIMENTS: Dict[str, Callable[..., FigureResult]] = {
    "table1": analysis.table1_config,
    "fig6": analysis.fig6_page_divergence,
    "fig7": analysis.fig7_translation_bursts,
    "fig8": analysis.fig8_baseline_iommu,
    "fig10": analysis.fig10_prmb_sweep,
    "fig11": analysis.fig11_ptw_sweep,
    "fig12a": analysis.fig12a_ptw_no_prmb,
    "fig12b": analysis.fig12b_energy_sweep,
    "fig13": analysis.fig13_tpreg_hit_rates,
    "fig14": analysis.fig14_va_trace,
    "fig15": analysis.fig15_numa,
    "fig16": analysis.fig16_demand_paging,
    "tpc_vs_uptc": analysis.tpc_vs_uptc,
    "headline": analysis.headline_claims,
    "large_pages": analysis.large_pages_dense,
    "tenants": analysis.multi_tenant_contention,
    "fairness": analysis.fairness,
    "paging_tenants": analysis.paging_tenants,
    "spatial": analysis.spatial_npu,
    "prefetch": analysis.prefetch_ablation,
    "mltlb": analysis.multilevel_tlb_ablation,
    "sens_tlb": analysis.sensitivity_tlb,
    "sens_batch": analysis.sensitivity_large_batch,
    "overhead": analysis.overhead_area,
}

def _accepting(keyword: str) -> frozenset:
    """Experiment names whose function accepts ``keyword``.

    Derived from the signatures so newly added experiments cannot drift
    out of sync with the CLI's capability lists.
    """
    return frozenset(
        name
        for name, func in EXPERIMENTS.items()
        if keyword in inspect.signature(func).parameters
    )


#: Experiments that accept a ``batches`` keyword.
_BATCHED = _accepting("batches")

#: Experiments that accept a ``runner`` keyword (and therefore honour
#: ``--jobs``/``--cache-dir``).  ``spatial`` builds its own runner with a
#: spatial-array compute model, so it naturally stays absent.
_RUNNER_AWARE = _accepting("runner")

#: Experiments that accept a ``tenants`` keyword (the shared-MMU study).
_TENANTED = _accepting("tenants")

#: Experiments that accept the QoS keywords (shared-MMU studies).
_ARBITRATED = _accepting("arbitration")
_QOS_AWARE = _accepting("qos")
_WEIGHTED = _accepting("weights")

#: Experiments that accept a heterogeneous tenant ``mix`` spec.
_MIXED = _accepting("mix")


def _validate_tenant_flags(args, errors: List[str]) -> None:
    """Collect actionable problems with the multi-tenant/QoS flags."""
    tenants = getattr(args, "tenants", None)
    weights = getattr(args, "weights", None)
    arbitration = getattr(args, "arbitration", None)
    qos = getattr(args, "qos", None)
    mix = getattr(args, "mix", None)
    mix_size: Optional[int] = None
    if tenants is not None and tenants <= 0:
        errors.append(
            f"--tenants must be a positive tenant count, got {tenants}"
        )
    if mix is not None:
        from .workloads.registry import mix_factories

        try:
            mix_size = len(mix_factories(mix))
        except ValueError as exc:
            errors.append(str(exc))
        if mix_size is not None and tenants is not None and tenants != mix_size:
            errors.append(
                f"--tenants {tenants} does not match the {mix_size}-tenant "
                f"mix {mix!r}; drop --tenants (the mix sets the count) or "
                f"make them agree"
            )
    if arbitration is not None and arbitration not in ARBITRATION_POLICIES:
        errors.append(
            f"unknown arbitration policy {arbitration!r}; "
            f"choose from {', '.join(ARBITRATION_POLICIES)}"
        )
    if qos is not None and qos not in SHARE_POLICIES:
        errors.append(
            f"unknown QoS share policy {qos!r}; "
            f"choose from {', '.join(SHARE_POLICIES)}"
        )
    if weights is not None:
        bad = [w for w in weights if w <= 0]
        if bad:
            errors.append(
                f"--weights must all be positive, got {bad[0]:g}"
            )
        expected = tenants if tenants is not None else mix_size
        if expected is None:
            errors.append(
                "--weights requires --tenants (or --mix) so each weight "
                "maps to a tenant"
            )
        elif expected > 0 and len(weights) != expected:
            errors.append(
                f"got {len(weights)} weights for {expected} tenants; "
                f"pass exactly one weight per tenant"
            )


def _validate_engine_flag(args, errors: List[str]) -> None:
    """Reject unknown ``--engine`` values with the valid choices spelled out."""
    engine = getattr(args, "engine", None)
    if engine is not None and engine not in ENGINE_MODES:
        errors.append(
            f"unknown engine mode {engine!r}; choose from "
            f"{', '.join(sorted(ENGINE_MODES))} ('columnar' is the "
            f"structure-of-arrays fast path, 'reference' the bit-identical "
            f"per-object golden path)"
        )


def _apply_engine_flag(args) -> None:
    """Thread a validated ``--engine`` choice into config construction.

    ``MMUConfig.engine_mode`` defaults from the ``NEUMMU_ENGINE``
    environment variable, so setting it here covers every config the
    command builds — including ones constructed deep inside experiment
    functions and worker processes (the env propagates to them).
    """
    engine = getattr(args, "engine", None)
    if engine is not None:
        os.environ["NEUMMU_ENGINE"] = engine


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    """``--engine``: select the translation engine's data-path."""
    parser.add_argument(
        "--engine",
        default=None,
        help="translation-engine data path: 'columnar' (structure-of-arrays "
        "fast path, the default) or 'reference' (per-object golden path; "
        "both produce bit-identical figures)",
    )


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    """``--profile``: wrap the command in cProfile (perf-PR evidence)."""
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative hot spots "
        "after the command finishes",
    )


def _add_qos_flags(parser: argparse.ArgumentParser) -> None:
    """The shared-MMU QoS flags, identical on ``run`` and ``compare``."""
    parser.add_argument(
        "--arbitration",
        default=None,
        help=f"shared-MMU arbitration policy ({', '.join(ARBITRATION_POLICIES)})",
    )
    parser.add_argument(
        "--qos",
        default=None,
        help=f"tenant share policy for shared structures "
        f"({', '.join(SHARE_POLICIES)})",
    )
    parser.add_argument(
        "--weights",
        type=float,
        nargs="+",
        default=None,
        help="per-tenant share weights (one positive float per tenant)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="neummu",
        description="NeuMMU (ASPLOS 2020) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and workloads")

    run = sub.add_parser("run", help="reproduce one experiment (or 'all')")
    run.add_argument("experiment", help="experiment name or 'all'")
    run.add_argument(
        "--batches",
        type=int,
        nargs="+",
        default=None,
        help="batch sizes for batched experiments (default: the paper's grid)",
    )
    run.add_argument(
        "--out", type=Path, default=None, help="directory to save rendered tables"
    )
    run.add_argument(
        "--chart", action="store_true", help="also render an ASCII bar chart"
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep experiments (0 = all CPUs)",
    )
    run.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for the on-disk simulation-result cache",
    )
    run.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="tenant count for the multi-tenant contention experiments",
    )
    run.add_argument(
        "--mix",
        default=None,
        help="heterogeneous tenant mix for the shared-MMU experiments, "
        "comma-separated registry names or aliases "
        "(e.g. cnn,rnn,recsys)",
    )
    _add_qos_flags(run)
    _add_engine_flag(run)
    _add_profile_flag(run)

    compare = sub.add_parser(
        "compare", help="oracle vs IOMMU vs NeuMMU on one workload"
    )
    compare.add_argument("workload", choices=sorted(DENSE_WORKLOADS))
    compare.add_argument("--batch", type=int, default=1)
    compare.add_argument(
        "--tenants",
        type=int,
        default=1,
        help="also run N copies of the workload on one shared MMU and "
        "report per-tenant contention statistics",
    )
    _add_qos_flags(compare)
    _add_engine_flag(compare)
    _add_profile_flag(compare)

    report = sub.add_parser(
        "report", help="run the headline experiments and emit a Markdown report"
    )
    report.add_argument(
        "--out", type=Path, default=Path("reproduction_report.md"),
        help="output Markdown path",
    )
    report.add_argument(
        "--batches", type=int, nargs="+", default=[1],
        help="batch grid for the underlying experiments",
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep experiments (0 = all CPUs)",
    )
    report.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for the on-disk simulation-result cache",
    )
    _add_profile_flag(report)

    lint = sub.add_parser(
        "lint",
        help="run the simlint determinism/layering static-analysis pass",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the src/ tree)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULE[,RULE...]",
        help="run only these rules",
    )
    lint.add_argument(
        "--ignore", default=None, metavar="RULE[,RULE...]",
        help="skip these rules",
    )
    lint.add_argument(
        "--severity-threshold", choices=("warning", "error"), default=None,
        help="findings at or above this severity fail the run "
             "(default: warning, i.e. any finding fails)",
    )
    return parser


def _run_experiment(
    name: str,
    batches: Optional[Sequence[int]],
    out_dir: Optional[Path],
    chart: bool = False,
    runner=None,
    tenants: Optional[int] = None,
    arbitration: Optional[str] = None,
    qos: Optional[str] = None,
    weights: Optional[Sequence[float]] = None,
    mix: Optional[str] = None,
) -> FigureResult:
    func = EXPERIMENTS[name]
    kwargs = {}
    if batches is not None and name in _BATCHED:
        kwargs["batches"] = tuple(batches)
    if runner is not None and name in _RUNNER_AWARE:
        kwargs["runner"] = runner
    if tenants is not None and name in _TENANTED:
        kwargs["tenants"] = tenants
    if mix is not None and name in _MIXED:
        kwargs["mix"] = mix
    if arbitration is not None and name in _ARBITRATED:
        kwargs["arbitration"] = arbitration
    if qos is not None and name in _QOS_AWARE:
        kwargs["qos"] = qos
    if weights is not None and name in _WEIGHTED:
        kwargs["weights"] = tuple(weights)
    started = time.time()
    result = func(**kwargs)
    elapsed = time.time() - started
    text = result.render()
    if chart:
        from .analysis.ascii_chart import best_chart

        try:
            text += "\n\n" + best_chart(result)
        except ValueError:
            pass  # nothing numeric to chart
    print(text)
    print(f"[{name} completed in {elapsed:.1f}s]\n")
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return result


def _cmd_list() -> int:
    print("experiments:")
    for name in EXPERIMENTS:
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:12s} {doc}")
    print("\ndense workloads:")
    for name, factory in DENSE_WORKLOADS.items():
        print(f"  {name:8s} {factory(1).name.rsplit('_', 1)[0]}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment == "all":
        names: List[str] = list(EXPERIMENTS)
    else:
        if args.experiment not in EXPERIMENTS:
            print(
                f"unknown experiment {args.experiment!r}; "
                f"choose from {', '.join(EXPERIMENTS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        names = [args.experiment]
    errors: List[str] = []
    _validate_tenant_flags(args, errors)
    _validate_engine_flag(args, errors)
    if len(names) == 1:
        # A single named experiment must not silently drop flags it does
        # not accept ("run all" applies each flag where it fits).
        checks = (
            ("--tenants", args.tenants, _TENANTED),
            ("--mix", args.mix, _MIXED),
            ("--arbitration", args.arbitration, _ARBITRATED),
            ("--qos", args.qos, _QOS_AWARE),
            ("--weights", args.weights, _WEIGHTED),
        )
        ignored = [
            flag for flag, value, accepting in checks
            if value is not None and names[0] not in accepting
        ]
        if ignored:
            errors.append(
                f"{', '.join(ignored)} have no effect on experiment "
                f"{names[0]!r}; drop them or pick an experiment that "
                f"accepts them"
            )
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 2
    _apply_engine_flag(args)
    runner = None
    if args.jobs != 1 or args.cache_dir is not None:
        from .analysis.runner import ExperimentRunner

        # One shared runner also shares the oracle cache across experiments.
        runner = ExperimentRunner(jobs=args.jobs, cache_dir=args.cache_dir)
    for name in names:
        _run_experiment(
            name,
            args.batches,
            args.out,
            chart=args.chart,
            runner=runner,
            tenants=args.tenants,
            arbitration=args.arbitration,
            qos=args.qos,
            weights=args.weights,
            mix=args.mix,
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    errors: List[str] = []
    _validate_tenant_flags(args, errors)
    _validate_engine_flag(args, errors)
    if args.tenants <= 1 and any(
        flag is not None for flag in (args.qos, args.arbitration, args.weights)
    ):
        errors.append(
            "--qos/--arbitration/--weights only affect the shared-MMU run; "
            "pass --tenants N (N > 1) to enable it"
        )
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 2
    _apply_engine_flag(args)
    factory = lambda: dense_workload(args.workload, args.batch)
    oracle = NPUSimulator(factory(), oracle_config()).run()
    print(f"{args.workload} b{args.batch:02d}:")
    print(f"  oracle : {oracle.total_cycles:14,.0f} cycles (1.000)")
    isolated = {}
    for config in (baseline_iommu_config(), neummu_config()):
        result = NPUSimulator(factory(), config).run()
        isolated[config.name] = result
        norm = oracle.total_cycles / result.total_cycles
        summary = result.mmu_summary
        print(
            f"  {config.name:7s}: {result.total_cycles:14,.0f} cycles "
            f"({norm:.3f})  walks={summary.walks:,} merges={summary.merges:,} "
            f"tlb_hit={summary.tlb_hit_rate:.2f}"
        )
    if args.tenants > 1:
        from .npu.simulator import run_multi_tenant

        arbitration = args.arbitration or "round_robin"
        qos = args.qos or "full_share"
        if arbitration == "round_robin" and qos == "full_share":
            regime = "round-robin arbitration"
        else:
            regime = f"{arbitration} arbitration, {qos} QoS"
        print(f"\nshared MMU, {args.tenants} tenants ({regime}):")
        for config in (baseline_iommu_config(), neummu_config()):
            iso_cycles = isolated[config.name].total_cycles
            shared = run_multi_tenant(
                factory,
                config,
                args.tenants,
                arbitration=arbitration,
                qos=qos,
                weights=args.weights,
            )
            for tenant in shared.tenants:
                usage = tenant.usage
                slowdown = tenant.total_cycles / iso_cycles
                print(
                    f"  {config.name:7s}/t{tenant.asid}: "
                    f"{tenant.total_cycles:14,.0f} cycles "
                    f"({slowdown:.3f}x isolated)  walks={usage.walks:,} "
                    f"merges={usage.merges:,} stall={usage.stall_cycles:,.0f}"
                )
            print(
                f"  {config.name:7s} makespan {shared.makespan_cycles:,.0f} "
                f"cycles vs {iso_cycles:,.0f} isolated"
            )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import write_report

    experiments = EXPERIMENTS
    if args.jobs != 1 or args.cache_dir is not None:
        import functools

        from .analysis.runner import ExperimentRunner

        runner = ExperimentRunner(jobs=args.jobs, cache_dir=args.cache_dir)
        experiments = {
            name: (
                functools.partial(func, runner=runner)
                if name in _RUNNER_AWARE
                else func
            )
            for name, func in EXPERIMENTS.items()
        }
    path = write_report(args.out, experiments, batches=tuple(args.batches))
    print(f"report written to {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """``neummu lint``: the simlint pass (see tools/simlint/).

    ``tools`` lives at the repository root, outside the installed
    package, so fall back to inserting the repo root on ``sys.path``
    when running from a source checkout.
    """
    try:
        from tools.simlint import main as simlint_main
    except ImportError:
        repo_root = Path(__file__).resolve().parents[2]
        if not (repo_root / "tools" / "simlint").is_dir():
            print(
                "neummu lint needs the tools/simlint package (run from a "
                "source checkout)",
                file=sys.stderr,
            )
            return 2
        sys.path.insert(0, str(repo_root))
        from tools.simlint import main as simlint_main

    argv: List[str] = list(args.paths)
    if not argv:
        argv = [str(Path(__file__).resolve().parents[1])]
    if args.list_rules:
        argv.append("--list-rules")
    if args.select is not None:
        argv.extend(["--select", args.select])
    if args.ignore is not None:
        argv.extend(["--ignore", args.ignore])
    if args.severity_threshold is not None:
        argv.extend(["--severity-threshold", args.severity_threshold])
    return simlint_main(argv)


def _profiled(handler, args) -> int:
    """Run ``handler(args)`` under cProfile; print the top-20 hot spots.

    Gives perf PRs concrete evidence to cite (``neummu run fairness
    --profile``) instead of guessing where time goes.

    With ``--jobs`` ≠ 1 the simulations run in worker processes the
    parent's profiler cannot see, so the workers are told (via
    ``NEUMMU_PROFILE_DIR``) to dump one ``.pstats`` file per simulated
    grid point and the dumps are folded into the printed table — the
    aggregate covers parent *and* children.  A pre-set
    ``NEUMMU_PROFILE_DIR`` is respected (dumps land there, left on disk
    for manual ``pstats`` inspection, and still join the table).
    """
    import cProfile
    import pstats
    import tempfile

    jobs = getattr(args, "jobs", 1)
    worker_dir = os.environ.get("NEUMMU_PROFILE_DIR")
    made_dir = False
    if jobs != 1 and worker_dir is None:
        worker_dir = tempfile.mkdtemp(prefix="neummu-profile-")
        os.environ["NEUMMU_PROFILE_DIR"] = worker_dir
        made_dir = True

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        code = handler(args)
    finally:
        profiler.disable()
        print("\n--- cProfile: top 20 by cumulative time ---")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        if made_dir:
            del os.environ["NEUMMU_PROFILE_DIR"]
        if worker_dir is not None:
            dumps = sorted(Path(worker_dir).glob("worker-*.pstats"))
            for dump in dumps:
                stats.add(str(dump))
            if dumps:
                print(
                    f"(aggregated {len(dumps)} worker profile dump(s) "
                    f"from {worker_dir})"
                )
        stats.sort_stats("cumulative").print_stats(20)
        from .core.stats import BURN_DOWN, MISS_WINDOW

        counters = BURN_DOWN.snapshot()
        print("--- quota burn-down planner (NEUMMU_QUOTA_BATCH) ---")
        if any(counters.values()):
            for name, value in counters.items():
                print(f"{name:>24}: {value}")
        else:
            print(
                "(no batched hit stretches: quota batching disabled, or "
                "no stretch reached the three-due profitability gate; "
                "with --jobs != 1 workers keep their own counters)"
            )
        counters = MISS_WINDOW.snapshot()
        print("--- mixed-window miss planner (NEUMMU_MISS_BATCH) ---")
        if any(counters.values()):
            for name, value in counters.items():
                print(f"{name:>24}: {value}")
        else:
            print(
                "(no mixed windows attempted: miss batching disabled, or "
                "no miss phase reached the planner gate; with --jobs != 1 "
                "workers keep their own counters)"
            )
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "lint": _cmd_lint,
    }
    handler = handlers.get(args.command)
    if handler is None:
        raise AssertionError(f"unhandled command {args.command!r}")
    if getattr(args, "profile", False):
        return _profiled(handler, args)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
