"""x86-64 style 4-level radix page table.

The baseline IOMMU and NeuMMU both walk CPU-format page tables
(Section II-B): a radix tree with 512-entry nodes.  A full walk for a 4 KB
page reads one entry at each of the four levels (L4 → L3 → L2 → L1); a 2 MB
large-page walk terminates at L2 (three reads).  The paper charges 100 cycles
of memory latency per level (Table I).

The table here is a *functional* model: it stores real mappings created by
the allocator so that walks return genuine physical frame numbers, and it
exposes the per-level node identities needed by the translation-path caches
(UPTC is tagged by the physical address of each entry; TPC/TPreg by the
virtual L4/L3/L2 indices — Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, NamedTuple, Optional, Tuple

from .address import (
    ENTRIES_PER_NODE,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PAGE_TABLE_LEVELS,
    AddressError,
    page_number,
    split_indices,
)


class PageFault(Exception):
    """Raised when a walk reaches a non-present entry."""

    def __init__(self, va: int, level: int) -> None:
        super().__init__(f"page fault at VA 0x{va:x} (level L{level} not present)")
        self.va = va
        self.level = level


@dataclass(frozen=True)
class WalkStep:
    """One memory reference made during a page-table walk.

    ``level`` is 4 for the PML4 read down to 1 for the leaf PTE read (or 2
    for a 2 MB leaf).  ``entry_pa`` is the physical address of the entry
    being read — the tag used by a unified page-table cache (UPTC).
    """

    level: int
    node_pa: int
    index: int

    @property
    def entry_pa(self) -> int:
        """Physical address of the 8-byte entry read by this step."""
        return self.node_pa + 8 * self.index


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a successful page-table walk."""

    va: int
    pfn: int
    page_size: int
    steps: Tuple[WalkStep, ...]

    @property
    def levels_accessed(self) -> int:
        """Number of memory references the full (uncached) walk performs."""
        return len(self.steps)


class _Node:
    """One 512-entry page-table node."""

    __slots__ = ("pa", "entries")

    def __init__(self, pa: int) -> None:
        self.pa = pa
        # index -> child _Node (interior) or leaf payload.
        self.entries: Dict[int, object] = {}


class _Leaf(NamedTuple):
    """A present leaf mapping (NamedTuple: one per mapped page, and the
    C-level constructor keeps bulk mapping cheap)."""

    pfn: int
    page_size: int


class PageTable:
    """A 4-level radix page table supporting mixed 4 KB and 2 MB mappings.

    Page-table nodes are assigned synthetic physical addresses from a bump
    allocator so UPTC tagging (by entry PA) is meaningful.
    """

    def __init__(self, node_region_base: int = 0x1_0000_0000) -> None:
        self._node_pa_cursor = node_region_base
        self._root = self._new_node()
        self._mapped_bytes = 0

    # ------------------------------------------------------------------ #
    # construction                                                       #
    # ------------------------------------------------------------------ #

    def _new_node(self) -> _Node:
        node = _Node(self._node_pa_cursor)
        # Each node occupies one 4 KB frame (512 entries x 8 bytes).
        self._node_pa_cursor += PAGE_SIZE_4K
        return node

    def map_page(self, va: int, pfn: int, page_size: int = PAGE_SIZE_4K) -> None:
        """Install a mapping for the page containing ``va``.

        4 KB pages install an L1 leaf; 2 MB pages install an L2 leaf.
        Remapping an already-present page replaces the mapping (this is what
        page migration does in Section V/VI-A).
        """
        if page_size == PAGE_SIZE_4K:
            leaf_level = 1
        elif page_size == PAGE_SIZE_2M:
            leaf_level = 2
            if va & (PAGE_SIZE_2M - 1):
                raise AddressError(f"2 MB mapping for VA 0x{va:x} must be 2 MB aligned")
        else:
            raise AddressError(f"unsupported page size {page_size}")

        indices = split_indices(va)  # (l4, l3, l2, l1)
        node = self._root
        # Descend, creating interior nodes, until the leaf level's parent.
        for level in range(PAGE_TABLE_LEVELS, leaf_level, -1):
            idx = indices[PAGE_TABLE_LEVELS - level]
            child = node.entries.get(idx)
            if child is None:
                child = self._new_node()
                node.entries[idx] = child
            elif isinstance(child, _Leaf):
                raise AddressError(
                    f"VA 0x{va:x}: level L{level} already holds a large-page leaf"
                )
            node = child  # type: ignore[assignment]
        leaf_idx = indices[PAGE_TABLE_LEVELS - leaf_level]
        if leaf_idx not in node.entries:
            self._mapped_bytes += page_size
        node.entries[leaf_idx] = _Leaf(pfn=pfn, page_size=page_size)

    def map_range(
        self, va: int, length: int, first_pfn: int, page_size: int = PAGE_SIZE_4K
    ) -> int:
        """Map ``length`` bytes starting at page-aligned ``va`` to consecutive
        frames starting at ``first_pfn``.  Returns the number of pages mapped.
        """
        if va & (page_size - 1):
            raise AddressError(f"range base 0x{va:x} not {page_size}-byte aligned")
        n_pages = (length + page_size - 1) // page_size
        if page_size == PAGE_SIZE_4K:
            # Bulk fast path: descend to each L1 node once and install its
            # (up to 512) consecutive leaves in a tight loop, instead of a
            # full root-to-leaf descent per page.  Same leaves, same
            # interior-node creation order, same accounting as map_page.
            mapped = 0
            while mapped < n_pages:
                page_va = va + mapped * PAGE_SIZE_4K
                l4, l3, l2, l1 = split_indices(page_va)
                node = self._root
                for idx in (l4, l3, l2):
                    child = node.entries.get(idx)
                    if child is None:
                        child = self._new_node()
                        node.entries[idx] = child
                    elif isinstance(child, _Leaf):
                        raise AddressError(
                            f"VA 0x{page_va:x}: level already holds a "
                            f"large-page leaf"
                        )
                    node = child
                count = min(ENTRIES_PER_NODE - l1, n_pages - mapped)
                entries = node.entries
                pfn = first_pfn + mapped
                for leaf_idx in range(l1, l1 + count):
                    if leaf_idx not in entries:
                        self._mapped_bytes += PAGE_SIZE_4K
                    entries[leaf_idx] = _Leaf(pfn=pfn, page_size=PAGE_SIZE_4K)
                    pfn += 1
                mapped += count
            return n_pages
        for i in range(n_pages):
            self.map_page(va + i * page_size, first_pfn + i, page_size)
        return n_pages

    def unmap_page(self, va: int, page_size: int = PAGE_SIZE_4K) -> None:
        """Remove the mapping for the page containing ``va`` (if present)."""
        leaf_level = 1 if page_size == PAGE_SIZE_4K else 2
        indices = split_indices(va)
        node = self._root
        for level in range(PAGE_TABLE_LEVELS, leaf_level, -1):
            idx = indices[PAGE_TABLE_LEVELS - level]
            child = node.entries.get(idx)
            if not isinstance(child, _Node):
                return
            node = child
        leaf_idx = indices[PAGE_TABLE_LEVELS - leaf_level]
        if isinstance(node.entries.get(leaf_idx), _Leaf):
            del node.entries[leaf_idx]
            self._mapped_bytes -= page_size

    # ------------------------------------------------------------------ #
    # walking                                                            #
    # ------------------------------------------------------------------ #

    def walk(self, va: int) -> WalkResult:
        """Perform a full architectural walk; raises :class:`PageFault` on a
        non-present entry."""
        indices = split_indices(va)
        node = self._root
        steps = []
        for level in range(PAGE_TABLE_LEVELS, 0, -1):
            idx = indices[PAGE_TABLE_LEVELS - level]
            steps.append(WalkStep(level=level, node_pa=node.pa, index=idx))
            entry = node.entries.get(idx)
            if entry is None:
                raise PageFault(va, level)
            if isinstance(entry, _Leaf):
                return WalkResult(
                    va=va, pfn=entry.pfn, page_size=entry.page_size, steps=tuple(steps)
                )
            node = entry  # type: ignore[assignment]
        raise AddressError(f"walk for VA 0x{va:x} descended past L1")

    def resolve(self, va: int) -> Tuple[int, int, int, Tuple[int, ...]]:
        """Lean walk: ``(pfn, page_size, levels_accessed, entry_pas)``.

        Same traversal and fault behaviour as :meth:`walk`, returning the
        exact fields the timing engine's :class:`~repro.core.walk_info.WalkResolver`
        consumes without materializing per-level :class:`WalkStep` records
        — resolvers walk every distinct page of every context, so the
        object churn is measurable at workload scale.
        """
        indices = split_indices(va)
        node = self._root
        entry_pas = []
        for level in range(PAGE_TABLE_LEVELS, 0, -1):
            idx = indices[PAGE_TABLE_LEVELS - level]
            entry_pas.append(node.pa + 8 * idx)
            entry = node.entries.get(idx)
            if entry is None:
                raise PageFault(va, level)
            if type(entry) is _Leaf:
                return entry.pfn, entry.page_size, len(entry_pas), tuple(entry_pas)
            node = entry
        raise AddressError(f"walk for VA 0x{va:x} descended past L1")

    def translate(self, va: int) -> int:
        """Return the physical address for ``va`` (full functional walk)."""
        result = self.walk(va)
        return result.pfn * result.page_size + (va & (result.page_size - 1))

    def is_mapped(self, va: int) -> bool:
        """True when a walk for ``va`` would succeed."""
        try:
            self.walk(va)
            return True
        except PageFault:
            return False

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def mapped_bytes(self) -> int:
        """Total bytes of VA space currently mapped."""
        return self._mapped_bytes

    def node_count(self) -> int:
        """Number of radix-tree nodes (4 KB frames of page-table storage)."""

        def count(node: _Node) -> int:
            total = 1
            for entry in node.entries.values():
                if isinstance(entry, _Node):
                    total += count(entry)
            return total

        return count(self._root)

    def iter_mappings(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(vpn_base_va, pfn, page_size)`` for every present leaf."""

        def visit(node: _Node, level: int, va_prefix: int) -> Iterator[Tuple[int, int, int]]:
            shift = 12 + 9 * (level - 1)
            for idx, entry in sorted(node.entries.items()):
                va = va_prefix | (idx << shift)
                if isinstance(entry, _Leaf):
                    yield (va, entry.pfn, entry.page_size)
                else:
                    yield from visit(entry, level - 1, va)

        yield from visit(self._root, PAGE_TABLE_LEVELS, 0)
