"""Virtual/physical address arithmetic for the x86-64 style paging model.

The paper assumes an x86-64, 4-level hierarchical page table (Section II-C):
a 48-bit virtual address is split into a 12-bit page offset and four 9-bit
indices (L1..L4, with L4 selecting an entry in the root PML4 table).  Both
the baseline 4 KB *small* pages and 2 MB *large* pages (Section VI-A) are
supported.

All addresses are plain ``int``; the helpers here centralize the bit
manipulation so higher layers (page tables, TLBs, translation-path caches)
never open-code shifts and masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Number of paging levels in an x86-64 radix page table.
PAGE_TABLE_LEVELS = 4

#: Bits of virtual address actually translated on x86-64.
VA_BITS = 48

#: Bits per radix-tree index (512 entries per table node).
INDEX_BITS = 9

#: Entries per page-table node.
ENTRIES_PER_NODE = 1 << INDEX_BITS

#: Baseline small page (Section II-C).
PAGE_SIZE_4K = 4 * 1024

#: Large page (Section VI-A).
PAGE_SIZE_2M = 2 * 1024 * 1024

#: Bit position of the address-space identifier in a tagged VPN.  Virtual
#: page numbers occupy at most ``VA_BITS - 12 = 36`` bits, so shifting the
#: ASID past the full 48-bit VA keeps the tag disjoint from any VPN and
#: makes ``tagged_vpn(vpn, 0) == vpn`` — the single-address-space fast
#: paths never pay for the tag.
ASID_SHIFT = VA_BITS

#: Largest supported address-space identifier (16-bit ASIDs, as in ARM/
#: RISC-V style MMUs).
MAX_ASID = (1 << 16) - 1

#: Region of VA space covered by a single entry at each level, smallest first:
#: an L1 entry maps 4 KB, an L2 entry maps 2 MB, an L3 entry 1 GB, L4 512 GB.
LEVEL_COVERAGE = tuple(PAGE_SIZE_4K << (INDEX_BITS * i) for i in range(PAGE_TABLE_LEVELS))


class AddressError(ValueError):
    """Raised for malformed or out-of-range addresses."""


def _check_page_size(page_size: int) -> int:
    if page_size not in (PAGE_SIZE_4K, PAGE_SIZE_2M):
        raise AddressError(f"unsupported page size {page_size}; use 4 KB or 2 MB")
    return page_size


def tagged_vpn(vpn: int, asid: int = 0) -> int:
    """Compose an (ASID, VPN) pair into one tagged key.

    Translation structures shared by several address spaces (TLB, PTS,
    engine fast paths) key their entries by this value; with ``asid == 0``
    it degenerates to the bare VPN, so single-context callers are
    unaffected.
    """
    if not 0 <= asid <= MAX_ASID:
        raise AddressError(f"ASID {asid} outside [0, {MAX_ASID}]")
    return vpn | (asid << ASID_SHIFT)


def page_offset_bits(page_size: int = PAGE_SIZE_4K) -> int:
    """Number of offset bits for the given page size (12 for 4 KB, 21 for 2 MB)."""
    _check_page_size(page_size)
    return page_size.bit_length() - 1


def page_number(va: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Virtual page number containing ``va``."""
    return va >> page_offset_bits(page_size)


def page_base(va: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Base address of the page containing ``va``."""
    return va & ~(page_size - 1)


def page_offset(va: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Offset of ``va`` within its page."""
    return va & (page_size - 1)


def is_page_aligned(va: int, page_size: int = PAGE_SIZE_4K) -> bool:
    """True when ``va`` is a multiple of ``page_size``."""
    return page_offset(va, page_size) == 0


def align_up(va: int, alignment: int) -> int:
    """Round ``va`` up to the next multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise AddressError(f"alignment must be a power of two, got {alignment}")
    return (va + alignment - 1) & ~(alignment - 1)


def align_down(va: int, alignment: int) -> int:
    """Round ``va`` down to a multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise AddressError(f"alignment must be a power of two, got {alignment}")
    return va & ~(alignment - 1)


def split_indices(va: int) -> Tuple[int, int, int, int]:
    """Split a canonical VA into its ``(l4, l3, l2, l1)`` radix-tree indices.

    The indices select entries in the PML4 (L4), PDPT (L3), page directory
    (L2) and page table (L1) respectively; each is in ``[0, 512)``.
    """
    if va < 0 or va >= (1 << VA_BITS):
        raise AddressError(f"VA 0x{va:x} outside the {VA_BITS}-bit canonical range")
    l1 = (va >> 12) & (ENTRIES_PER_NODE - 1)
    l2 = (va >> 21) & (ENTRIES_PER_NODE - 1)
    l3 = (va >> 30) & (ENTRIES_PER_NODE - 1)
    l4 = (va >> 39) & (ENTRIES_PER_NODE - 1)
    return (l4, l3, l2, l1)


def join_indices(l4: int, l3: int, l2: int, l1: int, offset: int = 0) -> int:
    """Inverse of :func:`split_indices` (plus an optional page offset)."""
    for name, idx in (("l4", l4), ("l3", l3), ("l2", l2), ("l1", l1)):
        if not 0 <= idx < ENTRIES_PER_NODE:
            raise AddressError(f"{name} index {idx} outside [0, {ENTRIES_PER_NODE})")
    if not 0 <= offset < PAGE_SIZE_4K:
        raise AddressError(f"offset {offset} outside a 4 KB page")
    return (l4 << 39) | (l3 << 30) | (l2 << 21) | (l1 << 12) | offset


def translation_path(va: int) -> Tuple[int, int, int]:
    """Upper ``(l4, l3, l2)`` indices of ``va`` — the TPreg/TPC tag.

    Two VAs share a translation path exactly when their page-table walks
    traverse the same L4, L3 and L2 entries, i.e. when they fall in the same
    2 MB-aligned region (Section IV-C).
    """
    l4, l3, l2, _ = split_indices(va)
    return (l4, l3, l2)


def pages_in_range(va: int, length: int, page_size: int = PAGE_SIZE_4K) -> Iterator[int]:
    """Yield the virtual page numbers touched by ``[va, va + length)``."""
    if length < 0:
        raise AddressError(f"negative range length {length}")
    if length == 0:
        return
    first = page_number(va, page_size)
    last = page_number(va + length - 1, page_size)
    yield from range(first, last + 1)


def count_pages_in_range(va: int, length: int, page_size: int = PAGE_SIZE_4K) -> int:
    """Number of distinct pages touched by ``[va, va + length)``."""
    if length < 0:
        raise AddressError(f"negative range length {length}")
    if length == 0:
        return 0
    return page_number(va + length - 1, page_size) - page_number(va, page_size) + 1


@dataclass(frozen=True)
class Extent:
    """A contiguous virtual-address range ``[va, va + length)``.

    The DMA unit decomposes multi-dimensional tiles into per-row extents
    (Section III-C); extents are later split into bounded memory
    transactions at page boundaries.
    """

    va: int
    length: int

    def __post_init__(self) -> None:
        if self.va < 0:
            raise AddressError(f"negative extent base 0x{self.va:x}")
        if self.length <= 0:
            raise AddressError(f"extent length must be positive, got {self.length}")

    @property
    def end(self) -> int:
        """One past the last byte of the extent."""
        return self.va + self.length

    def split_at_pages(self, page_size: int = PAGE_SIZE_4K) -> Iterator["Extent"]:
        """Split this extent so no piece crosses a page boundary."""
        cursor = self.va
        remaining = self.length
        while remaining > 0:
            room = page_size - page_offset(cursor, page_size)
            piece = min(room, remaining)
            yield Extent(cursor, piece)
            cursor += piece
            remaining -= piece

    def split_transactions(
        self, max_bytes: int, page_size: int = PAGE_SIZE_4K
    ) -> Iterator["Extent"]:
        """Split into DMA transactions of at most ``max_bytes`` bytes that
        never cross a page boundary.

        This mirrors the DMA behaviour of Section III-C: one tile decomposes
        into many linearized transactions, each requiring one translation.
        """
        if max_bytes <= 0:
            raise AddressError(f"max transaction size must be positive, got {max_bytes}")
        for piece in self.split_at_pages(page_size):
            cursor = piece.va
            remaining = piece.length
            while remaining > 0:
                chunk = min(max_bytes, remaining)
                yield Extent(cursor, chunk)
                cursor += chunk
                remaining -= chunk
