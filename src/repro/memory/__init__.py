"""Virtual-memory substrate: addresses, page tables, allocators, DRAM model.

This package implements everything the MMU models in :mod:`repro.core`
translate against — the functional x86-64 4-level page table shared between
CPU and NPU (Section II-B of the paper), tensor-to-linear-memory layout,
the fixed-latency bandwidth-limited memory system of Table I, and the
demand-paged memory tier (:mod:`repro.memory.tiering`: per-ASID residency
budgets over a shared migration fabric, Section VI-A promoted to a
subsystem).
"""

from .address import (
    ENTRIES_PER_NODE,
    LEVEL_COVERAGE,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PAGE_TABLE_LEVELS,
    VA_BITS,
    AddressError,
    Extent,
    align_down,
    align_up,
    count_pages_in_range,
    is_page_aligned,
    join_indices,
    page_base,
    page_number,
    page_offset,
    page_offset_bits,
    pages_in_range,
    split_indices,
    translation_path,
)
from .allocator import AddressSpace, FrameAllocator, OutOfMemory, Segment
from .dram import MainMemory, MemoryConfig, bandwidth_bound_cycles
from .layout import TensorLayout, coalesce_extents, extents_total_bytes
from .page_table import PageFault, PageTable, WalkResult, WalkStep
from .tiering import (
    EVICTION_POLICIES,
    FabricUsage,
    LocalMemoryTier,
    MigrationFabric,
    TieringConfig,
    TierTenant,
)

__all__ = [
    "ENTRIES_PER_NODE",
    "EVICTION_POLICIES",
    "FabricUsage",
    "LEVEL_COVERAGE",
    "LocalMemoryTier",
    "MigrationFabric",
    "TieringConfig",
    "TierTenant",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_4K",
    "PAGE_TABLE_LEVELS",
    "VA_BITS",
    "AddressError",
    "AddressSpace",
    "Extent",
    "FrameAllocator",
    "MainMemory",
    "MemoryConfig",
    "OutOfMemory",
    "PageFault",
    "PageTable",
    "Segment",
    "TensorLayout",
    "WalkResult",
    "WalkStep",
    "align_down",
    "align_up",
    "bandwidth_bound_cycles",
    "coalesce_extents",
    "count_pages_in_range",
    "extents_total_bytes",
    "is_page_aligned",
    "join_indices",
    "page_base",
    "page_number",
    "page_offset",
    "page_offset_bits",
    "pages_in_range",
    "split_indices",
    "translation_path",
]
