"""Tensor-to-linear-memory layout.

Activations and weights are multi-dimensional tensors "mapped to a
traditional, linear (1D) memory subsystem" (Section I).  When the DMA
fetches a rectangular tile of such a tensor, only the innermost contiguous
runs are linear in memory — so one tile decomposes into many per-row
extents, which is precisely why a single tile fetch invokes thousands of
translations (Section III-C).

:class:`TensorLayout` captures a row-major tensor placed at a virtual base
address and converts tile coordinates into :class:`~repro.memory.address.Extent`
lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .address import AddressError, Extent


def _row_major_strides(shape: Sequence[int], elem_bytes: int) -> Tuple[int, ...]:
    """Byte strides of a dense row-major tensor."""
    strides = [elem_bytes] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return tuple(strides)


@dataclass(frozen=True)
class TensorLayout:
    """A dense row-major tensor at a fixed virtual base address.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"conv3/weights"``).
    base_va:
        Virtual address of element ``(0, 0, ..., 0)``.
    shape:
        Logical dimensions, outermost first.
    elem_bytes:
        Bytes per element (4 for fp32, 2 for fp16/bf16).
    """

    name: str
    base_va: int
    shape: Tuple[int, ...]
    elem_bytes: int = 4

    def __post_init__(self) -> None:
        if not self.shape:
            raise AddressError(f"tensor {self.name!r} needs at least one dimension")
        if any(d <= 0 for d in self.shape):
            raise AddressError(f"tensor {self.name!r} has non-positive dims {self.shape}")
        if self.elem_bytes <= 0:
            raise AddressError(f"elem_bytes must be positive, got {self.elem_bytes}")

    @property
    def strides(self) -> Tuple[int, ...]:
        """Byte strides, outermost dimension first."""
        return _row_major_strides(self.shape, self.elem_bytes)

    @property
    def nbytes(self) -> int:
        """Total size of the tensor in bytes."""
        total = self.elem_bytes
        for d in self.shape:
            total *= d
        return total

    @property
    def end_va(self) -> int:
        """One past the last byte of the tensor."""
        return self.base_va + self.nbytes

    def element_va(self, coords: Sequence[int]) -> int:
        """Virtual address of the element at ``coords``."""
        if len(coords) != len(self.shape):
            raise AddressError(
                f"tensor {self.name!r} is {len(self.shape)}-D, got {len(coords)} coords"
            )
        va = self.base_va
        for c, dim, stride in zip(coords, self.shape, self.strides):
            if not 0 <= c < dim:
                raise AddressError(f"coord {c} out of bounds for dim {dim}")
            va += c * stride
        return va

    # ------------------------------------------------------------------ #
    # tile decomposition                                                 #
    # ------------------------------------------------------------------ #

    def tile_extents(
        self, starts: Sequence[int], sizes: Sequence[int]
    ) -> List[Extent]:
        """Decompose a rectangular tile into contiguous linear extents.

        The tile covers ``[starts[d], starts[d] + sizes[d])`` in each
        dimension.  Trailing dimensions the tile covers entirely are
        coalesced into the contiguous run, so e.g. a tile that spans full
        rows of a 2-D tensor yields a single extent.

        Returns extents in ascending-VA (row-major iteration) order, which
        is also the order the DMA streams them — giving the streaming VA
        pattern of Figure 14.
        """
        ndim = len(self.shape)
        if len(starts) != ndim or len(sizes) != ndim:
            raise AddressError(
                f"tile coords must be {ndim}-D for tensor {self.name!r}"
            )
        for d in range(ndim):
            if sizes[d] <= 0:
                raise AddressError(f"tile size in dim {d} must be positive")
            if starts[d] < 0 or starts[d] + sizes[d] > self.shape[d]:
                raise AddressError(
                    f"tile [{starts[d]}, {starts[d] + sizes[d]}) out of bounds "
                    f"for dim {d} of size {self.shape[d]}"
                )

        # Find the split point: dims at or after `contig_from` are covered
        # fully (and start at 0), so they fold into one contiguous run.
        contig_from = ndim
        while contig_from > 0:
            d = contig_from - 1
            if starts[d] == 0 and sizes[d] == self.shape[d]:
                contig_from = d
            else:
                break
        # The innermost non-full dim also contributes contiguously.
        if contig_from > 0:
            contig_from -= 1

        strides = self.strides
        run_bytes = sizes[contig_from] * strides[contig_from]
        # Dims at/after contig_from contribute a fixed offset (dims beyond
        # contig_from are fully covered from 0, so only contig_from matters).
        run_start = self.base_va + starts[contig_from] * strides[contig_from]

        extents: List[Extent] = []

        def recurse(dim: int, va: int) -> None:
            if dim == contig_from:
                extents.append(Extent(va, run_bytes))
                return
            base = va + starts[dim] * strides[dim]
            for i in range(sizes[dim]):
                recurse(dim + 1, base + i * strides[dim])

        recurse(0, run_start)
        return extents

    def full_extents(self) -> List[Extent]:
        """The whole tensor as a single extent."""
        return [Extent(self.base_va, self.nbytes)]


def coalesce_extents(extents: Sequence[Extent]) -> List[Extent]:
    """Merge adjacent/overlapping extents (input need not be sorted).

    Useful for computing the distinct footprint of a tile and for tests
    asserting tile decompositions cover exactly the expected bytes.
    """
    if not extents:
        return []
    ordered = sorted(extents, key=lambda e: e.va)
    merged = [ordered[0]]
    for ext in ordered[1:]:
        last = merged[-1]
        if ext.va <= last.end:
            if ext.end > last.end:
                merged[-1] = Extent(last.va, ext.end - last.va)
        else:
            merged.append(ext)
    return merged


def extents_total_bytes(extents: Sequence[Extent]) -> int:
    """Sum of extent lengths (double-counts overlaps; see coalesce_extents)."""
    return sum(e.length for e in extents)
