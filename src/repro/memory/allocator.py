"""Virtual-address-space and physical-frame allocators.

The NPU runtime in the paper allocates each tensor (input activations,
weights, output activations, embedding tables) as a contiguous virtual
segment; segments are backed by physical frames through the shared page
table.  Section IV-C's TPreg insight depends on this layout: "the number of
distinct VA regions accessed is confined within a handful of large segments
in the VA space (i.e., IA and W)".

Two physical placement policies are provided:

* ``contiguous`` — frames are handed out in ascending order (a fresh device
  rarely fragments; this is also what makes 2 MB mappings possible).
* ``shuffled`` — frames are deterministically permuted, modelling a
  fragmented physical memory.  Translation *timing* is unaffected (walks
  cost the same either way) but it exercises the functional path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .address import PAGE_SIZE_2M, PAGE_SIZE_4K, AddressError, align_up
from .page_table import PageTable


@dataclass(frozen=True)
class Segment:
    """A named, contiguous virtual allocation (one tensor)."""

    name: str
    va: int
    length: int
    page_size: int

    @property
    def end(self) -> int:
        """One past the last byte of the segment."""
        return self.va + self.length

    def contains(self, va: int) -> bool:
        """True when ``va`` falls inside the segment."""
        return self.va <= va < self.end


class OutOfMemory(Exception):
    """Raised when a physical-frame request cannot be satisfied."""


class FrameAllocator:
    """Allocates physical frame numbers from a fixed-capacity memory."""

    def __init__(
        self,
        capacity_bytes: int,
        page_size: int = PAGE_SIZE_4K,
        policy: str = "contiguous",
        seed: int = 0,
    ) -> None:
        if capacity_bytes <= 0:
            raise AddressError(f"capacity must be positive, got {capacity_bytes}")
        if policy not in ("contiguous", "shuffled"):
            raise AddressError(f"unknown frame policy {policy!r}")
        self.page_size = page_size
        self.capacity_frames = capacity_bytes // page_size
        self.policy = policy
        self._next = 0
        self._free: List[int] = []
        self._rng = random.Random(seed)

    @property
    def allocated_frames(self) -> int:
        """Frames currently handed out."""
        return self._next - len(self._free)

    @property
    def free_frames(self) -> int:
        """Frames still available."""
        return self.capacity_frames - self.allocated_frames

    def alloc(self, n_frames: int = 1) -> List[int]:
        """Allocate ``n_frames`` physical frames; raises :class:`OutOfMemory`."""
        if n_frames < 0:
            raise AddressError(f"cannot allocate {n_frames} frames")
        if n_frames > self.free_frames:
            raise OutOfMemory(
                f"requested {n_frames} frames but only {self.free_frames} free "
                f"of {self.capacity_frames}"
            )
        frames: List[int] = []
        while len(frames) < n_frames and self._free:
            frames.append(self._free.pop())
        remaining = n_frames - len(frames)
        if remaining:
            fresh = list(range(self._next, self._next + remaining))
            self._next += remaining
            if self.policy == "shuffled":
                self._rng.shuffle(fresh)
            frames.extend(fresh)
        return frames

    def free(self, frames: List[int]) -> None:
        """Return frames to the allocator."""
        self._free.extend(frames)


class AddressSpace:
    """A process-style virtual address space shared by CPU and NPU.

    Combines a VA bump allocator, a frame allocator and a page table.  This
    is the substrate both MMU models translate against; it also backs the
    NUMA/demand-paging case study where a VA may map to a *remote* node's
    frame (see :mod:`repro.sparse`).
    """

    #: Default base mirrors a typical mmap region; 2 MB aligned so large
    #: pages are always possible.
    DEFAULT_BASE = 0x7F00_0000_0000

    def __init__(
        self,
        memory_bytes: int = 32 * 1024**3,
        page_size: int = PAGE_SIZE_4K,
        base_va: int = DEFAULT_BASE,
        frame_policy: str = "contiguous",
        seed: int = 0,
    ) -> None:
        self.page_size = page_size
        self.page_table = PageTable()
        self.frames = FrameAllocator(
            memory_bytes, page_size=page_size, policy=frame_policy, seed=seed
        )
        self._cursor = align_up(base_va, PAGE_SIZE_2M)
        self._segments: Dict[str, Segment] = {}

    # ------------------------------------------------------------------ #
    # allocation                                                         #
    # ------------------------------------------------------------------ #

    def alloc_segment(
        self,
        name: str,
        length: int,
        page_size: Optional[int] = None,
        populate: bool = True,
        guard_bytes: int = PAGE_SIZE_2M,
    ) -> Segment:
        """Allocate a named contiguous segment of ``length`` bytes.

        Segments are 2 MB aligned and separated by a guard gap so distinct
        tensors never share a 2 MB translation path — matching the paper's
        "handful of large segments" layout.  When ``populate`` is false, the
        segment is reserved but left unmapped (used by the demand-paging
        experiments, where pages fault in on first touch).
        """
        if name in self._segments:
            raise AddressError(f"segment {name!r} already allocated")
        if length <= 0:
            raise AddressError(f"segment length must be positive, got {length}")
        psize = page_size or self.page_size
        base = align_up(self._cursor, PAGE_SIZE_2M)
        seg = Segment(name=name, va=base, length=length, page_size=psize)
        self._cursor = align_up(seg.end + guard_bytes, PAGE_SIZE_2M)
        if populate:
            self.populate(seg)
        self._segments[name] = seg
        return seg

    def populate(self, seg: Segment) -> None:
        """Back every page of ``seg`` with physical frames.

        Consecutive frame runs (the common bump-allocator case) install
        through :meth:`~repro.memory.page_table.PageTable.map_range`'s
        bulk path; only fragmented free-list reuse maps page by page.
        """
        n_pages = (seg.length + seg.page_size - 1) // seg.page_size
        frames = self.frames.alloc(n_pages)
        page_table = self.page_table
        psize = seg.page_size
        i = 0
        while i < n_pages:
            first = frames[i]
            j = i + 1
            while j < n_pages and frames[j] == first + (j - i):
                j += 1
            page_table.map_range(seg.va + i * psize, (j - i) * psize, first, psize)
            i = j

    def touch(self, va: int, page_size: Optional[int] = None) -> bool:
        """Fault-in the page containing ``va`` if unmapped.

        Returns True when a new mapping was installed (i.e. this access
        would have page-faulted).
        """
        psize = page_size or self.page_size
        if self.page_table.is_mapped(va):
            return False
        base = va & ~(psize - 1)
        pfn = self.frames.alloc(1)[0]
        self.page_table.map_page(base, pfn, psize)
        return True

    # ------------------------------------------------------------------ #
    # lookup                                                             #
    # ------------------------------------------------------------------ #

    def segment(self, name: str) -> Segment:
        """Look up a segment by name."""
        try:
            return self._segments[name]
        except KeyError:
            raise AddressError(f"no segment named {name!r}") from None

    def segments(self) -> List[Segment]:
        """All segments in allocation order."""
        return sorted(self._segments.values(), key=lambda s: s.va)

    def find_segment(self, va: int) -> Optional[Segment]:
        """Segment containing ``va``, or None."""
        for seg in self._segments.values():
            if seg.contains(va):
                return seg
        return None

    @property
    def footprint_bytes(self) -> int:
        """Total bytes reserved across all segments."""
        return sum(s.length for s in self._segments.values())
