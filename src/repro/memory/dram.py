"""Fixed-latency, bandwidth-limited main-memory model.

Following the paper's methodology (Section II-C): "we modeled the memory
system as having fixed latency and bandwidth rather than employing a
cycle-level DRAM simulator".  Table I gives 8 channels, 600 GB/s aggregate
bandwidth and 100 cycles access latency at a 1 GHz NPU clock — i.e.
600 bytes/cycle aggregate, 75 bytes/cycle per channel.

The model is a simple multi-channel queueing server: each request occupies
its channel for ``size / channel_bandwidth`` cycles and completes a fixed
``latency`` after service starts.  Page-table walk reads (8-byte entry
reads) and DMA data transactions share the same memory, so heavy walk
traffic genuinely steals bandwidth from data — one of the effects PRMB's
merging is designed to curb (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class MemoryConfig:
    """Main-memory parameters (Table I defaults)."""

    channels: int = 8
    bandwidth_bytes_per_cycle: float = 600.0
    access_latency_cycles: int = 100
    #: Bytes moved per page-table-entry read.  Entries are 8 bytes but DRAM
    #: transfers a minimum burst; 64 B matches a DDR/HBM access granule.
    walk_access_bytes: int = 64

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError(f"channels must be positive, got {self.channels}")
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if self.access_latency_cycles < 0:
            raise ValueError("latency cannot be negative")

    @property
    def channel_bandwidth(self) -> float:
        """Bytes per cycle per channel."""
        return self.bandwidth_bytes_per_cycle / self.channels


class MainMemory:
    """Stateful multi-channel memory server.

    Time is the caller's cycle counter; the server tracks, per channel, the
    cycle at which the channel next becomes free.  Requests are issued with
    :meth:`access` which returns the completion cycle.
    """

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        self._channel_free = [0.0] * self.config.channels
        self._rr_next = 0
        self.total_bytes = 0
        self.total_accesses = 0

    def reset(self) -> None:
        """Clear all queueing state and counters.

        ``_channel_free`` is cleared in place: the translation engine's
        fused paths bind the list itself, so its identity must survive
        resets.
        """
        self._channel_free[:] = [0.0] * self.config.channels
        self._rr_next = 0
        self.total_bytes = 0
        self.total_accesses = 0

    def _pick_channel(self, address: int | None) -> int:
        if address is None:
            # Round-robin for requests with no meaningful address.
            channel = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.config.channels
            return channel
        # Interleave at 256 B granularity across channels, a common HBM
        # policy; the exact hash is immaterial to the paper's results.
        return (address >> 8) % self.config.channels

    def access(self, cycle: float, size_bytes: int, address: int | None = None) -> float:
        """Issue a ``size_bytes`` access at ``cycle``; return completion cycle.

        Service is FIFO per channel; completion = service start + transfer
        time + fixed access latency.
        """
        if size_bytes <= 0:
            raise ValueError(f"access size must be positive, got {size_bytes}")
        channel = self._pick_channel(address)
        start = max(cycle, self._channel_free[channel])
        transfer = size_bytes / self.config.channel_bandwidth
        self._channel_free[channel] = start + transfer
        self.total_bytes += size_bytes
        self.total_accesses += 1
        return start + transfer + self.config.access_latency_cycles

    def walk_access(self, cycle: float, address: int | None = None) -> float:
        """Issue one page-table-entry read; returns its completion cycle."""
        return self.access(cycle, self.config.walk_access_bytes, address)

    def earliest_free(self) -> float:
        """Cycle at which at least one channel is idle."""
        return min(self._channel_free)

    def drain_cycle(self) -> float:
        """Cycle at which every channel is idle (ignores in-flight latency)."""
        return max(self._channel_free)


def bandwidth_bound_cycles(total_bytes: int, config: MemoryConfig | None = None) -> float:
    """Lower bound on cycles to move ``total_bytes`` at full aggregate bandwidth.

    The oracular MMU's memory phase is this bound plus one access latency
    (Section III-C normalization baseline).
    """
    cfg = config or MemoryConfig()
    if total_bytes < 0:
        raise ValueError("total_bytes cannot be negative")
    return total_bytes / cfg.bandwidth_bytes_per_cycle
