"""First-class demand-paged memory tier: local residency + migration fabric.

NeuMMU's Section VI-A shows that demand paging's fault/translation bursts
are where translation machinery breaks down, and the heterogeneous-MMU
literature (Kim et al., *Address Translation Design Tradeoffs for
Heterogeneous Systems*; NDPage's tailored migration path) treats the
migration/translation interaction as a **system-level** concern.  This
module promotes the model that used to live inside the Figure 16 script
(:mod:`repro.sparse.demand_paging`) to a subsystem every layer can share:

* :class:`MigrationFabric` — the shared NPU↔NPU page-migration fabric.  A
  bounded number of migration *slots* (parallel transfer lanes, each at
  full link bandwidth — the walker-pool treatment applied to transfers)
  serve page moves; per-ASID byte/occupancy accounting is exact, and a
  :class:`~repro.core.qos.SharePolicy` may impose slot quotas
  (``fabric_quota``) mirroring the TLB/walker/PRMB treatment:
  ``full_share`` admits any free slot, ``static_partition`` caps every
  tenant at its reservation, and ``weighted`` lets a tenant at quota
  borrow slots no other tenant's unmet reservation is entitled to.

* :class:`LocalMemoryTier` — per-ASID residency tracking with per-tenant
  local-memory budgets and pluggable eviction.  Its
  :meth:`~LocalMemoryTier.handle_fault` is the engine's first-class
  demand-paging hook (:data:`repro.core.engine.FaultHandler`): it maps
  the faulting page, shoots the stale translation down through the
  ASID-tagged :meth:`~repro.core.mmu.MMU.shootdown` path, charges the
  migration on the fabric, and evicts over-budget pages — every eviction
  again routed through ``MMU.shootdown`` so no context can ever observe
  a stale PFN.

Single-tenant timing is bit-identical to the historical Figure 16 model:
with an uncontended fabric, a fault resolves at
``cycle + fault_overhead_cycles + link.bulk_transfer_cycles(page_size)``
in the same float-operation order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol

from .address import page_offset_bits
from .page_table import PageTable

MB = 1024 * 1024

#: Valid :class:`LocalMemoryTier` eviction policies.  ``lru`` evicts the
#: least-recently-*migrated* page first (insertion order; a re-fault
#: re-inserts at the back); ``mru`` evicts the most recent first — the
#: anti-thrash policy for scan-dominated footprints.
EVICTION_POLICIES = ("lru", "mru")


class MigrationLink(Protocol):
    """Transfer-timing surface the fabric needs from a link model.

    Structural, not nominal: :class:`repro.sparse.numa.LinkModel`
    satisfies it without the memory layer importing the sparse layer
    (``simlint: layer-import``).
    """

    def bulk_transfer_cycles(self, nbytes: int) -> float: ...


class FabricSharePolicy(Protocol):
    """Quota surface the fabric consumes from a QoS share policy.

    Mirrors the slice of :class:`repro.core.qos.SharePolicy` the fabric
    actually calls; a Protocol keeps ``memory`` below ``core`` in the
    layering order (``simlint: layer-import``).
    """

    @property
    def trivial(self) -> bool: ...

    @property
    def work_conserving(self) -> bool: ...

    @property
    def asids(self) -> Iterable[int]: ...

    def fabric_quota(self, asid: int, slots: int) -> int: ...


class ResidentSpace(Protocol):
    """Surface the tier needs from a tenant's address space."""

    page_table: PageTable

    def touch(self, va: int, page_size: Optional[int] = None) -> bool: ...


class WalkTracker(Protocol):
    """In-flight-walk probe (the slice of ``core.pts.PTS`` we consult)."""

    def peek(self, vpn: int, asid: int = 0) -> Optional[List[int]]: ...


class ShootdownMMU(Protocol):
    """Invalidation surface the tier drives on its bound MMU.

    Structural stand-in for :class:`repro.core.mmu.MMU` so the memory
    layer never imports ``core`` (``simlint: layer-import``).
    """

    paging_tier: Optional["LocalMemoryTier"]

    @property
    def pts(self) -> Optional[WalkTracker]: ...

    def shootdown(self, vpn: int, asid: int = 0) -> None: ...


@dataclass(frozen=True)
class TieringConfig:
    """Knobs of a demand-paged memory tier (shared or per-tenant)."""

    #: Parallel migration lanes on the shared fabric (walker-pool style:
    #: each in-flight transfer streams at full link bandwidth).
    fabric_slots: int = 4
    #: Driver + queueing cost of taking one fault, before the transfer.
    fault_overhead_cycles: float = 500.0
    #: Local-memory budget per tenant when none is given explicitly.
    default_budget_bytes: int = 64 * MB
    #: One of :data:`EVICTION_POLICIES`.
    eviction: str = "lru"

    def __post_init__(self) -> None:
        if self.fabric_slots <= 0:
            raise ValueError("fabric_slots must be positive")
        if self.fault_overhead_cycles < 0:
            raise ValueError("fault_overhead_cycles cannot be negative")
        if self.default_budget_bytes <= 0:
            raise ValueError("default_budget_bytes must be positive")
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction!r}; "
                f"choose from {', '.join(EVICTION_POLICIES)}"
            )


@dataclass
class FabricUsage:
    """One tenant's exact share of the migration fabric."""

    asid: int
    migrations: int = 0
    bytes_moved: int = 0
    #: Sum of transfer durations (fabric occupancy attributable to the
    #: tenant; overlapping tenants can sum past wall-clock).
    busy_cycles: float = 0.0
    #: Cycles migrations waited for a slot (admission + occupancy).
    queue_cycles: float = 0.0


class MigrationFabric:
    """Bounded-slot page-migration fabric with exact byte accounting.

    ``link`` is duck-typed: anything exposing
    ``bulk_transfer_cycles(nbytes) -> float`` (e.g.
    :class:`repro.sparse.numa.LinkModel`).  ``policy`` is an optional
    :class:`~repro.core.qos.SharePolicy`; its
    :meth:`~repro.core.qos.SharePolicy.fabric_quota` bounds each
    tenant's concurrent in-flight migrations exactly as walker quotas
    bound concurrent walks.
    """

    def __init__(
        self,
        link: MigrationLink,
        slots: int = 1,
        policy: Optional[FabricSharePolicy] = None,
    ) -> None:
        if slots <= 0:
            raise ValueError("a migration fabric needs at least one slot")
        self.link = link
        self.slots = slots
        self._policy = policy
        #: Completion cycle of the migration occupying each slot.
        self._free_at: List[float] = [0.0] * slots
        #: ASID owning each slot's most recent migration.
        self._owner: List[Optional[int]] = [None] * slots
        self.usage: Dict[int, FabricUsage] = {}
        self.total_migrations = 0
        self.total_bytes = 0

    # -- observation ---------------------------------------------------- #

    def in_flight_at(self, cycle: float) -> int:
        """Migrations still streaming at ``cycle``."""
        return sum(1 for free in self._free_at if free > cycle)

    def busy_beyond(self, cycle: float) -> bool:
        """True while any migration completes after ``cycle``.

        The event-driven schedulers treat this as an interaction point:
        a tenant pipeline never hoists a quiet stretch across an
        in-flight migration (see
        :meth:`repro.npu.simulator._TenantRun.advance_quiet`).  Idle
        fabric — no tenant faulting — reports False, so quiet-stretch
        batching is untouched on fault-free runs.
        """
        free_at = self._free_at
        for free in free_at:
            if free > cycle:
                return True
        return False

    def usage_of(self, asid: int) -> FabricUsage:
        """The tenant's usage record (created on first touch)."""
        usage = self.usage.get(asid)
        if usage is None:
            usage = self.usage[asid] = FabricUsage(asid=asid)
        return usage

    def _busy_count(self, asid: int, cycle: float) -> int:
        free_at = self._free_at
        owner = self._owner
        return sum(
            1
            for slot in range(self.slots)
            if free_at[slot] > cycle and owner[slot] == asid
        )

    def _admit(self, asid: int, cycle: float) -> bool:
        """Whether ``asid`` may claim a free slot at ``cycle``.

        Mirrors :meth:`repro.core.ptw.WalkerPool.can_start`: below quota
        always admits; at quota a work-conserving policy admits when the
        free slots exceed every other tenant's unmet reservation.
        """
        policy = self._policy
        if policy is None or policy.trivial:
            return True
        quota = policy.fabric_quota(asid, self.slots)
        if quota is None or self._busy_count(asid, cycle) < quota:
            return True
        if not policy.work_conserving:
            return False
        free = self.slots - self.in_flight_at(cycle)
        reserved_unmet = 0
        for other in policy.asids:
            if other == asid:
                continue
            other_quota = policy.fabric_quota(other, self.slots)
            if other_quota is not None:
                shortfall = other_quota - self._busy_count(other, cycle)
                if shortfall > 0:
                    reserved_unmet += shortfall
        return free > reserved_unmet

    # -- transfer ------------------------------------------------------- #

    def migrate(self, asid: int, nbytes: int, request_cycle: float) -> float:
        """Stream one page move; returns its completion cycle.

        The migration starts at ``request_cycle`` when a slot is free
        and the share policy admits the tenant; otherwise it queues
        until the earliest in-flight completion that unblocks it.  An
        uncontended fabric completes at exactly
        ``request_cycle + link.bulk_transfer_cycles(nbytes)`` — the
        historical single-tenant fault math, float op for float op.
        """
        if nbytes <= 0:
            raise ValueError(f"migration size must be positive, got {nbytes}")
        duration = self.link.bulk_transfer_cycles(nbytes)
        free_at = self._free_at
        t = request_cycle
        while True:
            slot = -1
            for s in range(self.slots):
                if free_at[s] <= t:
                    slot = s
                    break
            if slot >= 0 and self._admit(asid, t):
                break
            pending = [free for free in free_at if free > t]
            if not pending:  # pragma: no cover - admit() floors quotas at 1
                raise RuntimeError("migration fabric deadlock")
            t = min(pending)
        done = t + duration
        free_at[slot] = done
        self._owner[slot] = asid
        usage = self.usage_of(asid)
        usage.migrations += 1
        usage.bytes_moved += nbytes
        usage.busy_cycles += duration
        usage.queue_cycles += t - request_cycle
        self.total_migrations += 1
        self.total_bytes += nbytes
        return done

    def __repr__(self) -> str:
        return (
            f"MigrationFabric(slots={self.slots}, "
            f"migrations={self.total_migrations}, bytes={self.total_bytes})"
        )


@dataclass
class TierTenant:
    """One tenant's residency state in a :class:`LocalMemoryTier`.

    Byte/migration attribution is *not* duplicated here: the fabric's
    :class:`FabricUsage` is the single source of truth for moved bytes
    (read it through :meth:`LocalMemoryTier.migrated_bytes_of`).
    """

    asid: int
    #: The tenant's address space (duck-typed: ``touch`` + ``page_table``).
    space: ResidentSpace
    budget_bytes: int
    #: Migrated remote pages in residency order: vpn -> page bytes.
    resident: "OrderedDict[int, int]" = field(default_factory=OrderedDict)
    resident_bytes: int = 0
    faults: int = 0
    evictions: int = 0
    #: Bumped whenever a page *leaves* the resident set (budget
    #: eviction).  FAST-fidelity timing caches stamp the epoch their
    #: converged tile timings were measured under and drop them when it
    #: moves — a timing observed while a page was local is stale once
    #: that page has been evicted.  Pages *joining* the set never move
    #: the epoch: a signature measured earlier either faulted the
    #: newcomer in itself during sampling or never touches it, so its
    #: timing stays valid and cold-start fault storms don't wipe the
    #: cache on every step.
    residency_epoch: int = 0

    def bump_residency_epoch(self) -> None:
        """Invalidate FAST timings measured under the old resident set.

        The *only* sanctioned way to move :attr:`residency_epoch` after
        construction — every eviction site routes through here so the
        invalidation trail stays auditable (``simlint: epoch-raw-write``).
        """
        self.residency_epoch += 1


class LocalMemoryTier:
    """Per-ASID local-memory residency with budgets and eviction.

    The tier binds to one :class:`~repro.core.mmu.MMU` (single- or
    multi-context) and registers one :class:`TierTenant` per address
    space.  :meth:`handle_fault` is installed as the translation
    engine's fault handler; every mapping change — fault-time remap and
    budget eviction alike — goes through the MMU's ASID-tagged
    ``shootdown`` so no TLB/PTS/path-cache entry of *any* context can
    serve a stale PFN.
    """

    def __init__(
        self,
        fabric: MigrationFabric,
        page_size: int,
        fault_overhead_cycles: float = 500.0,
        eviction: str = "lru",
    ) -> None:
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {eviction!r}; "
                f"choose from {', '.join(EVICTION_POLICIES)}"
            )
        if fault_overhead_cycles < 0:
            raise ValueError("fault_overhead_cycles cannot be negative")
        self.fabric = fabric
        self.page_size = page_size
        self.fault_overhead_cycles = fault_overhead_cycles
        self.eviction = eviction
        self._vpn_shift = page_offset_bits(page_size)
        self._mmu: Optional[ShootdownMMU] = None
        self.tenants: Dict[int, TierTenant] = {}

    # -- wiring --------------------------------------------------------- #

    def bind(self, mmu: ShootdownMMU) -> None:
        """Attach the MMU whose shootdown path invalidations route through.

        Idempotent for the same MMU; a tier serves exactly one
        translation stack (per-NPU tiers each get their own instance).
        """
        if self._mmu is mmu:
            return
        if self._mmu is not None:
            raise ValueError("tier is already bound to a different MMU")
        self._mmu = mmu
        mmu.paging_tier = self

    @property
    def mmu(self) -> Optional[ShootdownMMU]:
        """The bound MMU (None before :meth:`bind`)."""
        return self._mmu

    def register_tenant(
        self, asid: int, space: ResidentSpace, budget_bytes: Optional[int] = None
    ) -> TierTenant:
        """Attach one address space's residency state under its ASID."""
        if asid in self.tenants:
            raise ValueError(f"ASID {asid} already registered on this tier")
        if budget_bytes is None:
            budget_bytes = TieringConfig().default_budget_bytes
        if budget_bytes <= 0:
            raise ValueError(
                f"tenant budget must be positive, got {budget_bytes} "
                f"for ASID {asid}"
            )
        if budget_bytes < self.page_size:
            raise ValueError(
                f"tenant budget ({budget_bytes} B) must cover at least one "
                f"{self.page_size} B page for ASID {asid}; a sub-page "
                f"budget could never keep the faulting page resident"
            )
        tenant = TierTenant(asid=asid, space=space, budget_bytes=budget_bytes)
        self.tenants[asid] = tenant
        return tenant

    def unregister_tenant(self, asid: int) -> TierTenant:
        """Drop a tenant's residency state (its pages stay mapped; pair
        with :meth:`~repro.core.mmu.MMU.destroy_context` for teardown)."""
        try:
            return self.tenants.pop(asid)
        except KeyError:
            raise KeyError(f"no tenant registered for ASID {asid}") from None

    # -- fault path ----------------------------------------------------- #

    def handle_fault(self, vpn: int, cycle: float, asid: int = 0) -> float:
        """Migrate the faulting page in; returns the retry cycle.

        The engine's :data:`~repro.core.engine.FaultHandler` hook: maps
        the page (``space.touch``), shoots down every cached translation
        for (ASID, VPN), streams the page over the shared fabric
        (``fault_overhead_cycles`` ahead of the transfer), tracks
        residency and evicts over-budget pages.
        """
        tenant = self.tenants.get(asid)
        if tenant is None:
            raise KeyError(
                f"page fault for unregistered ASID {asid} (VPN 0x{vpn:x}); "
                f"call LocalMemoryTier.register_tenant first"
            )
        mmu = self._mmu
        if mmu is None:
            raise RuntimeError(
                "tier has no bound MMU to shoot stale translations down "
                "through; call LocalMemoryTier.bind first"
            )
        page_size = self.page_size
        base = vpn << self._vpn_shift
        tenant.space.touch(base, page_size)
        # The migrated page now maps to a *new* local frame: shoot down
        # every cached translation (memoized walk + TLB hierarchy + PTS)
        # so no path can ever serve the stale remote PFN.
        mmu.shootdown(vpn, asid)

        resolved = self.fabric.migrate(asid, page_size, cycle + self.fault_overhead_cycles)
        tenant.faults += 1

        tenant.resident[vpn] = page_size
        tenant.resident_bytes += page_size
        self._evict_over_budget(tenant, protect=vpn)
        return resolved

    def _evict_over_budget(self, tenant: TierTenant, protect: int = -1) -> None:
        """Evict migrated pages past the tenant's budget.

        Victim order follows the tier's eviction policy; a page whose
        walk is currently in flight is never evicted, nor is ``protect``
        — the page the current fault just migrated in.  The engine is
        about to retry that page's translation, so unmapping it again
        would refault it on the spot and livelock the fault loop (MRU
        order would otherwise pick it first every time).  Every eviction
        unmaps the page and routes through the ASID-tagged
        ``MMU.shootdown`` so other contexts' shared structures are
        swept of it too.
        """
        mmu = self._mmu
        assert mmu is not None  # only reached from handle_fault, post-bind
        pts = mmu.pts
        asid = tenant.asid
        page_size = self.page_size
        resident = tenant.resident
        mru = self.eviction == "mru"
        while tenant.resident_bytes > tenant.budget_bytes:
            evicted = None
            candidates = reversed(resident) if mru else resident
            for vpn in candidates:
                if vpn == protect:
                    continue
                # Never evict a page whose walk is currently in flight.
                if pts is None or pts.peek(vpn, asid) is None:
                    evicted = vpn
                    break
            if evicted is None:
                break
            size = resident.pop(evicted)
            tenant.resident_bytes -= size
            tenant.bump_residency_epoch()
            base = evicted << self._vpn_shift
            tenant.space.page_table.unmap_page(base, page_size)
            mmu.shootdown(evicted, asid)
            tenant.evictions += 1

    # -- aggregates ------------------------------------------------------ #

    def residency_epoch(self, asid: int) -> int:
        """The tenant's residency epoch (0 for unregistered ASIDs).

        Moves whenever a page is evicted from the tenant's resident set,
        so FAST-fidelity timing caches can tell whether their converged
        tile timings were measured under the current residency regime
        (see :class:`TierTenant` for why only removals count).
        """
        tenant = self.tenants.get(asid)
        return tenant.residency_epoch if tenant is not None else 0

    def migrated_bytes_of(self, asid: int) -> int:
        """Bytes migrated in for one tenant — read from the fabric's
        usage record, the single source of attribution (it survives
        :meth:`unregister_tenant`, so departed tenants stay readable)."""
        return self.fabric.usage_of(asid).bytes_moved

    @property
    def faults(self) -> int:
        """Total faults across all tenants."""
        return sum(t.faults for t in self.tenants.values())

    @property
    def evictions(self) -> int:
        """Total evictions across all tenants."""
        return sum(t.evictions for t in self.tenants.values())

    @property
    def migrated_bytes(self) -> int:
        """Total bytes migrated across the tier's fabric."""
        return self.fabric.total_bytes

    def __repr__(self) -> str:
        return (
            f"LocalMemoryTier(tenants={sorted(self.tenants)}, "
            f"eviction={self.eviction!r}, faults={self.faults})"
        )
