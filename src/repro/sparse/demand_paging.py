"""Demand-paging execution model for sparse embedding layers (Figure 16).

Instead of gathering remote embeddings in place (the NUMA mode of
Figure 15), the NPU page-faults on a missing vector and *migrates* the
enclosing page into local physical memory over the NPU↔NPU fabric,
then retries the access locally (Section VI-A).  The experiment's levers:

* **page size** — a 4 KB migration moves 16 vectors' worth of data for one
  256-byte vector; a 2 MB migration moves 8192 vectors' worth.  The paper's
  point: large pages are "no silver bullet" — redundant prefetch traffic
  and memory bloat make them catastrophically slow for sparse access.
* **MMU design** — the fault/translation *bursts* of a gather hammer the
  translation machinery; the baseline IOMMU's 8 walkers throttle both the
  gather and the (dense) MLP phases, while NeuMMU tracks the oracle.

The embedding gather runs through the real
:class:`~repro.core.engine.TranslationEngine` driven by the first-class
memory-tier subsystem (:mod:`repro.memory.tiering`): a
:class:`~repro.memory.tiering.LocalMemoryTier` tracks residency against
the local budget and a :class:`~repro.memory.tiering.MigrationFabric`
charges each page move; popularity-skewed (Zipfian) lookups give migrated
hot pages genuine reuse; the bounded budget forces eviction (thrash) when
migrations outpace reuse.

Everything is normalized against the 4 KB-page oracular MMU, matching the
paper's presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..core.engine import TranslationEngine
from ..core.mmu import MMU, MMUConfig
from ..core.stats import RunSummary
from ..memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K, page_offset_bits
from ..memory.allocator import AddressSpace, Segment
from ..memory.dram import MainMemory
from ..memory.tiering import LocalMemoryTier, MigrationFabric
from ..npu.config import NPUConfig
from ..npu.simulator import NPUSimulator, run_workload
from ..workloads.cnn import Workload
from ..workloads.embedding import EmbeddingTableSpec, RecSysModel, ZipfSampler
from ..workloads.layers import DenseLayer
from .multi_npu import shard_model
from .numa import nvlink_link
from .recsys import RecSysSystem

MB = 1024 * 1024


@dataclass(frozen=True)
class DemandPagingConfig:
    """Parameters of the Figure 16 experiment."""

    n_npus: int = 4
    #: Batches simulated; statistics are taken after ``warm_batches``.
    batches: int = 40
    warm_batches: int = 15
    #: Popularity skew of embedding lookups (production recsys traffic is
    #: strongly skewed; 0 degenerates to uniform).
    zipf_s: float = 1.2
    seed: int = 7
    #: Local-memory budget for migrated remote pages.
    local_budget_bytes: int = 256 * MB
    #: Runtime cost of taking one fault (driver + queueing), before the
    #: page transfer itself.
    fault_overhead_cycles: float = 500.0
    #: Scaled-down table rows (full production tables would only slow the
    #: simulation; hot-set-to-budget ratios are preserved — see DESIGN.md).
    table_rows: int = 1_000_000


@dataclass
class DemandPagingResult:
    """Measured behaviour of one (model, MMU, page size) cell."""

    model: str
    mmu_name: str
    page_size: int
    batch: int
    embedding_cycles_per_batch: float
    dense_cycles_per_batch: float
    faults_per_batch: float
    migrated_bytes_per_batch: float
    evictions_per_batch: float
    mmu_summary: RunSummary

    @property
    def total_cycles_per_batch(self) -> float:
        return self.embedding_cycles_per_batch + self.dense_cycles_per_batch


class DemandPagingSimulator:
    """Simulates NPU0's per-batch embedding gather under demand paging."""

    def __init__(
        self,
        model: RecSysModel,
        mmu_config: MMUConfig,
        batch: int,
        system: Optional[DemandPagingConfig] = None,
        npu_config: Optional[NPUConfig] = None,
    ):
        self.system = system or DemandPagingConfig()
        self.npu_config = npu_config or NPUConfig()
        self.batch = batch
        self.mmu_config = mmu_config
        self.model = _scaled_model(model, self.system.table_rows)
        self.sharded = shard_model(self.model, self.system.n_npus)
        self.page_size = mmu_config.page_size
        self._vpn_shift = page_offset_bits(self.page_size)
        self._link = nvlink_link(self.npu_config.interconnect)

        # Virtual memory: local tables are fully mapped; remote tables are
        # reserved but unmapped — first touch faults and migrates.
        self.space = AddressSpace(
            memory_bytes=64 * 1024**3, page_size=self.page_size
        )
        local_names = {t.name for t in self.sharded.local_tables(0)}
        self._segments: List[Tuple[EmbeddingTableSpec, Segment, bool]] = []
        for table in self.model.tables:
            local = table.name in local_names
            seg = self.space.alloc_segment(
                f"emb.{table.name}", table.nbytes, populate=local
            )
            self._segments.append((table, seg, local))

        self.mmu = MMU(mmu_config, self.space.page_table)
        self.memory = MainMemory(self.npu_config.memory)
        # The first-class paging tier: residency + budget + eviction live
        # in repro.memory.tiering; this simulator is its single tenant
        # (ASID 0) on a one-lane fabric.  Faults and evictions route
        # through MMU.shootdown, so no cached translation can ever serve
        # a stale remote PFN; the engine drops its batched-run memo on
        # every fault for the same reason.
        self.fabric = MigrationFabric(self._link, slots=1)
        self.tier = LocalMemoryTier(
            self.fabric,
            page_size=self.page_size,
            fault_overhead_cycles=self.system.fault_overhead_cycles,
        )
        self.tier.bind(self.mmu)
        self._tenant = self.tier.register_tenant(
            0, self.space, self.system.local_budget_bytes
        )
        self.engine = TranslationEngine(
            self.mmu, self.memory, fault_handler=self.tier.handle_fault
        )
        self.sampler = ZipfSampler(self.system.zipf_s, seed=self.system.seed)

    # ------------------------------------------------------------------ #
    # tier views (historical attribute names)                            #
    # ------------------------------------------------------------------ #

    @property
    def faults(self) -> int:
        """Page faults taken so far."""
        return self._tenant.faults

    @property
    def evictions(self) -> int:
        """Budget evictions performed so far."""
        return self._tenant.evictions

    @property
    def migrated_bytes(self) -> int:
        """Bytes migrated over the fabric so far."""
        return self.tier.migrated_bytes_of(0)

    @property
    def _resident(self):
        return self._tenant.resident

    @property
    def _resident_bytes(self) -> int:
        return self._tenant.resident_bytes

    # ------------------------------------------------------------------ #
    # gather                                                             #
    # ------------------------------------------------------------------ #

    def _batch_transactions(self) -> List[Tuple[int, int]]:
        """One batch slice's embedding lookups as DMA transactions."""
        slice_samples = max(1, self.batch // self.system.n_npus)
        txs: List[Tuple[int, int]] = []
        for table, seg, _local in self._segments:
            count = slice_samples * self.model.lookups_per_table
            rows = self.sampler.sample(table.rows, count)
            for row in rows:
                va = seg.va + int(row) * table.vector_bytes
                txs.append((va, table.vector_bytes))
        return txs

    def run(self) -> DemandPagingResult:
        """Run the batch stream; return post-warmup per-batch averages."""
        cycle = 0.0
        measured: List[float] = []
        faults_before = evict_before = migrated_before = 0
        for batch_index in range(self.system.batches):
            if batch_index == self.system.warm_batches:
                faults_before = self.faults
                evict_before = self.evictions
                migrated_before = self.migrated_bytes
            txs = self._batch_transactions()
            # Touched pages' reuse spans batches, so keep MMU/memory state.
            result = self.engine.run_burst(txs, cycle)
            duration = result.data_end_cycle - cycle
            if batch_index >= self.system.warm_batches:
                measured.append(duration)
            cycle = result.data_end_cycle + 1

        n_measured = max(1, len(measured))
        dense = self._dense_cycles_per_batch()
        return DemandPagingResult(
            model=self.model.name,
            mmu_name=self.mmu_config.name,
            page_size=self.page_size,
            batch=self.batch,
            embedding_cycles_per_batch=sum(measured) / n_measured,
            dense_cycles_per_batch=dense,
            faults_per_batch=(self.faults - faults_before) / n_measured,
            migrated_bytes_per_batch=(self.migrated_bytes - migrated_before)
            / n_measured,
            evictions_per_batch=(self.evictions - evict_before) / n_measured,
            mmu_summary=self.mmu.summary(),
        )

    # ------------------------------------------------------------------ #
    # dense phase                                                        #
    # ------------------------------------------------------------------ #

    def _dense_cycles_per_batch(self) -> float:
        """MLP + interaction phase under the *same* MMU design.

        The dense phase streams MLP weights through the very same
        translation machinery, so the IOMMU's dense-workload slowdown
        (Figure 8) applies here too.  We simulate the model's MLP stacks
        as a dense workload with the run's MMU configuration.
        """
        batch_slice = max(1, self.batch // self.system.n_npus)
        layers = []
        if self.model.bottom_mlp is not None:
            for i, (in_w, out_w) in enumerate(self.model.bottom_mlp.layer_dims):
                layers.append(DenseLayer(f"bot{i}", batch_slice, in_w, out_w))
        for i, (in_w, out_w) in enumerate(self.model.top_mlp.layer_dims):
            layers.append(DenseLayer(f"top{i}", batch_slice, in_w, out_w))
        workload = Workload(
            name=f"{self.model.name.lower()}_mlp_b{batch_slice:02d}",
            batch=batch_slice,
            layers=tuple(layers),
        )
        mlp_result = run_workload(workload, self.mmu_config, self.npu_config)

        recsys = RecSysSystem(
            self.model, n_npus=self.system.n_npus, config=self.npu_config
        )
        interaction = recsys.interaction_cycles(batch_slice)
        return mlp_result.total_cycles + interaction


def _scaled_model(model: RecSysModel, rows: int) -> RecSysModel:
    """The same model with every table resized to ``rows``."""
    tables = tuple(replace(t, rows=rows) for t in model.tables)
    return replace(model, tables=tables)


def demand_paging_cell(
    model: RecSysModel,
    mmu_config: MMUConfig,
    batch: int,
    system: Optional[DemandPagingConfig] = None,
    npu_config: Optional[NPUConfig] = None,
) -> DemandPagingResult:
    """One Figure 16 bar: run a (model, MMU, page size, batch) cell."""
    sim = DemandPagingSimulator(model, mmu_config, batch, system, npu_config)
    return sim.run()
