"""Multi-NPU system: embedding-table sharding and all-to-all volumes.

Figure 5's accelerator-centric parallelization: embedding tables are
model-parallelized (each NPU stores a subset of tables) while the MLPs are
data-parallelized (each NPU processes a batch slice).  After the lookup
phase, an all-to-all shuffle turns "all of the minibatch's lookups for my
tables" into "all tables' lookups for my slice of the minibatch".

This module is the pure arithmetic of that structure — who owns which
table, how many bytes cross which link — consumed by both the NUMA latency
model (:mod:`repro.sparse.recsys`) and the demand-paging simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..workloads.embedding import EmbeddingTableSpec, RecSysModel


@dataclass(frozen=True)
class Shard:
    """One NPU's slice of the model."""

    npu: int
    tables: Tuple[EmbeddingTableSpec, ...]

    @property
    def embedding_bytes(self) -> int:
        return sum(t.nbytes for t in self.tables)


@dataclass(frozen=True)
class ShardedModel:
    """A recsys model partitioned across ``n_npus`` devices (Figure 5)."""

    model: RecSysModel
    n_npus: int
    shards: Tuple[Shard, ...]

    def owner_of(self, table_index: int) -> int:
        """NPU holding the given table (round-robin placement)."""
        if not 0 <= table_index < len(self.model.tables):
            raise IndexError(f"no table {table_index}")
        return table_index % self.n_npus

    def local_tables(self, npu: int) -> Tuple[EmbeddingTableSpec, ...]:
        """Tables resident on ``npu``."""
        return self.shards[npu].tables

    # ------------------------------------------------------------------ #
    # all-to-all accounting                                              #
    # ------------------------------------------------------------------ #

    def lookup_bytes_per_npu(self, batch: int) -> int:
        """Bytes each owner NPU gathers locally during the lookup phase.

        Each owner looks up *the whole minibatch* against its tables
        (model parallelism).
        """
        per_npu = [
            sum(
                t.vector_bytes * self.model.lookups_per_table * batch
                for t in shard.tables
            )
            for shard in self.shards
        ]
        return max(per_npu) if per_npu else 0

    def alltoall_send_bytes(self, npu: int, batch: int) -> int:
        """Bytes ``npu`` must ship to *other* NPUs after its local lookups.

        Owner ``npu`` gathered ``batch`` lookups per local table; every
        other NPU needs its ``batch / n`` slice of each.
        """
        mine = sum(
            t.vector_bytes * self.model.lookups_per_table * batch
            for t in self.shards[npu].tables
        )
        return mine * (self.n_npus - 1) // self.n_npus

    def alltoall_recv_bytes(self, npu: int, batch: int) -> int:
        """Bytes ``npu`` receives: its batch slice from all remote tables."""
        slice_samples = batch // self.n_npus if self.n_npus > 1 else batch
        remote = 0
        for i, table in enumerate(self.model.tables):
            if self.owner_of(i) != npu:
                remote += table.vector_bytes * self.model.lookups_per_table * slice_samples
        return remote

    def alltoall_total_bytes(self, batch: int) -> int:
        """Total bytes crossing the interconnect in the shuffle."""
        return sum(self.alltoall_send_bytes(n, batch) for n in range(self.n_npus))


def shard_model(model: RecSysModel, n_npus: int) -> ShardedModel:
    """Round-robin the model's tables across ``n_npus`` (Figure 5: "each
    GPU is allocated with 1/N of the embedding tables")."""
    if n_npus <= 0:
        raise ValueError("need at least one NPU")
    buckets: List[List[EmbeddingTableSpec]] = [[] for _ in range(n_npus)]
    for i, table in enumerate(model.tables):
        buckets[i % n_npus].append(table)
    shards = tuple(
        Shard(npu=i, tables=tuple(tables)) for i, tables in enumerate(buckets)
    )
    return ShardedModel(model=model, n_npus=n_npus, shards=shards)
