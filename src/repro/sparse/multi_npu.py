"""Multi-NPU system: embedding-table sharding and all-to-all volumes.

Figure 5's accelerator-centric parallelization: embedding tables are
model-parallelized (each NPU stores a subset of tables) while the MLPs are
data-parallelized (each NPU processes a batch slice).  After the lookup
phase, an all-to-all shuffle turns "all of the minibatch's lookups for my
tables" into "all tables' lookups for my slice of the minibatch".

This module is the pure arithmetic of that structure — who owns which
table, how many bytes cross which link — consumed by both the NUMA latency
model (:mod:`repro.sparse.recsys`) and the demand-paging simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..workloads.embedding import EmbeddingTableSpec, RecSysModel


@dataclass(frozen=True)
class Shard:
    """One NPU's slice of the model."""

    npu: int
    tables: Tuple[EmbeddingTableSpec, ...]

    @property
    def embedding_bytes(self) -> int:
        return sum(t.nbytes for t in self.tables)


@dataclass(frozen=True)
class ShardedModel:
    """A recsys model partitioned across ``n_npus`` devices (Figure 5)."""

    model: RecSysModel
    n_npus: int
    shards: Tuple[Shard, ...]

    def owner_of(self, table_index: int) -> int:
        """NPU holding the given table (round-robin placement)."""
        if not 0 <= table_index < len(self.model.tables):
            raise IndexError(f"no table {table_index}")
        return table_index % self.n_npus

    def local_tables(self, npu: int) -> Tuple[EmbeddingTableSpec, ...]:
        """Tables resident on ``npu``."""
        return self.shards[npu].tables

    # ------------------------------------------------------------------ #
    # all-to-all accounting                                              #
    # ------------------------------------------------------------------ #

    def batch_slices(self, batch: int) -> List[int]:
        """Exact per-NPU sample counts: an even partition of ``batch``.

        The first ``batch % n_npus`` NPUs take one extra sample, so the
        slices always sum to ``batch`` — the invariant the byte-conservation
        arithmetic below rests on.
        """
        if batch < 0:
            raise ValueError(f"batch cannot be negative, got {batch}")
        base, extra = divmod(batch, self.n_npus)
        return [base + (1 if npu < extra else 0) for npu in range(self.n_npus)]

    def alltoall_matrix(self, batch: int) -> List[List[int]]:
        """Exact shuffle volume: ``matrix[o][d]`` bytes flow owner → dest.

        Owner ``o`` gathered the whole minibatch's lookups for its tables;
        destination ``d`` needs the rows for its ``batch_slices(batch)[d]``
        samples of every table it does not own.  Both the send and receive
        totals are projections of this one matrix, so
        ``sum(sends) == sum(recvs)`` holds for *every* (n_npus, batch,
        table-count) combination — the seed's independently-rounded
        formulas leaked bytes whenever the batch or the tables divided
        unevenly.
        """
        slices = self.batch_slices(batch)
        lookups = self.model.lookups_per_table
        matrix = [[0] * self.n_npus for _ in range(self.n_npus)]
        for owner, shard in enumerate(self.shards):
            bytes_per_sample = sum(t.vector_bytes for t in shard.tables) * lookups
            for dest in range(self.n_npus):
                if dest != owner:
                    matrix[owner][dest] = bytes_per_sample * slices[dest]
        return matrix

    def lookup_bytes_per_npu(self, batch: int) -> List[int]:
        """Bytes each owner NPU gathers locally during the lookup phase.

        Each owner looks up *the whole minibatch* against its tables
        (model parallelism); element ``i`` is NPU ``i``'s gather volume.
        Use :meth:`max_lookup_bytes` for the critical-path (largest) shard.
        """
        return [
            sum(
                t.vector_bytes * self.model.lookups_per_table * batch
                for t in shard.tables
            )
            for shard in self.shards
        ]

    def max_lookup_bytes(self, batch: int) -> int:
        """Largest per-NPU lookup gather — the phase's critical path."""
        per_npu = self.lookup_bytes_per_npu(batch)
        return max(per_npu) if per_npu else 0

    def alltoall_send_bytes(self, npu: int, batch: int) -> int:
        """Bytes ``npu`` ships to *other* NPUs after its local lookups."""
        row = self.alltoall_matrix(batch)[npu]
        return sum(row)

    def alltoall_recv_bytes(self, npu: int, batch: int) -> int:
        """Bytes ``npu`` receives: its batch slice from all remote tables."""
        matrix = self.alltoall_matrix(batch)
        return sum(matrix[owner][npu] for owner in range(self.n_npus))

    def alltoall_total_bytes(self, batch: int) -> int:
        """Total bytes crossing the interconnect in the shuffle."""
        return sum(sum(row) for row in self.alltoall_matrix(batch))


def shard_model(model: RecSysModel, n_npus: int) -> ShardedModel:
    """Round-robin the model's tables across ``n_npus`` (Figure 5: "each
    GPU is allocated with 1/N of the embedding tables")."""
    if n_npus <= 0:
        raise ValueError("need at least one NPU")
    buckets: List[List[EmbeddingTableSpec]] = [[] for _ in range(n_npus)]
    for i, table in enumerate(model.tables):
        buckets[i % n_npus].append(table)
    shards = tuple(
        Shard(npu=i, tables=tuple(tables)) for i, tables in enumerate(buckets)
    )
    return ShardedModel(model=model, n_npus=n_npus, shards=shards)
