"""System-interconnect and remote-access models (Section V, Table I).

Three transports matter to the case study:

* **CPU bounce** — what an MMU-less NPU is stuck with: the CPU runtime
  copies remote embeddings to a pinned host buffer over PCIe, then copies
  them again to the destination NPU.  Two bus traversals, a host staging
  copy, and per-transfer runtime overheads.
* **NUMA(slow)** — NeuMMU lets the NPU page-fault/translate to a remote
  physical address and gather directly over the legacy PCIe interconnect.
* **NUMA(fast)** — the same over an NVLINK-class NPU↔NPU fabric.

Links are latency + bandwidth servers with an efficiency factor for
fine-grained traffic (small reads waste header/completion bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..npu.config import InterconnectConfig


@dataclass(frozen=True)
class LinkModel:
    """A simple latency/bandwidth/efficiency link."""

    name: str
    latency_cycles: float
    bandwidth_bytes_per_cycle: float
    #: Fraction of raw bandwidth usable by the traffic class (packetization
    #: and read-completion overhead for fine-grained transfers).
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ValueError("link latency cannot be negative")
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def effective_bandwidth(self) -> float:
        """Usable bytes per cycle."""
        return self.bandwidth_bytes_per_cycle * self.efficiency

    def bulk_transfer_cycles(self, nbytes: int) -> float:
        """One large DMA transfer: latency + streaming time."""
        if nbytes < 0:
            raise ValueError("transfer size cannot be negative")
        if nbytes == 0:
            return 0.0
        return self.latency_cycles + nbytes / self.effective_bandwidth

    def gather_cycles(
        self, n_requests: int, request_bytes: int, outstanding: int = 32
    ) -> float:
        """Fine-grained gather of ``n_requests`` × ``request_bytes``.

        Requests are pipelined ``outstanding`` deep, so time is the larger
        of the bandwidth bound and the latency bound.
        """
        if n_requests < 0 or request_bytes < 0:
            raise ValueError("gather parameters cannot be negative")
        if n_requests == 0 or request_bytes == 0:
            return 0.0
        if outstanding <= 0:
            raise ValueError("outstanding requests must be positive")
        bandwidth_bound = n_requests * request_bytes / self.effective_bandwidth
        latency_bound = n_requests * self.latency_cycles / outstanding
        return self.latency_cycles + max(bandwidth_bound, latency_bound)


@dataclass(frozen=True)
class HostRuntime:
    """CPU-runtime costs of the MMU-less copy path (Section III-B).

    Each CPU-orchestrated transfer pays a submission/completion overhead
    (driver + runtime, ~microseconds), and staged data crosses host memory
    twice (copy-in + copy-out of the pinned buffer).
    """

    transfer_overhead_cycles: float = 2500.0  # ~2.5 us at 1 GHz
    host_memory_bandwidth_bytes_per_cycle: float = 100.0  # ~100 GB/s

    def staging_copy_cycles(self, nbytes: int) -> float:
        """Time for the host-side staging memcpy of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("staging size cannot be negative")
        return nbytes / self.host_memory_bandwidth_bytes_per_cycle


def pcie_link(config: InterconnectConfig, fine_grained: bool = False) -> LinkModel:
    """The legacy CPU↔NPU / NPU↔NPU PCIe link (Table I: 16 GB/s)."""
    return LinkModel(
        name="pcie",
        latency_cycles=config.numa_latency_cycles,
        bandwidth_bytes_per_cycle=config.cpu_npu_bandwidth_bytes_per_cycle,
        efficiency=0.5 if fine_grained else 0.9,
    )


def nvlink_link(config: InterconnectConfig, fine_grained: bool = False) -> LinkModel:
    """The NVLINK-class NPU↔NPU fabric (Table I: 160 GB/s)."""
    return LinkModel(
        name="nvlink",
        latency_cycles=config.numa_latency_cycles,
        bandwidth_bytes_per_cycle=config.npu_npu_bandwidth_bytes_per_cycle,
        efficiency=0.8 if fine_grained else 0.95,
    )
