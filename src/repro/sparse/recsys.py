"""End-to-end recommendation-system latency model (Figure 15).

One inference batch runs the Figure 4/5 pipeline on a multi-NPU system:

1. **Embedding lookup** — each owner NPU gathers the whole batch's vectors
   from its local tables, then the all-to-all shuffle moves every NPU's
   batch slice into place.  The shuffle's transport is the experiment's
   variable:

   * ``baseline``   — MMU-less NPU: owner→CPU copy, host staging, CPU→dest
     copy, each leg over PCIe with per-transfer runtime overhead
     (Section III-B's "multi-step data copies and data duplication");
   * ``numa_slow``  — NeuMMU-enabled fine-grained NUMA gather over PCIe;
   * ``numa_fast``  — the same over the NVLINK-class NPU↔NPU fabric.

2. **Dense phase** — bottom MLP (DLRM), feature interaction
   (reduction), top MLP, all data-parallel on the batch slice; timed with
   the systolic model, overlapped with local weight streaming.

3. **Else** — framework/launch overhead and concatenation traffic.

The output is a labelled latency breakdown matching Figure 15's stacked
bars (GEMM / Reduction / Else / Embedding lookup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..npu.config import NPUConfig
from ..npu.systolic import SystolicArrayModel, VectorUnitModel
from ..workloads.embedding import MLPStack, RecSysModel
from .multi_npu import ShardedModel, shard_model
from .numa import HostRuntime, LinkModel, nvlink_link, pcie_link

#: Transport selector for the embedding shuffle.
TRANSPORTS = ("baseline", "numa_slow", "numa_fast")


@dataclass(frozen=True)
class LatencyBreakdown:
    """Figure 15's stacked components, in cycles."""

    gemm: float
    reduction: float
    other: float
    embedding: float

    @property
    def total(self) -> float:
        return self.gemm + self.reduction + self.other + self.embedding

    def normalized_to(self, reference: "LatencyBreakdown") -> Dict[str, float]:
        """Each component as a fraction of ``reference``'s total."""
        if reference.total <= 0:
            raise ValueError("reference latency must be positive")
        scale = reference.total
        return {
            "gemm": self.gemm / scale,
            "reduction": self.reduction / scale,
            "other": self.other / scale,
            "embedding": self.embedding / scale,
            "total": self.total / scale,
        }


@dataclass
class RecSysSystem:
    """A recsys model sharded over a multi-NPU system (Figure 5)."""

    model: RecSysModel
    n_npus: int = 4
    config: NPUConfig = field(default_factory=NPUConfig)
    host: HostRuntime = field(default_factory=HostRuntime)
    #: Fixed framework overhead charged once per phase boundary.
    framework_overhead_cycles: float = 2000.0

    def __post_init__(self) -> None:
        self.sharded: ShardedModel = shard_model(self.model, self.n_npus)
        self._systolic = SystolicArrayModel(self.config)
        self._vector = VectorUnitModel(self.config)

    # ------------------------------------------------------------------ #
    # phase models                                                       #
    # ------------------------------------------------------------------ #

    def local_gather_cycles(self, batch: int) -> float:
        """Owner-side gather of the whole batch from local HBM.

        Random vector reads pipelined against local memory (Table I
        latency/bandwidth).  The slowest (largest) shard gates the phase,
        so the critical path is the max across owners.
        """
        mem = self.config.memory
        bytes_needed = self.sharded.max_lookup_bytes(batch)
        if bytes_needed == 0:
            return 0.0
        vectors = max(1, bytes_needed // max(1, self.model.tables[0].vector_bytes))
        bandwidth_bound = bytes_needed / mem.bandwidth_bytes_per_cycle
        latency_bound = vectors * mem.access_latency_cycles / 64.0
        return mem.access_latency_cycles + max(bandwidth_bound, latency_bound)

    def shuffle_cycles(self, batch: int, transport: str) -> float:
        """The all-to-all exchange under the chosen transport."""
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        total_bytes = self.sharded.alltoall_total_bytes(batch)
        if total_bytes == 0:
            return 0.0
        if transport == "baseline":
            return self._cpu_bounce_cycles(total_bytes)
        vector_bytes = self.model.tables[0].vector_bytes
        n_requests = max(1, total_bytes // vector_bytes)
        if transport == "numa_slow":
            # PCIe remote loads: shallow outstanding-request queue (legacy
            # host bridge) keeps fine-grained NUMA latency-exposed.
            link = pcie_link(self.config.interconnect, fine_grained=True)
            outstanding = 8
        else:
            link = nvlink_link(self.config.interconnect, fine_grained=True)
            outstanding = 64
        # One fine-grained pass, no CPU involvement: the destination NPUs
        # pull their slices directly via remote (CC-NUMA) loads.  One
        # framework overhead covers arming the gather kernel.
        return self.framework_overhead_cycles + link.gather_cycles(
            n_requests, vector_bytes, outstanding=outstanding
        )

    def _cpu_bounce_cycles(self, total_bytes: int) -> float:
        """The MMU-less path: NPU→CPU then CPU→NPU, staged in host memory.

        The data crosses PCIe twice and host memory twice; the CPU runtime
        pays a submission overhead per transfer leg (one up-leg per owner,
        one down-leg per destination).
        """
        link = pcie_link(self.config.interconnect, fine_grained=False)
        bus = 2 * total_bytes / link.effective_bandwidth
        staging = 2 * self.host.staging_copy_cycles(total_bytes)
        # One up-leg per table-owning NPU, one down-leg per destination.
        owners = sum(1 for shard in self.sharded.shards if shard.tables)
        legs = owners + self.n_npus
        overheads = legs * self.host.transfer_overhead_cycles
        return link.latency_cycles + bus + staging + overheads

    def mlp_cycles(self, mlp: MLPStack | None, batch_slice: int) -> float:
        """A data-parallel MLP stack on one NPU's batch slice.

        Each layer overlaps compute with streaming its weights from local
        memory (double buffering), so a layer costs the max of the two.
        """
        if mlp is None:
            return 0.0
        mem = self.config.memory
        total = 0.0
        for in_w, out_w in mlp.layer_dims:
            compute = self._systolic.gemm_cycles(max(1, batch_slice), in_w, out_w)
            stream = (in_w * out_w * 4) / mem.bandwidth_bytes_per_cycle
            total += max(compute, stream) + mem.access_latency_cycles
        return total

    def interaction_cycles(self, batch_slice: int) -> float:
        """Feature interaction: pairwise dots (DLRM) or GMF product (NCF).

        Multi-hot lookups are first sum-pooled per table, so the
        interaction operates on one vector per table (+ the bottom-MLP
        output for DLRM); the pooling reduction itself is also charged.
        """
        dim = self.model.tables[0].dim
        pooling = self._vector.reduction_cycles(
            batch_slice * self.model.lookups_per_sample * dim
        )
        vectors = len(self.model.tables) + (1 if self.model.bottom_mlp else 0)
        if self.model.interaction == "dot":
            pairs = vectors * (vectors - 1) // 2
            elements = batch_slice * pairs * dim
        else:
            elements = batch_slice * dim
        return pooling + self._vector.reduction_cycles(elements)

    # ------------------------------------------------------------------ #
    # end to end                                                         #
    # ------------------------------------------------------------------ #

    def run_batch(self, batch: int, transport: str) -> LatencyBreakdown:
        """Latency breakdown of one inference batch (Figure 15 bar)."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        batch_slice = max(1, batch // self.n_npus)

        embedding = (
            self.local_gather_cycles(batch)
            + self.shuffle_cycles(batch, transport)
        )
        gemm = self.mlp_cycles(self.model.bottom_mlp, batch_slice) + self.mlp_cycles(
            self.model.top_mlp, batch_slice
        )
        reduction = self.interaction_cycles(batch_slice)
        # Concats/activation plumbing plus per-phase framework overhead.
        concat_bytes = batch_slice * self.model.gathered_bytes_per_sample()
        other = (
            3 * self.framework_overhead_cycles
            + concat_bytes / self.config.memory.bandwidth_bytes_per_cycle
        )
        return LatencyBreakdown(
            gemm=gemm, reduction=reduction, other=other, embedding=embedding
        )

    def compare_transports(self, batch: int) -> Dict[str, LatencyBreakdown]:
        """All three Figure 15 bars for one batch size."""
        return {t: self.run_batch(batch, t) for t in TRANSPORTS}
