"""Sparse embedding case study: multi-NPU NUMA and demand paging (Section V, VI-A).

* :mod:`repro.sparse.numa` — interconnect models (CPU-bounce / PCIe NUMA /
  NVLINK NUMA) with Table I's latency/bandwidth parameters;
* :mod:`repro.sparse.multi_npu` — Figure 5's model-parallel table sharding
  and all-to-all volume accounting;
* :mod:`repro.sparse.recsys` — the Figure 15 end-to-end latency breakdown;
* :mod:`repro.sparse.demand_paging` — the Figure 16 page-migration study.
"""

from .demand_paging import (
    DemandPagingConfig,
    DemandPagingResult,
    DemandPagingSimulator,
    demand_paging_cell,
)
from .multi_npu import Shard, ShardedModel, shard_model
from .numa import HostRuntime, LinkModel, nvlink_link, pcie_link
from .recsys import TRANSPORTS, LatencyBreakdown, RecSysSystem

__all__ = [
    "TRANSPORTS",
    "DemandPagingConfig",
    "DemandPagingResult",
    "DemandPagingSimulator",
    "HostRuntime",
    "LatencyBreakdown",
    "LinkModel",
    "RecSysSystem",
    "Shard",
    "ShardedModel",
    "demand_paging_cell",
    "nvlink_link",
    "pcie_link",
    "shard_model",
]
