"""RNN workload definitions (DeepBench-style).

The paper evaluates "three RNNs from DeepBench, one regular GEMV (general
matrix-vector multiplication) based RNN (RNN-1) and two LSTM based RNNs
(RNN-2/RNN-3)" (Section II-C).  We use representative DeepBench inference
geometries: large hidden dimensions whose per-timestep weight matrices far
exceed the weight scratchpad, forcing weights to re-stream every timestep —
the memory-phase-bound behaviour that makes RNNs the most
translation-sensitive workloads in Figures 8-12.
"""

from __future__ import annotations

from .cnn import Workload
from .layers import RecurrentLayer


def vanilla_rnn(batch: int = 1) -> Workload:
    """RNN-1: a GEMV-style vanilla RNN (DeepBench h=2560 class)."""
    layer = RecurrentLayer(
        name="rnn",
        batch=batch,
        input_size=2560,
        hidden_size=2560,
        seq_len=50,
        gates=1,
    )
    return Workload(name=f"rnn_b{batch:02d}", batch=batch, layers=(layer,))


def lstm_medium(batch: int = 1) -> Workload:
    """RNN-2: an LSTM with h=1536 over 50 timesteps (DeepBench class)."""
    layer = RecurrentLayer(
        name="lstm",
        batch=batch,
        input_size=1536,
        hidden_size=1536,
        seq_len=50,
        gates=4,
    )
    return Workload(name=f"lstm1536_b{batch:02d}", batch=batch, layers=(layer,))


def lstm_large(batch: int = 1) -> Workload:
    """RNN-3: an LSTM with h=2048 over 96 timesteps (DeepBench class)."""
    layer = RecurrentLayer(
        name="lstm",
        batch=batch,
        input_size=2048,
        hidden_size=2048,
        seq_len=96,
        gates=4,
    )
    return Workload(name=f"lstm2048_b{batch:02d}", batch=batch, layers=(layer,))
