"""DNN workload zoo: the paper's dense suite plus the sparse recsys models.

Dense networks (Section II-C): CNN-1 (AlexNet), CNN-2 (GoogLeNet),
CNN-3 (ResNet-50), RNN-1 (GEMV RNN), RNN-2/RNN-3 (LSTMs).  Sparse models
(Section V): NCF and DLRM, defined in :mod:`repro.workloads.embedding`.
"""

from .cnn import Workload, alexnet, googlenet, resnet50
from .layers import ConvLayer, DenseLayer, RecurrentLayer
from .registry import (
    DENSE_BATCHES,
    DENSE_WORKLOADS,
    common_layer_workload,
    dense_suite,
    dense_workload,
)
from .rnn import lstm_large, lstm_medium, vanilla_rnn

__all__ = [
    "DENSE_BATCHES",
    "DENSE_WORKLOADS",
    "ConvLayer",
    "DenseLayer",
    "RecurrentLayer",
    "Workload",
    "alexnet",
    "common_layer_workload",
    "dense_suite",
    "dense_workload",
    "googlenet",
    "lstm_large",
    "lstm_medium",
    "resnet50",
    "vanilla_rnn",
]
