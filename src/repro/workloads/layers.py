"""Layer shape definitions.

Layers are pure shape records: they know their tensors (for virtual-memory
allocation) and how to turn themselves into a tile schedule via the generic
planners in :mod:`repro.npu.tiling`.  Numeric weight values never matter to
translation behaviour, so none are stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..memory.layout import TensorLayout
from ..npu.config import NPUConfig
from ..npu.tiling import ConvGeometry, LayerSchedule, plan_conv, plan_gemm, plan_recurrent

#: tensor role ("ia"/"w") -> logical shape, outermost dim first.
TensorShapes = Dict[str, Tuple[int, ...]]


@dataclass(frozen=True)
class ConvLayer:
    """A 2-D convolution (NHWC activations, FHWC filters)."""

    name: str
    batch: int
    in_h: int
    in_w: int
    in_c: int
    out_c: int
    kernel: int
    stride: int = 1
    pad: int = 0

    @property
    def geometry(self) -> ConvGeometry:
        return ConvGeometry(
            batch=self.batch,
            in_h=self.in_h,
            in_w=self.in_w,
            in_c=self.in_c,
            out_c=self.out_c,
            kernel=self.kernel,
            stride=self.stride,
            pad=self.pad,
        )

    def tensor_shapes(self) -> TensorShapes:
        """Tensors the layer streams from DRAM."""
        return {
            "ia": (self.batch, self.in_h, self.in_w, self.in_c),
            "w": (self.out_c, self.kernel, self.kernel, self.in_c),
        }

    def build_schedule(
        self, config: NPUConfig, layouts: Dict[str, TensorLayout]
    ) -> LayerSchedule:
        """Tile schedule via the convolution planner."""
        return plan_conv(self.name, self.geometry, layouts["ia"], layouts["w"], config)

    @property
    def out_h(self) -> int:
        return self.geometry.out_h

    @property
    def out_w(self) -> int:
        return self.geometry.out_w


@dataclass(frozen=True)
class DenseLayer:
    """A fully-connected layer: (batch, in_features) × (in, out)."""

    name: str
    batch: int
    in_features: int
    out_features: int

    def tensor_shapes(self) -> TensorShapes:
        return {
            "ia": (self.batch, self.in_features),
            "w": (self.in_features, self.out_features),
        }

    def build_schedule(
        self, config: NPUConfig, layouts: Dict[str, TensorLayout]
    ) -> LayerSchedule:
        return plan_gemm(
            self.name,
            m=self.batch,
            k=self.in_features,
            n=self.out_features,
            ia_layout=layouts["ia"],
            w_layout=layouts["w"],
            config=config,
        )


@dataclass(frozen=True)
class RecurrentLayer:
    """A recurrent layer run over a sequence.

    ``gates=1`` models a vanilla (GEMV-style) RNN cell; ``gates=4`` an LSTM
    (input/forget/cell/output gates) — the two DeepBench flavours the paper
    evaluates as RNN-1 vs RNN-2/RNN-3.
    """

    name: str
    batch: int
    input_size: int
    hidden_size: int
    seq_len: int
    gates: int = 1

    def __post_init__(self) -> None:
        if self.gates not in (1, 4):
            raise ValueError(f"gates must be 1 (RNN) or 4 (LSTM), got {self.gates}")
        if self.seq_len <= 0:
            raise ValueError("sequence length must be positive")

    @property
    def gemm_k(self) -> int:
        """Reduction dim of the per-timestep GEMM: x_t ⧺ h_{t-1}."""
        return self.input_size + self.hidden_size

    @property
    def gemm_n(self) -> int:
        """Output dim of the per-timestep GEMM (all gates fused)."""
        return self.gates * self.hidden_size

    def tensor_shapes(self) -> TensorShapes:
        return {
            "ia": (self.seq_len, self.batch, self.gemm_k),
            "w": (self.gemm_k, self.gemm_n),
        }

    def build_schedule(
        self, config: NPUConfig, layouts: Dict[str, TensorLayout]
    ) -> LayerSchedule:
        return plan_recurrent(
            self.name,
            batch=self.batch,
            input_size=self.input_size,
            hidden_size=self.hidden_size,
            seq_len=self.seq_len,
            gates=self.gates,
            ia_layout=layouts["ia"],
            w_layout=layouts["w"],
            config=config,
        )


#: Every dense layer kind the planners understand.
Layer = (ConvLayer, DenseLayer, RecurrentLayer)
