"""Sparse embedding workloads: NCF and DLRM (Section III-A / V).

Both recommendation models share the two-phase structure of Figure 4:

1. an embedding *lookup* phase — "conceptually similar to a gather
   operation with very low temporal and spatial locality" — over lookup
   tables far larger than any single accelerator's memory;
2. a dense DNN phase (MLPs plus a feature-interaction step).

The paper uses MLPerf's NCF and Facebook's open-sourced DLRM.  We keep the
published MLP stacks and embedding dimensions but synthesize table row
counts at the memory-limited scale the paper motivates (hundreds of bytes
per vector, multi-GB per table) — the access *pattern* (few-hundred-byte
vectors, random rows, optional Zipfian popularity skew as observed in
production recommendation traffic) is what drives translation/NUMA
behaviour, not the table contents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmbeddingTableSpec:
    """One embedding lookup table."""

    name: str
    rows: int
    dim: int
    elem_bytes: int = 4

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.dim <= 0 or self.elem_bytes <= 0:
            raise ValueError(f"table {self.name!r} has non-positive geometry")

    @property
    def vector_bytes(self) -> int:
        """Bytes per embedding vector — "only several hundreds of bytes"."""
        return self.dim * self.elem_bytes

    @property
    def nbytes(self) -> int:
        """Total table footprint."""
        return self.rows * self.vector_bytes


@dataclass(frozen=True)
class MLPStack:
    """A chain of fully-connected layers given as feature widths."""

    name: str
    widths: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.widths) < 2:
            raise ValueError(f"MLP {self.name!r} needs at least two widths")
        if any(w <= 0 for w in self.widths):
            raise ValueError(f"MLP {self.name!r} has non-positive widths")

    @property
    def layer_dims(self) -> List[Tuple[int, int]]:
        """(in, out) pairs for each layer."""
        return list(zip(self.widths[:-1], self.widths[1:]))

    @property
    def weight_bytes(self) -> int:
        """Total weight footprint at fp32."""
        return sum(i * o * 4 for i, o in self.layer_dims)

    def macs(self, batch: int) -> int:
        """MACs for one forward pass at ``batch``."""
        return sum(batch * i * o for i, o in self.layer_dims)


@dataclass(frozen=True)
class RecSysModel:
    """A two-phase recommendation model (Figure 4 topology)."""

    name: str
    tables: Tuple[EmbeddingTableSpec, ...]
    #: Lookups per sample per table (1 = one-hot ids, as in NCF/DLRM-RM1).
    lookups_per_table: int
    bottom_mlp: MLPStack | None
    top_mlp: MLPStack
    #: "dot" (DLRM pairwise feature interaction) or "elementwise" (NCF GMF).
    interaction: str

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("a recsys model needs at least one table")
        if self.interaction not in ("dot", "elementwise"):
            raise ValueError(f"unknown interaction {self.interaction!r}")
        if self.lookups_per_table <= 0:
            raise ValueError("lookups_per_table must be positive")

    @property
    def embedding_bytes(self) -> int:
        """Total embedding-table footprint across all tables."""
        return sum(t.nbytes for t in self.tables)

    @property
    def lookups_per_sample(self) -> int:
        """Embedding vectors gathered per inference sample."""
        return len(self.tables) * self.lookups_per_table

    def gathered_bytes_per_sample(self) -> int:
        """Embedding bytes one sample needs."""
        return sum(
            t.vector_bytes * self.lookups_per_table for t in self.tables
        )


def ncf(embedding_dim: int = 64, rows: int = 8_000_000) -> RecSysModel:
    """MLPerf's neural collaborative filtering model (He et al., WWW'17).

    Two tables (users, items); the GMF branch takes an element-wise product
    of the user and item vectors while the MLP branch runs the standard
    [256, 256, 128, 64] tower on their concatenation (Figure 4).
    """
    tables = (
        EmbeddingTableSpec("user", rows, embedding_dim),
        EmbeddingTableSpec("item", rows, embedding_dim),
    )
    return RecSysModel(
        name="NCF",
        tables=tables,
        lookups_per_table=1,
        bottom_mlp=None,
        top_mlp=MLPStack("ncf_mlp", (2 * embedding_dim, 256, 128, 64, 1)),
        interaction="elementwise",
    )


def dlrm(
    embedding_dim: int = 64,
    n_tables: int = 8,
    rows: int = 10_000_000,
    lookups_per_table: int = 32,
) -> RecSysModel:
    """Facebook's deep learning recommendation model (Naumov et al., 2019).

    Dense features go through a bottom MLP; sparse features gather
    ``lookups_per_table`` vectors per table (production DLRM uses multi-hot
    pooled lookups, tens per table — this is what makes the embedding
    phase gather-bound); the feature-interaction step takes pairwise dot
    products of the pooled vectors; a top MLP scores the result (Figure 5's
    accelerator-centric parallelization operates on this model).
    """
    tables = tuple(
        EmbeddingTableSpec(f"table{i}", rows, embedding_dim)
        for i in range(n_tables)
    )
    # Multi-hot lookups are sum-pooled per table before interaction, so the
    # interacting vector count stays n_tables (+1 for the bottom-MLP output).
    n_vectors = n_tables + 1
    interaction_width = n_vectors * (n_vectors - 1) // 2 + embedding_dim
    return RecSysModel(
        name="DLRM",
        tables=tables,
        lookups_per_table=lookups_per_table,
        bottom_mlp=MLPStack("dlrm_bottom", (13, 512, 256, embedding_dim)),
        top_mlp=MLPStack("dlrm_top", (interaction_width, 1024, 1024, 512, 256, 1)),
        interaction="dot",
    )


class ZipfSampler:
    """Deterministic bounded-Zipf row sampler.

    Production recommendation traffic is popularity-skewed; a bounded Zipf
    with exponent ``s`` captures that (s=0 degenerates to uniform — the
    fully-random worst case of Figure 4's caption).  Sampling uses inverse
    transform over the rank CDF, computed lazily per distinct (rows, s).
    """

    def __init__(self, s: float = 0.0, seed: int = 0):
        if s < 0:
            raise ValueError("zipf exponent cannot be negative")
        self.s = s
        self._rng = np.random.default_rng(seed)
        self._cdf_cache: dict = {}

    def sample(self, rows: int, count: int) -> np.ndarray:
        """Draw ``count`` row indices from ``[0, rows)``."""
        if rows <= 0:
            raise ValueError("rows must be positive")
        if count < 0:
            raise ValueError("count cannot be negative")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self.s == 0.0:
            return self._rng.integers(0, rows, size=count, dtype=np.int64)
        cdf = self._cdf_cache.get(rows)
        if cdf is None:
            # Rank popularity ∝ 1 / rank^s; permute ranks so hot rows are
            # spread across the table (hot ids are not clustered in
            # practice, which matters for page-granularity locality).
            weights = 1.0 / np.power(np.arange(1, rows + 1, dtype=np.float64), self.s)
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._cdf_cache[rows] = cdf
        u = self._rng.random(count)
        ranks = np.searchsorted(cdf, u, side="left")
        # Deterministic rank->row scatter (multiplicative hash).
        return (ranks * np.int64(2654435761)) % rows
