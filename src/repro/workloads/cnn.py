"""CNN workload definitions: AlexNet, GoogLeNet, ResNet-50.

The paper denotes these CNN-1/CNN-2/CNN-3 (Section II-C): "they cover a
wide range of filter and activation sizes".  Layer tables follow the
original architectures; pooling/normalization layers are folded into the
shape plumbing (they run on-chip and never dominate the memory phases
the MMU study measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from .layers import ConvLayer, DenseLayer, RecurrentLayer

DenseNetLayer = Union[ConvLayer, DenseLayer, RecurrentLayer]


@dataclass(frozen=True)
class Workload:
    """A named sequence of layers at a fixed batch size."""

    name: str
    batch: int
    layers: tuple

    @property
    def layer_count(self) -> int:
        return len(self.layers)

    def total_weight_bytes(self, elem_bytes: int = 4) -> int:
        """Model size (the dominant DMA traffic source for inference)."""
        total = 0
        for layer in self.layers:
            shape = layer.tensor_shapes()["w"]
            n = elem_bytes
            for d in shape:
                n *= d
            total += n
        return total


def alexnet(batch: int = 1) -> Workload:
    """CNN-1: AlexNet (single-tower variant)."""
    layers: List[DenseNetLayer] = [
        ConvLayer("conv1", batch, 227, 227, 3, 96, kernel=11, stride=4),
        ConvLayer("conv2", batch, 27, 27, 96, 256, kernel=5, pad=2),
        ConvLayer("conv3", batch, 13, 13, 256, 384, kernel=3, pad=1),
        ConvLayer("conv4", batch, 13, 13, 384, 384, kernel=3, pad=1),
        ConvLayer("conv5", batch, 13, 13, 384, 256, kernel=3, pad=1),
        DenseLayer("fc6", batch, 9216, 4096),
        DenseLayer("fc7", batch, 4096, 4096),
        DenseLayer("fc8", batch, 4096, 1000),
    ]
    return Workload(name=f"alexnet_b{batch:02d}", batch=batch, layers=tuple(layers))


#: GoogLeNet inception-module channel table:
#: (name, spatial, in_c, #1x1, #3x3_reduce, #3x3, #5x5_reduce, #5x5, pool_proj)
_INCEPTION = (
    ("3a", 28, 192, 64, 96, 128, 16, 32, 32),
    ("3b", 28, 256, 128, 128, 192, 32, 96, 64),
    ("4a", 14, 480, 192, 96, 208, 16, 48, 64),
    ("4b", 14, 512, 160, 112, 224, 24, 64, 64),
    ("4c", 14, 512, 128, 128, 256, 24, 64, 64),
    ("4d", 14, 512, 112, 144, 288, 32, 64, 64),
    ("4e", 14, 528, 256, 160, 320, 32, 128, 128),
    ("5a", 7, 832, 256, 160, 320, 32, 128, 128),
    ("5b", 7, 832, 384, 192, 384, 48, 128, 128),
)


def googlenet(batch: int = 1) -> Workload:
    """CNN-2: GoogLeNet (Inception v1), branches flattened to a layer list."""
    layers: List[DenseNetLayer] = [
        ConvLayer("conv1", batch, 224, 224, 3, 64, kernel=7, stride=2, pad=3),
        ConvLayer("conv2_reduce", batch, 56, 56, 64, 64, kernel=1),
        ConvLayer("conv2", batch, 56, 56, 64, 192, kernel=3, pad=1),
    ]
    for name, hw, in_c, n1, n3r, n3, n5r, n5, pp in _INCEPTION:
        prefix = f"inc{name}"
        layers.extend(
            [
                ConvLayer(f"{prefix}/1x1", batch, hw, hw, in_c, n1, kernel=1),
                ConvLayer(f"{prefix}/3x3_reduce", batch, hw, hw, in_c, n3r, kernel=1),
                ConvLayer(f"{prefix}/3x3", batch, hw, hw, n3r, n3, kernel=3, pad=1),
                ConvLayer(f"{prefix}/5x5_reduce", batch, hw, hw, in_c, n5r, kernel=1),
                ConvLayer(f"{prefix}/5x5", batch, hw, hw, n5r, n5, kernel=5, pad=2),
                ConvLayer(f"{prefix}/pool_proj", batch, hw, hw, in_c, pp, kernel=1),
            ]
        )
    layers.append(DenseLayer("fc", batch, 1024, 1000))
    return Workload(name=f"googlenet_b{batch:02d}", batch=batch, layers=tuple(layers))


#: ResNet-50 stage table: (stage, spatial_in, blocks, bottleneck_c, out_c).
_RESNET50_STAGES = (
    ("res2", 56, 3, 64, 256),
    ("res3", 56, 4, 128, 512),
    ("res4", 28, 6, 256, 1024),
    ("res5", 14, 3, 512, 2048),
)


def resnet50(batch: int = 1) -> Workload:
    """CNN-3: ResNet-50 (bottleneck blocks, projection shortcuts)."""
    layers: List[DenseNetLayer] = [
        ConvLayer("conv1", batch, 224, 224, 3, 64, kernel=7, stride=2, pad=3),
    ]
    in_c = 64
    for stage, hw_in, blocks, mid_c, out_c in _RESNET50_STAGES:
        for b in range(blocks):
            # Stage entry (except res2, which follows max-pool) downsamples.
            stride = 2 if (b == 0 and stage != "res2") else 1
            hw = hw_in if b == 0 else hw_in // (2 if stage != "res2" else 1)
            prefix = f"{stage}{chr(ord('a') + b)}"
            layers.append(
                ConvLayer(f"{prefix}/1x1a", batch, hw, hw, in_c, mid_c, kernel=1, stride=stride)
            )
            hw_mid = hw // stride
            layers.append(
                ConvLayer(f"{prefix}/3x3", batch, hw_mid, hw_mid, mid_c, mid_c, kernel=3, pad=1)
            )
            layers.append(
                ConvLayer(f"{prefix}/1x1b", batch, hw_mid, hw_mid, mid_c, out_c, kernel=1)
            )
            if b == 0:
                layers.append(
                    ConvLayer(
                        f"{prefix}/proj", batch, hw, hw, in_c, out_c, kernel=1, stride=stride
                    )
                )
            in_c = out_c
    layers.append(DenseLayer("fc", batch, 2048, 1000))
    return Workload(name=f"resnet50_b{batch:02d}", batch=batch, layers=tuple(layers))
