"""Workload registry: the paper's benchmark names mapped to factories.

Section II-C: CNN-1/2/3 are AlexNet/GoogLeNet/ResNet; RNN-1 is a GEMV-based
RNN and RNN-2/3 are LSTMs (DeepBench).  Batch sizes b01/b04/b08 match the
paper's inference study; Section VI-C's large-batch sensitivity uses 32/64/128
on each network's *common layer* (see :func:`common_layer_workload`).

Beyond the dense suite, RECSYS-1/2 are the MLP towers of DLRM/NCF
(Section III-A's recommendation models) packaged as simulator workloads,
so heterogeneous tenant mixes — the ROADMAP's CNN + RNN + recsys QoS
studies — resolve entirely through this registry:
:func:`mix_factories` turns a spec like ``"cnn,rnn,recsys"`` into one
picklable factory per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Union

from .cnn import Workload, alexnet, googlenet, resnet50
from .layers import ConvLayer, DenseLayer, RecurrentLayer
from .rnn import lstm_large, lstm_medium, vanilla_rnn

#: Paper benchmark id -> factory(batch) for the dense suite.
DENSE_WORKLOADS: Dict[str, Callable[[int], Workload]] = {
    "CNN-1": alexnet,
    "CNN-2": googlenet,
    "CNN-3": resnet50,
    "RNN-1": vanilla_rnn,
    "RNN-2": lstm_medium,
    "RNN-3": lstm_large,
}

#: The batch sizes of the paper's main dense evaluation.
DENSE_BATCHES = (1, 4, 8)


#: Grid points are revisited constantly (policy sweeps, tenant mixes, the
#: parallel runner) and :class:`Workload` is frozen, so each one is built
#: once and shared; the simulator's construction cache keys on workload
#: identity and relies on this.
_DENSE_CACHE: Dict[tuple, Workload] = {}


def dense_workload(name: str, batch: int = 1) -> Workload:
    """Instantiate a dense benchmark by its paper id (e.g. ``"CNN-1"``)."""
    key = (name, batch)
    cached = _DENSE_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        factory = DENSE_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(DENSE_WORKLOADS)}"
        ) from None
    workload = _DENSE_CACHE[key] = factory(batch)
    return workload


@dataclass(frozen=True)
class DenseWorkloadFactory:
    """Picklable zero-arg factory for one ``(network, batch)`` grid point.

    Unlike a closure, instances survive a trip through
    :class:`concurrent.futures.ProcessPoolExecutor`, which is what lets
    the parallel experiment runner ship grid points to worker processes.
    """

    name: str
    batch: int

    def __call__(self) -> Workload:
        return dense_workload(self.name, self.batch)


@dataclass(frozen=True)
class CommonLayerFactory:
    """Picklable factory for the large-batch common-layer study (§VI-C)."""

    name: str
    batch: int

    def __call__(self) -> Workload:
        return common_layer_workload(self.name, self.batch)


def dense_suite(batches=DENSE_BATCHES) -> List[Workload]:
    """Every (network, batch) combination of the paper's dense evaluation."""
    return [
        factory(batch)
        for name, factory in DENSE_WORKLOADS.items()
        for batch in batches
    ]


# --------------------------------------------------------------------- #
# recsys tenants + heterogeneous mixes                                   #
# --------------------------------------------------------------------- #


def recsys_mlp(name: str = "RECSYS-1", batch: int = 1) -> Workload:
    """The dense (MLP) phase of a recommendation model as a workload.

    The embedding gather lives in :mod:`repro.sparse` (it is a raw DMA
    stream, not a tile pipeline); the MLP towers are what a recsys tenant
    contends with on a shared MMU — exactly the dense phase Figure 16's
    per-batch breakdown simulates.
    """
    from .embedding import dlrm, ncf  # deferred: embedding pulls in numpy

    models = {"RECSYS-1": dlrm, "RECSYS-2": ncf}
    try:
        model = models[name]()
    except KeyError:
        raise KeyError(
            f"unknown recsys workload {name!r}; choose from {sorted(models)}"
        ) from None
    layers = []
    if model.bottom_mlp is not None:
        for i, (in_w, out_w) in enumerate(model.bottom_mlp.layer_dims):
            layers.append(DenseLayer(f"bot{i}", batch, in_w, out_w))
    for i, (in_w, out_w) in enumerate(model.top_mlp.layer_dims):
        layers.append(DenseLayer(f"top{i}", batch, in_w, out_w))
    return Workload(
        name=f"{model.name.lower()}_mlp_b{batch:02d}",
        batch=batch,
        layers=tuple(layers),
    )


#: Recsys tenant ids resolvable alongside the dense suite.
RECSYS_WORKLOADS = ("RECSYS-1", "RECSYS-2")

#: Mix shorthand -> canonical registry id (``neummu run tenants --mix``).
MIX_ALIASES: Dict[str, str] = {
    "cnn": "CNN-1",
    "rnn": "RNN-2",
    "recsys": "RECSYS-1",
}


def resolve_workload_name(token: str) -> str:
    """Canonical registry id for one mix token.

    Accepts the shorthand aliases (``cnn``/``rnn``/``recsys``) and every
    dense or recsys registry id, case-insensitively.  Raises
    :class:`ValueError` with the full menu for anything else.
    """
    token = token.strip()
    lowered = token.lower()
    if lowered in MIX_ALIASES:
        return MIX_ALIASES[lowered]
    upper = token.upper()
    if upper in DENSE_WORKLOADS or upper in RECSYS_WORKLOADS:
        return upper
    valid = sorted(MIX_ALIASES) + sorted(DENSE_WORKLOADS) + list(RECSYS_WORKLOADS)
    raise ValueError(
        f"unknown workload {token!r} in tenant mix; "
        f"choose from {', '.join(valid)}"
    )


@dataclass(frozen=True)
class MixWorkloadFactory:
    """Picklable zero-arg factory for any registry workload (dense or
    recsys) — one tenant of a heterogeneous mix."""

    name: str
    batch: int = 1

    def __call__(self) -> Workload:
        if self.name in RECSYS_WORKLOADS:
            return recsys_mlp(self.name, self.batch)
        return dense_workload(self.name, self.batch)


def mix_factories(
    mix: Union[str, Sequence[str]], batch: int = 1
) -> List[MixWorkloadFactory]:
    """Resolve a tenant-mix spec into one workload factory per tenant.

    ``mix`` is a comma-separated string (``"cnn,rnn,recsys"``) or a
    sequence of tokens; each token resolves via
    :func:`resolve_workload_name`.  Raises :class:`ValueError` for empty
    mixes or unknown tokens.
    """
    tokens = mix.split(",") if isinstance(mix, str) else list(mix)
    tokens = [t for t in (token.strip() for token in tokens) if t]
    if not tokens:
        raise ValueError(
            "tenant mix is empty; pass at least one workload, "
            "e.g. --mix cnn,rnn,recsys"
        )
    return [MixWorkloadFactory(resolve_workload_name(t), batch) for t in tokens]


#: Representative "common layer" per network for the large-batch
#: sensitivity study (Section VI-C), where full-network simulation at
#: batch 32-128 is intractable — same methodology as the paper.
_COMMON_LAYERS = {
    "CNN-1": lambda b: ConvLayer("conv3", b, 13, 13, 256, 384, kernel=3, pad=1),
    "CNN-2": lambda b: ConvLayer("inc4c/3x3", b, 14, 14, 128, 256, kernel=3, pad=1),
    "CNN-3": lambda b: ConvLayer("res4x/3x3", b, 14, 14, 256, 256, kernel=3, pad=1),
    "RNN-1": lambda b: RecurrentLayer("rnn", b, 2560, 2560, seq_len=10, gates=1),
    "RNN-2": lambda b: RecurrentLayer("lstm", b, 1536, 1536, seq_len=10, gates=4),
    "RNN-3": lambda b: RecurrentLayer("lstm", b, 2048, 2048, seq_len=10, gates=4),
}


def common_layer_workload(name: str, batch: int) -> Workload:
    """A single-layer workload capturing each network's typical layer."""
    try:
        layer_factory = _COMMON_LAYERS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(_COMMON_LAYERS)}"
        ) from None
    return Workload(
        name=f"{name.lower()}_common_b{batch:02d}",
        batch=batch,
        layers=(layer_factory(batch),),
    )
