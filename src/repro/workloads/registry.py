"""Workload registry: the paper's benchmark names mapped to factories.

Section II-C: CNN-1/2/3 are AlexNet/GoogLeNet/ResNet; RNN-1 is a GEMV-based
RNN and RNN-2/3 are LSTMs (DeepBench).  Batch sizes b01/b04/b08 match the
paper's inference study; Section VI-C's large-batch sensitivity uses 32/64/128
on each network's *common layer* (see :func:`common_layer_workload`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .cnn import Workload, alexnet, googlenet, resnet50
from .layers import ConvLayer, DenseLayer, RecurrentLayer
from .rnn import lstm_large, lstm_medium, vanilla_rnn

#: Paper benchmark id -> factory(batch) for the dense suite.
DENSE_WORKLOADS: Dict[str, Callable[[int], Workload]] = {
    "CNN-1": alexnet,
    "CNN-2": googlenet,
    "CNN-3": resnet50,
    "RNN-1": vanilla_rnn,
    "RNN-2": lstm_medium,
    "RNN-3": lstm_large,
}

#: The batch sizes of the paper's main dense evaluation.
DENSE_BATCHES = (1, 4, 8)


def dense_workload(name: str, batch: int = 1) -> Workload:
    """Instantiate a dense benchmark by its paper id (e.g. ``"CNN-1"``)."""
    try:
        factory = DENSE_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(DENSE_WORKLOADS)}"
        ) from None
    return factory(batch)


@dataclass(frozen=True)
class DenseWorkloadFactory:
    """Picklable zero-arg factory for one ``(network, batch)`` grid point.

    Unlike a closure, instances survive a trip through
    :class:`concurrent.futures.ProcessPoolExecutor`, which is what lets
    the parallel experiment runner ship grid points to worker processes.
    """

    name: str
    batch: int

    def __call__(self) -> Workload:
        return dense_workload(self.name, self.batch)


@dataclass(frozen=True)
class CommonLayerFactory:
    """Picklable factory for the large-batch common-layer study (§VI-C)."""

    name: str
    batch: int

    def __call__(self) -> Workload:
        return common_layer_workload(self.name, self.batch)


def dense_suite(batches=DENSE_BATCHES) -> List[Workload]:
    """Every (network, batch) combination of the paper's dense evaluation."""
    return [
        factory(batch)
        for name, factory in DENSE_WORKLOADS.items()
        for batch in batches
    ]


#: Representative "common layer" per network for the large-batch
#: sensitivity study (Section VI-C), where full-network simulation at
#: batch 32-128 is intractable — same methodology as the paper.
_COMMON_LAYERS = {
    "CNN-1": lambda b: ConvLayer("conv3", b, 13, 13, 256, 384, kernel=3, pad=1),
    "CNN-2": lambda b: ConvLayer("inc4c/3x3", b, 14, 14, 128, 256, kernel=3, pad=1),
    "CNN-3": lambda b: ConvLayer("res4x/3x3", b, 14, 14, 256, 256, kernel=3, pad=1),
    "RNN-1": lambda b: RecurrentLayer("rnn", b, 2560, 2560, seq_len=10, gates=1),
    "RNN-2": lambda b: RecurrentLayer("lstm", b, 1536, 1536, seq_len=10, gates=4),
    "RNN-3": lambda b: RecurrentLayer("lstm", b, 2048, 2048, seq_len=10, gates=4),
}


def common_layer_workload(name: str, batch: int) -> Workload:
    """A single-layer workload capturing each network's typical layer."""
    try:
        layer_factory = _COMMON_LAYERS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(_COMMON_LAYERS)}"
        ) from None
    return Workload(
        name=f"{name.lower()}_common_b{batch:02d}",
        batch=batch,
        layers=(layer_factory(batch),),
    )
