"""ASCII chart rendering for experiment results.

The paper's figures are bar charts; terminals don't do matplotlib, so
these helpers turn a :class:`~repro.analysis.figures.FigureResult` column
into a horizontal bar chart (one bar per series row) or a grouped chart
(one bar per column per row).  Used by ``neummu run --chart``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .figures import FigureResult

#: Glyph used for bar bodies.
BAR = "#"


def _scaled(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, min(width, round(value / maximum * width)))


def render_bars(
    fig: FigureResult,
    column: str,
    width: int = 50,
    max_value: Optional[float] = None,
) -> str:
    """One horizontal bar per row for a single column.

    ``max_value`` pins the scale (e.g. 1.0 for normalized performance);
    by default the column maximum spans the full width.
    """
    values = fig.column(column)
    if not values:
        raise ValueError(f"column {column!r} empty in {fig.figure_id}")
    scale = max_value if max_value is not None else max(values)
    label_width = max(len(row.label) for row in fig.rows if column in row.values)
    lines = [f"-- {fig.figure_id}: {column} --"]
    for row in fig.rows:
        if column not in row.values:
            continue
        value = row.values[column]
        bar = BAR * _scaled(value, scale, width)
        lines.append(f"{row.label.ljust(label_width)} |{bar:<{width}}| {value:.4g}")
    return "\n".join(lines)


def render_grouped(
    fig: FigureResult,
    columns: Optional[Sequence[str]] = None,
    width: int = 40,
    max_value: Optional[float] = None,
) -> str:
    """Grouped bars: for each row, one bar per selected column.

    Mirrors the paper's grouped bar figures (e.g. Figure 10's PRMB sweep,
    where each workload carries one bar per slot count).
    """
    columns = list(columns or fig.columns)
    all_values: List[float] = []
    for col in columns:
        all_values.extend(fig.column(col))
    if not all_values:
        raise ValueError(f"no values for columns {columns} in {fig.figure_id}")
    scale = max_value if max_value is not None else max(all_values)
    col_width = max(len(c) for c in columns)
    lines = [f"-- {fig.figure_id}: {', '.join(columns)} --"]
    for row in fig.rows:
        lines.append(row.label)
        for col in columns:
            if col not in row.values:
                continue
            value = row.values[col]
            bar = BAR * _scaled(value, scale, width)
            lines.append(f"  {col.ljust(col_width)} |{bar:<{width}}| {value:.4g}")
    return "\n".join(lines)


def best_chart(fig: FigureResult, width: int = 50) -> str:
    """Heuristic chart selection for CLI display.

    Single-column figures get flat bars; multi-column figures whose values
    look normalized (≤ ~1.2) get a pinned 0..1 scale.
    """
    numeric_columns = [c for c in fig.columns if fig.column(c)]
    if not numeric_columns:
        raise ValueError(f"{fig.figure_id} has no numeric columns to chart")
    values = [v for c in numeric_columns for v in fig.column(c)]
    pinned = 1.0 if max(values) <= 1.2 else None
    if len(numeric_columns) == 1:
        return render_bars(fig, numeric_columns[0], width=width, max_value=pinned)
    return render_grouped(fig, numeric_columns, width=width, max_value=pinned)
