"""One experiment per paper table/figure.

Each ``fig*``/``tab*`` function regenerates the corresponding evaluation
artifact of the paper and returns a :class:`~repro.analysis.figures.FigureResult`.
Absolute cycle counts differ from the authors' in-house simulator; the
*shapes* — who wins, by what factor, where the knees fall — are the
reproduction targets (see EXPERIMENTS.md for the side-by-side record).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.mmu import MMUConfig, baseline_iommu_config, neummu_config, oracle_config
from ..core.qos import SHARE_POLICIES, jain_index
from ..energy.accounting import energy_ratio, translation_energy
from ..energy.cacti import neummu_overhead
from ..memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from ..npu.config import NPUConfig
from ..npu.simulator import MultiTenantSimulator, NPUSimulator, run_multi_tenant
from ..npu.spatial import SpatialArrayModel
from ..sparse.demand_paging import DemandPagingConfig, demand_paging_cell
from ..sparse.recsys import TRANSPORTS, RecSysSystem
from ..workloads.embedding import dlrm, ncf
from ..workloads.registry import (
    DENSE_BATCHES,
    CommonLayerFactory,
    dense_workload,
)
from .figures import FigureResult, Series, geometric_mean
from .parallel import RunRequest, TenantRunRequest
from .runner import ExperimentRunner, dense_pairs

#: Figure 10's sweep of PRMB mergeable slots.
PRMB_SLOT_SWEEP = (1, 2, 4, 8, 16, 32)

#: Figures 11/12a's sweep of page-table walker counts.
PTW_SWEEP = (8, 16, 32, 64, 128, 256, 512, 1024)

#: Figure 12b's [PRMB slots, walkers] pairs with constant product 4096.
ENERGY_PAIRS = (
    (512, 8),
    (256, 16),
    (128, 32),
    (64, 64),
    (32, 128),
    (16, 256),
    (8, 512),
    (4, 1024),
    (2, 2048),
    (1, 4096),
)


# --------------------------------------------------------------------- #
# Table I                                                                #
# --------------------------------------------------------------------- #


def table1_config() -> FigureResult:
    """Table I: the baseline NPU/IOMMU/system configuration."""
    cfg = NPUConfig()
    fig = FigureResult(
        figure_id="table1",
        title="Baseline NPU configuration",
        columns=["value"],
    )
    fig.add("systolic array", value=float(cfg.array_rows))
    fig.add("frequency (GHz)", value=cfg.frequency_hz / 1e9)
    fig.add("IA scratchpad (MB)", value=cfg.ia_spm_bytes / 2**20)
    fig.add("W scratchpad (MB)", value=cfg.w_spm_bytes / 2**20)
    fig.add("memory channels", value=float(cfg.memory.channels))
    fig.add("memory bandwidth (GB/s)", value=cfg.memory.bandwidth_bytes_per_cycle)
    fig.add("memory latency (cycles)", value=float(cfg.memory.access_latency_cycles))
    iommu = baseline_iommu_config()
    fig.add("IOTLB entries", value=float(iommu.tlb_entries))
    fig.add("TLB hit latency (cycles)", value=float(iommu.tlb_hit_latency))
    fig.add("IOMMU walkers", value=float(iommu.n_walkers))
    fig.add("walk latency/level (cycles)", value=float(iommu.walk_latency_per_level))
    inter = cfg.interconnect
    fig.add("NUMA latency (cycles)", value=float(inter.numa_latency_cycles))
    fig.add("CPU-NPU bandwidth (GB/s)", value=inter.cpu_npu_bandwidth_bytes_per_cycle)
    fig.add("NPU-NPU bandwidth (GB/s)", value=inter.npu_npu_bandwidth_bytes_per_cycle)
    return fig


# --------------------------------------------------------------------- #
# Figure 6 — page divergence                                             #
# --------------------------------------------------------------------- #


def fig6_page_divergence(
    batches: Sequence[int] = DENSE_BATCHES,
    npu_config: Optional[NPUConfig] = None,
) -> FigureResult:
    """Figure 6: max/avg distinct 4 KB pages per DMA tile fetch."""
    fig = FigureResult(
        figure_id="fig6",
        title="Page divergence per tile (4 KB pages)",
        columns=["max_pages", "avg_pages", "fetches"],
        notes=["paper: up to ~2000 max, hundreds on average per tile"],
    )
    for label, factory in dense_pairs(batches):
        sim = NPUSimulator(factory(), oracle_config(), npu_config=npu_config)
        divergence = sim.page_divergence()["all"]
        fig.add(
            label,
            max_pages=float(divergence.max_pages),
            avg_pages=divergence.mean_pages,
            fetches=float(divergence.fetches),
        )
    return fig


# --------------------------------------------------------------------- #
# Figure 7 — translation bursts                                          #
# --------------------------------------------------------------------- #


def fig7_translation_bursts(
    workloads: Sequence[str] = ("CNN-1", "RNN-1"),
    batch: int = 1,
    window: int = 1000,
) -> FigureResult:
    """Figure 7: translations requested per 1000-cycle window.

    Run under the oracle so the histogram reflects the *demanded* rate of
    the DMA (the paper's y-axis: 1000 ⇒ a full-rate burst).
    """
    fig = FigureResult(
        figure_id="fig7",
        title=f"Translation-request bursts ({window}-cycle windows)",
        columns=["windows", "peak", "mean", "busy_frac", "full_rate_frac"],
        notes=[
            "busy_frac: windows with any requests; full_rate_frac: windows at "
            ">=90% of the 1-per-cycle issue rate (the bursts of Fig. 7)",
        ],
    )
    for name in workloads:
        sim = NPUSimulator(
            dense_workload(name, batch),
            oracle_config(),
            timeline_window=window,
        )
        sim.run()
        series = sim.engine.timeline_series()
        counts = [count for _, count in series]
        if not counts:
            continue
        full = sum(1 for c in counts if c >= 0.9 * window)
        fig.add(
            f"{name}/b{batch:02d}",
            windows=float(len(counts)),
            peak=float(max(counts)),
            mean=sum(counts) / len(counts),
            busy_frac=1.0,
            full_rate_frac=full / len(counts),
        )
    return fig


# --------------------------------------------------------------------- #
# Figure 8 — baseline IOMMU                                              #
# --------------------------------------------------------------------- #


def fig8_baseline_iommu(
    batches: Sequence[int] = DENSE_BATCHES,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Figure 8: normalized performance of the baseline IOMMU (4 KB)."""
    runner = runner or ExperimentRunner()
    fig = FigureResult(
        figure_id="fig8",
        title="Baseline IOMMU normalized performance (4 KB pages)",
        columns=["normalized_perf"],
        notes=["paper: average ~0.05 (95% overhead)"],
    )
    config = baseline_iommu_config()
    pairs = dense_pairs(batches)
    requests = [RunRequest(label, factory, config) for label, factory in pairs]
    for (label, _), (norm, _) in zip(pairs, runner.normalized_many(requests)):
        fig.add(label, normalized_perf=norm)
    fig.notes.append(f"measured average: {fig.mean('normalized_perf'):.3f}")
    return fig


# --------------------------------------------------------------------- #
# Figure 10 — PRMB slot sweep                                            #
# --------------------------------------------------------------------- #


def fig10_prmb_sweep(
    slots: Sequence[int] = PRMB_SLOT_SWEEP,
    batches: Sequence[int] = DENSE_BATCHES,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Figure 10: sensitivity to PRMB mergeable slots (8 walkers)."""
    runner = runner or ExperimentRunner()
    columns = [f"prmb{n}" for n in slots]
    fig = FigureResult(
        figure_id="fig10",
        title="Normalized performance vs PRMB mergeable slots (8 PTWs)",
        columns=columns,
        notes=["paper: 8-32 slots capture the burst locality; avg plateau ~0.11"],
    )
    pairs = dense_pairs(batches)
    requests = [
        RunRequest(
            label,
            factory,
            MMUConfig(name=f"prmb{n}", n_walkers=8, prmb_slots=n, path_cache="none"),
        )
        for label, factory in pairs
        for n in slots
    ]
    normalized = iter(runner.normalized_many(requests))
    for label, _ in pairs:
        values = {f"prmb{n}": next(normalized)[0] for n in slots}
        fig.rows.append(Series(label=label, values=values))
    for n in slots:
        fig.notes.append(f"avg prmb{n}: {fig.mean(f'prmb{n}'):.3f}")
    return fig


# --------------------------------------------------------------------- #
# Figures 11 / 12a — PTW scaling                                         #
# --------------------------------------------------------------------- #


def _ptw_sweep(
    figure_id: str,
    title: str,
    prmb_slots: int,
    ptws: Sequence[int],
    batches: Sequence[int],
    runner: Optional[ExperimentRunner],
    notes: List[str],
) -> FigureResult:
    runner = runner or ExperimentRunner()
    columns = [f"ptw{n}" for n in ptws]
    fig = FigureResult(figure_id=figure_id, title=title, columns=columns, notes=notes)
    pairs = dense_pairs(batches)
    requests = [
        RunRequest(
            label,
            factory,
            MMUConfig(
                name=f"ptw{n}",
                n_walkers=n,
                prmb_slots=prmb_slots,
                path_cache="none",
            ),
        )
        for label, factory in pairs
        for n in ptws
    ]
    normalized = iter(runner.normalized_many(requests))
    for label, _ in pairs:
        values = {f"ptw{n}": next(normalized)[0] for n in ptws}
        fig.rows.append(Series(label=label, values=values))
    for n in ptws:
        fig.notes.append(f"avg ptw{n}: {fig.mean(f'ptw{n}'):.3f}")
    return fig


def fig11_ptw_sweep(
    ptws: Sequence[int] = PTW_SWEEP,
    batches: Sequence[int] = DENSE_BATCHES,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Figure 11: walker-count sweep with PRMB(32)."""
    return _ptw_sweep(
        "fig11",
        "Normalized performance vs PTW count (PRMB=32)",
        prmb_slots=32,
        ptws=ptws,
        batches=batches,
        runner=runner,
        notes=["paper: 8 PTWs ~0.11 avg; 128 PTWs ~0.99 avg"],
    )


def fig12a_ptw_no_prmb(
    ptws: Sequence[int] = PTW_SWEEP,
    batches: Sequence[int] = DENSE_BATCHES,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Figure 12a: walker-count sweep *without* PRMB."""
    return _ptw_sweep(
        "fig12a",
        "Normalized performance vs PTW count (no PRMB)",
        prmb_slots=0,
        ptws=ptws,
        batches=batches,
        runner=runner,
        notes=["paper: matching NeuMMU needs ~1024 walkers without merging"],
    )


# --------------------------------------------------------------------- #
# Figure 12b — performance/energy of [PRMB, PTW] pairs                   #
# --------------------------------------------------------------------- #


def fig12b_energy_sweep(
    pairs: Sequence[Tuple[int, int]] = ENERGY_PAIRS,
    batches: Sequence[int] = (1,),
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Figure 12b: performance and energy for [M PRMB, N PTW], M·N const.

    Energy is the translation-path energy (walk DRAM references dominate),
    normalized to the nominal [32, 128] NeuMMU point; performance is
    normalized to the oracle.  Values are geometric means over workloads.
    """
    runner = runner or ExperimentRunner()
    fig = FigureResult(
        figure_id="fig12b",
        title="Performance and energy across [PRMB slots, PTWs] (M*N=4096)",
        columns=["normalized_perf", "normalized_energy"],
        notes=[
            "paper: [1,4096] burns up to ~7.1x the energy of [32,128] at "
            "equal performance",
        ],
    )
    workloads = dense_pairs(batches)
    energies: Dict[Tuple[int, int], float] = {}
    perfs: Dict[Tuple[int, int], float] = {}
    requests = [
        RunRequest(
            label,
            factory,
            MMUConfig(
                name=f"[{slots},{walkers}]",
                n_walkers=walkers,
                prmb_slots=slots,
                path_cache="none",
            ),
        )
        for slots, walkers in pairs
        for label, factory in workloads
    ]
    normalized = iter(runner.normalized_many(requests))
    for slots, walkers in pairs:
        per_wl_perf: List[float] = []
        per_wl_energy: List[float] = []
        for _ in workloads:
            norm, result = next(normalized)
            per_wl_perf.append(norm)
            breakdown = translation_energy(result.mmu_summary)
            per_wl_energy.append(breakdown.total_pj)
        perfs[(slots, walkers)] = geometric_mean(per_wl_perf)
        energies[(slots, walkers)] = geometric_mean(per_wl_energy)
    reference = energies.get((32, 128)) or next(iter(energies.values()))
    for slots, walkers in pairs:
        fig.add(
            f"[{slots},{walkers}]",
            normalized_perf=perfs[(slots, walkers)],
            normalized_energy=energies[(slots, walkers)] / reference,
        )
    return fig


# --------------------------------------------------------------------- #
# Figure 13 — TPreg hit rates                                            #
# --------------------------------------------------------------------- #


def fig13_tpreg_hit_rates(
    batches: Sequence[int] = DENSE_BATCHES,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Figure 13: TPreg L4/L3/L2 tag-match rates under NeuMMU."""
    runner = runner or ExperimentRunner()
    fig = FigureResult(
        figure_id="fig13",
        title="TPreg tag hit rate per level (single register per PTW)",
        columns=["l4", "l3", "l2"],
        notes=["paper (TPC, avg): L4 99.5% / L3 99.5% / L2 63.1%"],
    )
    pairs = dense_pairs(batches)
    requests = [
        RunRequest(label, factory, neummu_config()) for label, factory in pairs
    ]
    for (label, _), result in zip(pairs, runner.run_many(requests)):
        summary = result.mmu_summary
        fig.add(
            label,
            l4=summary.tpreg_l4_rate,
            l3=summary.tpreg_l3_rate,
            l2=summary.tpreg_l2_rate,
        )
    for col in ("l4", "l3", "l2"):
        fig.notes.append(f"avg {col}: {fig.mean(col):.3f}")
    return fig


# --------------------------------------------------------------------- #
# Figure 14 — VA trace                                                   #
# --------------------------------------------------------------------- #


def fig14_va_trace(
    workload: str = "CNN-1", batch: int = 1, max_rows: int = 40
) -> FigureResult:
    """Figure 14: virtual-address regions touched by consecutive tiles."""
    sim = NPUSimulator(
        dense_workload(workload, batch), oracle_config(), trace_va=True
    )
    result = sim.run()
    fig = FigureResult(
        figure_id="fig14",
        title=f"VA regions per tile fetch ({workload} b{batch:02d})",
        columns=["step", "va_lo_mb", "va_hi_mb", "span_kb"],
        notes=[
            "VAs are MB offsets from the first tensor segment; the "
            "streaming pattern walks ascending VA within a handful of "
            "large segments (IA and W), as in the paper's trace",
        ],
    )
    trace = result.va_trace[:max_rows]
    base = min(lo for _, lo, _, _ in trace) if trace else 0
    for step, lo, hi, tensor in trace:
        fig.add(
            f"{tensor}@{step}",
            step=float(step),
            va_lo_mb=(lo - base) / 2**20,
            va_hi_mb=(hi - base) / 2**20,
            span_kb=(hi - lo) / 1024.0,
        )
    return fig


# --------------------------------------------------------------------- #
# Section IV-C — TPC vs UPTC                                             #
# --------------------------------------------------------------------- #


def tpc_vs_uptc(
    batches: Sequence[int] = (1,),
    entries: int = 16,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Section IV-C: translation-path-cache design comparison.

    TPC's virtual-path tagging beats UPTC's physical-entry tagging on walk
    reduction (paper: TPC removes 59% more walk references).
    """
    runner = runner or ExperimentRunner()
    fig = FigureResult(
        figure_id="tpc_vs_uptc",
        title=f"TPC vs UPTC ({entries} entries) walk-reference reduction",
        columns=["tpc_skip_rate", "uptc_skip_rate", "tpc_accesses", "uptc_accesses"],
        notes=["paper: TPC tag hits 99.5/99.5/63.1%; UPTC 92.4%"],
    )
    for label, factory in dense_pairs(batches):
        accesses: Dict[str, float] = {}
        skip_rates: Dict[str, float] = {}
        for kind in ("tpc", "uptc"):
            config = MMUConfig(
                name=kind,
                n_walkers=128,
                prmb_slots=32,
                path_cache=kind,
                path_cache_entries=entries,
            )
            result = runner.run(label, factory, config)
            summary = result.mmu_summary
            accesses[kind] = float(summary.walk_level_accesses)
            total_skippable = summary.walk_level_accesses + summary.walk_levels_skipped
            skip_rates[kind] = (
                summary.walk_levels_skipped / total_skippable if total_skippable else 0.0
            )
        fig.add(
            label,
            tpc_skip_rate=skip_rates["tpc"],
            uptc_skip_rate=skip_rates["uptc"],
            tpc_accesses=accesses["tpc"],
            uptc_accesses=accesses["uptc"],
        )
    return fig


# --------------------------------------------------------------------- #
# Section IV-D — headline claims                                         #
# --------------------------------------------------------------------- #


def headline_claims(
    batches: Sequence[int] = DENSE_BATCHES,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Section IV-D: NeuMMU vs baseline IOMMU, all three headline numbers.

    Paper: IOMMU ⇒ 95% average overhead; NeuMMU ⇒ 0.06% overhead,
    16.3× less translation energy, 18.8× fewer walk memory references.
    """
    runner = runner or ExperimentRunner()
    fig = FigureResult(
        figure_id="headline",
        title="NeuMMU vs baseline IOMMU (per workload)",
        columns=[
            "iommu_perf",
            "neummu_perf",
            "energy_ratio",
            "walk_access_ratio",
        ],
    )
    pairs = dense_pairs(batches)
    requests = [
        RunRequest(label, factory, config)
        for config in (baseline_iommu_config(), neummu_config())
        for label, factory in pairs
    ]
    results = runner.normalized_many(requests)
    iommu_results = results[: len(pairs)]
    neummu_results = results[len(pairs):]
    for (label, _), (iommu_norm, iommu_result), (neummu_norm, neummu_result) in zip(
        pairs, iommu_results, neummu_results
    ):
        iommu_energy = translation_energy(iommu_result.mmu_summary)
        neummu_energy = translation_energy(neummu_result.mmu_summary, uses_tpreg=True)
        iommu_walk = max(1, iommu_result.mmu_summary.walk_level_accesses)
        neummu_walk = max(1, neummu_result.mmu_summary.walk_level_accesses)
        fig.add(
            label,
            iommu_perf=iommu_norm,
            neummu_perf=neummu_norm,
            energy_ratio=energy_ratio(iommu_energy, neummu_energy),
            walk_access_ratio=iommu_walk / neummu_walk,
        )
    fig.notes.append(
        f"avg IOMMU perf {fig.mean('iommu_perf'):.3f} | "
        f"avg NeuMMU perf {fig.mean('neummu_perf'):.4f} | "
        f"avg energy ratio {fig.mean('energy_ratio'):.1f}x | "
        f"avg walk-access ratio {fig.mean('walk_access_ratio'):.1f}x"
    )
    return fig


# --------------------------------------------------------------------- #
# Figure 15 — NUMA for embeddings                                        #
# --------------------------------------------------------------------- #


def fig15_numa(batches: Sequence[int] = (1, 8, 64), n_npus: int = 4) -> FigureResult:
    """Figure 15: recsys latency breakdown across transports."""
    fig = FigureResult(
        figure_id="fig15",
        title="Recsys latency breakdown (normalized to MMU-less baseline)",
        columns=["total", "embedding", "gemm", "reduction", "other"],
        notes=["paper: NUMA(slow)/NUMA(fast) cut latency 31%/71% on average"],
    )
    reductions = {"numa_slow": [], "numa_fast": []}
    for model in (ncf(), dlrm()):
        system = RecSysSystem(model, n_npus=n_npus)
        for batch in batches:
            bars = system.compare_transports(batch)
            reference = bars["baseline"]
            for transport in TRANSPORTS:
                norm = bars[transport].normalized_to(reference)
                fig.add(
                    f"{model.name}/b{batch:02d}/{transport}",
                    total=norm["total"],
                    embedding=norm["embedding"],
                    gemm=norm["gemm"],
                    reduction=norm["reduction"],
                    other=norm["other"],
                )
                if transport in reductions:
                    reductions[transport].append(1.0 - norm["total"])
    for transport, values in reductions.items():
        if values:
            fig.notes.append(
                f"avg {transport} latency reduction: {sum(values)/len(values):.1%}"
            )
    return fig


# --------------------------------------------------------------------- #
# Figure 16 — demand paging                                              #
# --------------------------------------------------------------------- #


def fig16_demand_paging(
    batches: Sequence[int] = (1, 4, 8),
    system: Optional[DemandPagingConfig] = None,
) -> FigureResult:
    """Figure 16: demand paging at 4 KB vs 2 MB, IOMMU vs NeuMMU.

    All cells normalized to the 4 KB-page oracular MMU, per the paper.
    """
    system = system or DemandPagingConfig()
    fig = FigureResult(
        figure_id="fig16",
        title="Demand paging for sparse embeddings (normalized to 4 KB oracle)",
        columns=["normalized_perf", "faults_per_batch", "migrated_kb_per_batch"],
        notes=[
            "paper: baseline IOMMU ~17% at 4 KB; NeuMMU recovers to ~96%; "
            "2 MB pages unrecoverable for sparse access",
        ],
    )
    for model_factory in (ncf, dlrm):
        for batch in batches:
            model = model_factory()
            oracle = demand_paging_cell(
                model, oracle_config(PAGE_SIZE_4K), batch, system
            )
            reference = oracle.total_cycles_per_batch
            cells = [
                ("iommu/4K", baseline_iommu_config(page_size=PAGE_SIZE_4K)),
                ("neummu/4K", neummu_config(page_size=PAGE_SIZE_4K)),
                ("iommu/2M", baseline_iommu_config(page_size=PAGE_SIZE_2M)),
                ("neummu/2M", neummu_config(page_size=PAGE_SIZE_2M)),
            ]
            for cell_label, config in cells:
                result = demand_paging_cell(model, config, batch, system)
                fig.add(
                    f"{model.name}/b{batch:02d}/{cell_label}",
                    normalized_perf=reference / result.total_cycles_per_batch,
                    faults_per_batch=result.faults_per_batch,
                    migrated_kb_per_batch=result.migrated_bytes_per_batch / 1024.0,
                )
    return fig


# --------------------------------------------------------------------- #
# Section VI-A — large pages on dense networks                           #
# --------------------------------------------------------------------- #


def large_pages_dense(
    batches: Sequence[int] = (1,),
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Section VI-A: 2 MB pages mostly fix the IOMMU for dense DNNs."""
    runner = runner or ExperimentRunner()
    fig = FigureResult(
        figure_id="large_pages",
        title="Dense networks with 2 MB pages",
        columns=["iommu_2m", "neummu_2m", "iommu_4k"],
        notes=["paper: IOMMU overhead drops to ~4% average with 2 MB pages"],
    )
    pairs = dense_pairs(batches)
    grid = [
        baseline_iommu_config(page_size=PAGE_SIZE_2M),
        neummu_config(page_size=PAGE_SIZE_2M),
        baseline_iommu_config(),
    ]
    requests = [
        RunRequest(label, factory, config)
        for label, factory in pairs
        for config in grid
    ]
    normalized = iter(runner.normalized_many(requests))
    for label, _ in pairs:
        iommu_2m, _ = next(normalized)
        neummu_2m, _ = next(normalized)
        iommu_4k, _ = next(normalized)
        fig.add(label, iommu_2m=iommu_2m, neummu_2m=neummu_2m, iommu_4k=iommu_4k)
    fig.notes.append(
        f"avg IOMMU 2M {fig.mean('iommu_2m'):.3f} vs 4K {fig.mean('iommu_4k'):.3f}"
    )
    return fig


# --------------------------------------------------------------------- #
# Section VI-B — spatial-array NPU                                       #
# --------------------------------------------------------------------- #


def spatial_npu(
    batches: Sequence[int] = (1,),
) -> FigureResult:
    """Section VI-B: NeuMMU on a spatial (DaDianNao/Eyeriss-style) NPU."""
    npu = NPUConfig()
    runner = ExperimentRunner(
        npu_config=npu, compute_model=SpatialArrayModel(npu)
    )
    fig = FigureResult(
        figure_id="spatial",
        title="Spatial-array NPU: IOMMU vs NeuMMU",
        columns=["iommu_perf", "neummu_perf"],
        notes=["paper: NeuMMU within ~2% of oracle on the spatial design"],
    )
    for label, factory in dense_pairs(batches):
        iommu_norm, _ = runner.normalized(label, factory, baseline_iommu_config())
        neummu_norm, _ = runner.normalized(label, factory, neummu_config())
        fig.add(label, iommu_perf=iommu_norm, neummu_perf=neummu_norm)
    fig.notes.append(f"avg NeuMMU perf: {fig.mean('neummu_perf'):.4f}")
    return fig


# --------------------------------------------------------------------- #
# Section VI-C — sensitivity                                             #
# --------------------------------------------------------------------- #


def sensitivity_tlb(
    entries_sweep: Sequence[int] = (128, 512, 2048),
    batches: Sequence[int] = (1,),
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Section III-C/VI-C: TLB capacity barely moves the needle."""
    runner = runner or ExperimentRunner()
    columns = [f"tlb{n}" for n in entries_sweep]
    fig = FigureResult(
        figure_id="sens_tlb",
        title="IOMMU normalized performance vs TLB entries",
        columns=columns,
        notes=["paper: even 128K entries buys <0.02% over 2K (8 PTWs)"],
    )
    for label, factory in dense_pairs(batches):
        values: Dict[str, float] = {}
        for entries in entries_sweep:
            config = baseline_iommu_config(tlb_entries=entries)
            config = replace(config, name=f"tlb{entries}")
            norm, _ = runner.normalized(label, factory, config)
            values[f"tlb{entries}"] = norm
        fig.rows.append(Series(label=label, values=values))
    return fig


def sensitivity_large_batch(
    batches: Sequence[int] = (32, 64, 128),
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Section VI-C: large-batch common-layer study.

    Full-network simulation at these batches is intractable (the paper hit
    the same wall), so each network's representative layer runs alone.
    """
    runner = runner or ExperimentRunner()
    fig = FigureResult(
        figure_id="sens_batch",
        title="Common-layer large-batch study (IOMMU vs NeuMMU)",
        columns=["iommu_perf", "neummu_perf"],
        notes=["paper: IOMMU ~5.9% of oracle; NeuMMU ~99.9%"],
    )
    points = [
        (f"{name}/b{batch}", CommonLayerFactory(name, batch))
        for name in ("CNN-1", "CNN-2", "CNN-3", "RNN-1", "RNN-2", "RNN-3")
        for batch in batches
    ]
    requests = [
        RunRequest(label, factory, config)
        for label, factory in points
        for config in (baseline_iommu_config(), neummu_config())
    ]
    normalized = iter(runner.normalized_many(requests))
    for label, _ in points:
        iommu_norm, _ = next(normalized)
        neummu_norm, _ = next(normalized)
        fig.add(label, iommu_perf=iommu_norm, neummu_perf=neummu_norm)
    fig.notes.append(
        f"avg IOMMU {fig.mean('iommu_perf'):.3f} | avg NeuMMU {fig.mean('neummu_perf'):.4f}"
    )
    return fig


# --------------------------------------------------------------------- #
# Extension studies (beyond the paper's evaluated grid)                  #
# --------------------------------------------------------------------- #


def prefetch_ablation(
    depths: Sequence[int] = (0, 1, 2, 4),
    batches: Sequence[int] = (1,),
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Extension: can next-page translation prefetching save the IOMMU?

    The paper cites CPU TLB-prefetching work (§VII) but does not evaluate
    it.  Dense tile streams are perfectly sequential (Figure 14), the
    best case for a stream prefetcher — yet on the 8-walker IOMMU the
    prefetcher competes with demand bursts for the same walkers, so it
    cannot substitute for PRMB + walker scaling.
    """
    runner = runner or ExperimentRunner()
    columns = [f"pf{d}" for d in depths] + ["pf_accuracy"]
    fig = FigureResult(
        figure_id="prefetch",
        title="Next-page translation prefetching on the 8-walker IOMMU",
        columns=columns,
        notes=[
            "extension study: sequential prefetch cannot replace "
            "merging + translation throughput",
        ],
    )
    for label, factory in dense_pairs(batches):
        values: Dict[str, float] = {}
        accuracy = 0.0
        for depth in depths:
            config = MMUConfig(
                name=f"pf{depth}", n_walkers=8, prmb_slots=0, prefetch_depth=depth
            )
            norm, result = runner.normalized(label, factory, config)
            values[f"pf{depth}"] = norm
            if depth == max(depths):
                accuracy = result.mmu_summary.prefetch_accuracy
        values["pf_accuracy"] = accuracy
        fig.rows.append(Series(label=label, values=values))
    for depth in depths:
        fig.notes.append(f"avg pf{depth}: {fig.mean(f'pf{depth}'):.3f}")
    return fig


def multilevel_tlb_ablation(
    batches: Sequence[int] = (1,),
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Extension: a GPU-style L1/L2 TLB hierarchy on the baseline IOMMU.

    Section III-C argues locality-centric structures cannot absorb NPU
    translation bursts; this makes the claim concrete for the multi-level
    TLB the GPU-MMU literature leans on.
    """
    runner = runner or ExperimentRunner()
    fig = FigureResult(
        figure_id="mltlb",
        title="Single- vs two-level TLB on the baseline IOMMU",
        columns=["single_level", "two_level", "two_level_hit_rate"],
        notes=["capacity/latency tweaks do not fix a throughput problem"],
    )
    for label, factory in dense_pairs(batches):
        single, _ = runner.normalized(label, factory, baseline_iommu_config())
        config = MMUConfig(
            name="mltlb", n_walkers=8, prmb_slots=0, l1_tlb_entries=64
        )
        two, result = runner.normalized(label, factory, config)
        fig.add(
            label,
            single_level=single,
            two_level=two,
            two_level_hit_rate=result.mmu_summary.tlb_hit_rate,
        )
    fig.notes.append(
        f"avg single {fig.mean('single_level'):.3f} vs "
        f"two-level {fig.mean('two_level'):.3f}"
    )
    return fig


# --------------------------------------------------------------------- #
# Multi-tenant shared-MMU contention (beyond the paper's grid)           #
# --------------------------------------------------------------------- #


def multi_tenant_contention(
    workload: str = "CNN-1",
    batch: int = 1,
    tenants: Optional[int] = None,
    arbitration: str = "round_robin",
    qos: str = "full_share",
    weights: Optional[Sequence[float]] = None,
    npu_config: Optional[NPUConfig] = None,
    mix: Optional[str] = None,
) -> FigureResult:
    """Extension: N tenant models contending for one shared MMU.

    The scale-out serving regime the paper's single-address-space study
    cannot express: each tenant owns a private (ASID-tagged) address space
    but shares the TLB, PTS/walker pool, PRMB capacity and memory
    bandwidth.  Per-tenant slowdown is each tenant's shared-run cycles over
    its isolated single-tenant cycles under the *same* MMU config — the
    shared-pool contention penalty, reported for the canonical IOMMU and
    NeuMMU design points (plus the oracle, which isolates pure
    memory-bandwidth contention from translation contention).

    ``mix`` replaces the N identical copies with a heterogeneous tenant
    list resolved through the registry (``"cnn,rnn,recsys"`` — see
    :func:`repro.workloads.registry.mix_factories`); each tenant's
    slowdown is then measured against *its own* isolated run.
    ``qos``/``weights`` select the QoS share policy governing the shared
    structures (see :mod:`repro.core.qos`); the defaults reproduce the
    historical full-sharing run bit for bit.
    """
    from ..workloads.registry import DenseWorkloadFactory, mix_factories

    if mix is not None:
        factories = mix_factories(mix, batch)
        if tenants is not None and tenants != len(factories):
            raise ValueError(
                f"--tenants {tenants} does not match the {len(factories)}"
                f"-tenant mix {mix!r}; drop --tenants or make them agree"
            )
        label = "+".join(f.name for f in factories)
    else:
        if tenants is None:
            tenants = 2
        if tenants <= 0:
            raise ValueError("need at least one tenant")
        factories = [DenseWorkloadFactory(workload, batch)] * tenants
        label = f"{tenants} x {workload}"
    qualifier = arbitration if qos == "full_share" else f"{arbitration}, {qos}"
    fig = FigureResult(
        figure_id="tenants",
        title=f"Shared-MMU contention: {label}/b{batch:02d} ({qualifier})",
        columns=[
            "shared_mcycles",
            "isolated_mcycles",
            "slowdown",
            "tlb_hit_rate",
            "merges",
            "stall_mcycles",
        ],
        notes=[
            "slowdown = shared-run cycles / isolated same-config cycles; "
            "oracle rows isolate memory-bandwidth contention from "
            "translation contention",
        ],
    )
    for config in (oracle_config(), baseline_iommu_config(), neummu_config()):
        isolated_by_name: Dict[str, float] = {}
        for factory in factories:
            if factory.name not in isolated_by_name:
                isolated_by_name[factory.name] = NPUSimulator(
                    factory(), config, npu_config=npu_config
                ).run().total_cycles
        shared = run_multi_tenant(
            factories,
            config,
            npu_config=npu_config,
            arbitration=arbitration,
            qos=qos,
            weights=weights,
        )
        slowdowns = []
        for factory, tenant in zip(factories, shared.tenants):
            usage = tenant.usage
            iso_cycles = isolated_by_name[factory.name]
            slowdown = tenant.total_cycles / iso_cycles
            slowdowns.append(slowdown)
            fig.add(
                f"{config.name}/t{tenant.asid}",
                shared_mcycles=tenant.total_cycles / 1e6,
                isolated_mcycles=iso_cycles / 1e6,
                slowdown=slowdown,
                tlb_hit_rate=usage.tlb_hit_rate,
                merges=float(usage.merges),
                stall_mcycles=usage.stall_cycles / 1e6,
            )
        fig.notes.append(
            f"{config.name}: mean slowdown {sum(slowdowns) / len(slowdowns):.3f} "
            f"(makespan {shared.makespan_cycles / 1e6:.2f} Mcycles)"
        )
    return fig


def fairness(
    workload: str = "CNN-1",
    batch: int = 1,
    tenants: int = 2,
    weights: Optional[Sequence[float]] = None,
    arbitration: str = "weighted_quantum",
    npu_config: Optional[NPUConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Extension: per-tenant slowdown + Jain's index per QoS share policy.

    Sweeps the QoS layer's three share policies (``full_share``,
    ``static_partition``, ``weighted``) over the same shared-MMU
    contention run and reports each tenant's slowdown versus its isolated
    same-config run, plus Jain's fairness index of those slowdowns per
    (design point, policy).  Default weights descend from the tenant
    count (t0 heaviest), so the weighted rows show whether a reservation
    actually buys the heavy tenant latency — the partition-vs-share
    tradeoff Kim et al. and Picorel et al. identify for translation
    structures.

    Arbitration defaults to ``weighted_quantum``: share policies make
    tenants progress at different rates, and its clock-ordered service
    bounds the cross-tenant clock skew that whole-tile-step round robin
    would let couple every tenant to one makespan through the shared
    memory channels (see :class:`~repro.core.qos.WeightedQuantumArbiter`).

    ``runner`` shards the grid — two isolated baselines plus 2 configs ×
    3 policies of shared cells, all independent — across processes when
    its ``jobs > 1``; results are bit-identical to the serial path.
    """
    from ..workloads.registry import DenseWorkloadFactory

    if weights is None:
        weights = tuple(float(tenants - i) for i in range(tenants))
    weights = tuple(weights)
    runner = runner or ExperimentRunner(npu_config=npu_config or NPUConfig())
    factory = DenseWorkloadFactory(workload, batch)
    fig = FigureResult(
        figure_id="fairness",
        title=(
            f"QoS fairness: {tenants} x {workload}/b{batch:02d} "
            f"({arbitration}, weights {'/'.join(f'{w:g}' for w in weights)})"
        ),
        columns=["weight", "slowdown", "jain_index", "stall_mcycles"],
        notes=[
            "slowdown = shared-run cycles / isolated same-config cycles; "
            "jain_index = (sum s)^2 / (n * sum s^2) over each policy's "
            "per-tenant slowdowns (1.0 = perfectly even)",
        ],
    )
    configs = (baseline_iommu_config(), neummu_config())
    label = f"{workload}/b{batch:02d}"
    requests = [
        RunRequest(f"{config.name}/isolated/{label}", factory, config)
        for config in configs
    ] + [
        TenantRunRequest(
            label=f"{config.name}/{qos}/{label}",
            factories=(factory,) * tenants,
            mmu_config=config,
            arbitration=arbitration,
            qos=qos,
            weights=weights,
        )
        for config in configs
        for qos in SHARE_POLICIES
    ]
    results = runner.run_many(requests)
    isolated_by_config = dict(zip(configs, results[: len(configs)]))
    outcomes = iter(results[len(configs):])
    for config in configs:
        isolated = isolated_by_config[config]
        for qos in SHARE_POLICIES:
            shared = next(outcomes).result
            slowdowns = [
                tenant.total_cycles / isolated.total_cycles
                for tenant in shared.tenants
            ]
            index = jain_index(slowdowns)
            for tenant, slowdown in zip(shared.tenants, slowdowns):
                fig.add(
                    f"{config.name}/{qos}/t{tenant.asid}",
                    weight=weights[tenant.asid],
                    slowdown=slowdown,
                    jain_index=index,
                    stall_mcycles=tenant.usage.stall_cycles / 1e6,
                )
            fig.notes.append(
                f"{config.name}/{qos}: jain {index:.3f}, "
                f"max slowdown {max(slowdowns):.3f}, "
                f"makespan {shared.makespan_cycles / 1e6:.2f} Mcycles"
            )
    return fig


def paging_tenants(
    mix: str = "cnn,rnn,recsys",
    batch: int = 1,
    arbitration: str = "weighted_quantum",
    weights: Optional[Sequence[float]] = None,
    budgets_mb: Optional[Sequence[float]] = None,
    tiering=None,
    npu_config: Optional[NPUConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Extension: heterogeneous tenants demand-paging over one fabric.

    The ROADMAP's multi-tenant demand-paging study: a heterogeneous
    tenant mix (CNN + RNN + recsys by default, registry-resolved via
    :func:`repro.workloads.registry.mix_factories`) runs demand-paged —
    tensors unmapped until first touch, page moves streamed over one
    shared :class:`~repro.memory.tiering.MigrationFabric`, per-tenant
    local budgets evicting through the ASID-tagged shootdown path — and
    the three QoS share policies govern the fabric's transfer slots
    alongside the TLB/walker/PRMB quotas.  Each tenant's slowdown is its
    shared paged run over its *isolated* paged run (same budget, private
    fabric), so the figure isolates contention, not paging itself;
    ``fabric_share`` is the tenant's exact fraction of migrated bytes.

    Byte conservation on the fabric is asserted exactly: per-tenant
    migrated bytes sum to the fabric total, every one a whole page.

    ``runner`` shards the grid — one isolated paged baseline per tenant
    per design point plus 2 configs × 3 policies of shared cells —
    across processes when its ``jobs > 1``, bit-identical to serial.
    """
    from ..memory.tiering import TieringConfig
    from ..workloads.registry import mix_factories

    MB = 1024 * 1024
    factories = mix_factories(mix, batch)
    n = len(factories)
    tier_cfg = tiering if tiering is not None else TieringConfig()
    if budgets_mb is not None:
        if len(budgets_mb) != n:
            raise ValueError(
                f"got {len(budgets_mb)} budgets for the {n}-tenant mix "
                f"{mix!r}; pass exactly one MB budget per tenant"
            )
        budgets = [int(b * MB) for b in budgets_mb]
    else:
        budgets = [tier_cfg.default_budget_bytes] * n
    if weights is None:
        # t0 heaviest, as in the fairness figure: the weighted rows show
        # whether a fabric reservation buys the heavy tenant latency.
        weights = tuple(float(n - i) for i in range(n))
    weights = tuple(weights)
    runner = runner or ExperimentRunner(npu_config=npu_config or NPUConfig())
    mix_label = "+".join(f.name for f in factories)
    fig = FigureResult(
        figure_id="paging_tenants",
        title=(
            f"Multi-tenant demand paging: {mix_label}/b{batch:02d} over one "
            f"migration fabric ({arbitration}, weights "
            f"{'/'.join(f'{w:g}' for w in weights)})"
        ),
        columns=["slowdown", "faults", "migrated_mb", "fabric_share"],
        notes=[
            "slowdown = shared paged run / isolated paged run (same "
            "budget, private fabric); fabric_share = tenant's exact "
            "fraction of bytes migrated over the shared fabric",
        ],
    )
    configs = (baseline_iommu_config(), neummu_config())
    requests = [
        RunRequest(
            f"{config.name}/isolated/{factory.name}/b{batch:02d}",
            factory,
            config,
            tiering=tier_cfg,
            memory_budget=budgets[i],
        )
        for config in configs
        for i, factory in enumerate(factories)
    ] + [
        TenantRunRequest(
            label=f"{config.name}/{qos}/{mix_label}/b{batch:02d}",
            factories=tuple(factories),
            mmu_config=config,
            arbitration=arbitration,
            qos=qos,
            weights=weights,
            tiering=tier_cfg,
            memory_budgets=tuple(budgets),
        )
        for config in configs
        for qos in SHARE_POLICIES
    ]
    results = runner.run_many(requests)
    n_isolated = len(configs) * n
    outcomes = iter(results[n_isolated:])
    for c, config in enumerate(configs):
        isolated = results[c * n: (c + 1) * n]
        for qos in SHARE_POLICIES:
            outcome = next(outcomes)
            shared = outcome.result
            paging = outcome.paging
            assert paging is not None  # every tenant pages in this figure
            faults_of = dict(paging.faults)
            per_tenant_bytes = dict(paging.migrated_bytes)
            # Exact conservation: every migrated byte is attributed to
            # exactly one tenant, and every move is a whole page.
            if sum(per_tenant_bytes.values()) != paging.fabric_total_bytes:
                raise AssertionError(
                    f"fabric byte-conservation violation under {qos}: "
                    f"{per_tenant_bytes} != {paging.fabric_total_bytes}"
                )
            moved = paging.fabric_total_migrations * config.page_size
            if paging.fabric_total_bytes != moved:
                raise AssertionError(
                    f"fabric moved partial pages under {qos}: "
                    f"{paging.fabric_total_bytes} bytes in "
                    f"{paging.fabric_total_migrations} migrations"
                )
            total_bytes = paging.fabric_total_bytes or 1
            slowdowns = []
            for tenant, iso in zip(shared.tenants, isolated):
                t_bytes = per_tenant_bytes[tenant.asid]
                slowdown = tenant.total_cycles / iso.total_cycles
                slowdowns.append(slowdown)
                fig.add(
                    f"{config.name}/{qos}/t{tenant.asid}",
                    slowdown=slowdown,
                    faults=float(faults_of[tenant.asid]),
                    migrated_mb=t_bytes / MB,
                    fabric_share=t_bytes / total_bytes,
                )
            fig.notes.append(
                f"{config.name}/{qos}: jain {jain_index(slowdowns):.3f}, "
                f"max slowdown {max(slowdowns):.3f}, fabric "
                f"{paging.fabric_total_migrations} moves / "
                f"{paging.fabric_total_bytes / MB:.1f} MB (conserved exactly)"
            )
    return fig


# --------------------------------------------------------------------- #
# Section IV-E — implementation overhead                                 #
# --------------------------------------------------------------------- #


def overhead_area() -> FigureResult:
    """Section IV-E: SRAM storage / area / leakage of NeuMMU's additions."""
    overhead = neummu_overhead()
    fig = FigureResult(
        figure_id="overhead",
        title="NeuMMU implementation overhead (CACTI-style, 32 nm)",
        columns=["kb", "area_mm2", "leakage_mw"],
        notes=["paper: 32 KB PRMB + 2 KB TPreg + PTS = 0.10 mm^2, 13.65 mW"],
    )
    for name, est in (
        ("PRMB", overhead.prmb),
        ("TPreg", overhead.tpreg),
        ("PTS", overhead.pts),
        ("total", overhead.total),
    ):
        fig.add(
            name,
            kb=est.capacity_bytes / 1024.0,
            area_mm2=est.area_mm2,
            leakage_mw=est.leakage_mw,
        )
    return fig
