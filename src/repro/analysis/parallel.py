"""Process-parallel experiment execution with on-disk result caching.

The paper's design-space sweeps (Figures 10-12 alone cover PRMB slots ×
walker counts × page sizes × six networks) are embarrassingly parallel:
every ``(workload, MMUConfig)`` grid point is an independent simulation.
:class:`ParallelRunner` shards such grids across a
:class:`~concurrent.futures.ProcessPoolExecutor` and memoizes finished
results on disk, keyed by a stable hash of everything that determines the
result — the workload label, the MMU and NPU configurations, the engine
mode, the fidelity mode, the warmup count, the compute model and (for
demand-paged runs) the tiering configuration and memory budgets.
Re-running a sweep with a warm cache costs milliseconds.

Two request kinds share one dispatch path and one cache:

* :class:`RunRequest` — a single-tenant grid point (one workload, one
  :class:`~repro.core.mmu.MMUConfig`), optionally demand-paged through a
  private :class:`~repro.memory.tiering.LocalMemoryTier` built inside the
  worker from its ``tiering``/``memory_budget`` fields.
* :class:`TenantRunRequest` — a multi-tenant grid cell (N workload
  factories on one shared MMU under a QoS/arbitration combo, optionally
  paged over one shared migration fabric).  Workers return a
  :class:`TenantRunOutcome` carrying the
  :class:`~repro.npu.simulator.MultiTenantResult` plus an exact
  :class:`TenantPagingSummary` of the fabric accounting, since the tier
  object itself stays behind in the worker process.

Workload factories must be *picklable* — module-level functions and the
dataclass factories in :mod:`repro.workloads.registry`
(:class:`~repro.workloads.registry.DenseWorkloadFactory`,
:class:`~repro.workloads.registry.CommonLayerFactory`) qualify; closures
do not.

Determinism: a simulation's outcome does not depend on which process runs
it, so ``jobs=N`` produces results identical to the serial path —
``tests/test_parallel.py`` locks this in.

Profiling: when ``NEUMMU_PROFILE_DIR`` is set, every worker execution
runs under :mod:`cProfile` and dumps ``worker-<pid>-<seq>.pstats`` into
that directory; ``neummu ... --profile --jobs N`` sets it and aggregates
the worker dumps into the printed hot-spot table (child-process work used
to vanish from the profile entirely).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.mmu import MMUConfig
from ..memory.tiering import TieringConfig
from ..npu.config import NPUConfig
from ..npu.simulator import (
    Fidelity,
    MultiTenantResult,
    MultiTenantSimulator,
    NPUSimulator,
    RunResult,
)

#: Bump when simulation semantics change in a way that invalidates old
#: cached results (the cache key embeds it).  2: the key now folds in the
#: effective engine mode and the tiering/paging configuration — schema-1
#: keys could serve a ``NEUMMU_ENGINE=reference`` run a cached columnar
#: result (and knew nothing about demand-paged runs at all).  3: the key
#: folds in the fast-path environment knobs (``NEUMMU_QUOTA_BATCH``,
#: ``NEUMMU_CALENDAR``) — results are bit-identical either way, but the
#: CI byte-identity smokes that *prove* that would otherwise be served
#: one mode's cached cells while exercising the other.  4: adds
#: ``NEUMMU_MISS_BATCH`` (mixed-window miss planner) to the knob set for
#: the same reason.
CACHE_SCHEMA = 4


def _engine_env_knobs() -> Dict[str, bool]:
    """Effective fast-path environment knobs, folded into cache keys.

    Each selects between bit-identical engine paths, so sharing cached
    results across them would be *correct* — but it would silently turn
    the ``NEUMMU_QUOTA_BATCH=0`` vs ``=1`` (and calendar) byte-identity
    smokes into cache-hit no-ops.  Keyed separately so a poisoned run of
    one mode can never mask a divergence in the other.
    """
    return {
        "quota_batch": os.environ.get("NEUMMU_QUOTA_BATCH", "1") != "0",
        "calendar": os.environ.get("NEUMMU_CALENDAR", "1") != "0",
        "miss_batch": os.environ.get("NEUMMU_MISS_BATCH", "1") != "0",
    }


@dataclass(frozen=True)
class RunRequest:
    """One grid point: a labelled workload under one MMU configuration.

    ``tiering``/``memory_budget`` make the run demand-paged: the worker
    builds a private :class:`~repro.memory.tiering.LocalMemoryTier`
    (fabric sized per ``tiering``) and first-touch faults migrate pages
    in — the isolated-baseline legs of the paging figures.
    """

    label: str
    factory: Callable[[], object]
    mmu_config: MMUConfig
    tiering: Optional[TieringConfig] = None
    memory_budget: Optional[int] = None


@dataclass(frozen=True)
class TenantRunRequest:
    """One multi-tenant grid cell: N workloads on one shared MMU.

    ``factories`` is one picklable zero-arg workload factory per tenant
    (ASID = position).  ``qos=None`` defers to ``mmu_config.qos`` exactly
    like :class:`~repro.npu.simulator.MultiTenantSimulator`;
    ``tiering``/``memory_budgets`` enable the shared demand-paged tier.
    """

    label: str
    factories: Tuple[Callable[[], object], ...]
    mmu_config: MMUConfig
    arbitration: str = "round_robin"
    qos: Optional[str] = None
    weights: Optional[Tuple[float, ...]] = None
    tiering: Optional[TieringConfig] = None
    memory_budgets: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class TenantPagingSummary:
    """Exact fabric/tier accounting extracted from a worker's run.

    The :class:`~repro.memory.tiering.LocalMemoryTier` lives and dies in
    the worker process, so the numbers the paging figures assert on
    (byte conservation, whole-page moves, per-tenant fabric shares)
    travel back in this picklable summary instead.
    """

    #: ``asid -> fault count``, one entry per tenant the tier tracked.
    faults: Tuple[Tuple[int, int], ...]
    #: ``asid -> exact bytes migrated``, same key set as ``faults``.
    migrated_bytes: Tuple[Tuple[int, int], ...]
    fabric_total_bytes: int
    fabric_total_migrations: int


@dataclass(frozen=True)
class TenantRunOutcome:
    """What a :class:`TenantRunRequest` worker returns."""

    result: MultiTenantResult
    paging: Optional[TenantPagingSummary]


#: Either request kind; :meth:`ParallelRunner.run_many` accepts mixed
#: batches so a figure's isolated baselines and shared cells share one
#: process pool.
AnyRequest = Union[RunRequest, TenantRunRequest]


def _canonical(obj) -> object:
    """JSON-ready canonical form of configuration-like values."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {k: _canonical(v) for k, v in sorted(asdict(obj).items())}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, Fidelity):
        return obj.value
    # Fall back to the type identity (e.g. a compute-model class).
    return type(obj).__qualname__


def factory_token(factory: object) -> str:
    """Stable identity of a workload factory for cache keying.

    Labels alone are not unique across experiments (the dense suite and
    the common-layer study can both emit ``CNN-1/b32``), so the factory's
    own identity joins every cache key.  Dataclass factories
    (:class:`~repro.workloads.registry.DenseWorkloadFactory` etc.) token
    stably by type + fields; arbitrary callables fall back to ``repr``,
    which is process-unique — correct, merely uncacheable across runs.
    """
    if factory is None:
        return "none"
    if is_dataclass(factory) and not isinstance(factory, type):
        return json.dumps(
            [type(factory).__qualname__, _canonical(factory)], sort_keys=True
        )
    return repr(factory)


def request_key(
    label: str,
    mmu_config: MMUConfig,
    npu_config: NPUConfig,
    fidelity: Fidelity,
    warmup: int,
    compute_model: object = None,
    factory: object = None,
    tiering: Optional[TieringConfig] = None,
    memory_budget: Optional[int] = None,
) -> str:
    """Stable hex digest identifying one simulation's full configuration.

    ``engine_mode`` joins explicitly (not just via the canonicalized
    config) because it is the one knob an environment variable
    (``NEUMMU_ENGINE``) injects into otherwise-identical configs — the
    cache must never serve a reference-mode run a columnar result or
    vice versa, even if the canonical form of :class:`MMUConfig` evolves.
    """
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "label": label,
            "factory": factory_token(factory),
            "mmu": _canonical(mmu_config),
            "engine_mode": mmu_config.engine_mode,
            "engine_knobs": _engine_env_knobs(),
            "npu": _canonical(npu_config),
            "fidelity": fidelity.value,
            "warmup": warmup,
            "compute_model": _canonical(compute_model),
            "tiering": _canonical(tiering),
            "memory_budget": memory_budget,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def tenant_request_key(
    request: TenantRunRequest,
    npu_config: NPUConfig,
    fidelity: Fidelity,
    warmup: int,
    compute_model: object = None,
) -> str:
    """Stable hex digest for one multi-tenant grid cell.

    ``qos`` is normalized to its effective value (``mmu_config.qos`` when
    the request leaves it ``None``) so the two spellings of the same run
    share a cache entry.
    """
    effective_qos = (
        request.qos if request.qos is not None else request.mmu_config.qos
    )
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "kind": "tenants",
            "label": request.label,
            "factories": [factory_token(f) for f in request.factories],
            "mmu": _canonical(request.mmu_config),
            "engine_mode": request.mmu_config.engine_mode,
            "engine_knobs": _engine_env_knobs(),
            "npu": _canonical(npu_config),
            "fidelity": fidelity.value,
            "warmup": warmup,
            "compute_model": _canonical(compute_model),
            "arbitration": request.arbitration,
            "qos": effective_qos,
            "weights": _canonical(request.weights),
            "tiering": _canonical(request.tiering),
            "memory_budgets": _canonical(request.memory_budgets),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Pickle-file store for finished worker results.

    Writes are atomic (temp file + rename) so concurrent workers and
    concurrent sweep processes can share one directory safely.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str):
        """Cached result for ``key``, or None (corrupt entries read as misses)."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def put(self, key: str, result: object) -> None:
        """Store ``result`` under ``key`` atomically."""
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))


#: Per-process counter distinguishing a worker's successive profile dumps.
_PROFILE_SEQ = itertools.count()


def _profiled(fn: Callable, payload: Tuple):
    """Run ``fn(payload)``, honouring the worker-profiling contract.

    With ``NEUMMU_PROFILE_DIR`` set, the execution runs under
    :mod:`cProfile` and the stats land in that directory as
    ``worker-<pid>-<seq>.pstats`` — one dump per simulated grid point, so
    the parent's ``--profile`` aggregation sees child-process work.
    """
    profile_dir = os.environ.get("NEUMMU_PROFILE_DIR")
    if not profile_dir:
        return fn(payload)
    import cProfile

    profile = cProfile.Profile()
    try:
        return profile.runcall(fn, payload)
    finally:
        directory = Path(profile_dir)
        directory.mkdir(parents=True, exist_ok=True)
        profile.dump_stats(
            directory / f"worker-{os.getpid()}-{next(_PROFILE_SEQ)}.pstats"
        )


def _build_tier(tiering: Optional[TieringConfig], mmu_config, npu_config):
    """Private demand-paging tier for an isolated (single-tenant) run."""
    # Deferred: repro.sparse imports repro.npu at package level.
    from ..memory.tiering import LocalMemoryTier, MigrationFabric
    from ..sparse.numa import nvlink_link

    tier_cfg = tiering if tiering is not None else TieringConfig()
    fabric = MigrationFabric(
        nvlink_link(npu_config.interconnect), slots=tier_cfg.fabric_slots
    )
    return LocalMemoryTier(
        fabric,
        page_size=mmu_config.page_size,
        fault_overhead_cycles=tier_cfg.fault_overhead_cycles,
        eviction=tier_cfg.eviction,
    )


def _run_single(payload: Tuple) -> RunResult:
    (
        factory,
        mmu_config,
        npu_config,
        compute_model,
        fidelity_value,
        warmup,
        tiering,
        memory_budget,
    ) = payload
    kwargs = {}
    if tiering is not None or memory_budget is not None:
        tier_cfg = tiering if tiering is not None else TieringConfig()
        kwargs["paging_tier"] = _build_tier(tiering, mmu_config, npu_config)
        kwargs["memory_budget"] = (
            memory_budget
            if memory_budget is not None
            else tier_cfg.default_budget_bytes
        )
    sim = NPUSimulator(
        factory(),
        mmu_config,
        npu_config=npu_config,
        compute_model=compute_model,
        fidelity=Fidelity(fidelity_value),
        warmup=warmup,
        **kwargs,
    )
    return sim.run()


def _execute(payload: Tuple) -> RunResult:
    """Worker entry point: run one simulation (must stay module-level)."""
    return _profiled(_run_single, payload)


def _run_tenants(payload: Tuple) -> TenantRunOutcome:
    request, npu_config, compute_model, fidelity_value, warmup = payload
    sim = MultiTenantSimulator(
        [factory() for factory in request.factories],
        request.mmu_config,
        npu_config=npu_config,
        arbitration=request.arbitration,
        compute_model=compute_model,
        fidelity=Fidelity(fidelity_value),
        warmup=warmup,
        qos=request.qos,
        weights=request.weights,
        paging=request.tiering,
        memory_budgets=request.memory_budgets,
    )
    result = sim.run()
    paging = None
    if sim.paging is not None:
        tier = sim.paging
        tracked = sorted(tier.tenants)
        paging = TenantPagingSummary(
            faults=tuple((asid, tier.tenants[asid].faults) for asid in tracked),
            migrated_bytes=tuple(
                (asid, tier.migrated_bytes_of(asid)) for asid in tracked
            ),
            fabric_total_bytes=tier.fabric.total_bytes,
            fabric_total_migrations=tier.fabric.total_migrations,
        )
    return TenantRunOutcome(result=result, paging=paging)


def _execute_tenants(payload: Tuple) -> TenantRunOutcome:
    """Worker entry point for multi-tenant cells (must stay module-level)."""
    return _profiled(_run_tenants, payload)


class ParallelRunner:
    """Shards simulation grid points across processes.

    ``jobs <= 1`` runs everything in-process (no executor overhead) but
    still consults the cache; results are identical either way.  With
    ``cache_dir`` unset, no on-disk caching happens.  Batches may mix
    :class:`RunRequest` and :class:`TenantRunRequest` freely.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        npu_config: Optional[NPUConfig] = None,
        compute_model: object = None,
        fidelity: Fidelity = Fidelity.FAST,
        warmup: int = 4,
    ):
        if jobs < 0:
            raise ValueError(f"jobs cannot be negative, got {jobs}")
        self.jobs = jobs or (os.cpu_count() or 1)
        self.npu_config = npu_config or NPUConfig()
        self.compute_model = compute_model
        self.fidelity = fidelity
        self.warmup = warmup
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        #: Grid points actually simulated (cache misses) since construction.
        self.simulated = 0

    # ------------------------------------------------------------------ #

    def key_of(self, request: AnyRequest) -> str:
        """Cache key of one request under this runner's configuration."""
        if isinstance(request, TenantRunRequest):
            return tenant_request_key(
                request,
                self.npu_config,
                self.fidelity,
                self.warmup,
                self.compute_model,
            )
        return request_key(
            request.label,
            request.mmu_config,
            self.npu_config,
            self.fidelity,
            self.warmup,
            self.compute_model,
            factory=request.factory,
            tiering=request.tiering,
            memory_budget=request.memory_budget,
        )

    def _payload(self, request: AnyRequest) -> Tuple:
        if isinstance(request, TenantRunRequest):
            return (
                request,
                self.npu_config,
                self.compute_model,
                self.fidelity.value,
                self.warmup,
            )
        return (
            request.factory,
            request.mmu_config,
            self.npu_config,
            self.compute_model,
            self.fidelity.value,
            self.warmup,
            request.tiering,
            request.memory_budget,
        )

    @staticmethod
    def _worker(request: AnyRequest) -> Callable[[Tuple], object]:
        if isinstance(request, TenantRunRequest):
            return _execute_tenants
        return _execute

    def run_many(self, requests: Sequence[AnyRequest]) -> List:
        """Run every request; returns results in request order.

        Cached results are returned without simulating; the remainder is
        sharded across ``jobs`` worker processes (or run inline for
        ``jobs=1``/single pending requests).  :class:`RunRequest` entries
        yield :class:`~repro.npu.simulator.RunResult`,
        :class:`TenantRunRequest` entries :class:`TenantRunOutcome`.
        """
        results: List[Optional[object]] = [None] * len(requests)
        pending: List[Tuple[int, Optional[str]]] = []
        for idx, request in enumerate(requests):
            key = self.key_of(request) if self.cache is not None else None
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[idx] = cached
            else:
                pending.append((idx, key))

        if pending:
            self.simulated += len(pending)
            if self.jobs > 1 and len(pending) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending))
                ) as pool:
                    futures = [
                        pool.submit(
                            self._worker(requests[idx]),
                            self._payload(requests[idx]),
                        )
                        for idx, _ in pending
                    ]
                    for (idx, key), future in zip(pending, futures):
                        results[idx] = future.result()
                        if self.cache is not None:
                            self.cache.put(key, results[idx])
            else:
                for idx, key in pending:
                    results[idx] = self._worker(requests[idx])(
                        self._payload(requests[idx])
                    )
                    if self.cache is not None:
                        self.cache.put(key, results[idx])
        return results

    def run_one(self, request: RunRequest) -> RunResult:
        """Run a single request through the same cache-aware path."""
        return self.run_many([request])[0]

    def run_tenants(self, request: TenantRunRequest) -> TenantRunOutcome:
        """Run a single multi-tenant cell through the cache-aware path."""
        return self.run_many([request])[0]
