"""Process-parallel experiment execution with on-disk result caching.

The paper's design-space sweeps (Figures 10-12 alone cover PRMB slots ×
walker counts × page sizes × six networks) are embarrassingly parallel:
every ``(workload, MMUConfig)`` grid point is an independent simulation.
:class:`ParallelRunner` shards such grids across a
:class:`~concurrent.futures.ProcessPoolExecutor` and memoizes finished
:class:`~repro.npu.simulator.RunResult`\\ s on disk, keyed by a stable hash
of everything that determines the result — the workload label, the MMU and
NPU configurations, the fidelity mode, the warmup count and the compute
model.  Re-running a sweep with a warm cache costs milliseconds.

Grid points are described by :class:`RunRequest`.  The workload factory it
carries must be *picklable* — module-level functions and the dataclass
factories in :mod:`repro.workloads.registry`
(:class:`~repro.workloads.registry.DenseWorkloadFactory`,
:class:`~repro.workloads.registry.CommonLayerFactory`) qualify; closures
do not.

Determinism: a simulation's outcome does not depend on which process runs
it, so ``jobs=N`` produces results identical to the serial path —
``tests/test_parallel.py`` locks this in.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.mmu import MMUConfig
from ..npu.config import NPUConfig
from ..npu.simulator import Fidelity, NPUSimulator, RunResult

#: Bump when simulation semantics change in a way that invalidates old
#: cached results (the cache key embeds it).
CACHE_SCHEMA = 1


@dataclass(frozen=True)
class RunRequest:
    """One grid point: a labelled workload under one MMU configuration."""

    label: str
    factory: Callable[[], object]
    mmu_config: MMUConfig


def _canonical(obj) -> object:
    """JSON-ready canonical form of configuration-like values."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {k: _canonical(v) for k, v in sorted(asdict(obj).items())}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, Fidelity):
        return obj.value
    # Fall back to the type identity (e.g. a compute-model class).
    return type(obj).__qualname__


def factory_token(factory: object) -> str:
    """Stable identity of a workload factory for cache keying.

    Labels alone are not unique across experiments (the dense suite and
    the common-layer study can both emit ``CNN-1/b32``), so the factory's
    own identity joins every cache key.  Dataclass factories
    (:class:`~repro.workloads.registry.DenseWorkloadFactory` etc.) token
    stably by type + fields; arbitrary callables fall back to ``repr``,
    which is process-unique — correct, merely uncacheable across runs.
    """
    if factory is None:
        return "none"
    if is_dataclass(factory) and not isinstance(factory, type):
        return json.dumps(
            [type(factory).__qualname__, _canonical(factory)], sort_keys=True
        )
    return repr(factory)


def request_key(
    label: str,
    mmu_config: MMUConfig,
    npu_config: NPUConfig,
    fidelity: Fidelity,
    warmup: int,
    compute_model: object = None,
    factory: object = None,
) -> str:
    """Stable hex digest identifying one simulation's full configuration."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "label": label,
            "factory": factory_token(factory),
            "mmu": _canonical(mmu_config),
            "npu": _canonical(npu_config),
            "fidelity": fidelity.value,
            "warmup": warmup,
            "compute_model": _canonical(compute_model),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Pickle-file store for finished :class:`RunResult`\\ s.

    Writes are atomic (temp file + rename) so concurrent workers and
    concurrent sweep processes can share one directory safely.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[RunResult]:
        """Cached result for ``key``, or None (corrupt entries read as misses)."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` atomically."""
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))


def _execute(payload: Tuple) -> RunResult:
    """Worker entry point: run one simulation (must stay module-level)."""
    factory, mmu_config, npu_config, compute_model, fidelity_value, warmup = payload
    sim = NPUSimulator(
        factory(),
        mmu_config,
        npu_config=npu_config,
        compute_model=compute_model,
        fidelity=Fidelity(fidelity_value),
        warmup=warmup,
    )
    return sim.run()


class ParallelRunner:
    """Shards ``(workload, MMUConfig)`` grid points across processes.

    ``jobs <= 1`` runs everything in-process (no executor overhead) but
    still consults the cache; results are identical either way.  With
    ``cache_dir`` unset, no on-disk caching happens.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        npu_config: Optional[NPUConfig] = None,
        compute_model: object = None,
        fidelity: Fidelity = Fidelity.FAST,
        warmup: int = 4,
    ):
        if jobs < 0:
            raise ValueError(f"jobs cannot be negative, got {jobs}")
        self.jobs = jobs or (os.cpu_count() or 1)
        self.npu_config = npu_config or NPUConfig()
        self.compute_model = compute_model
        self.fidelity = fidelity
        self.warmup = warmup
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        #: Grid points actually simulated (cache misses) since construction.
        self.simulated = 0

    # ------------------------------------------------------------------ #

    def key_of(self, request: RunRequest) -> str:
        """Cache key of one request under this runner's configuration."""
        return request_key(
            request.label,
            request.mmu_config,
            self.npu_config,
            self.fidelity,
            self.warmup,
            self.compute_model,
            factory=request.factory,
        )

    def _payload(self, request: RunRequest) -> Tuple:
        return (
            request.factory,
            request.mmu_config,
            self.npu_config,
            self.compute_model,
            self.fidelity.value,
            self.warmup,
        )

    def run_many(self, requests: Sequence[RunRequest]) -> List[RunResult]:
        """Run every request; returns results in request order.

        Cached results are returned without simulating; the remainder is
        sharded across ``jobs`` worker processes (or run inline for
        ``jobs=1``/single pending requests).
        """
        results: List[Optional[RunResult]] = [None] * len(requests)
        pending: List[Tuple[int, Optional[str]]] = []
        for idx, request in enumerate(requests):
            key = self.key_of(request) if self.cache is not None else None
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[idx] = cached
            else:
                pending.append((idx, key))

        if pending:
            self.simulated += len(pending)
            if self.jobs > 1 and len(pending) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending))
                ) as pool:
                    futures = [
                        pool.submit(_execute, self._payload(requests[idx]))
                        for idx, _ in pending
                    ]
                    for (idx, key), future in zip(pending, futures):
                        results[idx] = future.result()
                        if self.cache is not None:
                            self.cache.put(key, results[idx])
            else:
                for idx, key in pending:
                    results[idx] = _execute(self._payload(requests[idx]))
                    if self.cache is not None:
                        self.cache.put(key, results[idx])
        return results  # type: ignore[return-value]

    def run_one(self, request: RunRequest) -> RunResult:
        """Run a single request through the same cache-aware path."""
        return self.run_many([request])[0]
