"""Shared experiment plumbing: workload pairs, cached oracle runs, sweeps.

The figure experiments all follow the same skeleton — run the dense suite
under some MMU configuration and normalize against the oracle — so the
oracle runs (one per workload × page size) are cached here and reused
across sweep points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.mmu import MMUConfig, oracle_config
from ..memory.address import PAGE_SIZE_4K
from ..npu.config import NPUConfig
from ..npu.simulator import Fidelity, NPUSimulator, RunResult
from ..workloads.cnn import Workload
from ..workloads.registry import DENSE_BATCHES, DENSE_WORKLOADS

#: (display label, workload factory) pair.
WorkloadPair = Tuple[str, Callable[[], Workload]]


def dense_pairs(batches: Sequence[int] = DENSE_BATCHES) -> List[WorkloadPair]:
    """The paper's dense evaluation grid: 6 networks × batch sizes."""
    pairs: List[WorkloadPair] = []
    for name, factory in DENSE_WORKLOADS.items():
        for batch in batches:
            label = f"{name}/b{batch:02d}"
            pairs.append((label, _bind(factory, batch)))
    return pairs


def _bind(factory: Callable[[int], Workload], batch: int) -> Callable[[], Workload]:
    def make() -> Workload:
        return factory(batch)

    return make


@dataclass
class ExperimentRunner:
    """Runs workloads under MMU configs with oracle-result caching."""

    npu_config: NPUConfig = field(default_factory=NPUConfig)
    compute_model: object = None
    fidelity: Fidelity = Fidelity.FAST
    warmup: int = 4

    def __post_init__(self) -> None:
        self._oracle_cache: Dict[Tuple[str, int], RunResult] = {}

    def run(
        self,
        label: str,
        factory: Callable[[], Workload],
        mmu_config: MMUConfig,
        **kwargs,
    ) -> RunResult:
        """One simulation; kwargs forward to :class:`NPUSimulator`."""
        sim = NPUSimulator(
            factory(),
            mmu_config,
            npu_config=self.npu_config,
            compute_model=self.compute_model,
            fidelity=self.fidelity,
            warmup=self.warmup,
            **kwargs,
        )
        return sim.run()

    def oracle(
        self,
        label: str,
        factory: Callable[[], Workload],
        page_size: int = PAGE_SIZE_4K,
    ) -> RunResult:
        """Oracle run for ``label``, cached across sweep points."""
        key = (label, page_size)
        cached = self._oracle_cache.get(key)
        if cached is None:
            cached = self.run(label, factory, oracle_config(page_size))
            self._oracle_cache[key] = cached
        return cached

    def normalized(
        self,
        label: str,
        factory: Callable[[], Workload],
        mmu_config: MMUConfig,
        **kwargs,
    ) -> Tuple[float, RunResult]:
        """(oracle cycles / candidate cycles, candidate result)."""
        oracle = self.oracle(label, factory, mmu_config.page_size)
        candidate = self.run(label, factory, mmu_config, **kwargs)
        return (oracle.total_cycles / candidate.total_cycles, candidate)
