"""Shared experiment plumbing: workload pairs, cached oracle runs, sweeps.

The figure experiments all follow the same skeleton — run the dense suite
under some MMU configuration and normalize against the oracle — so the
oracle runs (one per workload × page size) are cached here and reused
across sweep points.

Execution routes through :class:`~repro.analysis.parallel.ParallelRunner`:
the default ``jobs=1`` keeps everything serial and in-process (identical
to the historical behaviour), while ``jobs=N`` shards grid points across
worker processes and ``cache_dir`` adds persistent result caching.  The
batch entry points :meth:`ExperimentRunner.run_many` /
:meth:`ExperimentRunner.normalized_many` are what the sweep experiments
use, so a whole figure's grid is in flight at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.mmu import MMUConfig, oracle_config
from ..memory.address import PAGE_SIZE_4K
from ..npu.config import NPUConfig
from ..npu.simulator import Fidelity, NPUSimulator, RunResult
from ..workloads.cnn import Workload
from ..workloads.registry import DENSE_BATCHES, DENSE_WORKLOADS, DenseWorkloadFactory
from .parallel import (
    AnyRequest,
    ParallelRunner,
    RunRequest,
    TenantRunOutcome,
    TenantRunRequest,
    factory_token,
)

#: (display label, workload factory) pair.
WorkloadPair = Tuple[str, Callable[[], Workload]]


def dense_pairs(batches: Sequence[int] = DENSE_BATCHES) -> List[WorkloadPair]:
    """The paper's dense evaluation grid: 6 networks × batch sizes.

    Factories are picklable (:class:`DenseWorkloadFactory`), so the pairs
    feed both the serial and the process-parallel execution paths.
    """
    pairs: List[WorkloadPair] = []
    for name in DENSE_WORKLOADS:
        for batch in batches:
            label = f"{name}/b{batch:02d}"
            pairs.append((label, DenseWorkloadFactory(name, batch)))
    return pairs


@dataclass
class ExperimentRunner:
    """Runs workloads under MMU configs with oracle-result caching.

    ``jobs``/``cache_dir`` configure the underlying
    :class:`~repro.analysis.parallel.ParallelRunner`; the defaults keep
    execution serial, uncached and bit-identical to the historical runner.
    """

    npu_config: NPUConfig = field(default_factory=NPUConfig)
    compute_model: object = None
    fidelity: Fidelity = Fidelity.FAST
    warmup: int = 4
    jobs: int = 1
    cache_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        self._oracle_cache: Dict[Tuple[str, int, str], RunResult] = {}
        self._parallel = ParallelRunner(
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            npu_config=self.npu_config,
            compute_model=self.compute_model,
            fidelity=self.fidelity,
            warmup=self.warmup,
        )

    # ------------------------------------------------------------------ #
    # single runs                                                        #
    # ------------------------------------------------------------------ #

    def run(
        self,
        label: str,
        factory: Callable[[], Workload],
        mmu_config: MMUConfig,
        **kwargs,
    ) -> RunResult:
        """One simulation; kwargs forward to :class:`NPUSimulator`.

        Extra simulator kwargs (tracing, timeline windows, ...) bypass the
        result cache, since the cache key does not cover them.
        """
        if kwargs:
            sim = NPUSimulator(
                factory(),
                mmu_config,
                npu_config=self.npu_config,
                compute_model=self.compute_model,
                fidelity=self.fidelity,
                warmup=self.warmup,
                **kwargs,
            )
            return sim.run()
        return self._parallel.run_one(RunRequest(label, factory, mmu_config))

    def oracle(
        self,
        label: str,
        factory: Callable[[], Workload],
        page_size: int = PAGE_SIZE_4K,
    ) -> RunResult:
        """Oracle run for ``label``, cached across sweep points.

        The cache key includes the factory identity: labels alone are not
        unique across experiments (dense ``CNN-1/b32`` vs the common-layer
        study's ``CNN-1/b32`` are different workloads).
        """
        key = (label, page_size, factory_token(factory))
        cached = self._oracle_cache.get(key)
        if cached is None:
            cached = self.run(label, factory, oracle_config(page_size))
            self._oracle_cache[key] = cached
        return cached

    def normalized(
        self,
        label: str,
        factory: Callable[[], Workload],
        mmu_config: MMUConfig,
        **kwargs,
    ) -> Tuple[float, RunResult]:
        """(oracle cycles / candidate cycles, candidate result)."""
        oracle = self.oracle(label, factory, mmu_config.page_size)
        candidate = self.run(label, factory, mmu_config, **kwargs)
        return (oracle.total_cycles / candidate.total_cycles, candidate)

    # ------------------------------------------------------------------ #
    # batch runs (what the sweep experiments use)                        #
    # ------------------------------------------------------------------ #

    def run_many(self, requests: Sequence[AnyRequest]) -> List:
        """Run a batch of grid points (parallel when ``jobs > 1``).

        Batches may mix single-tenant :class:`RunRequest` and
        multi-tenant :class:`TenantRunRequest` entries — a QoS figure's
        isolated baselines and shared cells shard across one pool.
        """
        return self._parallel.run_many(requests)

    def run_tenants(self, request: TenantRunRequest) -> TenantRunOutcome:
        """Run one multi-tenant grid cell through the cache-aware path."""
        return self._parallel.run_tenants(request)

    def normalized_many(
        self, requests: Sequence[RunRequest]
    ) -> List[Tuple[float, RunResult]]:
        """Normalized performance for a batch of grid points.

        The required oracle baselines (one per distinct workload × page
        size, minus those already cached) join the same batch, so with
        ``jobs > 1`` oracles and candidates simulate concurrently.
        """
        oracle_needs: Dict[Tuple[str, int, str], Callable[[], Workload]] = {}
        for request in requests:
            key = (
                request.label,
                request.mmu_config.page_size,
                factory_token(request.factory),
            )
            if key not in self._oracle_cache and key not in oracle_needs:
                oracle_needs[key] = request.factory
        oracle_requests = [
            RunRequest(label, factory, oracle_config(page_size))
            for (label, page_size, _), factory in oracle_needs.items()
        ]
        all_results = self._parallel.run_many(
            list(oracle_requests) + list(requests)
        )
        for cache_key, result in zip(
            oracle_needs, all_results[: len(oracle_requests)]
        ):
            self._oracle_cache[cache_key] = result
        out: List[Tuple[float, RunResult]] = []
        for request, result in zip(requests, all_results[len(oracle_requests):]):
            oracle = self._oracle_cache[
                (
                    request.label,
                    request.mmu_config.page_size,
                    factory_token(request.factory),
                )
            ]
            out.append((oracle.total_cycles / result.total_cycles, result))
        return out
