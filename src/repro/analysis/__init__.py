"""Experiment harness: one entry point per paper table/figure.

See DESIGN.md's per-experiment index for the mapping from paper artifact to
function; EXPERIMENTS.md records paper-vs-measured values.
"""

from .experiments import (
    ENERGY_PAIRS,
    PRMB_SLOT_SWEEP,
    PTW_SWEEP,
    fig6_page_divergence,
    fig7_translation_bursts,
    fig8_baseline_iommu,
    fig10_prmb_sweep,
    fig11_ptw_sweep,
    fig12a_ptw_no_prmb,
    fig12b_energy_sweep,
    fig13_tpreg_hit_rates,
    fig14_va_trace,
    fig15_numa,
    fig16_demand_paging,
    headline_claims,
    large_pages_dense,
    multi_tenant_contention,
    multilevel_tlb_ablation,
    overhead_area,
    prefetch_ablation,
    sensitivity_large_batch,
    sensitivity_tlb,
    spatial_npu,
    table1_config,
    tpc_vs_uptc,
)
from .figures import FigureResult, Series, geometric_mean
from .parallel import ParallelRunner, ResultCache, RunRequest, request_key
from .runner import ExperimentRunner, dense_pairs

__all__ = [
    "ENERGY_PAIRS",
    "PRMB_SLOT_SWEEP",
    "PTW_SWEEP",
    "ExperimentRunner",
    "FigureResult",
    "ParallelRunner",
    "ResultCache",
    "RunRequest",
    "Series",
    "dense_pairs",
    "fig6_page_divergence",
    "fig7_translation_bursts",
    "fig8_baseline_iommu",
    "fig10_prmb_sweep",
    "fig11_ptw_sweep",
    "fig12a_ptw_no_prmb",
    "fig12b_energy_sweep",
    "fig13_tpreg_hit_rates",
    "fig14_va_trace",
    "fig15_numa",
    "fig16_demand_paging",
    "geometric_mean",
    "headline_claims",
    "large_pages_dense",
    "multi_tenant_contention",
    "multilevel_tlb_ablation",
    "overhead_area",
    "prefetch_ablation",
    "sensitivity_large_batch",
    "sensitivity_tlb",
    "request_key",
    "spatial_npu",
    "table1_config",
    "tpc_vs_uptc",
]
