"""Text rendering of experiment results.

Every experiment in :mod:`repro.analysis.experiments` returns a
:class:`FigureResult` — a labelled table mirroring one of the paper's
tables/figures — which renders to aligned, monospaced text for terminals,
benchmark logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class Series:
    """One labelled row of a figure (e.g. one workload, one config)."""

    label: str
    values: Dict[str, float]


@dataclass
class FigureResult:
    """A reproduced table/figure, ready to render."""

    figure_id: str
    title: str
    columns: List[str]
    rows: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, label: str, **values: float) -> None:
        """Append a row."""
        self.rows.append(Series(label=label, values=dict(values)))

    def value(self, label: str, column: str) -> float:
        """Look up one cell (raises KeyError when absent)."""
        for row in self.rows:
            if row.label == label:
                return row.values[column]
        raise KeyError(f"no row labelled {label!r} in {self.figure_id}")

    def column(self, column: str) -> List[float]:
        """All values of one column, in row order."""
        return [row.values[column] for row in self.rows if column in row.values]

    def mean(self, column: str) -> float:
        """Arithmetic mean of a column."""
        values = self.column(column)
        if not values:
            raise ValueError(f"column {column!r} empty in {self.figure_id}")
        return sum(values) / len(values)

    # ------------------------------------------------------------------ #
    # rendering                                                          #
    # ------------------------------------------------------------------ #

    def render(self, float_fmt: str = "{:.4g}") -> str:
        """Aligned text table."""
        header = ["series"] + list(self.columns)
        body: List[List[str]] = []
        for row in self.rows:
            cells = [row.label]
            for col in self.columns:
                value = row.values.get(col)
                if value is None:
                    cells.append("-")
                elif isinstance(value, float):
                    cells.append(float_fmt.format(value))
                else:
                    cells.append(str(value))
            body.append(cells)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.figure_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (requires positive values)."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
