"""Batched walker-completion calendar for the fused no-PRMB runner.

The fused FIFO runner (:meth:`TranslationEngine._no_prmb_fifo_runner`)
already collapses the per-walk ``heappush``/``heappop`` pair into a cursor
over one sorted snapshot, and advances *within-run* saturated stretches
one transaction at a time.  This module batches the remaining per-event
work: in the saturated no-PRMB regime every walk in flight has the same
latency class (``levels * walk_latency_per_level``), so completions are
FIFO per latency class and the completion sequence is *closed form* —
retiring the head at ready cycle ``c`` restarts the same walker with
ready ``c + dur``, so the calendar evolves as ``W`` interleaved arithmetic
progressions with common step ``dur``:

    ``C(t) = heads[t mod W] + (t // W) * dur``

A whole stretch of ``m`` transactions (crossing same-page run boundaries)
can therefore be planned as NumPy int64 columns — ready-cycle, walker-id,
seq — validated against every interaction point the general loop would
honour (TLB flips, policy quota exhaustion, event horizons, channel
queueing, page faults, poisoned walkers), and retired as one bucket.
A stretch may retire only a prefix of the window (``m < W``) when the
miss cluster ends before the in-flight window wraps.

Bit-identity contract
---------------------
The drain performs exactly the state transitions the per-event loop
would: the same ``TLB.insert`` calls in the same order (with the same
per-page ``prev_walk`` dedup and set-MRU same-PFN elision), the same PTS
map contents and dict key order, the same walker-array/busy-set/channel
final states, and the same float values for every observable timing
quantity.  The closed form is only entered when the entry cycle and both
stall accumulators are integral and all planned cycle values are exact
small integers, so the vectorized int64 arithmetic is exact and the
stall sums are reassociation-free; any configuration with fractional
cycle arithmetic falls back to the general loop.  ``tests/test_calendar.py``
differential-fuzzes the calendar against the per-event path; the
figure-level golden diffs enforce it end to end.

Retirement discipline
---------------------
Calendar buckets may only be consumed through :meth:`drain_stretch` (the
designated drain, mirroring the epoch-bump discipline): the ``cal_*``
bucket columns and cursor are written nowhere else, and the simlint rule
``cyc-calendar-retire`` enforces that statically.

Quota burn-down hit stretches
-----------------------------
The hit-phase counterpart (ROADMAP open item 2, ``NEUMMU_QUOTA_BATCH``):
under quota regimes the TLB-hit/retire ping-pong makes every walk
completion an interaction point, collapsing the engine's hit segments to
a transaction or two.  :meth:`plan_hits` proves the completions due
inside a candidate hit span can be *deferred* past it — no fill in the
bucket can trigger victim selection (:func:`hit_fills_admissible`, built
on :meth:`SharePolicy.burn_down <repro.core.qos.SharePolicy.burn_down>`),
so every fill is a pure append/bump that commutes with resident-page
hits, and draining the bucket *before* the span's final MRU bump
reproduces the per-event interleaving's TLB order, mirrors and stamps
exactly.  :meth:`drain_hits` then retires the planned hit stretch and
its completion bucket in one fused drain.  The ``bd_*`` plan state
follows the same discipline as the ``cal_*`` columns (simlint rule
``cyc-burndown-admit``).

Mixed-window miss phases
------------------------
The miss-phase generalization (``NEUMMU_MISS_BATCH``):
:meth:`plan_window` extends the stretch gate to windows the pointwise
quota check declines outright — mixed windows whose in-flight set spans
tenants, and windows reaching past a finite policy event horizon — by
proving a feasible prefix with a closed-form quota *trajectory*
(:meth:`_window_prefix`) and certifying quota constancy across policy
events via :meth:`SharePolicy.rebalance_horizon
<repro.core.qos.SharePolicy.rebalance_horizon>` /
:meth:`~repro.core.qos.SharePolicy.admitted_segments`.  The bucket is a
plain stretch bucket (the validation and columns are delegated), so
:meth:`drain_window` retires through :meth:`drain_stretch`; the ``win_*``
bookkeeping columns follow the same single-consumer discipline (simlint
rule ``cyc-window-retire``) and declines are accounted in
:data:`~repro.core.stats.MISS_WINDOW`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..memory.address import ASID_SHIFT
from ..memory.dram import MainMemory
from .mmu import MMU
from .qos import SharePolicy
from .stats import BURN_DOWN, MISS_WINDOW
from .tlb import TLB
from .walk_info import WalkInfo

#: Planned-stretch hard cap (bounds planning arrays and drain latency).
_STRETCH_CAP = 8192

#: First channel-validation chunk: quota-bound regimes plan short
#: stretches every few pages, so the candidate arrays start small and
#: only extend to the full cap when the page scan actually gets there.
_FIRST_CHUNK = 256

#: Minimum worthwhile stretch, in transactions (below this the per-plan
#: NumPy setup outweighs the per-transaction savings).
_MIN_STRETCH = 12

#: Largest cycle value the planner accepts: integers below 2**52 are
#: exactly representable as float64 with headroom for dur/interval sums.
_MAX_CYCLE = float(1 << 52)

#: One planned same-page run: ``(tkey, vpn, walk, a, b, run_end,
#: streamable)`` with ``[a, b)`` the transaction span relative to the
#: stretch base and ``run_end`` the run's true end index in the stream.
_PlannedRun = Tuple[int, int, WalkInfo, int, int, int, bool]


def hit_fills_admissible(tlb: TLB, walks: Sequence[WalkInfo]) -> bool:
    """True when deferring every fill in ``walks`` past a TLB-hit stretch
    cannot change simulator state: no fill can trigger victim selection
    (nor the policied set-associative fill drop), so each one is a pure
    append or present-key bump that commutes with resident-page hits.

    Mirrors :meth:`TLB.insert`'s victim conditions over the whole batch.
    A present key never victimizes (duplicate new keys count once — the
    second fill finds the first resident).  Unique new keys need set room
    (``len + new <= ways`` keeps every insert strictly below the way
    limit) and, under a policy, per-tenant quota room via
    :meth:`SharePolicy.burn_down <repro.core.qos.SharePolicy.burn_down>`
    — or work-conserving borrow room, ``sum(occupancy) + new <= entries``,
    the global free-capacity check the per-event fill applies, evaluated
    at the last (tightest) insert since occupancy only grows inside the
    batch.  Counts evolve identically under either interleaving (bumps
    change no counts), so admissibility in one order implies the other.
    The built-in policies answer :meth:`TLB.insert`'s ``tlb_quota`` and
    ``burn_down``'s ``quota`` identically; a policy differentiating the
    two must override ``burn_down`` to match its TLB vocabulary.
    """
    sets = tlb._sets
    mask = tlb._set_mask
    new_keys: Set[int] = set()
    per_set: Dict[int, int] = {}
    per_tenant: Dict[int, int] = {}
    for wk in walks:
        dkey = wk.vpn | (wk.asid << ASID_SHIFT)
        if dkey in new_keys:
            continue
        set_idx = dkey & mask
        if dkey in sets[set_idx]:
            continue
        new_keys.add(dkey)
        per_set[set_idx] = per_set.get(set_idx, 0) + 1
        per_tenant[wk.asid] = per_tenant.get(wk.asid, 0) + 1
    if not new_keys:
        return True
    ways = tlb._ways
    for set_idx, cnt in per_set.items():
        if len(sets[set_idx]) + cnt > ways:
            return False
    policy = tlb._policy
    if policy is None:
        return True
    occupancy = tlb._asid_occupancy
    entries = tlb.entries
    borrow_ok: Optional[bool] = None
    for asid, cnt in per_tenant.items():
        if policy.burn_down(asid, occupancy.get(asid, 0), cnt, entries) >= cnt:
            continue
        if not policy.work_conserving:
            return False
        if borrow_ok is None:
            borrow_ok = sum(occupancy.values()) + len(new_keys) <= entries
        if not borrow_ok:
            return False
    return True


class CompletionCalendar:
    """Cycle-indexed completion calendar for one address space's runner.

    Binds the same stable structures the fused runner closes over (walker
    arrays, TLB sets, PTS map, channel table) once at construction; each
    :meth:`plan_stretch` validates a saturated multi-run stretch and fills
    the bucket columns, and :meth:`drain_stretch` — the only consumer of
    those columns — applies the whole bucket to simulator state.
    """

    __slots__ = (
        "asid", "_walk_of", "_vpn_arr", "_completion_of",
        "_free_list", "_busy_by_asid", "_pts_by_vpn", "_tlb_sets",
        "_tlb_set_mask", "_tlb_insert", "_resolvers", "_walk_latency",
        "_vpn_shift", "_channel_free", "_n_channels", "_ch_bw",
        "_mem_latency", "_interval", "_interval_int", "_static_ok",
        "cal_ready", "cal_walker", "cal_seq", "cal_cursor",
        "_plan_m", "_plan_pages", "_plan_window_walks",
        "_plan_window_walkers", "_plan_window_keys", "_plan_heads0",
        "_plan_dur", "_plan_levels", "_plan_ch", "_plan_finish",
        "_plan_bytes", "_plan_policied", "_plan_my_busy", "_plan_rc",
        "_plan_stall_events", "_plan_fresh_stalls",
        "_tlb", "_poisoned", "bd_count",
        "win_m", "win_foreign", "win_quota_proof",
    )

    def __init__(
        self, mmu: MMU, memory: MainMemory, asid: int, issue_interval: float
    ) -> None:
        pool = mmu.pool
        pts = mmu.pts
        tlb = mmu.tlb
        assert isinstance(tlb, TLB) and pool is not None and pts is not None
        self.asid = asid
        self._walk_of = pool._walk_of
        self._vpn_arr = pool._vpn
        self._completion_of = pool._completion_of
        self._free_list = pool._free
        self._busy_by_asid = pool._busy_by_asid
        self._pts_by_vpn = pts._by_vpn
        self._tlb = tlb
        self._tlb_sets = tlb._sets
        self._tlb_set_mask = tlb._set_mask
        self._tlb_insert = tlb.insert
        self._poisoned = mmu._poisoned_walkers
        self._resolvers = mmu._resolvers
        self._walk_latency = pool.walk_latency_per_level
        self._vpn_shift = mmu._vpn_shift
        mem_cfg = memory.config
        self._channel_free = memory._channel_free
        self._n_channels = mem_cfg.channels
        self._ch_bw = mem_cfg.channel_bandwidth
        self._mem_latency = mem_cfg.access_latency_cycles
        self._interval = issue_interval
        self._interval_int = int(issue_interval)
        # The closed form relies on exact integer cycle arithmetic; a
        # fractional issue interval or walk latency disables it outright.
        self._static_ok = (
            float(issue_interval).is_integer()
            and isinstance(self._walk_latency, int)
            and self._n_channels > 0
        )
        empty = np.zeros(0, dtype=np.int64)
        self.cal_ready = empty
        self.cal_walker = empty
        self.cal_seq = empty
        self.cal_cursor = 0
        self._plan_m = 0
        self._plan_pages: List[_PlannedRun] = []
        self._plan_window_walks: List[WalkInfo] = []
        self._plan_window_walkers: List[int] = []
        self._plan_window_keys: Dict[int, int] = {}
        self._plan_heads0 = 0.0
        self._plan_dur = 0
        self._plan_levels = 0
        self._plan_ch: Any = None
        self._plan_finish: Any = None
        self._plan_bytes = 0
        self._plan_policied = False
        self._plan_my_busy: Optional[Set[int]] = None
        self._plan_rc = 0
        self._plan_stall_events = 0
        self._plan_fresh_stalls = 0
        self.bd_count = 0
        self.win_m = 0
        self.win_foreign = 0
        self.win_quota_proof = False

    # ------------------------------------------------------------------ #
    # planning                                                           #
    # ------------------------------------------------------------------ #

    def plan_stretch(
        self,
        order: List[Tuple[float, int, int]],
        idx: int,
        i: int,
        j: int,
        n: int,
        cycle: float,
        vpn: int,
        tkey: int,
        walk0: Optional[WalkInfo],
        run_streamable: bool,
        meta: Sequence[Tuple[int, bool]],
        rc: int,
        vas: Any,
        sizes: Any,
        uniform: Optional[int],
        policied: bool,
        my_quota: Optional[int],
        work_conserving: bool,
        my_busy: Optional[Set[int]],
        others: Sequence[Tuple[int, Set[int]]],
        cap_limit: Optional[int] = None,
    ) -> int:
        """Validate and plan a saturated stretch starting at transaction
        ``i``; returns its length in transactions (0: no stretch applies).

        ``cap_limit`` tightens the stretch cap (in transactions): a
        caller that proved only a prefix of the window is retirable —
        :meth:`plan_window`'s quota-trajectory bound — clips the page
        scan there, exactly like a channel-infeasible cut.

        Caller guarantees: the issue port is blocked at an integral
        ``cycle`` at a fresh page (the PTS probe missed — the page has no
        in-flight walks), all due completions are retired, the policy
        event horizon is infinite, no walkers are poisoned, and the stall
        accumulators are integral.  Planning mutates nothing except the
        resolver memo (:meth:`WalkResolver.resolve_vpn` is pure and
        memoized, so resolving ahead of the reference point is
        unobservable).
        """
        if not self._static_ok or (sizes is None and not uniform):
            return 0
        W = len(order) - idx
        if W < 2 or n - i < _MIN_STRETCH:
            return 0
        window = order[idx:]
        h0 = window[0][0]
        if not h0 > cycle:
            return 0
        asid = self.asid
        if j - i < _MIN_STRETCH:
            # Short page tail: the stretch only reaches _MIN_STRETCH if
            # the next page extends it, which a resident, in-flight, or
            # recurring page never does — pre-bail before the heavy
            # validation (quota-bound regimes hit this on every re-walk
            # of an evicted page tail).
            if j >= n:
                return 0
            nvpn = int(vas[j]) >> self._vpn_shift
            nkey = nvpn | (asid << ASID_SHIFT)
            if (
                nkey == tkey
                or nkey in self._tlb_sets[nkey & self._tlb_set_mask]
                or nkey in self._pts_by_vpn
            ):
                return 0

        # -- regime invariance: every retire+restart must leave the
        # startable/blocked predicates exactly where they are now --------
        if policied and my_quota is not None:
            # Quota-bound tenant: the window is every in-flight walk, so
            # the foreign count is exactly ``W - len(my_busy)`` and each
            # foreign retirement transfers one walker to us permanently
            # (busy counts move monotonically) — every per-transaction
            # start stays under quota iff the final occupancy ``W`` does.
            # An all-own window leaves busy counts invariant and may also
            # ride work-conserving borrowing.
            assert my_busy is not None
            if W > my_quota:
                if W != len(my_busy) or not work_conserving:
                    return 0
                reserved_unmet = 0
                for other_quota, other_busy in others:
                    shortfall = other_quota - len(other_busy)
                    if shortfall > 0:
                        reserved_unmet += shortfall
                if len(self._free_list) + 1 <= reserved_unmet:
                    return 0
        elif self._free_list:
            # Quota-free regimes are only blocked by pool exhaustion; a
            # free walker here means the caller's blocked state hinges on
            # policy state the closed form does not model.
            return 0

        # -- latency class of the stretch ---------------------------------
        resolver = self._resolvers[asid]
        r_cache = resolver._cache
        r_resolve = resolver.resolve_vpn
        if walk0 is None:
            walk0 = r_cache.get(vpn)
            if walk0 is None:
                walk0 = r_resolve(vpn)
                if walk0 is None:
                    return 0  # faulting lead: the general loop raises it
        levels = walk0.levels
        dur_f = levels * self._walk_latency
        if not float(dur_f).is_integer():
            return 0
        dur = int(dur_f)

        # -- exact-arithmetic and FIFO-progression guards ------------------
        heads = np.array([entry[0] for entry in window])
        if not bool((np.abs(heads) < _MAX_CYCLE).all()):
            return 0  # non-finite or too large for exact float arithmetic
        heads_int = heads.astype(np.int64)
        if not bool((heads_int == heads).all()):
            return 0
        if window[-1][0] - h0 > dur:
            return 0  # appended completions would not stay at the tail
        # Circular completion spacing must be at least the issue interval:
        # then the issue clock never overruns the next completion, each
        # transaction retires exactly one walk (a stall when the spacing
        # exceeds the interval, a retire-at-issue on equality), and the
        # restart cycle equals the retire cycle — so the appended ready
        # values follow the closed form in both cases.
        interval_int = self._interval_int
        cdiffs = np.empty(W, dtype=np.int64)
        cdiffs[0] = int(heads_int[0]) + dur - int(heads_int[-1])
        cdiffs[1:] = np.diff(heads_int)
        if int(cdiffs.min()) < interval_int:
            return 0  # coincident dues: not a one-retire-per-issue chain

        # -- channel timing: validate the no-queueing hypothesis over a
        # lazily extended candidate prefix *before* the page scan (the
        # check depends only on the closed-form ready column and the
        # address stream, and bounding the scan by the feasible prefix
        # keeps a busy channel table from costing a full scan per plan) --
        cap_total = _STRETCH_CAP if n - i > _STRETCH_CAP else n - i
        if cap_limit is not None and cap_limit < cap_total:
            cap_total = cap_limit
        n_ch = self._n_channels
        channel_free = self._channel_free
        ch_bw = self._ch_bw
        ready_col: Any = None
        ready_f: Any = None
        finish: Any = None
        ch: Any = None

        def _validate(lim: int) -> int:
            # Returns the channel-feasible prefix length (<= lim); a cut
            # only removes constraints because each per-channel chain
            # keeps its predecessors, so any prefix stays validated.
            nonlocal ready_col, ready_f, finish, ch
            k = -(-lim // W)
            ready_col = (
                np.arange(k, dtype=np.int64)[:, None] * dur
                + heads_int[None, :]
            ).ravel()[:lim]
            ch = (vas[i:i + lim] >> 8) % n_ch
            ready_f = (ready_col + dur).astype(np.float64)
            if sizes is None:
                finish = ready_f + (uniform or 0) / ch_bw
            else:
                finish = ready_f + sizes[i:i + lim] / ch_bw
            feasible = lim
            for c in range(n_ch):
                idxs = np.flatnonzero(ch == c)
                if not idxs.size:
                    continue
                r = ready_f[idxs]
                f = finish[idxs]
                bad = np.empty(idxs.size, dtype=bool)
                bad[0] = bool(r[0] < channel_free[c])
                if idxs.size > 1:
                    bad[1:] = r[1:] < f[:-1]
                w = np.flatnonzero(bad)
                if w.size:
                    v = int(idxs[w[0]])
                    if v < feasible:
                        feasible = v
            return feasible

        limit = _FIRST_CHUNK if cap_total > _FIRST_CHUNK else cap_total
        cap = _validate(limit)
        if cap < _MIN_STRETCH:
            return 0

        # -- window pages: every in-flight walk is accounted for ----------
        walk_of = self._walk_of
        pts_by_vpn = self._pts_by_vpn
        window_walks: List[WalkInfo] = []
        window_keys: Dict[int, int] = {}
        for entry in window:
            wk = walk_of[entry[2]]
            if wk is None:
                return 0
            window_walks.append(wk)
            dkey = wk.vpn | (wk.asid << ASID_SHIFT)
            window_keys[dkey] = window_keys.get(dkey, 0) + 1
        for dkey, cnt in window_keys.items():
            registered = pts_by_vpn.get(dkey)
            if registered is None or len(registered) != cnt:
                return 0

        # -- page scan: collect whole same-page runs until an interaction
        # point (recurrence, residency, fault, depth change) --------------
        tlb_sets = self._tlb_sets
        set_mask = self._tlb_set_mask
        shift = self._vpn_shift
        asid_bits = asid << ASID_SHIFT
        seen = set(window_keys)
        seen.add(tkey)
        pages: List[_PlannedRun] = []
        m = 0
        cur_start, cur_end = i, j
        cur_key, cur_vpn, cur_walk = tkey, vpn, walk0
        cur_stream = run_streamable
        while True:
            take = cur_end - cur_start
            stop = False
            if take > W:
                # Transaction W of a run would retire the run's own first
                # walk (the TLB-flip interaction point).
                take = W
                stop = True
            if m + take >= cap:
                if cap == limit and limit < cap_total:
                    # The validated candidate ran out, not the physics:
                    # extend to the full cap (the feasible prefix can
                    # only grow — the old range re-validates the same).
                    limit = cap_total
                    cap = _validate(limit)
                if m + take >= cap:
                    take = cap - m
                    stop = True
            pages.append(
                (cur_key, cur_vpn, cur_walk, m, m + take, cur_end, cur_stream)
            )
            m += take
            if stop or cur_end >= n:
                break
            nxt = cur_end
            nvpn = int(vas[nxt]) >> shift
            nkey = nvpn | asid_bits
            if nkey in seen or nkey in tlb_sets[nkey & set_mask]:
                break
            nwalk = r_cache.get(nvpn)
            if nwalk is None:
                nwalk = r_resolve(nvpn)
                if nwalk is None:
                    break  # faulting page: stop short, let the lead raise
            if nwalk.levels != levels:
                break  # latency class changes: FIFO order not closed form
            while meta[rc][0] <= nxt:
                rc += 1
            njend, nstream = meta[rc]
            seen.add(nkey)
            cur_start, cur_end = nxt, njend
            cur_key, cur_vpn, cur_walk = nkey, nvpn, nwalk
            cur_stream = nstream
        if m < _MIN_STRETCH:
            return 0

        # -- slice the validated columns to the scanned stretch -----------
        ready_col = ready_col[:m]
        walker_col = np.tile(
            np.fromiter((entry[2] for entry in window), np.int64, W),
            -(-m // W),
        )[:m]
        ch = ch[:m]
        finish = finish[:m]
        if sizes is None:
            stretch_bytes = m * int(uniform or 0)
        else:
            stretch_bytes = int(sizes[i:i + m].sum())

        # Stall events: transaction t stalls iff its completion spacing
        # strictly exceeds the issue interval — on equality it retires the
        # due walk at issue with no stall attempt.  The spacing pattern is
        # periodic in W; a page-lead stall is a "fresh" (PTS-miss) probe.
        stall_flags = np.tile(cdiffs > interval_int, -(-m // W))[:m]
        stall_flags[0] = True  # the planning point itself is a stall
        stall_events = int(stall_flags.sum())
        fresh_stalls = 0
        for prun in pages:
            if stall_flags[prun[3]]:
                fresh_stalls += 1

        self.cal_ready = ready_col
        self.cal_walker = walker_col
        self.cal_seq = np.arange(1, m + 1, dtype=np.int64)
        self.cal_cursor = 0
        self._plan_m = m
        self._plan_pages = pages
        self._plan_window_walks = window_walks
        self._plan_window_walkers = [entry[2] for entry in window]
        self._plan_window_keys = window_keys
        self._plan_heads0 = h0
        self._plan_dur = dur
        self._plan_levels = levels
        self._plan_ch = ch
        self._plan_finish = finish
        self._plan_bytes = stretch_bytes
        self._plan_policied = policied
        self._plan_my_busy = my_busy
        self._plan_rc = rc
        self._plan_stall_events = stall_events
        self._plan_fresh_stalls = fresh_stalls
        return m

    # ------------------------------------------------------------------ #
    # the designated drain                                               #
    # ------------------------------------------------------------------ #

    def drain_stretch(
        self,
        order: List[Tuple[float, int, int]],
        idx: int,
        i: int,
        cycle: float,
        data_end: float,
        total_bytes: int,
        stall: float,
        sc: float,
        seq: int,
        prev_walk: Optional[WalkInfo],
    ) -> Tuple[
        int, float, float, int, float, float, int,
        int, int, int, bool, int, WalkInfo, int, int, int, int, int,
    ]:
        """Retire the planned bucket in one pass (the only consumer of the
        ``cal_*`` columns) and return the runner's updated segment state.

        Returns ``(i, cycle, data_end, total_bytes, stall, sc, seq, vpn,
        tkey, j, run_streamable, rc, walk, levels, m, pages, stall_events,
        fresh_stalls)`` — the last four feeding the runner's deferred
        counters.
        """
        m = self._plan_m
        pages = self._plan_pages
        window_walks = self._plan_window_walks
        window_walkers = self._plan_window_walkers
        W = len(window_walks)
        dur = self._plan_dur
        walk_of = self._walk_of
        vpn_arr = self._vpn_arr
        completion_of = self._completion_of
        tlb_sets = self._tlb_sets
        set_mask = self._tlb_set_mask
        tlb_insert = self._tlb_insert
        asid = self.asid
        ready_col = self.cal_ready
        walker_col = self.cal_walker
        seq_col = self.cal_seq
        boundary = m - W
        lim = W if W < m else m

        # Busy-set ownership transfers: each retired foreign walk's walker
        # restarts under our ASID (quota-bound regimes were validated to
        # stay under quota, so this also fires in mixed quota windows).
        if self._plan_policied:
            my_busy = self._plan_my_busy
            assert my_busy is not None
            busy_by_asid = self._busy_by_asid
            for walker, done_walk in zip(
                window_walkers[:lim], window_walks[:lim]
            ):
                if done_walk.asid != asid:
                    other_busy = busy_by_asid.get(done_walk.asid)
                    if other_busy is not None:
                        other_busy.discard(walker)
                    my_busy.add(walker)

        # Retired-walk runs in retire order: the first ``lim`` window
        # walks (transactions 0..lim-1, grouped by object adjacency),
        # then each planned run's own walk as its redundant restarts
        # complete (transactions a+W..b+W, clipped to the stretch).
        retire_runs: List[Tuple[WalkInfo, int, int]] = []
        t = 0
        while t < lim:
            wobj = window_walks[t]
            t2 = t + 1
            while t2 < lim and window_walks[t2] is wobj:
                t2 += 1
            retire_runs.append((wobj, t, t2))
            t = t2
        for pkey, pvpn, pwalk, a, b, pend, pstream in pages:
            if a >= boundary:
                break
            retire_runs.append((pwalk, a + W, b + W if b < boundary else m))

        # TLB inserts: replay the per-event sequence — within one page's
        # transaction span consecutive retirements of the same walk
        # object collapse to one insert (``prev_walk`` dedup), the dedup
        # resets at each page run's miss-phase entry, and a present
        # set-MRU same-PFN refill is elided as a state no-op.
        ri = 0
        n_runs = len(retire_runs)
        for page_index, (pkey, pvpn, pwalk, a, b, pend, pstream) in enumerate(
            pages
        ):
            prev = prev_walk if page_index == 0 else None
            while ri < n_runs:
                wobj, rlo, rhi = retire_runs[ri]
                if rlo >= b:
                    break
                if wobj is not prev:
                    dkey = wobj.vpn | (wobj.asid << ASID_SHIFT)
                    dset = tlb_sets[dkey & set_mask]
                    if not (
                        dset
                        and next(reversed(dset)) == dkey
                        and dset[dkey] == wobj.pfn
                    ):
                        tlb_insert(wobj.vpn, wobj.pfn, wobj.asid)
                    prev = wobj
                if rhi <= b:
                    ri += 1
                else:
                    break  # the retire run continues into the next page

        pts_by_vpn = self._pts_by_vpn
        final_ready = ready_col + dur
        if boundary >= 0:
            # Full-window retirement: window pages drain completely;
            # pages fully retired inside the stretch net out to nothing
            # (their keys are created and then deleted); only the final
            # in-flight window's pages survive, in lead order — the same
            # surviving-key dict order the per-event path produces.
            for dkey in self._plan_window_keys:
                del pts_by_vpn[dkey]
            for pkey, pvpn, pwalk, a, b, pend, pstream in pages:
                lo = a if a > boundary else boundary
                if lo >= b:
                    continue
                in_flight: List[int] = []
                for t in range(lo, b):
                    walker = window_walkers[t % W]
                    in_flight.append(walker)
                    walk_of[walker] = pwalk
                    vpn_arr[walker] = pvpn
                    completion_of[walker] = float(final_ready[t])
                pts_by_vpn[pkey] = in_flight
            # Calendar suffix: exactly the final W in-flight completions,
            # in ready order (the closed form appends monotonically).
            del order[idx:]
            tail_ready = final_ready[boundary:].tolist()
            tail_seq = seq_col[boundary:].tolist()
            tail_walkers = walker_col[boundary:].tolist()
            for ready_t, seq_t, walker_t in zip(
                tail_ready, tail_seq, tail_walkers
            ):
                order.append((float(ready_t), seq + seq_t, walker_t))
        else:
            # Partial-window retirement (m < W): the first m window walks
            # retire one-per-transaction while the window suffix stays in
            # flight; replay the per-transaction PTS/scoreboard ops
            # exactly (bounded by the window width, so this stays cheap).
            # The replay reproduces transient-empty deletions, so a key
            # that drains and refills moves to the dict tail exactly when
            # the per-event path would move it.
            ready_list = final_ready.astype(np.float64).tolist()
            pg = 0
            pg_key, pg_vpn, pg_walk = pages[0][0], pages[0][1], pages[0][2]
            pg_b = pages[0][4]
            for t in range(m):
                wobj = window_walks[t]
                walker = window_walkers[t]
                dkey = wobj.vpn | (wobj.asid << ASID_SHIFT)
                lst = pts_by_vpn[dkey]
                lst.remove(walker)
                if not lst:
                    del pts_by_vpn[dkey]
                if t >= pg_b:
                    pg += 1
                    nxt_page = pages[pg]
                    pg_key, pg_vpn, pg_walk = (
                        nxt_page[0], nxt_page[1], nxt_page[2]
                    )
                    pg_b = nxt_page[4]
                slst = pts_by_vpn.get(pg_key)
                if slst is None:
                    slst = pts_by_vpn[pg_key] = []
                slst.append(walker)
                walk_of[walker] = pg_walk
                vpn_arr[walker] = pg_vpn
                completion_of[walker] = ready_list[t]
            del order[idx:idx + m]
            for t, ready_t in enumerate(ready_list):
                order.append((ready_t, seq + t + 1, window_walkers[t]))
        self.cal_cursor = m

        # Channel table: under the validated no-queueing hypothesis only
        # the last transaction per channel is observable.
        ch = self._plan_ch
        finish = self._plan_finish
        channel_free = self._channel_free
        for c in range(self._n_channels):
            idxs = np.flatnonzero(ch == c)
            if idxs.size:
                channel_free[c] = float(finish[int(idxs[-1])])
        mx_done = float(finish.max()) + self._mem_latency
        if mx_done > data_end:
            data_end = mx_done
        total_bytes += self._plan_bytes

        # Stall accumulation: the first increment is the reference's one
        # float op for the lead stall; every later increment is integral
        # and the accumulators were validated integral, so the telescoped
        # remainder is exact regardless of association.
        d0 = self._plan_heads0 - cycle
        rest = float(
            int(ready_col[-1]) - int(ready_col[0]) - (m - 1) * self._interval_int
        )
        sc += d0
        sc += rest
        stall += d0
        stall += rest
        cycle = float(ready_col[-1]) + self._interval

        # Runner segment state at the stretch end.
        last_key, last_vpn, last_walk, a, b, last_end, last_stream = pages[-1]
        return (
            i + m, cycle, data_end, total_bytes, stall, sc, seq + m,
            last_vpn, last_key, last_end, last_stream, self._plan_rc,
            last_walk, self._plan_levels, m, len(pages),
            self._plan_stall_events, self._plan_fresh_stalls,
        )

    # ------------------------------------------------------------------ #
    # mixed-window miss-phase batching (NEUMMU_MISS_BATCH)               #
    # ------------------------------------------------------------------ #

    def _window_prefix(
        self,
        order: List[Tuple[float, int, int]],
        idx: int,
        W: int,
        my_quota: int,
        work_conserving: bool,
        my_busy: Set[int],
        others: Sequence[Tuple[int, Set[int]]],
    ) -> int:
        """Closed-form quota trajectory over a mixed window: how many
        transactions the per-event loop would retire as a pure
        stall/retire/restart chain before a quota predicate binds.

        Replays the per-event quota checks exactly, in closed form over
        the window composition: each foreign retirement transfers one
        walker to this tenant permanently (its owner's busy count drops,
        ours grows), so busy counts — and every other tenant's unmet
        reservation — evolve deterministically along the window.  Step
        ``t`` is feasible iff the per-event loop's checks at that step
        would pass: a hard-partitioned tenant must be strictly under
        quota before each stall, and a work-conserving tenant retiring at
        or over quota needs zero unmet foreign reservations *after* the
        retirement's busy discard.  Past one full window turn every
        retirement is one of our own restarts and the state is
        stationary, so one steady-state check extends the prefix to the
        planning cap.  Returns the feasible prefix length in
        transactions (possibly 0).
        """
        walk_of = self._walk_of
        asid = self.asid
        busy_me = len(my_busy)
        rows: List[Tuple[int, int, Set[int]]] = [
            (oq, len(obusy), obusy) for oq, obusy in others
        ]
        for t in range(W):
            entry = order[idx + t]
            wk = walk_of[entry[2]]
            if wk is None:
                return t  # untracked walker: nothing past here is proven
            own = wk.asid == asid
            if not work_conserving and busy_me >= my_quota:
                # Hard partition at quota stalls on its *own* earliest
                # walk, not the FIFO head: the chain stops being the
                # closed form here.
                return t
            if own:
                busy_n = busy_me - 1
            else:
                walker = entry[2]
                for r in range(len(rows)):
                    oq, cnt, obusy = rows[r]
                    if walker in obusy:
                        rows[r] = (oq, cnt - 1, obusy)
                        break
                busy_n = busy_me
            if busy_n >= my_quota:
                reserved_unmet = 0
                for oq, cnt, _obusy in rows:
                    shortfall = oq - cnt
                    if shortfall > 0:
                        reserved_unmet += shortfall
                if reserved_unmet >= 1:
                    return t  # the borrow room is gone: per-event blocks
            if not own:
                busy_me += 1
        if not work_conserving and busy_me >= my_quota:
            return W
        if busy_me - 1 >= my_quota:
            reserved_unmet = 0
            for oq, cnt, _obusy in rows:
                shortfall = oq - cnt
                if shortfall > 0:
                    reserved_unmet += shortfall
            if reserved_unmet >= 1:
                return W
        return _STRETCH_CAP

    def plan_window(
        self,
        order: List[Tuple[float, int, int]],
        idx: int,
        i: int,
        j: int,
        n: int,
        cycle: float,
        vpn: int,
        tkey: int,
        walk0: Optional[WalkInfo],
        run_streamable: bool,
        meta: Sequence[Tuple[int, bool]],
        rc: int,
        vas: Any,
        sizes: Any,
        uniform: Optional[int],
        policied: bool,
        my_quota: Optional[int],
        work_conserving: bool,
        my_busy: Optional[Set[int]],
        others: Sequence[Tuple[int, Set[int]]],
        policy: Optional[SharePolicy],
        horizon: float,
    ) -> int:
        """Validate and plan a mixed miss-phase window starting at
        transaction ``i``; returns its length in transactions (0: no
        window applies, per-event fallback).

        The mixed-window generalization of :meth:`plan_stretch`
        (``NEUMMU_MISS_BATCH``): where the stretch planner's pointwise
        gate declines any window whose occupancy exceeds the tenant's
        quota, this planner proves a *prefix* of the window retirable via
        the closed-form quota trajectory (:meth:`_window_prefix`), and
        proves windows reaching past a finite policy event horizon safe
        via the policy's quota-trajectory API
        (:meth:`SharePolicy.rebalance_horizon
        <repro.core.qos.SharePolicy.rebalance_horizon>` /
        :meth:`~repro.core.qos.SharePolicy.admitted_segments`): a window
        may span a policy event — even a rebalance event — when the
        admitted segments certify this tenant's quota is constant across
        it.  All arithmetic, channel and page-scan validation — and the
        plan columns themselves — are delegated to :meth:`plan_stretch`
        with the proven prefix as its cap, so the bucket a window fills
        is exactly a stretch bucket and :meth:`drain_window` retires it
        through the designated ``cal_*`` drain.  Declines and their
        reasons land in :data:`~repro.core.stats.MISS_WINDOW`.
        """
        W = len(order) - idx
        if W < 2 or n - i < _MIN_STRETCH or not self._static_ok:
            return 0
        inf = float("inf")
        if horizon != inf:
            # A finite policy event horizon inside or after the window:
            # the per-event path re-consults the policy there, so the
            # window is only provable when the policy certifies the
            # admitted quota is constant through the window's last
            # possible cycle.
            if policy is None or not cycle < horizon:
                return 0
            walk_lat = self._walk_latency
            if walk0 is None:
                resolver = self._resolvers[self.asid]
                walk0 = resolver._cache.get(vpn)
                if walk0 is None:
                    walk0 = resolver.resolve_vpn(vpn)
                    if walk0 is None:
                        return 0  # faulting lead: the general loop raises
            dur_f = float(walk0.levels * walk_lat)
            cap_total = _STRETCH_CAP if n - i > _STRETCH_CAP else n - i
            turns = float(-(-cap_total // W) + 1)
            end_bound = float(order[-1][0]) + turns * dur_f + self._interval
            segments = policy.admitted_segments(
                self.asid, cycle, end_bound, len(self._walk_of)
            )
            covered = cycle
            constant = True
            for seg_start, seg_end, seg_quota in segments:
                if seg_start > covered or seg_quota != my_quota:
                    constant = False
                    break
                if seg_end > covered:
                    covered = seg_end
            if not constant or covered < end_bound:
                MISS_WINDOW.fallback_windows += 1
                MISS_WINDOW.fail_rebalance += 1
                return 0
        cap_limit: Optional[int] = None
        quota_proof = False
        if policied and my_quota is not None and W > my_quota:
            assert my_busy is not None
            if W != len(my_busy) or not work_conserving:
                # Mixed or hard-partitioned over-quota window: the
                # pointwise gate declines outright; prove the feasible
                # prefix instead.  The closed form needs an exhausted
                # pool — free walkers under a failed borrow mean the
                # per-event path spins retire-without-issue, which is
                # not the one-retire-per-issue chain.
                if self._free_list:
                    prefix = 0
                else:
                    prefix = self._window_prefix(
                        order, idx, W, my_quota, work_conserving,
                        my_busy, others,
                    )
                if prefix < _MIN_STRETCH:
                    MISS_WINDOW.fallback_windows += 1
                    MISS_WINDOW.fail_quota_bound += 1
                    MISS_WINDOW.quota_prefix_txns += prefix
                    return 0
                cap_limit = prefix
                my_quota = None  # the gate is satisfied by the proof
                quota_proof = True
        m = self.plan_stretch(
            order, idx, i, j, n, cycle, vpn, tkey, walk0, run_streamable,
            meta, rc, vas, sizes, uniform, policied, my_quota,
            work_conserving, my_busy, others, cap_limit=cap_limit,
        )
        if not m:
            MISS_WINDOW.fallback_windows += 1
            MISS_WINDOW.fail_plan += 1
            return 0
        lim = W if W < m else m
        foreign = 0
        for wk in self._plan_window_walks[:lim]:
            if wk.asid != self.asid:
                foreign += 1
        self.win_m = m
        self.win_foreign = foreign
        self.win_quota_proof = quota_proof
        return m

    def drain_window(
        self,
        order: List[Tuple[float, int, int]],
        idx: int,
        i: int,
        cycle: float,
        data_end: float,
        total_bytes: int,
        stall: float,
        sc: float,
        seq: int,
        prev_walk: Optional[WalkInfo],
    ) -> Tuple[
        int, float, float, int, float, float, int,
        int, int, int, bool, int, WalkInfo, int, int, int, int, int,
    ]:
        """Retire the planned window (the only consumer of the ``win_*``
        columns) and return the runner's updated segment state.

        The bucket itself is a stretch bucket — :meth:`plan_window`
        delegated the columns — so the state transitions are exactly
        :meth:`drain_stretch`'s; this drain folds the window bookkeeping
        into :data:`~repro.core.stats.MISS_WINDOW` and resets the
        ``win_*`` columns (the same single-consumer discipline as
        ``cal_*``, enforced statically by the simlint rule
        ``cyc-window-retire``).
        """
        MISS_WINDOW.windows_planned += 1
        MISS_WINDOW.window_txns += self.win_m
        MISS_WINDOW.window_foreign += self.win_foreign
        if self.win_quota_proof:
            MISS_WINDOW.window_quota_proofs += 1
        self.win_m = 0
        self.win_foreign = 0
        self.win_quota_proof = False
        return self.drain_stretch(
            order, idx, i, cycle, data_end, total_bytes, stall, sc, seq,
            prev_walk,
        )

    # ------------------------------------------------------------------ #
    # quota burn-down hit stretches                                      #
    # ------------------------------------------------------------------ #

    def plan_hits(
        self, order: List[Tuple[float, int, int]], idx: int, cutoff: float
    ) -> int:
        """Plan a hit-stretch completion bucket: every walk completion due
        at or before ``cutoff`` (the stretch's last issue cycle, computed
        bit-exactly by the caller) must be deferrable past the stretch —
        :func:`hit_fills_admissible` proves no fill can victimize, a
        poisoned walker (shootdown residency event) or an untracked walk
        declines outright.  Returns the bucket size (>= 1) or -1
        (per-event fallback), recording the plan-failure reason in the
        process-wide :data:`~repro.core.stats.BURN_DOWN` telemetry.

        Caller guarantees ``order[idx:]`` is ready-sorted with its head
        due at or before ``cutoff``, so the bucket is the due prefix.
        """
        walk_of = self._walk_of
        poisoned = self._poisoned
        walks: List[WalkInfo] = []
        scan = idx
        end = len(order)
        while scan < end:
            entry = order[scan]
            if entry[0] > cutoff:
                break
            if poisoned and entry[2] in poisoned:
                BURN_DOWN.fail_residency += 1
                return -1
            wk = walk_of[entry[2]]
            if wk is None:
                BURN_DOWN.fail_fault += 1
                return -1
            walks.append(wk)
            scan += 1
        if not hit_fills_admissible(self._tlb, walks):
            BURN_DOWN.fail_quota_bound += 1
            return -1
        self.bd_count = scan - idx
        return scan - idx

    def drain_hits(
        self, order: List[Tuple[float, int, int]], idx: int, policied: bool
    ) -> Tuple[int, int]:
        """Retire the planned hit-stretch bucket (the only consumer of the
        ``bd_*`` plan state), replaying the runner's per-event cursor
        drain operation for operation — busy-set discard, walker free,
        PTS release, set-MRU same-PFN fill elision — immediately before
        the stretch's single MRU bump, which is exactly where the
        per-event interleaving leaves every one of these fills relative
        to the stretch page's final recency bump.  Returns the advanced
        cursor and the released-walk count ``(idx, released)``.
        """
        count = self.bd_count
        self.bd_count = 0
        walk_of = self._walk_of
        vpn_arr = self._vpn_arr
        free_list = self._free_list
        busy_by_asid = self._busy_by_asid
        pts_by_vpn = self._pts_by_vpn
        tlb_sets = self._tlb_sets
        set_mask = self._tlb_set_mask
        tlb_insert = self._tlb_insert
        for _ in range(count):
            walker = order[idx][2]
            idx += 1
            done_walk = walk_of[walker]
            assert done_walk is not None  # plan_hits validated the bucket
            vpn_arr[walker] = None
            walk_of[walker] = None
            if policied:
                busy = busy_by_asid.get(done_walk.asid)
                if busy is not None:
                    busy.discard(walker)
            free_list.append(walker)
            dkey = done_walk.vpn | (done_walk.asid << ASID_SHIFT)
            registered = pts_by_vpn[dkey]
            registered.remove(walker)
            if not registered:
                del pts_by_vpn[dkey]
            dset = tlb_sets[dkey & set_mask]
            if not (
                dset
                and next(reversed(dset)) == dkey
                and dset[dkey] == done_walk.pfn
            ):
                tlb_insert(done_walk.vpn, done_walk.pfn, done_walk.asid)
        return idx, count
