"""Cycle-resolved translation/memory-phase engine.

This engine replays one DMA *burst* (all linearized transactions of one
tile fetch, Section III-C) against an MMU model and the shared memory
system:

* the DMA issues one translation request per cycle ("The DMA unit sends a
  single translation each cycle", Figure 7);
* a request either hits the TLB (5 cycles), merges into an in-flight walk's
  PRMB, starts a (possibly redundant) walk, or blocks the issue port until
  translation bandwidth frees up;
* once translated, the transaction's data read is queued on the
  bandwidth-limited memory system;
* the burst's *memory phase* ends when the last data beat returns — the
  implicit barrier before the tile's compute phase (Figure 3).

An oracular MMU makes every translation free, so the same engine computes
the paper's normalization baseline.

Two execution paths
-------------------
``run_burst`` retires transactions either through the *reference* path —
one fully general Python iteration per transaction, routed through
:meth:`MMU.translate` — or through the *batched* fast path (the default),
which exploits the streaming structure of dense tile fetches: a 4 KB page
sees a run of ~16 back-to-back same-page transactions (Section III-C), and
within such a run every transaction resolves the same way (all TLB hits,
or all PRMB merges into the same walker).  The fast path retires those
runs with bulk counter updates — one TLB touch per run, one PRMB occupancy
update per walker — and a tight arithmetic loop over the memory channels.

For fully contiguous uniform 256 B runs (the DMA's streaming output, as
certified by :class:`~repro.npu.dma.TransactionStream` run metadata) a
further *closed form* applies: when no channel queueing can occur, only
the last ``n_channels`` transactions' finish times are observable, so the
bulk of the run reduces to an exact issue-cycle spin.

The two paths are kept *bit-identical*: the batched path performs exactly
the floating-point operation sequence of the reference path for every
observable timing quantity, and interleaves walk retirements with TLB
fills, PRMB drains and LRU updates in reference order (retirements that
provably commute with a run's bulk — other pages' completions during a
merge run — may be deferred to the run boundary).
``tests/test_fastpath_parity.py`` enforces the equivalence.
"""

from __future__ import annotations

import bisect
import heapq
import os
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..memory.address import ASID_SHIFT
from ..memory.dram import MainMemory
from .calendar import CompletionCalendar, hit_fills_admissible
from .mmu import MMU, TranslationFault
from .stats import BURN_DOWN
from .tlb import TLB
from .walk_info import WalkInfo

#: A DMA transaction: (virtual address, size in bytes).
Transaction = Tuple[int, int]

#: Demand-paging hook: ``(vpn, fault_cycle, asid) -> resolved_cycle``.  The
#: hook must install the mapping (and shoot down the stale translation, e.g.
#: via :meth:`MMU.shootdown`) before returning; the engine retries the
#: translation at ``resolved_cycle``.  The first-class implementation is
#: :meth:`repro.memory.tiering.LocalMemoryTier.handle_fault`, which routes
#: the page move through the shared migration fabric and the ASID-tagged
#: shootdown path.
FaultHandler = Callable[[int, float, int], float]

#: The fused FIFO no-PRMB segment runner built per ASID by
#: :meth:`TranslationEngine._no_prmb_fifo_runner`.  Returns the updated
#: ``(i, cycle, data_end, total_bytes, stall, faulted, rc, run_vpn,
#: run_end, run_streamable)`` segment state.
NoPrmbRunner = Callable[
    ...,
    Tuple[int, float, float, int, float, bool, int, int, int, bool],
]


def _run_bounds(
    va_list: Sequence[int],
    size_list: Sequence[int],
    i: int,
    n: int,
    vpn: int,
    vpn_shift: int,
    meta: Optional[Sequence[Tuple[int, bool]]],
    rc: int,
) -> Tuple[int, bool, int]:
    """Bounds of the same-page run starting at index ``i``.

    Returns ``(j, streamable, rc)``: the run's end index, whether it is
    a contiguous uniform 256 B stream (the closed-form precondition),
    and the advanced cursor into the DMA-provided ``meta`` run list
    (``None`` meta falls back to scanning the column lists).  One
    derivation shared by every batched/contended segment — the copies
    *must* stay operation-identical for the parity contract, so there
    is exactly one.  Callers memoize the result per run
    (``run_vpn``/``run_end``), so this runs once per same-page run, not
    per transaction.
    """
    if meta is not None:
        while meta[rc][0] <= i:
            rc += 1
        j, streamable = meta[rc]
        return j, streamable, rc
    j = i + 1
    while j < n and va_list[j] >> vpn_shift == vpn:
        j += 1
    va0 = va_list[i]
    streamable = (
        j - i >= 2
        and size_list[i] == 256
        and va_list[j - 1] - va0 == (j - 1 - i) * 256
        and all(s == 256 for s in size_list[i:j])
    )
    return j, streamable, rc


@dataclass
class BurstResult:
    """Timing of one tile-fetch burst."""

    start_cycle: float
    issue_end_cycle: float
    data_end_cycle: float
    transactions: int
    bytes_moved: int
    stall_cycles: float

    @property
    def duration(self) -> float:
        """Full memory-phase duration of this burst."""
        return self.data_end_cycle - self.start_cycle


class TranslationEngine:
    """Drives an MMU + memory system with DMA transaction streams."""

    def __init__(
        self,
        mmu: MMU,
        memory: MainMemory,
        issue_interval: float = 1.0,
        timeline_window: int = 0,
        fault_handler: Optional[FaultHandler] = None,
        batched: bool = True,
    ) -> None:
        if issue_interval <= 0:
            raise ValueError("issue interval must be positive")
        self.mmu = mmu
        self.memory = memory
        self.issue_interval = issue_interval
        self.timeline_window = timeline_window
        self.fault_handler = fault_handler
        #: Enable the batched same-page fast path (set False to force the
        #: per-transaction golden-reference path).  ``engine_mode=
        #: "reference"`` pins the engine to the per-object golden path
        #: regardless — that mode *is* the reference the columnar
        #: representation is golden-diffed against.
        self.batched = batched and mmu.config.engine_mode != "reference"
        #: Columnar engine mode: fast paths bind plain-list projections of
        #: structure-of-arrays streams and use the fused run handlers.
        self.columnar = mmu.config.engine_mode == "columnar"
        #: window index -> number of translation requests issued in it
        #: (Figure 7's burst histogram).  Populated when timeline_window > 0.
        #: A defaultdict so the per-transaction histogram update is one
        #: indexed increment instead of a get-plus-store.
        self.timeline: Dict[int, int] = defaultdict(int)
        #: asid -> fused FIFO no-PRMB segment runner (closure over the
        #: MMU's stable structures; see :meth:`_no_prmb_fifo_runner`).
        self._np_runners: Dict[int, NoPrmbRunner] = {}
        #: Quota burn-down hit-phase batching (ROADMAP open item 2):
        #: ``NEUMMU_QUOTA_BATCH=0`` forces per-event hit stepping under
        #: quota regimes (benchmarking and differential-fuzz
        #: granularity); bit-identity either way.  Read once per engine —
        #: engines are constructed per run, so tests may flip the knob
        #: between runs without touching live engines.
        self._quota_batch = os.environ.get("NEUMMU_QUOTA_BATCH", "1") != "0"
        #: Mixed-window miss-phase batching (ROADMAP open item 2):
        #: ``NEUMMU_MISS_BATCH=0`` pins the miss phase to the PR-8
        #: stretch planner's pointwise quota gate (per-event fallback in
        #: every regime the gate declines); ``1`` routes planning through
        #: :meth:`CompletionCalendar.plan_window
        #: <repro.core.calendar.CompletionCalendar.plan_window>`'s
        #: closed-form quota-trajectory proofs.  Bit-identity either way;
        #: read once per engine, like the quota-batch knob.
        self._miss_batch = os.environ.get("NEUMMU_MISS_BATCH", "1") != "0"

    # ------------------------------------------------------------------ #
    # dispatch                                                           #
    # ------------------------------------------------------------------ #

    def _batchable(self) -> bool:
        """Whether a fast path covers this engine's configuration.

        Timeline capture needs a per-transaction histogram update, the
        prefetcher hooks fire per TLB hit, and the two-level TLB's hit
        latency depends on which level hits — all three fall back to the
        reference path, as does an oracular MMU with a demand-paging
        handler (whose faults route through :meth:`MMU.translate`).  A
        non-trivial QoS share policy no longer forces the reference path:
        it selects the *contended* batched path, which enforces every
        quota at segment granularity (see :meth:`_run_burst_contended`).
        """
        if self.timeline_window:
            return False
        mmu = self.mmu
        if mmu.config.oracle:
            return self.fault_handler is None
        return mmu.prefetcher is None and not mmu._two_level

    def run_burst(
        self, transactions: Sequence[Transaction], start_cycle: float, asid: int = 0
    ) -> BurstResult:
        """Replay one burst for context ``asid``; returns its timing.

        ``transactions`` are issued in order at one per ``issue_interval``
        cycles, subject to translation-bandwidth blocking.  ``asid`` selects
        the address-space context the burst translates under (0 = the
        single-tenant default); shared-MMU tenants each pass their own.
        """
        if self.batched and self._batchable():
            if self.mmu.config.oracle:
                return self._run_burst_oracle(transactions, start_cycle, asid)
            if self.mmu.share_policy.trivial:
                return self._run_burst_batched(transactions, start_cycle, asid)
            return self._run_burst_contended(transactions, start_cycle, asid)
        return self._run_burst_reference(transactions, start_cycle, asid)

    # ------------------------------------------------------------------ #
    # reference path (golden semantics, one iteration per transaction)   #
    # ------------------------------------------------------------------ #

    def _run_burst_reference(
        self, transactions: Sequence[Transaction], start_cycle: float, asid: int = 0
    ) -> BurstResult:
        mmu = self.mmu
        memory = self.memory
        vpn_shift = mmu._vpn_shift
        window = self.timeline_window
        timeline = self.timeline
        interval = self.issue_interval
        fault_handler = self.fault_handler
        translate = mmu.translate
        process = mmu.process_completions
        heap = None if mmu.pool is None else mmu.pool.heap

        # Memory-channel state is inlined here — this loop runs millions of
        # times per workload and the channel update is pure arithmetic
        # (kept operation-for-operation identical to MainMemory.access).
        mem_cfg = memory.config
        channel_free = memory._channel_free
        n_channels = mem_cfg.channels
        ch_bw = mem_cfg.channel_bandwidth
        mem_latency = mem_cfg.access_latency_cycles

        cycle = start_cycle
        data_end = start_cycle
        stall = 0.0
        total_bytes = 0

        for va, size in transactions:
            if heap is not None and heap and heap[0][0] <= cycle:
                process(cycle)
            vpn = va >> vpn_shift
            while True:
                try:
                    ready, retry = translate(vpn, cycle, asid)
                except TranslationFault:
                    if fault_handler is None:
                        raise
                    resolved = fault_handler(vpn, cycle, asid)
                    stall += resolved - cycle
                    cycle = resolved
                    process(cycle)
                    continue
                if ready is None:
                    stall += retry - cycle
                    cycle = retry
                    process(cycle)
                    continue
                break
            if window:
                timeline[int(cycle // window)] += 1
            # Inlined MainMemory.access (same arithmetic/policy).
            channel = (va >> 8) % n_channels
            free_at = channel_free[channel]
            start = ready if ready > free_at else free_at
            finish = start + size / ch_bw
            channel_free[channel] = finish
            done = finish + mem_latency
            if done > data_end:
                data_end = done
            total_bytes += size
            cycle += interval

        memory.total_bytes += total_bytes
        memory.total_accesses += len(transactions)
        return BurstResult(
            start_cycle=start_cycle,
            issue_end_cycle=cycle,
            data_end_cycle=data_end,
            transactions=len(transactions),
            bytes_moved=total_bytes,
            stall_cycles=stall,
        )

    # ------------------------------------------------------------------ #
    # oracle fast path                                                   #
    # ------------------------------------------------------------------ #

    def _run_burst_oracle(
        self, transactions: Sequence[Transaction], start_cycle: float, asid: int = 0
    ) -> BurstResult:
        """Oracle burst: translation is free but non-present pages fault.

        The resolver is probed once per same-page run (its answer cannot
        change mid-burst without a fault handler, and there is none on this
        path), matching :meth:`MMU.translate`'s per-request semantics: an
        unmapped page raises :class:`TranslationFault` and is counted in
        ``stats.faults`` without being counted as a completed request.
        """
        mmu = self.mmu
        memory = self.memory
        stats = mmu.stats
        resolve = mmu.resolver_for(asid).resolve_vpn
        vpn_shift = mmu._vpn_shift
        interval = self.issue_interval

        mem_cfg = memory.config
        channel_free = memory._channel_free
        n_channels = mem_cfg.channels
        ch_bw = mem_cfg.channel_bandwidth
        mem_latency = mem_cfg.access_latency_cycles

        # Precomputed service time of the DMA's default 256 B transaction;
        # bit-identical to the reference's per-transaction ``size / ch_bw``
        # because float division is deterministic.
        s_cycles = 256 / ch_bw
        stream_ok = n_channels * interval >= s_cycles

        cycle = start_cycle
        data_end = start_cycle
        total_bytes = 0
        last_vpn = -1
        counted = 0
        n = len(transactions)

        # Column projections (see _run_burst_batched).
        va_list = getattr(transactions, "va_list", None)
        if va_list is not None:
            size_list = transactions.size_list
        else:
            va_list = [t[0] for t in transactions]
            size_list = [t[1] for t in transactions]

        # DMA-provided run metadata (see _run_burst_batched).
        meta = getattr(transactions, "runs", None)
        if meta is not None and (
            not meta
            or getattr(transactions, "page_size", 0) != 1 << vpn_shift
        ):
            meta = None
        rc = 0

        try:
            i = 0
            while i < n:
                va = va_list[i]
                size = size_list[i]
                vpn = va >> vpn_shift
                if vpn != last_vpn:
                    if resolve(vpn) is None:
                        stats.faults += 1
                        raise TranslationFault(vpn)
                    last_vpn = vpn
                channel = (va >> 8) % n_channels
                free_at = channel_free[channel]
                start = cycle if cycle > free_at else free_at
                finish = start + size / ch_bw
                channel_free[channel] = finish
                done = finish + mem_latency
                if done > data_end:
                    data_end = done
                total_bytes += size
                cycle += interval
                counted += 1
                i += 1
                # Same-page continuation (translation already proven
                # present for this page; only the memory arithmetic runs).
                if i >= n or va_list[i] >> vpn_shift != vpn:
                    continue
                if meta is not None:
                    while meta[rc][0] <= i:
                        rc += 1
                    j, streamable = meta[rc]
                else:
                    j = i + 1
                    while j < n and va_list[j] >> vpn_shift == vpn:
                        j += 1
                    va0 = va_list[i]
                    streamable = (
                        j - i >= 2
                        and size_list[i] == 256
                        and va_list[j - 1] - va0 == (j - 1 - i) * 256
                        and all(s == 256 for s in size_list[i:j])
                    )
                span = j - i
                va0 = va_list[i]
                if (
                    span >= 8
                    and streamable
                    and (span <= n_channels or stream_ok)
                ):
                    # Streaming closed form: a contiguous uniform run walks
                    # the channels round-robin, so when every channel is
                    # free by its first arrival (probed below) only the
                    # last ``n_channels`` transactions' finish times are
                    # observable; the rest reduce to the exact cycle spin.
                    base_ch = va0 >> 8
                    lim = span if span < n_channels else n_channels
                    # Cheap dominating probe first: if every channel is
                    # free by the first arrival, no per-channel check is
                    # needed (later arrivals are only later).
                    ok = max(channel_free) <= cycle
                    if not ok:
                        probe = cycle
                        ok = True
                        for k in range(lim):
                            if channel_free[(base_ch + k) % n_channels] > probe:
                                ok = False
                                break
                            probe += interval
                    if ok:
                        for _ in range(span - lim):
                            cycle += interval
                        for k in range(span - lim, span):
                            finish = cycle + s_cycles
                            channel_free[(base_ch + k) % n_channels] = finish
                            cycle += interval
                        done = finish + mem_latency
                        if done > data_end:
                            data_end = done
                        total_bytes += span * 256
                        counted += span
                        i = j
                        continue
                for va, size in zip(va_list[i:j], size_list[i:j]):
                    channel = (va >> 8) % n_channels
                    free_at = channel_free[channel]
                    start = cycle if cycle > free_at else free_at
                    finish = start + size / ch_bw
                    channel_free[channel] = finish
                    done = finish + mem_latency
                    if done > data_end:
                        data_end = done
                    total_bytes += size
                    cycle += interval
                counted += span
                i = j
        finally:
            # Successful transactions count even when a later one faults,
            # matching the per-request accounting of MMU.translate.
            stats.requests += counted

        memory.total_bytes += total_bytes
        memory.total_accesses += counted
        return BurstResult(
            start_cycle=start_cycle,
            issue_end_cycle=cycle,
            data_end_cycle=data_end,
            transactions=len(transactions),
            bytes_moved=total_bytes,
            stall_cycles=0.0,
        )

    # ------------------------------------------------------------------ #
    # batched fast path                                                  #
    # ------------------------------------------------------------------ #

    def _run_burst_batched(
        self, transactions: Sequence[Transaction], start_cycle: float, asid: int = 0
    ) -> BurstResult:
        """Same-page run batching for translated (non-oracle) MMUs.

        Each transaction is first retired exactly as the reference path
        would; if the following transactions stay on the same virtual page,
        the run is consumed in bulk.  A run segment never crosses a
        walker-completion event (``heap[0][0]``), so TLB fills and PRMB
        drains interleave with lookups in reference order, and it ends the
        moment its uniform resolution (TLB hit / PRMB merge) stops holding.

        Shared structures are probed with the ASID-tagged key
        ``vpn | (asid << ASID_SHIFT)``; the tag bits sit above the TLB's
        set mask, so for ASID 0 every probe is bit-identical to the
        untagged engine.
        """
        mmu = self.mmu
        memory = self.memory
        vpn_shift = mmu._vpn_shift
        interval = self.issue_interval
        fault_handler = self.fault_handler
        translate = mmu.translate
        process = mmu.process_completions
        stats = mmu.stats
        tlb = mmu.tlb
        tlb_latency = mmu._tlb_latency
        pool = mmu.pool
        pts = mmu.pts
        # Batched paths only run on translated (non-oracle) single-level
        # TLB configurations; make the invariant explicit for narrowing.
        assert isinstance(tlb, TLB) and pool is not None and pts is not None
        heap = pool.heap
        pts_by_vpn = pts._by_vpn
        buffers = pool._buffers
        completion_of = pool._completion_of
        prmb_capacity = mmu._prmb_slots
        prmb_stats = pool.prmb_stats
        inf = float("inf")

        mem_cfg = memory.config
        channel_free = memory._channel_free
        n_channels = mem_cfg.channels
        ch_bw = mem_cfg.channel_bandwidth
        mem_latency = mem_cfg.access_latency_cycles
        # Service time of the DMA's default 256 B transaction, bit-identical
        # to the reference's per-transaction ``size / ch_bw`` (float division
        # is deterministic).  ``stream_ok`` states that the per-channel
        # arrival spacing of a round-robin issue stream covers the service
        # time, so no intra-run queueing can occur.
        s_cycles = 256 / ch_bw
        stream_ok = n_channels * interval >= s_cycles
        merge_stream_ok = n_channels >= s_cycles
        asid_bits = asid << ASID_SHIFT

        # Inlined TLB membership probe: ``key in tlb_sets[key & set_mask]``
        # covers both the fully-associative default (mask 0, one set) and
        # set-associative mode without a method call per transaction.
        tlb_sets = tlb._sets
        tlb_set_mask = tlb._set_mask
        # Whole-run hit batching defers completion retirement past the
        # run's hits, which preserves eviction victims only while the hit
        # page cannot itself be a set's LRU entry — i.e. at >= 2 ways.
        hit_runs_batchable = tlb._ways >= 2

        cycle = start_cycle
        data_end = start_cycle
        stall = 0.0
        total_bytes = 0
        n = len(transactions)

        # Column projections: a columnar stream hands over its cached
        # plain-list columns; an object stream is projected once per call
        # (same values, so the loop bodies below are representation-blind).
        va_list = getattr(transactions, "va_list", None)
        if va_list is not None:
            size_list = transactions.size_list
        else:
            va_list = [t[0] for t in transactions]
            size_list = [t[1] for t in transactions]

        # Fused leading-transaction dispatch (columnar tentpole): inline
        # MMU.translate for the trivial-policy PRMB design points, probing
        # the same structures with the same counters in the same order.
        resolver = mmu._resolvers.get(asid)
        fused = prmb_capacity and resolver is not None
        pool_stats = pool.stats
        walk_of = pool._walk_of
        vpn_arr = pool._vpn
        free_list = pool._free
        tpregs = pool._tpregs
        shared_cache = None if pool._no_path_cache else pool._shared_cache
        walk_latency = pool.walk_latency_per_level
        heappush_ = heapq.heappush
        if fused:
            resolver_resolve = resolver.resolve_vpn
            r_cache = resolver._cache

        # Slim fused drain: MMU.process_completions with the per-call
        # binding prologue hoisted to burst scope and the TPREG fill /
        # set-MRU-refill fast cases inlined (a resident set-MRU refill
        # with the same PFN is a state no-op; see the runner's guard).
        poisoned = mmu._poisoned_walkers
        busy_by_asid = pool._busy_by_asid
        prmb_occ = pool._prmb_occ
        policied = pool._policy is not None
        tlb_insert = tlb.insert
        heappop_ = heapq.heappop

        def drain(cycle: float) -> None:
            while heap and heap[0][0] <= cycle:
                _, _, walker = heappop_(heap)
                walk = walk_of[walker]
                if tpregs is not None:
                    tp = tpregs[walker]
                    tp._path = walk.path
                    tp._asid = walk.asid
                elif shared_cache is not None:
                    shared_cache.fill(walk)
                buf = buffers[walker]
                merged = buf._occupied
                buf._occupied = 0
                vpn_arr[walker] = None
                walk_of[walker] = None
                w_asid = walk.asid
                if policied:
                    busy = busy_by_asid.get(w_asid)
                    if busy is not None:
                        busy.discard(walker)
                    if merged:
                        prmb_occ[w_asid] -= merged
                free_list.append(walker)
                if poisoned and walker in poisoned:
                    poisoned.discard(walker)
                    continue
                key = walk.vpn | (w_asid << ASID_SHIFT)
                walkers_ = pts_by_vpn[key]
                walkers_.remove(walker)
                if not walkers_:
                    del pts_by_vpn[key]
                pts._count -= 1
                dset = tlb_sets[key & tlb_set_mask]
                if not (
                    dset
                    and next(reversed(dset)) == key
                    and dset[key] == walk.pfn
                ):
                    tlb_insert(walk.vpn, walk.pfn, w_asid)

        process = drain

        # DMA-provided run metadata (TransactionStream): same-page run
        # bounds and streamability known at linearization time, replacing
        # the per-transaction scan below.  Only valid at matching page size.
        meta = getattr(transactions, "runs", None)
        if meta is not None and (
            not meta
            or getattr(transactions, "page_size", 0) != 1 << vpn_shift
        ):
            meta = None
        rc = 0

        # Memoized same-page run bounds: re-entering the batch logic for a
        # partially-consumed run (after a completion-event segment break)
        # must not rescan the stream — 2 MB pages produce runs of ~8k
        # transactions that are revisited once per PRMB refill.
        run_vpn = -1
        run_end = 0
        run_streamable = False

        i = 0
        while i < n:
            va = va_list[i]
            size = size_list[i]
            vpn = va >> vpn_shift
            tkey = vpn | asid_bits
            if not prmb_capacity and tkey not in tlb_sets[tkey & tlb_set_mask]:
                # PRMB-less leading miss: the fused no-PRMB run handles
                # the page's fresh walk and everything after it directly,
                # bypassing the translate dispatch.
                (
                    i, cycle, data_end, total_bytes, stall,
                    rc, run_vpn, run_end, run_streamable, handled,
                ) = self._no_prmb_entry(
                    transactions, va_list, size_list, i, n, vpn, tkey, asid,
                    cycle, data_end, total_bytes, stall, meta, rc, run_vpn,
                    run_end, run_streamable,
                )
                if handled:
                    continue
                # The whole-burst runner may have crossed page boundaries
                # before faulting or blocking, so transaction ``i`` is not
                # necessarily the one this iteration derived its locals
                # from: re-derive them before the reference-step replay.
                va = va_list[i]
                size = size_list[i]
                vpn = va >> vpn_shift
                tkey = vpn | asid_bits
            # -- reference step for the run's leading transaction --------
            if heap and heap[0][0] <= cycle:
                process(cycle)
            if fused:
                # Inlined MMU.translate for the trivial-policy PRMB MMU:
                # same probes, same counters, same dispatch order (TLB →
                # PTS/PRMB merge → walker allocation → stall), with the
                # method-call chain flattened against locals.  The
                # request count is settled per branch (translate nets it
                # to zero on the stall and fault branches).
                while True:
                    entry_set = tlb_sets[tkey & tlb_set_mask]
                    if tkey in entry_set:
                        stats.requests += 1
                        entry_set.move_to_end(tkey)
                        tlb.hits += 1
                        stats.tlb_hits += 1
                        ready = cycle + tlb_latency
                        break
                    tlb.misses += 1
                    pts.lookups += 1
                    walkers = pts_by_vpn.get(tkey)
                    if walkers:
                        pts.hits += 1
                        merged = False
                        for walker in walkers:
                            buf = buffers[walker]
                            pos = buf._occupied
                            if pos >= buf.slots:
                                prmb_stats.rejects_full += 1
                                continue
                            pos += 1
                            buf._occupied = pos
                            prmb_stats.merges += 1
                            if pos > prmb_stats.peak_occupancy:
                                prmb_stats.peak_occupancy = pos
                            ready = completion_of[walker] + pos
                            merged = True
                            break
                        if merged:
                            stats.requests += 1
                            stats.merges += 1
                            break
                    if free_list:
                        walk = r_cache.get(vpn)
                        if walk is None:
                            walk = resolver_resolve(vpn)
                        if walk is None:
                            stats.faults += 1
                            if fault_handler is None:
                                raise TranslationFault(vpn)
                            resolved = fault_handler(vpn, cycle, asid)
                            # Post-fault state may be remapped: drop the
                            # memoized same-page-run metadata.
                            run_vpn = -1
                            run_end = 0
                            stall += resolved - cycle
                            cycle = resolved
                            process(cycle)
                            continue
                        stats.requests += 1
                        if walkers:
                            stats.redundant_walk_requests += 1
                        # Inlined WalkerPool.start_walk + PTS.register.
                        walker = free_list.pop()
                        if tpregs is not None:
                            skip = tpregs[walker].lookup(walk)
                        elif shared_cache is not None:
                            skip = shared_cache.lookup(walk)
                        else:
                            skip = 0
                        levels = walk.levels
                        accessed = levels - (
                            skip if skip < levels - 1 else levels - 1
                        )
                        ready = cycle + accessed * walk_latency
                        pool_stats.walks += 1
                        if walkers:
                            pool_stats.redundant_walks += 1
                        pool_stats.level_accesses += accessed
                        pool_stats.levels_skipped += levels - accessed
                        vpn_arr[walker] = vpn
                        walk_of[walker] = walk
                        completion_of[walker] = ready
                        pool._seq += 1
                        heappush_(heap, (ready, pool._seq, walker))
                        if walkers:
                            walkers.append(walker)
                        else:
                            pts_by_vpn[tkey] = [walker]
                        pts._count += 1
                        break
                    # Fully blocked: translate's stall branch (the probe
                    # counters above stand; the retried request recounts).
                    retry = heap[0][0] if heap else inf
                    stats.stall_events += 1
                    stats.stall_cycles += max(0.0, retry - cycle)
                    stall += retry - cycle
                    cycle = retry
                    process(cycle)
            else:
                while True:
                    try:
                        ready, retry = translate(vpn, cycle, asid)
                    except TranslationFault:
                        if fault_handler is None:
                            raise
                        resolved = fault_handler(vpn, cycle, asid)
                        # The handler may have migrated/remapped pages; drop
                        # the memoized same-page-run metadata so the batch
                        # logic re-derives it against post-fault state.
                        run_vpn = -1
                        run_end = 0
                        stall += resolved - cycle
                        cycle = resolved
                        process(cycle)
                        continue
                    if ready is None:
                        stall += retry - cycle
                        cycle = retry
                        process(cycle)
                        continue
                    break
            channel = (va >> 8) % n_channels
            free_at = channel_free[channel]
            start = ready if ready > free_at else free_at
            finish = start + size / ch_bw
            channel_free[channel] = finish
            done = finish + mem_latency
            if done > data_end:
                data_end = done
            total_bytes += size
            cycle += interval
            i += 1

            # -- batched continuation over the same-page run -------------
            # The loop condition is the cheapest possible "next transaction
            # stays on this page" probe; state probes follow only when it
            # holds, so page-divergent streams pay two integer ops per
            # transaction for the fast path's existence.
            while i < n and va_list[i] >> vpn_shift == vpn:
                if tkey in tlb_sets[tkey & tlb_set_mask]:
                    # Bulk TLB hits over the whole run.  Walk completions
                    # that fall inside the run are deferred to its end and
                    # then retired in one ``process`` call: the pops happen
                    # in identical heap order with cycle-independent
                    # effects, eviction victims are unchanged (this page
                    # was bumped by the run's leading lookup, so it is
                    # never a set's LRU entry while ways >= 2), and the
                    # final LRU touch lands after exactly the fills whose
                    # completion precedes the run's last issue — the
                    # reference interleaving.
                    if not hit_runs_batchable:
                        break
                    if run_vpn != vpn or i >= run_end:
                        j, run_streamable, rc = _run_bounds(
                            va_list, size_list, i, n, vpn, vpn_shift, meta, rc
                        )
                        run_vpn = vpn
                        run_end = j
                    else:
                        j = run_end
                    span = j - i
                    closed = False
                    va0 = va_list[i]
                    if (
                        span >= 8
                        and run_streamable
                        and (span <= n_channels or stream_ok)
                    ):
                        # Streaming closed form (see the oracle path): only
                        # the last ``n_channels`` transactions' finishes are
                        # observable once the no-queue probe passes.
                        base_ch = va0 >> 8
                        lim = span if span < n_channels else n_channels
                        ok = max(channel_free) <= cycle + tlb_latency
                        if not ok:
                            probe = cycle
                            ok = True
                            for k in range(lim):
                                if channel_free[(base_ch + k) % n_channels] > (
                                    probe + tlb_latency
                                ):
                                    ok = False
                                    break
                                probe += interval
                        if ok:
                            closed = True
                            for _ in range(span - lim):
                                cycle += interval
                            for k in range(span - lim, span):
                                ready = cycle + tlb_latency
                                finish = ready + s_cycles
                                channel_free[(base_ch + k) % n_channels] = finish
                                last_issue = cycle
                                cycle += interval
                            done = finish + mem_latency
                            if done > data_end:
                                data_end = done
                            total_bytes += span * 256
                    if not closed:
                        last_issue = cycle
                        for va, size in zip(va_list[i:j], size_list[i:j]):
                            ready = cycle + tlb_latency
                            channel = (va >> 8) % n_channels
                            free_at = channel_free[channel]
                            start = ready if ready > free_at else free_at
                            finish = start + size / ch_bw
                            channel_free[channel] = finish
                            done = finish + mem_latency
                            if done > data_end:
                                data_end = done
                            total_bytes += size
                            last_issue = cycle
                            cycle += interval
                    stats.requests += span
                    stats.tlb_hits += span
                    if heap and heap[0][0] <= last_issue:
                        process(last_issue)
                    tlb.touch(vpn, span, asid)
                    i = j
                    continue

                if not prmb_capacity:
                    (
                        i, cycle, data_end, total_bytes, stall,
                        rc, run_vpn, run_end, run_streamable, handled,
                    ) = self._no_prmb_entry(
                        transactions, va_list, size_list, i, n, vpn, tkey,
                        asid, cycle, data_end, total_bytes, stall, meta,
                        rc, run_vpn, run_end, run_streamable,
                    )
                    if not handled:
                        break  # the reference step raises / re-evaluates
                    continue  # re-dispatch: TLB hits, or a new page
                walkers = pts_by_vpn.get(tkey)
                if not walkers:
                    break
                # Bulk PRMB merges: requests park in the first in-flight
                # walker with a free slot; request r's data is released at
                # the walk's completion plus r's drain position.
                #
                # Unlike TLB hits, merges commute with *other* pages' walk
                # completions: a merge touches only this page's walker
                # buffer and monotone counters, never the TLB's LRU state
                # or the walker free list.  Deferring those retirements to
                # the next reference step (which processes the whole
                # backlog in identical heap order, with cycle-independent
                # effects) is therefore exactly equivalent — so a merge
                # segment only has to break when one of *this page's*
                # walks completes and flips the run to TLB hits.
                if len(walkers) == 1:
                    h_mine = completion_of[walkers[0]]
                else:
                    h_mine = min(completion_of[w] for w in walkers)
                if cycle >= h_mine:
                    # This page's own walk completes now: retire the
                    # backlog and re-dispatch (the run flips to TLB hits).
                    process(cycle)
                    continue
                if run_vpn != vpn or i >= run_end:
                    j, run_streamable, rc = _run_bounds(
                        va_list, size_list, i, n, vpn, vpn_shift, meta, rc
                    )
                    run_vpn = vpn
                    run_end = j
                else:
                    j = run_end
                merged_total = 0
                full_skips = 0
                exhausted = False
                for walker in walkers:
                    buf = buffers[walker]
                    pos = buf._occupied
                    cap = buf.slots
                    if pos >= cap:
                        full_skips += 1
                        continue
                    comp = completion_of[walker]
                    room = cap - pos
                    avail = j - i
                    span = avail if avail < room else room
                    # simlint: disable=cyc-true-div -- horizon/interval live in the float cycle domain; int() truncation is the reference semantics and // floors differently at float boundaries, breaking bit-identity
                    t = int((h_mine - cycle) / interval) - 1
                    if t < span:
                        span = t
                    if span > 0:
                        closed = False
                        va0 = va_list[i]
                        if (
                            span >= 8
                            and run_streamable
                            and (span <= n_channels or merge_stream_ok)
                        ):
                            # Streaming closed form: merged requests drain
                            # one per cycle after the walk completes, so a
                            # contiguous uniform run again touches channels
                            # round-robin with unit spacing.
                            base_ch = va0 >> 8
                            lim = span if span < n_channels else n_channels
                            ok = max(channel_free) <= comp + (pos + 1)
                            if not ok:
                                for k in range(lim):
                                    if channel_free[(base_ch + k) % n_channels] > (
                                        comp + (pos + 1 + k)
                                    ):
                                        ok = False
                                        break
                                else:
                                    ok = True
                            if ok:
                                closed = True
                                for _ in range(span):
                                    cycle += interval
                                for k in range(span - lim, span):
                                    ready = comp + (pos + 1 + k)
                                    finish = ready + s_cycles
                                    channel_free[
                                        (base_ch + k) % n_channels
                                    ] = finish
                                done = finish + mem_latency
                                if done > data_end:
                                    data_end = done
                                total_bytes += span * 256
                                pos += span
                        if not closed:
                            for va, size in zip(
                                va_list[i:i + span], size_list[i:i + span]
                            ):
                                pos += 1
                                ready = comp + pos
                                channel = (va >> 8) % n_channels
                                free_at = channel_free[channel]
                                start = ready if ready > free_at else free_at
                                finish = start + size / ch_bw
                                channel_free[channel] = finish
                                done = finish + mem_latency
                                if done > data_end:
                                    data_end = done
                                total_bytes += size
                                cycle += interval
                        k = i + span
                    else:
                        k = i
                    # Residual guarded loop: finishes whatever the bulk
                    # span left over (the conservative trip count stops up
                    # to one interval short of the completion event), so a
                    # walker is only ever abandoned because its buffer is
                    # truly full, the run ended, or this page's walk is due.
                    while k < j and pos < cap and cycle < h_mine:
                        va = va_list[k]
                        size = size_list[k]
                        pos += 1
                        ready = comp + pos
                        channel = (va >> 8) % n_channels
                        free_at = channel_free[channel]
                        start = ready if ready > free_at else free_at
                        finish = start + size / ch_bw
                        channel_free[channel] = finish
                        done = finish + mem_latency
                        if done > data_end:
                            data_end = done
                        total_bytes += size
                        cycle += interval
                        k += 1
                    count = k - i
                    if count:
                        buf._occupied = pos
                        mb_stats = buf.stats
                        mb_stats.merges += count
                        if pos > mb_stats.peak_occupancy:
                            mb_stats.peak_occupancy = pos
                        # Each merged request first probed every already-
                        # full walker ahead of this one in the PTS list.
                        mb_stats.rejects_full += full_skips * count
                        merged_total += count
                        i = k
                    if i >= j or cycle >= h_mine:
                        break
                    full_skips += 1  # this walker is now truly full
                else:
                    exhausted = True
                if merged_total:
                    stats.requests += merged_total
                    stats.merges += merged_total
                    # Each merged request was one TLB miss + one PTS hit.
                    tlb.misses += merged_total
                    pts.lookups += merged_total
                    pts.hits += merged_total
                if exhausted:
                    # Every in-flight walker's PRMB is full: the next
                    # transaction launches a redundant walk or stalls.
                    h = heap[0][0] if heap else inf
                    if h <= cycle:
                        # Deferred completions are due; they may free a
                        # walker or finish this page's walk.
                        process(cycle)
                        continue
                    if pool._free:
                        break  # a redundant walk can start: reference path
                    # Fully blocked — MMU.translate's stall branch inlined:
                    # the attempt probes the TLB, hits the PTS, is rejected
                    # by every full PRMB, then blocks until the earliest
                    # in-flight walk completes.  The retried request is
                    # recounted by whichever path retires it.
                    retry = h
                    tlb.misses += 1
                    pts.lookups += 1
                    pts.hits += 1
                    prmb_stats.rejects_full += len(walkers)
                    stats.stall_events += 1
                    stats.stall_cycles += retry - cycle
                    stall += retry - cycle
                    cycle = retry
                    process(cycle)
                    continue

        # Catch deferred retirements up to the reference path's end-of-burst
        # point (the final transaction's issue cycle).  Within a burst the
        # next reference step replays the backlog identically, but the next
        # *burst* may start at an earlier cycle — multi-tenant tenants run
        # on independent clocks — where a stale backlog would desynchronize
        # walker allocation between the two paths.
        if n:
            last_cycle = cycle - interval
            if heap and heap[0][0] <= last_cycle:
                process(last_cycle)

        memory.total_bytes += total_bytes
        memory.total_accesses += n
        return BurstResult(
            start_cycle=start_cycle,
            issue_end_cycle=cycle,
            data_end_cycle=data_end,
            transactions=n,
            bytes_moved=total_bytes,
            stall_cycles=stall,
        )

    # ------------------------------------------------------------------ #
    # no-PRMB continuation (shared by batched and contended paths)       #
    # ------------------------------------------------------------------ #

    def _no_prmb_run(
        self,
        va_list: Sequence[int],
        size_list: Sequence[int],
        i: int,
        j: int,
        vpn: int,
        tkey: int,
        asid: int,
        cycle: float,
        data_end: float,
        total_bytes: int,
        stall: float,
    ) -> Tuple[int, float, float, int, float, bool]:
        """Fused same-page continuation for PRMB-less MMUs (the
        baseline-IOMMU regime).

        While this page's walk is in flight, every transaction either
        launches a redundant walk or stalls on translation bandwidth —
        the reference loop pays two :meth:`MMU.translate` dispatches per
        transaction (the stalled probe and its post-retry replay) plus a
        :meth:`MMU.process_completions` call per stall.  This method
        replays that exact sequence — same probes, same counters, same
        retry policy, same retirement points — with walk dispatch and
        walk retirement inlined against locals bound once per run, and
        is called once per same-page segment (``transactions[i:j]``, the
        caller's memoized run bounds) so its own setup amortizes over
        the run.  Integer counters accumulate in locals and flush once
        on exit (integer addition is exact and order-independent); float
        accumulators keep the reference's per-transaction addition
        order, to which floating-point rounding is sensitive.  Returns
        ``(i, cycle, data_end, total_bytes, stall, faulted)``; the
        caller re-dispatches (the run typically flipped to TLB hits) or,
        on ``faulted``, replays the transaction through the reference
        step so faults keep their general handling.
        """
        mmu = self.mmu
        pool = mmu.pool
        pts = mmu.pts
        tlb = mmu.tlb
        # Fused FIFO paths only run on translated single-level TLB
        # configurations; make the invariant explicit for narrowing.
        assert isinstance(tlb, TLB) and pool is not None and pts is not None
        stats = mmu.stats
        pool_stats = pool.stats
        heap = pool.heap
        interval = self.issue_interval
        memory = self.memory
        mem_cfg = memory.config
        channel_free = memory._channel_free
        n_channels = mem_cfg.channels
        ch_bw = mem_cfg.channel_bandwidth
        mem_latency = mem_cfg.access_latency_cycles
        tlb_set = tlb._sets[tkey & tlb._set_mask]
        pts_by_vpn = pts._by_vpn
        walk_of = pool._walk_of
        vpn_arr = pool._vpn
        free_list = pool._free
        completion_of = pool._completion_of
        heappush_ = heapq.heappush
        heappop_ = heapq.heappop
        poisoned = mmu._poisoned_walkers
        #: None while the page has no walk in flight (fresh mode): the
        #: first dispatched walk is then non-redundant and its PTS probe
        #: was a miss — the probe/stat deltas differ from the redundant
        #: steady state and are tracked separately below.
        my_walkers = pts_by_vpn.get(tkey)
        tpregs = pool._tpregs
        shared_cache = None if pool._no_path_cache else pool._shared_cache
        walk_latency = pool.walk_latency_per_level
        policied = pool._policy is not None
        busy_by_asid = pool._busy_by_asid
        tlb_insert = tlb.insert
        resolver = mmu._resolvers[asid]
        walk = None
        faulted = False
        inf = float("inf")
        if policied:
            # Policy answers are constant until the policy's own event
            # horizon (next_event_for contract), so the tenant's walker
            # quota — and every other tenant's, with its busy set — binds
            # once per segment; the can_start / retry logic below
            # replicates WalkerPool.can_start / earliest_retry_for
            # against them operation for operation.
            policy = pool._policy
            my_quota = pool._walker_quota(asid)
            work_conserving = policy.work_conserving
            my_busy = busy_by_asid.setdefault(asid, set())
            horizon = policy.next_event_for(asid, cycle)
            others = [
                (oq, busy_by_asid.get(other))
                for other in policy.asids
                if other != asid
                and (oq := pool._walker_quota(other)) is not None
            ]
        else:
            horizon = inf
        walks_n = 0
        stalls_n = 0
        fresh_walk_n = 0
        fresh_stall_n = 0
        levels_sum = 0
        skipped_sum = 0

        while i < j:
            if heap and heap[0][0] <= cycle:
                # Inlined walk retirement (PRMB-less: nothing to drain) —
                # operation-for-operation MMU.process_completions.
                while heap and heap[0][0] <= cycle:
                    _, _, walker = heappop_(heap)
                    done_walk = walk_of[walker]
                    if tpregs is not None:
                        tpregs[walker].fill(done_walk)
                    elif shared_cache is not None:
                        shared_cache.fill(done_walk)
                    vpn_arr[walker] = None
                    walk_of[walker] = None
                    if policied:
                        busy = busy_by_asid.get(done_walk.asid)
                        if busy is not None:
                            busy.discard(walker)
                    free_list.append(walker)
                    if poisoned and walker in poisoned:
                        poisoned.discard(walker)
                        continue
                    # Inlined PTS.release (always registered here).
                    key = done_walk.vpn | (done_walk.asid << ASID_SHIFT)
                    registered = pts_by_vpn[key]
                    registered.remove(walker)
                    if not registered:
                        del pts_by_vpn[key]
                    pts._count -= 1
                    tlb_insert(done_walk.vpn, done_walk.pfn, done_walk.asid)
                if tkey in tlb_set:
                    break  # the run flips to TLB hits
                my_walkers = pts_by_vpn.get(tkey)
            if cycle >= horizon:
                break  # policy answers may change: re-consult via caller
            if not free_list:
                startable = False
            elif not policied or my_quota is None or len(my_busy) < my_quota:
                startable = True
            elif not work_conserving:
                startable = False
            else:
                reserved_unmet = 0
                for other_quota, other_busy in others:
                    shortfall = other_quota - (
                        len(other_busy) if other_busy else 0
                    )
                    if shortfall > 0:
                        reserved_unmet += shortfall
                startable = len(free_list) > reserved_unmet
            if startable:
                if walk is None:
                    walk = resolver.resolve_vpn(vpn)
                    if walk is None:
                        faulted = True
                        break  # the reference step raises / handles it
                if my_walkers is None:
                    fresh_walk_n += 1  # PTS missed: a non-redundant walk
                    my_walkers = pts_by_vpn.setdefault(tkey, [])
                else:
                    walks_n += 1
                # Inlined WalkerPool.start_walk + PTS.register.
                walker = free_list.pop()
                if tpregs is not None:
                    skip = tpregs[walker].lookup(walk)
                elif shared_cache is not None:
                    skip = shared_cache.lookup(walk)
                else:
                    skip = 0
                levels = walk.levels
                accessed = levels - (skip if skip < levels - 1 else levels - 1)
                ready = cycle + accessed * walk_latency
                levels_sum += accessed
                skipped_sum += levels - accessed
                vpn_arr[walker] = vpn
                walk_of[walker] = walk
                completion_of[walker] = ready
                if policied:
                    my_busy.add(walker)
                pool._seq += 1
                heappush_(heap, (ready, pool._seq, walker))
                my_walkers.append(walker)
                va = va_list[i]
                size = size_list[i]
                channel = (va >> 8) % n_channels
                free_at = channel_free[channel]
                start = ready if ready > free_at else free_at
                finish = start + size / ch_bw
                channel_free[channel] = finish
                done = finish + mem_latency
                if done > data_end:
                    data_end = done
                total_bytes += size
                cycle += interval
                i += 1
                continue
            # Fully blocked: one stall attempt (probes counted, the
            # request recounted on retry), then retire whatever unblocks
            # this context at the loop top and re-attempt.  The retry
            # point replicates WalkerPool.earliest_retry_for: a tenant
            # hard-blocked by its quota waits for its own earliest walk;
            # everyone else waits for the pool-wide earliest completion.
            if (
                policied
                and not work_conserving
                and my_busy
                and my_quota is not None
                and len(my_busy) >= my_quota
            ):
                # simlint: disable=det-set-iter -- min() over completion cycles is order-independent: floats are totally ordered and ties yield the same value, so hash order cannot leak into timing
                retry = min(completion_of[w] for w in my_busy)
            else:
                retry = heap[0][0] if heap else inf
            if my_walkers is None:
                fresh_stall_n += 1  # the blocked probe missed the PTS too
            else:
                stalls_n += 1
            stats.stall_cycles += retry - cycle if retry > cycle else 0.0
            stall += retry - cycle
            cycle = retry

        # Deferred integer-counter flush (nothing inside the loop reads
        # these; the retire loop's pts._count decrements commute with the
        # walk starts' deferred increments).  Fresh-mode attempts probed
        # an empty scoreboard (no PTS hit, walk not redundant); redundant
        # attempts hit it.
        started = walks_n + fresh_walk_n
        if started:
            stats.requests += started
            pool_stats.walks += started
            pool_stats.level_accesses += levels_sum
            pool_stats.levels_skipped += skipped_sum
            pts._count += started
        if walks_n:
            stats.redundant_walk_requests += walks_n
            pool_stats.redundant_walks += walks_n
        probes = started + stalls_n + fresh_stall_n
        if probes:
            tlb.misses += probes
            pts.lookups += probes
            pts.hits += walks_n + stalls_n
        if stalls_n or fresh_stall_n:
            stats.stall_events += stalls_n + fresh_stall_n
        return i, cycle, data_end, total_bytes, stall, faulted

    def _no_prmb_fifo_runner(self, asid: int) -> NoPrmbRunner:
        """Build (and cache) the fused FIFO no-PRMB segment runner for one
        address space.

        Without path caches every walk accesses all of its page depth's
        levels, so walks complete in start order and the completion heap
        is (nearly) a FIFO: the heappush/heappop pair per walk becomes a
        cursor over one sorted snapshot of the heap.  The saturated
        baseline-IOMMU regime (Figure 8) then advances analytically.
        Three things make this the fast path the columnar engine leans
        on for the contended scenarios:

        * **Closure binding.**  Every stable structure (heap, free list,
          scoreboard, TLB sets, channel table ...) binds once when the
          runner is built, not once per ~5-transaction segment; per-call
          setup reduces to the policy block the event-horizon contract
          requires.
        * **Persistent snapshot.**  The sorted heap image survives
          between calls; it is revalidated by an O(1) identity check
          (length + head/tail object identity).  Removals always take
          the heap minimum — the cursor here, ``heappop`` elsewhere —
          so if the head object survived with the length and tail
          unchanged, no pop and hence no push happened: the snapshot is
          exact.  Sorting amortizes over a burst instead of being paid
          per segment.
        * **Order-preserving insertion.**  A start whose completion
          lands before the snapshot tail (heterogeneous page depths
          across tenants) is insorted instead of bailing to the general
          event loop: a sorted list is a valid min-heap and every
          ``(ready, seq, walker)`` key is distinct, so pop order — the
          only observable — is unchanged.

        The inner loop carries a *saturated steady-state* fast path:
        when the pool is fully busy and the next completion is strictly
        ahead, each transaction is exactly one stall, one retirement and
        one (redundant) walk start, so the loop collapses to that
        sequence with the segment-invariant checks hoisted.  Consecutive
        retirements of the same walk object collapse to one TLB insert:
        with nothing interleaved the repeats are bare present-key LRU
        bumps (stamp renumbering is monotone, so victim choices and
        final LRU order are preserved).  Counters, probes, retry policy
        and float accumulation order are the general loop's, operation
        for operation; ``heap[:]`` is restored from the live suffix on
        every exit.
        """
        runner = self._np_runners.get(asid)
        if runner is not None:
            return runner
        mmu = self.mmu
        pool = mmu.pool
        pts = mmu.pts
        tlb = mmu.tlb
        # Fused FIFO paths only run on translated single-level TLB
        # configurations; make the invariant explicit for narrowing.
        assert isinstance(tlb, TLB) and pool is not None and pts is not None
        stats = mmu.stats
        pool_stats = pool.stats
        heap = pool.heap
        interval = self.issue_interval
        memory = self.memory
        mem_cfg = memory.config
        channel_free = memory._channel_free
        n_channels = mem_cfg.channels
        ch_bw = mem_cfg.channel_bandwidth
        mem_latency = mem_cfg.access_latency_cycles
        tlb_sets = tlb._sets
        tlb_set_mask = tlb._set_mask
        pts_by_vpn = pts._by_vpn
        walk_of = pool._walk_of
        vpn_arr = pool._vpn
        free_list = pool._free
        completion_of = pool._completion_of
        poisoned = mmu._poisoned_walkers
        walk_latency = pool.walk_latency_per_level
        busy_by_asid = pool._busy_by_asid
        tlb_insert = tlb.insert
        resolvers = mmu._resolvers
        walker_quota = pool._walker_quota
        insort = bisect.insort
        inf = float("inf")

        run_bounds = _run_bounds
        vpn_shift = mmu._vpn_shift
        tlb_touch = tlb.touch
        tlb_lookup = tlb.lookup
        tlb_latency = mmu._tlb_latency
        s_cycles = 256 / ch_bw
        stream_ok = n_channels * interval >= s_cycles
        asid_bits = asid << ASID_SHIFT

        # Batched walker-completion calendar (ROADMAP lever (d)): whole
        # saturated multi-run stretches retire as one planned bucket.
        # ``NEUMMU_CALENDAR=0`` forces the per-event path (benchmarking
        # and differential-fuzz granularity); bit-identity either way.
        calendar = CompletionCalendar(mmu, memory, asid, interval)
        use_calendar = os.environ.get("NEUMMU_CALENDAR", "1") != "0"
        quota_batch = self._quota_batch
        miss_batch = self._miss_batch

        # Persistent completion snapshot: ``order[idx:]`` mirrors the heap
        # between calls (see the revalidation check below).
        order: List[Tuple[float, int, int]] = []
        idx = 0

        # Policy block memo, invalidated by ``SharePolicy.version`` (every
        # quota-changing event bumps it) or a policy swap.  Busy sets are
        # created eagerly so the memoized ``others`` rows track the live
        # sets; an empty set behaves exactly like an absent one at every
        # enforcement site.
        pol_obj = None
        pol_ver = -1
        my_quota = None
        work_conserving = True
        my_busy = None
        others = ()

        def run(
            va_list: Sequence[int],
            size_list: Sequence[int],
            i: int,
            j: int,
            n: int,
            vpn: int,
            tkey: int,
            cycle: float,
            data_end: float,
            total_bytes: int,
            stall: float,
            meta: Optional[Sequence[Tuple[int, bool]]],
            rc: int,
            run_streamable: bool,
            vas_col: Any = None,
            sizes_col: Any = None,
            uniform_size: Optional[int] = None,
        ) -> Tuple[int, float, float, int, float, bool, int, int, int, bool]:
            nonlocal order, idx
            nonlocal pol_obj, pol_ver, my_quota, work_conserving, my_busy, others
            live = len(order) - idx
            if len(heap) != live or (
                live
                and (heap[0] is not order[idx] or heap[-1] is not order[-1])
            ):
                order = sorted(heap)
                idx = 0
            elif idx > 2048:
                del order[:idx]
                idx = 0
            policy = pool._policy
            policied = policy is not None
            if policied:
                if policy is not pol_obj or pol_ver != policy.version:
                    pol_obj = policy
                    pol_ver = policy.version
                    my_quota = walker_quota(asid)
                    work_conserving = policy.work_conserving
                    my_busy = busy_by_asid.setdefault(asid, set())
                    others = [
                        (oq, busy_by_asid.setdefault(other, set()))
                        for other in policy.asids
                        if other != asid
                        and (oq := walker_quota(other)) is not None
                    ]
                next_event = policy.next_event_for
                horizon = next_event(asid, cycle)
            else:
                next_event = None
                horizon = inf
            order_append = order.append
            tlb_set = tlb_sets[tkey & tlb_set_mask]
            my_walkers = pts_by_vpn.get(tkey)
            resolver = resolvers[asid]
            r_cache = resolver._cache
            r_resolve = resolver.resolve_vpn
            run_vpn = vpn
            run_end = j
            seq = pool._seq
            sc = stats.stall_cycles
            walk = None
            dur = 0.0
            levels = 0
            faulted = False
            blocked = False
            walks_n = 0
            stalls_n = 0
            fresh_walk_n = 0
            fresh_stall_n = 0
            levels_sum = 0
            released_n = 0
            prev_walk = None
            cal_skip = 0  # plan-failure hysteresis: retry at the next run
            cal_fails = 0  # consecutive declines this burst (backoff gate)
            bd_skip = 0  # burn-down plan-failure hysteresis, same shape
            bd_fails = 0  # consecutive burn-down declines (backoff gate)
            win_skip = 0  # mixed-window plan-failure hysteresis, same shape
            win_fails = 0  # consecutive window declines (backoff gate)

            while True:
                if tkey in tlb_set:
                    # ------------- hit phase (page resident) -------------
                    # Operation-for-operation the caller's leading
                    # reference step plus its bulk hit segments, with
                    # ``process_completions`` consumed through the cursor.
                    prev_walk = None
                    while i < j:
                        if tkey not in tlb_set:
                            break  # a fill evicted the page: walk again
                        h = order[idx][0] if idx < len(order) else inf
                        if h <= cycle:
                            # process_completions(cycle), cursor-inlined
                            # (no PRMB drains, no path-cache fills).
                            n_ord = len(order)
                            while idx < n_ord:
                                entry = order[idx]
                                if entry[0] > cycle:
                                    break
                                idx += 1
                                walker = entry[2]
                                done_walk = walk_of[walker]
                                vpn_arr[walker] = None
                                walk_of[walker] = None
                                if policied:
                                    busy = busy_by_asid.get(done_walk.asid)
                                    if busy is not None:
                                        busy.discard(walker)
                                free_list.append(walker)
                                if poisoned and walker in poisoned:
                                    poisoned.discard(walker)
                                    continue
                                dkey = done_walk.vpn | (
                                    done_walk.asid << ASID_SHIFT
                                )
                                registered = pts_by_vpn[dkey]
                                registered.remove(walker)
                                if not registered:
                                    del pts_by_vpn[dkey]
                                released_n += 1
                                dset = tlb_sets[dkey & tlb_set_mask]
                                if not (
                                    dset
                                    and next(reversed(dset)) == dkey
                                    and dset[dkey] == done_walk.pfn
                                ):
                                    # A resident set-MRU refill with the
                                    # same PFN is a state no-op (the LRU
                                    # bump lands on the tail; mirror
                                    # order and all same-set stamp
                                    # orderings are preserved).
                                    tlb_insert(
                                        done_walk.vpn, done_walk.pfn,
                                        done_walk.asid,
                                    )
                            continue
                        if policied:
                            horizon = next_event(asid, cycle)
                        bd_due = -1
                        bspan = 0
                        # Quota burn-down (ROADMAP open item 2): bound the
                        # span by the policy horizon and the run alone,
                        # defer the completions due inside it, and retire
                        # stretch and completion bucket in one fused
                        # drain.  Valid only under the planner's
                        # no-eviction proof (plan_hits /
                        # hit_fills_admissible): every deferred fill is
                        # then a pure append/bump, and the drain lands all
                        # of them immediately before the stretch's single
                        # MRU bump — exactly the per-event interleaving's
                        # final LRU order.
                        #
                        # Batching pays only when it saves more than a
                        # couple of hit/retire ping-pongs: one or two due
                        # completions are cheaper per-event than a plan
                        # scan (measured on the qos_sweep cells), so the
                        # gate requires at least three dues inside the
                        # stretch (``order`` is sorted, so two lookaheads
                        # decide).  Gate bounds are float-multiply
                        # estimates of the last issue cycle, checked
                        # before paying the horizon division —
                        # attempt-or-not is observationally identical
                        # either way (per-event fallback), so an ulp of
                        # slack here cannot leak into results; the plan
                        # itself re-checks against the bit-exact replayed
                        # bound below.
                        if quota_batch and i >= bd_skip and h != inf:
                            if not (
                                idx + 2 < len(order)
                                and order[idx + 2][0]
                                <= cycle + (j - i - 1) * interval
                            ):
                                # Fewer than three dues in the whole rest
                                # of the run: dues only deplete during a
                                # hit phase (no walk starts here), so
                                # later segments of this run cannot do
                                # better — stop attempting until the next
                                # run and keep the common case at one
                                # ``i >= bd_skip`` compare per segment.
                                # A streak of dry runs writes the burst
                                # off entirely — the dues pattern is
                                # workload-structural, so six dry runs in
                                # a row mean the rest of the burst will
                                # not batch either (same backoff shape as
                                # the calendar's ``cal_fails``).
                                bspan = -1
                                bd_fails += 1
                                bd_skip = n if bd_fails >= 6 else j
                            else:
                                # simlint: disable=cyc-true-div -- horizon/interval live in the float cycle domain; int() truncation is the reference semantics and // floors differently at float boundaries, breaking bit-identity
                                th = (int((horizon - cycle) / interval) - 1
                                      if horizon != inf else n)
                                bspan = j - i
                                if bspan > th:
                                    bspan = th
                            if bspan >= 2:
                                approx_last = cycle + (bspan - 1) * interval
                                if (
                                    h <= approx_last
                                    and order[idx + 2][0] <= approx_last
                                ):
                                    # Replayed float adds: the bit-exact
                                    # issue cycle of the stretch's last
                                    # transaction (the plan bound and
                                    # drain cutoff — dues past it retire
                                    # at the next loop top, where the
                                    # per-event path retires them).
                                    last_issue = cycle
                                    for _ in range(bspan - 1):
                                        last_issue += interval
                                    if (
                                        h <= last_issue
                                        and order[idx + 2][0] <= last_issue
                                    ):
                                        bd_due = calendar.plan_hits(
                                            order, idx, last_issue
                                        )
                                        if bd_due < 0:
                                            bd_fails += 1
                                            bd_skip = (
                                                n if bd_fails >= 6 else j
                                            )
                                            BURN_DOWN.fallback_segments += 1
                                        else:
                                            bd_fails = 0
                            elif bspan >= 0 and j - i >= 2:
                                # Enough dues to batch, but the policy
                                # horizon (arbitration turn) lands before
                                # a two-transaction stretch fits.
                                BURN_DOWN.fail_arbitration_turn += 1
                                BURN_DOWN.fallback_segments += 1
                        if bd_due >= 0:
                            span = bspan
                        else:
                            if policied and horizon < h:
                                h = horizon
                            # simlint: disable=cyc-true-div -- horizon/interval live in the float cycle domain; int() truncation is the reference semantics and // floors differently at float boundaries, breaking bit-identity
                            t = (int((h - cycle) / interval) - 1
                                 if h != inf else n)
                        if bd_due < 0 and t <= 0:
                            # Horizon-boundary transaction: one reference
                            # hit (no completion is due at this cycle).
                            stats.requests += 1
                            stats.tlb_hits += 1
                            tlb_lookup(vpn, asid)
                            ready = cycle + tlb_latency
                            va = va_list[i]
                            size = size_list[i]
                            channel = (va >> 8) % n_channels
                            free_at = channel_free[channel]
                            start = ready if ready > free_at else free_at
                            finish = start + size / ch_bw
                            channel_free[channel] = finish
                            done = finish + mem_latency
                            if done > data_end:
                                data_end = done
                            total_bytes += size
                            cycle += interval
                            i += 1
                            continue
                        if bd_due < 0:
                            span = j - i
                            if span > t:
                                span = t
                        closed = False
                        va0 = va_list[i]
                        if (
                            span >= 8
                            and run_streamable
                            and (span <= n_channels or stream_ok)
                        ):
                            base_ch = va0 >> 8
                            lim = span if span < n_channels else n_channels
                            ok = max(channel_free) <= cycle + tlb_latency
                            if not ok:
                                probe = cycle
                                ok = True
                                for k in range(lim):
                                    if channel_free[
                                        (base_ch + k) % n_channels
                                    ] > (probe + tlb_latency):
                                        ok = False
                                        break
                                    probe += interval
                            if ok:
                                closed = True
                                for _ in range(span - lim):
                                    cycle += interval
                                for k in range(span - lim, span):
                                    ready = cycle + tlb_latency
                                    finish = ready + s_cycles
                                    channel_free[
                                        (base_ch + k) % n_channels
                                    ] = finish
                                    cycle += interval
                                done = finish + mem_latency
                                if done > data_end:
                                    data_end = done
                                total_bytes += span * 256
                        if not closed:
                            for va, size in zip(
                                va_list[i:i + span], size_list[i:i + span]
                            ):
                                ready = cycle + tlb_latency
                                channel = (va >> 8) % n_channels
                                free_at = channel_free[channel]
                                start = ready if ready > free_at else free_at
                                finish = start + size / ch_bw
                                channel_free[channel] = finish
                                done = finish + mem_latency
                                if done > data_end:
                                    data_end = done
                                total_bytes += size
                                cycle += interval
                        stats.requests += span
                        stats.tlb_hits += span
                        if bd_due > 0:
                            # Fused drain: the planned completion bucket
                            # retires just before the stretch's MRU bump.
                            idx, bd_rel = calendar.drain_hits(
                                order, idx, policied
                            )
                            released_n += bd_rel
                            BURN_DOWN.hit_segments += 1
                            BURN_DOWN.hit_txns += span
                            BURN_DOWN.hit_drained += bd_due
                        tlb_touch(vpn, span, asid)
                        i += span
                    if i >= n:
                        break
                    if i >= j:
                        # Next page.
                        vpn = va_list[i] >> vpn_shift
                        tkey = vpn | asid_bits
                        tlb_set = tlb_sets[tkey & tlb_set_mask]
                        j, run_streamable, rc = run_bounds(
                            va_list, size_list, i, n, vpn, vpn_shift, meta, rc
                        )
                        run_vpn = vpn
                        run_end = j
                        walk = None
                        my_walkers = pts_by_vpn.get(tkey)
                        continue
                    # Evicted mid-run: walk the same page again.
                    my_walkers = pts_by_vpn.get(tkey)

                # ------------- miss phase (walk the page) ----------------
                prev_walk = None
                flip = False
                while i < j:
                    n_ord = len(order)
                    if idx < n_ord and order[idx][0] <= cycle:
                        # Inlined walk retirement in FIFO order (PRMB-less
                        # and path-cache-less: nothing to drain or fill).
                        while idx < n_ord:
                            entry = order[idx]
                            if entry[0] > cycle:
                                break
                            idx += 1
                            walker = entry[2]
                            done_walk = walk_of[walker]
                            d_asid = done_walk.asid
                            vpn_arr[walker] = None
                            walk_of[walker] = None
                            if policied:
                                busy = (
                                    my_busy if d_asid == asid
                                    else busy_by_asid.get(d_asid)
                                )
                                if busy is not None:
                                    busy.discard(walker)
                            free_list.append(walker)
                            if poisoned and walker in poisoned:
                                poisoned.discard(walker)
                                continue
                            # Inlined PTS.release (always registered).
                            dkey = done_walk.vpn | (d_asid << ASID_SHIFT)
                            registered = pts_by_vpn[dkey]
                            registered.remove(walker)
                            if not registered:
                                del pts_by_vpn[dkey]
                            released_n += 1
                            if done_walk is prev_walk:
                                # Same mapping as the insert just made,
                                # nothing interleaved: a bare present-key
                                # LRU bump.
                                continue
                            dset = tlb_sets[dkey & tlb_set_mask]
                            if not (
                                dset
                                and next(reversed(dset)) == dkey
                                and dset[dkey] == done_walk.pfn
                            ):
                                # Set-MRU same-PFN refill: state no-op.
                                tlb_insert(
                                    done_walk.vpn, done_walk.pfn, d_asid
                                )
                            prev_walk = done_walk
                        if tkey in tlb_set:
                            break  # the run flips to TLB hits
                        my_walkers = pts_by_vpn.get(tkey)
                    if cycle >= horizon:
                        blocked = True
                        break  # policy answers may change: re-consult
                    if not free_list:
                        startable = False
                    elif (
                        not policied
                        or my_quota is None
                        or len(my_busy) < my_quota
                    ):
                        startable = True
                    elif not work_conserving:
                        startable = False
                    else:
                        reserved_unmet = 0
                        for other_quota, other_busy in others:
                            shortfall = other_quota - len(other_busy)
                            if shortfall > 0:
                                reserved_unmet += shortfall
                        startable = len(free_list) > reserved_unmet
                    if startable:
                        if walk is None:
                            walk = r_cache.get(vpn)
                            if walk is None:
                                # Cold page (or a memoized fault): one
                                # full resolve decides which.
                                walk = r_resolve(vpn)
                                if walk is None:
                                    faulted = True
                                    break  # the reference step raises it
                            levels = walk.levels
                            dur = levels * walk_latency
                        ready = cycle + dur
                        if my_walkers is None:
                            fresh_walk_n += 1  # PTS miss: non-redundant
                            my_walkers = pts_by_vpn.setdefault(tkey, [])
                        else:
                            walks_n += 1
                        walker = free_list.pop()
                        levels_sum += levels
                        vpn_arr[walker] = vpn
                        walk_of[walker] = walk
                        completion_of[walker] = ready
                        if policied:
                            my_busy.add(walker)
                        seq += 1
                        entry = (ready, seq, walker)
                        if order and ready < order[-1][0]:
                            # In-flight walks span page depths: keep the
                            # snapshot sorted (pop order is unchanged; an
                            # equal-ready entry has the larger seq and
                            # belongs at the tail).
                            insort(order, entry, idx)
                        else:
                            order_append(entry)
                        my_walkers.append(walker)
                        va = va_list[i]
                        size = size_list[i]
                        channel = (va >> 8) % n_channels
                        free_at = channel_free[channel]
                        start = ready if ready > free_at else free_at
                        finish = start + size / ch_bw
                        channel_free[channel] = finish
                        done = finish + mem_latency
                        if done > data_end:
                            data_end = done
                        total_bytes += size
                        cycle += interval
                        i += 1
                        # -- saturated steady state: stall, retire, start --
                        # Preconditions per iteration: pool fully busy,
                        # next completion strictly ahead, not hard-blocked.
                        # Each transaction is then exactly the general
                        # loop's stall attempt + single retirement +
                        # redundant start, with the checks those imply
                        # already decided.
                        # The retired walker is restarted in place, so
                        # the free-list round trip, the walker-array
                        # clears and an own-tenant busy discard/add pair
                        # are deferred; every break materializes them
                        # (the freed walker, cleared arrays, busy set)
                        # before the general loop resumes.
                        while i < j:
                            if idx >= len(order):
                                break
                            entry = order[idx]
                            c = entry[0]
                            if c <= cycle or free_list:
                                break
                            if cycle >= horizon:
                                break
                            if (
                                policied
                                and not work_conserving
                                and my_quota is not None
                                and len(my_busy) >= my_quota
                            ):
                                break  # hard-block: waits on own walks
                            # Stall attempt (c > cycle here).
                            stalls_n += 1
                            sc += c - cycle
                            stall += c - cycle
                            cycle = c
                            idx += 1
                            # Retire exactly this completion.
                            walker = entry[2]
                            done_walk = walk_of[walker]
                            d_asid = done_walk.asid
                            own = d_asid == asid
                            if policied and not own:
                                busy = busy_by_asid.get(d_asid)
                                if busy is not None:
                                    busy.discard(walker)
                            if poisoned and walker in poisoned:
                                poisoned.discard(walker)
                                vpn_arr[walker] = None
                                walk_of[walker] = None
                                free_list.append(walker)
                                if policied and own:
                                    my_busy.discard(walker)
                                break  # rare: let the general loop restart
                            dkey = done_walk.vpn | (d_asid << ASID_SHIFT)
                            registered = pts_by_vpn[dkey]
                            registered.remove(walker)
                            if not registered:
                                del pts_by_vpn[dkey]
                            released_n += 1
                            if done_walk is not prev_walk:
                                dset = tlb_sets[dkey & tlb_set_mask]
                                if not (
                                    dset
                                    and next(reversed(dset)) == dkey
                                    and dset[dkey] == done_walk.pfn
                                ):
                                    # Set-MRU same-PFN refill: state no-op.
                                    tlb_insert(
                                        done_walk.vpn, done_walk.pfn, d_asid
                                    )
                                prev_walk = done_walk
                            if dkey == tkey:
                                # Our own earlier walk retired: the run
                                # may flip to TLB hits (unless the
                                # policied fill dropped the entry).
                                vpn_arr[walker] = None
                                walk_of[walker] = None
                                free_list.append(walker)
                                if policied and own:
                                    my_busy.discard(walker)
                                if tkey in tlb_set:
                                    flip = True
                                my_walkers = pts_by_vpn.get(tkey)
                                break
                            if (
                                (idx < len(order) and order[idx][0] <= cycle)
                                or cycle >= horizon
                            ):
                                vpn_arr[walker] = None
                                walk_of[walker] = None
                                free_list.append(walker)
                                if policied and own:
                                    my_busy.discard(walker)
                                break  # coincident dues / horizon: general
                            if policied and my_quota is not None:
                                busy_n = len(my_busy) - 1 if own else len(my_busy)
                                if busy_n >= my_quota:
                                    # Work-conserving borrow check with
                                    # exactly one free walker.
                                    reserved_unmet = 0
                                    for other_quota, other_busy in others:
                                        shortfall = (
                                            other_quota - len(other_busy)
                                        )
                                        if shortfall > 0:
                                            reserved_unmet += shortfall
                                    if reserved_unmet >= 1:
                                        vpn_arr[walker] = None
                                        walk_of[walker] = None
                                        free_list.append(walker)
                                        if policied and own:
                                            my_busy.discard(walker)
                                        break  # blocked: general stall
                            # Redundant start on the just-freed walker.
                            ready = cycle + dur
                            walks_n += 1
                            levels_sum += levels
                            vpn_arr[walker] = vpn
                            walk_of[walker] = walk
                            completion_of[walker] = ready
                            if policied and not own:
                                my_busy.add(walker)
                            seq += 1
                            entry = (ready, seq, walker)
                            if order and ready < order[-1][0]:
                                insort(order, entry, idx)
                            else:
                                order_append(entry)
                            my_walkers.append(walker)
                            va = va_list[i]
                            size = size_list[i]
                            channel = (va >> 8) % n_channels
                            free_at = channel_free[channel]
                            start = ready if ready > free_at else free_at
                            finish = start + size / ch_bw
                            channel_free[channel] = finish
                            done = finish + mem_latency
                            if done > data_end:
                                data_end = done
                            total_bytes += size
                            cycle += interval
                            i += 1
                        if flip:
                            break
                        continue
                    # Fully blocked at a fresh page: try to plan a whole
                    # calendar stretch (stall + head retire + redundant
                    # restart per transaction, across run boundaries) and
                    # retire it as one bucket.  Integral accumulators are
                    # required so the bucket's telescoped stall sums are
                    # reassociation-free (see ``core/calendar.py``).
                    can_plan = (
                        use_calendar
                        and my_walkers is None
                        and meta is not None
                        and vas_col is not None
                        and not poisoned
                        and cycle.is_integer()
                        and sc.is_integer()
                        and stall.is_integer()
                    )
                    if can_plan and miss_batch and i >= win_skip:
                        # Mixed-window planner (``NEUMMU_MISS_BATCH``):
                        # generalizes the stretch gate with a closed-form
                        # quota trajectory (retires W > quota windows the
                        # pointwise gate declines outright) and spans
                        # finite policy horizons certified constant by
                        # ``SharePolicy.rebalance_horizon``.
                        planned = calendar.plan_window(
                            order, idx, i, j, n, cycle, vpn, tkey, walk,
                            run_streamable, meta, rc, vas_col, sizes_col,
                            uniform_size, policied, my_quota,
                            work_conserving, my_busy, others,
                            policy, horizon,
                        )
                        if planned:
                            (
                                i, cycle, data_end, total_bytes, stall, sc,
                                seq, vpn, tkey, j, run_streamable, rc, walk,
                                levels, cal_m, cal_fresh_pages, cal_stalls,
                                cal_fresh_stalls,
                            ) = calendar.drain_window(
                                order, idx, i, cycle, data_end, total_bytes,
                                stall, sc, seq, prev_walk,
                            )
                            dur = levels * walk_latency
                            tlb_set = tlb_sets[tkey & tlb_set_mask]
                            my_walkers = pts_by_vpn.get(tkey)
                            run_vpn = vpn
                            run_end = j
                            stalls_n += cal_stalls - cal_fresh_stalls
                            walks_n += cal_m - cal_fresh_pages
                            fresh_stall_n += cal_fresh_stalls
                            fresh_walk_n += cal_fresh_pages
                            levels_sum += cal_m * levels
                            released_n += cal_m
                            win_fails = 0
                            break
                        # Same hysteresis as the stretch planner below:
                        # declines are pure overhead and bit-identical, so
                        # a streak of them stops planning for the burst.
                        win_fails += 1
                        win_skip = n if win_fails >= 6 else j
                    elif (
                        can_plan
                        and not miss_batch
                        and horizon == inf
                        and i >= cal_skip
                    ):
                        planned = calendar.plan_stretch(
                            order, idx, i, j, n, cycle, vpn, tkey, walk,
                            run_streamable, meta, rc, vas_col, sizes_col,
                            uniform_size, policied, my_quota,
                            work_conserving, my_busy, others,
                        )
                        if planned:
                            (
                                i, cycle, data_end, total_bytes, stall, sc,
                                seq, vpn, tkey, j, run_streamable, rc, walk,
                                levels, cal_m, cal_fresh_pages, cal_stalls,
                                cal_fresh_stalls,
                            ) = calendar.drain_stretch(
                                order, idx, i, cycle, data_end, total_bytes,
                                stall, sc, seq, prev_walk,
                            )
                            dur = levels * walk_latency
                            tlb_set = tlb_sets[tkey & tlb_set_mask]
                            my_walkers = pts_by_vpn.get(tkey)
                            run_vpn = vpn
                            run_end = j
                            stalls_n += cal_stalls - cal_fresh_stalls
                            walks_n += cal_m - cal_fresh_pages
                            fresh_stall_n += cal_fresh_stalls
                            fresh_walk_n += cal_fresh_pages
                            levels_sum += cal_m * levels
                            released_n += cal_m
                            cal_fails = 0
                            break
                        # Declines are pure overhead: skipping an attempt
                        # is always bit-identical (per-event fallback), so
                        # after a streak of failures stop planning for the
                        # rest of this burst.  Under quota regimes nearly
                        # every attempt declines (W > quota with a mixed
                        # window, or cross-tenant channel skew breaks the
                        # no-queueing hypothesis), and without the backoff
                        # the futile plans cost more than the calendar
                        # saves.
                        cal_fails += 1
                        cal_skip = n if cal_fails >= 6 else j
                    # Fully blocked: one stall attempt, FIFO retry point
                    # (the pool-wide earliest completion is the cursor
                    # head); a hard-partitioned tenant at quota waits for
                    # its own earliest walk instead.
                    if (
                        policied
                        and not work_conserving
                        and my_busy
                        and my_quota is not None
                        and len(my_busy) >= my_quota
                    ):
                        # simlint: disable=det-set-iter -- min() over completion cycles is order-independent: floats are totally ordered and ties yield the same value, so hash order cannot leak into timing
                        retry = min(completion_of[w] for w in my_busy)
                    else:
                        retry = order[idx][0] if idx < len(order) else inf
                    if my_walkers is None:
                        fresh_stall_n += 1  # the blocked probe missed PTS
                    else:
                        stalls_n += 1
                    sc += retry - cycle if retry > cycle else 0.0
                    stall += retry - cycle
                    cycle = retry
                if faulted or blocked or i >= n:
                    break
                if i >= j:
                    # Next page.
                    vpn = va_list[i] >> vpn_shift
                    tkey = vpn | asid_bits
                    tlb_set = tlb_sets[tkey & tlb_set_mask]
                    j, run_streamable, rc = run_bounds(
                        va_list, size_list, i, n, vpn, vpn_shift, meta, rc
                    )
                    run_vpn = vpn
                    run_end = j
                    walk = None
                    my_walkers = pts_by_vpn.get(tkey)
                # else: flipped to TLB hits; the loop top re-dispatches.

            # Restore the live completion suffix (sorted == valid heap) and
            # flush deferred counters, exactly as the general loop.
            heap[:] = order[idx:]
            pool._seq = seq
            stats.stall_cycles = sc
            started = walks_n + fresh_walk_n
            if started:
                stats.requests += started
                pool_stats.walks += started
                pool_stats.level_accesses += levels_sum
            if started != released_n:
                pts._count += started - released_n
            if walks_n:
                stats.redundant_walk_requests += walks_n
                pool_stats.redundant_walks += walks_n
            probes = started + stalls_n + fresh_stall_n
            if probes:
                tlb.misses += probes
                pts.lookups += probes
                pts.hits += walks_n + stalls_n
            if stalls_n or fresh_stall_n:
                stats.stall_events += stalls_n + fresh_stall_n
            return (
                i, cycle, data_end, total_bytes, stall, faulted,
                rc, run_vpn, run_end, run_streamable,
            )

        self._np_runners[asid] = run
        return run

    def _no_prmb_entry(
        self,
        transactions: Sequence[Transaction],
        va_list: Sequence[int],
        size_list: Sequence[int],
        i: int,
        n: int,
        vpn: int,
        tkey: int,
        asid: int,
        cycle: float,
        data_end: float,
        total_bytes: int,
        stall: float,
        meta: Optional[Sequence[Tuple[int, bool]]],
        rc: int,
        run_vpn: int,
        run_end: int,
        run_streamable: bool,
    ) -> Tuple[int, float, float, int, float, int, int, int, bool, bool]:
        """Run-bounds memoization + :meth:`_no_prmb_run` dispatch.

        The single entry shared by the batched and contended paths (they
        must stay operation-identical for the parity contract, exactly
        like :func:`_run_bounds`): refresh the caller's memoized
        same-page run bounds, hand the run to the fused no-PRMB loop,
        and decide the fall-through.  Returns the updated ``(i, cycle,
        data_end, total_bytes, stall, rc, run_vpn, run_end,
        run_streamable, handled)``; ``handled`` is False when the caller
        must replay transaction ``i`` through its fully general
        reference step (a fault to raise/handle, or no progress was
        possible — e.g. a policy event horizon — so the reference step
        re-evaluates everything).
        """
        if run_vpn != vpn or i >= run_end:
            j, run_streamable, rc = _run_bounds(
                va_list, size_list, i, n, vpn, self.mmu._vpn_shift, meta, rc
            )
            run_vpn = vpn
            run_end = j
        else:
            j = run_end
        before = i
        pool = self.mmu.pool
        assert pool is not None  # batched entry is never reached in oracle mode
        if pool._no_path_cache:
            runner = self._np_runners.get(asid)
            if runner is None:
                runner = self._no_prmb_fifo_runner(asid)
            # Columnar streams feed the completion calendar's vectorized
            # planning; per-object streams simply run without stretches.
            vas_col = getattr(transactions, "vas", None)
            if vas_col is not None:
                sizes_col = getattr(transactions, "sizes", None)
                uniform_size = getattr(transactions, "uniform_size", None)
            else:
                sizes_col = None
                uniform_size = None
            (
                i, cycle, data_end, total_bytes, stall, faulted,
                rc, run_vpn, run_end, run_streamable,
            ) = runner(
                va_list, size_list, i, j, n, vpn, tkey, cycle, data_end,
                total_bytes, stall, meta, rc, run_streamable,
                vas_col, sizes_col, uniform_size,
            )
        else:
            i, cycle, data_end, total_bytes, stall, faulted = self._no_prmb_run(
                va_list, size_list, i, j, vpn, tkey, asid, cycle, data_end,
                total_bytes, stall,
            )
        tlb = self.mmu.tlb
        assert isinstance(tlb, TLB)
        handled = not faulted and (
            i > before or tkey in tlb._sets[tkey & tlb._set_mask]
        )
        return (
            i, cycle, data_end, total_bytes, stall,
            rc, run_vpn, run_end, run_streamable, handled,
        )

    # ------------------------------------------------------------------ #
    # contended batched path (non-trivial QoS share policies)            #
    # ------------------------------------------------------------------ #

    def _run_burst_contended(
        self, transactions: Sequence[Transaction], start_cycle: float, asid: int = 0
    ) -> BurstResult:
        """Same-page run batching under a non-trivial QoS share policy.

        Not all of :meth:`_run_burst_batched`'s deferral arguments
        survive quotas, so this path re-derives them per branch:

        * **Hit runs** never extend past a walk completion: a policied
          TLB fill selects victims from per-tenant LRU state, and in the
          corner where the run's tenant holds a single entry in the
          target set a deferred fill could evict the run page itself —
          so fills are retired exactly when the reference loop would,
          and a hit segment is bounded by the earliest in-flight
          completion.  Between two completions a resident page stays
          resident, so the segment is ``span`` identical lookups: one
          MRU bump, bulk counters, the reference's channel arithmetic.
        * **Merge runs** are bounded by this page's *own* earliest walk
          completion (which flips the run to TLB hits) and by the
          tenant's remaining PRMB-quota room.  Other pages' retirements
          commute exactly as on the full-share path — they touch neither
          this page's walkers nor the merge arithmetic — and the quota
          room they release is recovered at the segment break, where the
          next leading reference step retires the backlog at the same
          cycle the reference loop would admit the freed capacity.
        * Both segment kinds additionally respect the policy's
          self-reported :meth:`~repro.core.qos.SharePolicy.next_event_for`
          horizon, so a future time-varying policy is consulted at or
          before every cycle its answers may change.

        Boundary transactions (the last couple before an event,
        quota-exhausted merges, walk starts, stalls) fall back to one
        fully general reference step each, keeping this path
        bit-identical to :meth:`_run_burst_reference` under every share
        policy (``tests/test_fastpath_parity.py``).
        """
        mmu = self.mmu
        memory = self.memory
        vpn_shift = mmu._vpn_shift
        interval = self.issue_interval
        fault_handler = self.fault_handler
        translate = mmu.translate
        process = mmu.process_completions
        stats = mmu.stats
        tlb = mmu.tlb
        tlb_latency = mmu._tlb_latency
        pool = mmu.pool
        pts = mmu.pts
        # Batched paths only run on translated (non-oracle) single-level
        # TLB configurations; make the invariant explicit for narrowing.
        assert isinstance(tlb, TLB) and pool is not None and pts is not None
        heap = pool.heap
        pts_by_vpn = pts._by_vpn
        buffers = pool._buffers
        completion_of = pool._completion_of
        walk_of = pool._walk_of
        poisoned = mmu._poisoned_walkers
        prmb_capacity = mmu._prmb_slots
        prmb_occ = pool._prmb_occ
        prmb_total = pool.n_walkers * pool.prmb_slots
        policy = mmu.share_policy
        policy_next_event = policy.next_event_for
        policy_burn_down = policy.burn_down
        quota_batch = self._quota_batch
        inf = float("inf")

        mem_cfg = memory.config
        channel_free = memory._channel_free
        n_channels = mem_cfg.channels
        ch_bw = mem_cfg.channel_bandwidth
        mem_latency = mem_cfg.access_latency_cycles
        s_cycles = 256 / ch_bw
        stream_ok = n_channels * interval >= s_cycles
        merge_stream_ok = n_channels >= s_cycles
        asid_bits = asid << ASID_SHIFT

        tlb_sets = tlb._sets
        tlb_set_mask = tlb._set_mask

        cycle = start_cycle
        data_end = start_cycle
        stall = 0.0
        total_bytes = 0
        n = len(transactions)

        # Column projections (see _run_burst_batched).
        va_list = getattr(transactions, "va_list", None)
        if va_list is not None:
            size_list = transactions.size_list
        else:
            va_list = [t[0] for t in transactions]
            size_list = [t[1] for t in transactions]

        # DMA-provided run metadata (see _run_burst_batched).
        meta = getattr(transactions, "runs", None)
        if meta is not None and (
            not meta
            or getattr(transactions, "page_size", 0) != 1 << vpn_shift
        ):
            meta = None
        rc = 0

        # Memoized same-page run bounds (re-entered per segment break).
        run_vpn = -1
        run_end = 0
        run_streamable = False

        i = 0
        bd_skip = 0  # burn-down plan-failure hysteresis (next run retries)
        bd_fails = 0  # consecutive burn-down declines (backoff gate)
        while i < n:
            va = va_list[i]
            size = size_list[i]
            vpn = va >> vpn_shift
            tkey = vpn | asid_bits
            if not prmb_capacity and tkey not in tlb_sets[tkey & tlb_set_mask]:
                # PRMB-less leading miss: the fused no-PRMB run handles
                # the page's fresh walk and everything after it directly,
                # bypassing the translate dispatch.
                (
                    i, cycle, data_end, total_bytes, stall,
                    rc, run_vpn, run_end, run_streamable, handled,
                ) = self._no_prmb_entry(
                    transactions, va_list, size_list, i, n, vpn, tkey, asid,
                    cycle, data_end, total_bytes, stall, meta, rc, run_vpn,
                    run_end, run_streamable,
                )
                if handled:
                    continue
                # The whole-burst runner may have crossed page boundaries
                # before faulting or blocking, so transaction ``i`` is not
                # necessarily the one this iteration derived its locals
                # from: re-derive them before the reference-step replay.
                va = va_list[i]
                size = size_list[i]
                vpn = va >> vpn_shift
                tkey = vpn | asid_bits
            # -- reference step for the segment's leading transaction ----
            if heap and heap[0][0] <= cycle:
                process(cycle)
            while True:
                try:
                    ready, retry = translate(vpn, cycle, asid)
                except TranslationFault:
                    if fault_handler is None:
                        raise
                    resolved = fault_handler(vpn, cycle, asid)
                    run_vpn = -1
                    run_end = 0
                    stall += resolved - cycle
                    cycle = resolved
                    process(cycle)
                    continue
                if ready is None:
                    stall += retry - cycle
                    cycle = retry
                    process(cycle)
                    continue
                break
            channel = (va >> 8) % n_channels
            free_at = channel_free[channel]
            start = ready if ready > free_at else free_at
            finish = start + size / ch_bw
            channel_free[channel] = finish
            done = finish + mem_latency
            if done > data_end:
                data_end = done
            total_bytes += size
            cycle += interval
            i += 1

            # -- bulk continuation between interaction points ------------
            while i < n and va_list[i] >> vpn_shift == vpn:
                if tkey in tlb_sets[tkey & tlb_set_mask]:
                    # Bulk TLB hits, bounded by the next walk completion:
                    # fills are retired exactly where the reference loop
                    # would retire them (a deferred policied fill could
                    # in principle evict this very page).  Within the
                    # segment no fill can land, so every transaction is a
                    # plain resident lookup: one MRU bump and ``span``
                    # hits, with the reference's channel arithmetic.
                    h = heap[0][0] if heap else inf
                    if h <= cycle:
                        process(cycle)
                        continue
                    horizon = policy_next_event(asid, cycle)
                    bd_due = 0
                    bd_cut = 0.0
                    if quota_batch and h != inf and i >= bd_skip:
                        # Quota burn-down over the raw heap: same plan as
                        # the fused runner's (see ``plan_hits``), except
                        # the deferred completions retire through the full
                        # ``process_completions`` — whose PRMB drains and
                        # path-cache fills also commute with resident-page
                        # hits — at the stretch's last issue cycle, right
                        # before the stretch's single MRU bump.
                        if run_vpn != vpn or i >= run_end:
                            j, run_streamable, rc = _run_bounds(
                                va_list, size_list, i, n, vpn, vpn_shift,
                                meta, rc,
                            )
                            run_vpn = vpn
                            run_end = j
                        else:
                            j = run_end
                        # Batching pays only past a couple of hit/retire
                        # ping-pongs: require at least three due
                        # completions inside the stretch (measured on the
                        # qos_sweep cells, one or two are cheaper
                        # per-event than a plan scan).  In a binary heap
                        # the 2nd- and 3rd-smallest readys both live at
                        # indices 1..6, so "root due plus two more dues
                        # anywhere in heap[1:7]" is exactly "at least
                        # three dues".  Gate bounds are float-multiply
                        # estimates checked before paying the horizon
                        # division; attempt-or-not is observationally
                        # identical (per-event fallback), and the plan
                        # re-checks against the bit-exact replayed bound
                        # below.
                        more_due = 0
                        approx_upper = cycle + (j - i - 1) * interval
                        if h <= approx_upper:
                            ln = len(heap)
                            if ln > 7:
                                ln = 7
                            k = 1
                            while k < ln:
                                if heap[k][0] <= approx_upper:
                                    more_due += 1
                                    if more_due >= 2:
                                        break
                                k += 1
                        if more_due >= 2:
                            # simlint: disable=cyc-true-div -- horizon/interval live in the float cycle domain; int() truncation is the reference semantics and // floors differently at float boundaries, breaking bit-identity
                            th = (int((horizon - cycle) / interval) - 1
                                  if horizon != inf else n)
                            bspan = j - i
                            if bspan > th:
                                bspan = th
                        else:
                            # Fewer than three dues against the whole
                            # rest of the run: dues only deplete during a
                            # hit phase, so stop attempting until the
                            # next run (one ``i >= bd_skip`` compare per
                            # segment in the common case).  A streak of
                            # dry runs writes the burst off entirely
                            # (same backoff shape as the calendar's
                            # ``cal_fails``).
                            bspan = 0
                            bd_fails += 1
                            bd_skip = n if bd_fails >= 6 else j
                        if bspan >= 2:
                            approx_last = cycle + (bspan - 1) * interval
                            if h <= approx_last:
                                # Replayed float adds: the bit-exact issue
                                # cycle of the stretch's last transaction
                                # (the plan bound and drain cutoff — later
                                # dues retire at the next loop top, where
                                # the per-event path retires them).
                                last_issue = cycle
                                for _ in range(bspan - 1):
                                    last_issue += interval
                            else:
                                last_issue = -inf
                            if h <= last_issue:
                                due_walks: List[WalkInfo] = []
                                admissible = True
                                for entry in heap:
                                    if entry[0] > last_issue:
                                        continue
                                    walker = entry[2]
                                    if poisoned and walker in poisoned:
                                        BURN_DOWN.fail_residency += 1
                                        admissible = False
                                        break
                                    due_walk = walk_of[walker]
                                    if due_walk is None:
                                        BURN_DOWN.fail_fault += 1
                                        admissible = False
                                        break
                                    due_walks.append(due_walk)
                                if admissible and not hit_fills_admissible(
                                    tlb, due_walks
                                ):
                                    BURN_DOWN.fail_quota_bound += 1
                                    admissible = False
                                if admissible:
                                    bd_due = len(due_walks)
                                    bd_cut = last_issue
                                    bd_fails = 0
                                else:
                                    bd_fails += 1
                                    bd_skip = n if bd_fails >= 6 else j
                                    BURN_DOWN.fallback_segments += 1
                        elif more_due >= 2 and j - i >= 2:
                            # Enough dues to batch, but the policy horizon
                            # (arbitration turn) lands before a
                            # two-transaction stretch fits.
                            BURN_DOWN.fail_arbitration_turn += 1
                            BURN_DOWN.fallback_segments += 1
                    if bd_due:
                        span = bspan
                    else:
                        if horizon < h:
                            h = horizon
                        # Conservative count of transactions that issue
                        # strictly before the horizon.
                        # simlint: disable=cyc-true-div -- horizon/interval live in the float cycle domain; int() truncation is the reference semantics and // floors differently at float boundaries, breaking bit-identity
                        t = int((h - cycle) / interval) - 1 if h != inf else n
                    if not bd_due and t <= 0:
                        # Horizon-boundary transaction: exactly one
                        # reference hit, inlined (no completion is due at
                        # *this* cycle — ``h > cycle`` — so the reference
                        # step would be a bare lookup; dense completion
                        # traffic would otherwise push every such hit
                        # through the full translate dispatch).
                        stats.requests += 1
                        stats.tlb_hits += 1
                        tlb.lookup(vpn, asid)
                        ready = cycle + tlb_latency
                        va = va_list[i]
                        size = size_list[i]
                        channel = (va >> 8) % n_channels
                        free_at = channel_free[channel]
                        start = ready if ready > free_at else free_at
                        finish = start + size / ch_bw
                        channel_free[channel] = finish
                        done = finish + mem_latency
                        if done > data_end:
                            data_end = done
                        total_bytes += size
                        cycle += interval
                        i += 1
                        continue
                    if not bd_due:
                        if run_vpn != vpn or i >= run_end:
                            j, run_streamable, rc = _run_bounds(
                                va_list, size_list, i, n, vpn, vpn_shift,
                                meta, rc,
                            )
                            run_vpn = vpn
                            run_end = j
                        else:
                            j = run_end
                        span = j - i
                        if span > t:
                            span = t
                    closed = False
                    va0 = va_list[i]
                    if (
                        span >= 8
                        and run_streamable
                        and (span <= n_channels or stream_ok)
                    ):
                        base_ch = va0 >> 8
                        lim = span if span < n_channels else n_channels
                        ok = max(channel_free) <= cycle + tlb_latency
                        if not ok:
                            probe = cycle
                            ok = True
                            for k in range(lim):
                                if channel_free[(base_ch + k) % n_channels] > (
                                    probe + tlb_latency
                                ):
                                    ok = False
                                    break
                                probe += interval
                        if ok:
                            closed = True
                            for _ in range(span - lim):
                                cycle += interval
                            for k in range(span - lim, span):
                                ready = cycle + tlb_latency
                                finish = ready + s_cycles
                                channel_free[(base_ch + k) % n_channels] = finish
                                cycle += interval
                            done = finish + mem_latency
                            if done > data_end:
                                data_end = done
                            total_bytes += span * 256
                    if not closed:
                        for va, size in zip(
                            va_list[i:i + span], size_list[i:i + span]
                        ):
                            ready = cycle + tlb_latency
                            channel = (va >> 8) % n_channels
                            free_at = channel_free[channel]
                            start = ready if ready > free_at else free_at
                            finish = start + size / ch_bw
                            channel_free[channel] = finish
                            done = finish + mem_latency
                            if done > data_end:
                                data_end = done
                            total_bytes += size
                            cycle += interval
                    stats.requests += span
                    stats.tlb_hits += span
                    if bd_due:
                        # Fused drain: the deferred completion bucket
                        # retires just before the stretch's MRU bump.
                        process(bd_cut)
                        BURN_DOWN.hit_segments += 1
                        BURN_DOWN.hit_txns += span
                        BURN_DOWN.hit_drained += bd_due
                    tlb.touch(vpn, span, asid)
                    i += span
                    continue

                if not prmb_capacity:
                    # Delegates to the fused FIFO runner, so the mixed-
                    # window miss planner (``NEUMMU_MISS_BATCH``) is
                    # reached from both dispatch routes; the PRMB arm
                    # below has no FIFO stall/retire chain to batch.
                    (
                        i, cycle, data_end, total_bytes, stall,
                        rc, run_vpn, run_end, run_streamable, handled,
                    ) = self._no_prmb_entry(
                        transactions, va_list, size_list, i, n, vpn, tkey,
                        asid, cycle, data_end, total_bytes, stall, meta,
                        rc, run_vpn, run_end, run_streamable,
                    )
                    if not handled:
                        break  # the reference step raises / re-evaluates
                    continue  # re-dispatch: TLB hits, or a new page
                walkers = pts_by_vpn.get(tkey)
                if not walkers:
                    break
                # Bulk PRMB merges.  Like the full-share path, a merge
                # segment only breaks when one of *this page's* walks
                # completes (flipping the run to TLB hits) — other pages'
                # retirements commute and are deferred to the next
                # reference step — but it is additionally bounded by the
                # tenant's merge-quota room, which only shrinks inside a
                # segment (the drains that would grow it are themselves
                # completions the next leading step retires first).
                if len(walkers) == 1:
                    h_mine = completion_of[walkers[0]]
                else:
                    h_mine = min(completion_of[w] for w in walkers)
                if cycle >= h_mine:
                    # This page's own walk completes now: retire the
                    # backlog and re-dispatch (the run flips to TLB hits).
                    process(cycle)
                    continue
                horizon = policy_next_event(asid, cycle)
                if horizon < h_mine:
                    h_mine = horizon
                # Merge-quota room as a burn-down span: how many merges
                # this tenant can park before its PRMB reservation binds
                # (the built-in policies answer ``prmb_quota`` and
                # ``quota`` identically; a policy differentiating them
                # must override ``burn_down`` to match).  ``room`` clamps
                # at the burst length, which every span bound below
                # already respects.
                room = policy_burn_down(
                    asid, prmb_occ.get(asid, 0), n, prmb_total
                )
                if room <= 0:
                    break
                if run_vpn != vpn or i >= run_end:
                    j, run_streamable, rc = _run_bounds(
                        va_list, size_list, i, n, vpn, vpn_shift, meta, rc
                    )
                    run_vpn = vpn
                    run_end = j
                else:
                    j = run_end
                merged_total = 0
                full_skips = 0
                for walker in walkers:
                    buf = buffers[walker]
                    pos = buf._occupied
                    cap = buf.slots
                    if pos >= cap:
                        full_skips += 1
                        continue
                    comp = completion_of[walker]
                    room_w = cap - pos
                    avail = j - i
                    span = avail if avail < room_w else room_w
                    if room < span:
                        span = room
                    # simlint: disable=cyc-true-div -- horizon/interval live in the float cycle domain; int() truncation is the reference semantics and // floors differently at float boundaries, breaking bit-identity
                    t = int((h_mine - cycle) / interval) - 1
                    if t < span:
                        span = t
                    if span > 0:
                        closed = False
                        va0 = va_list[i]
                        if (
                            span >= 8
                            and run_streamable
                            and (span <= n_channels or merge_stream_ok)
                        ):
                            base_ch = va0 >> 8
                            lim = span if span < n_channels else n_channels
                            ok = max(channel_free) <= comp + (pos + 1)
                            if not ok:
                                for k in range(lim):
                                    if channel_free[(base_ch + k) % n_channels] > (
                                        comp + (pos + 1 + k)
                                    ):
                                        ok = False
                                        break
                                else:
                                    ok = True
                            if ok:
                                closed = True
                                for _ in range(span):
                                    cycle += interval
                                for k in range(span - lim, span):
                                    ready = comp + (pos + 1 + k)
                                    finish = ready + s_cycles
                                    channel_free[
                                        (base_ch + k) % n_channels
                                    ] = finish
                                done = finish + mem_latency
                                if done > data_end:
                                    data_end = done
                                total_bytes += span * 256
                                pos += span
                        if not closed:
                            for va, size in zip(
                                va_list[i:i + span], size_list[i:i + span]
                            ):
                                pos += 1
                                ready = comp + pos
                                channel = (va >> 8) % n_channels
                                free_at = channel_free[channel]
                                start = ready if ready > free_at else free_at
                                finish = start + size / ch_bw
                                channel_free[channel] = finish
                                done = finish + mem_latency
                                if done > data_end:
                                    data_end = done
                                total_bytes += size
                                cycle += interval
                        k = i + span
                    else:
                        k = i
                    # Residual guarded loop: finishes whatever the bulk
                    # span left over (the conservative trip count stops up
                    # to one interval short of the completion horizon),
                    # bounded per transaction by the quota room.
                    while k < j and pos < cap and cycle < h_mine and k - i < room:
                        va = va_list[k]
                        size = size_list[k]
                        pos += 1
                        ready = comp + pos
                        channel = (va >> 8) % n_channels
                        free_at = channel_free[channel]
                        start = ready if ready > free_at else free_at
                        finish = start + size / ch_bw
                        channel_free[channel] = finish
                        done = finish + mem_latency
                        if done > data_end:
                            data_end = done
                        total_bytes += size
                        cycle += interval
                        k += 1
                    count = k - i
                    if count:
                        buf._occupied = pos
                        mb_stats = buf.stats
                        mb_stats.merges += count
                        if pos > mb_stats.peak_occupancy:
                            mb_stats.peak_occupancy = pos
                        # Each merged request first probed every already-
                        # full walker ahead of this one in the PTS list.
                        mb_stats.rejects_full += full_skips * count
                        merged_total += count
                        room -= count
                        i = k
                    if i >= j or cycle >= h_mine or room <= 0:
                        break
                    full_skips += 1  # this walker is now truly full
                if merged_total:
                    stats.requests += merged_total
                    stats.merges += merged_total
                    # Each merged request was one TLB miss + one PTS hit.
                    tlb.misses += merged_total
                    pts.lookups += merged_total
                    pts.hits += merged_total
                    prmb_occ[asid] = prmb_occ.get(asid, 0) + merged_total
                    continue
                # Nothing merged (walkers full / quota / horizon): the
                # next transaction takes the full reference step.
                break

        # Catch retirements deferred past merge segments up to the
        # reference path's end-of-burst point (the final transaction's
        # issue cycle) — see the matching catch-up in _run_burst_batched.
        if n:
            last_cycle = cycle - interval
            if heap and heap[0][0] <= last_cycle:
                process(last_cycle)

        memory.total_bytes += total_bytes
        memory.total_accesses += n
        return BurstResult(
            start_cycle=start_cycle,
            issue_end_cycle=cycle,
            data_end_cycle=data_end,
            transactions=n,
            bytes_moved=total_bytes,
            stall_cycles=stall,
        )

    # ------------------------------------------------------------------ #
    # multi-burst driver                                                 #
    # ------------------------------------------------------------------ #

    def run_bursts(
        self,
        bursts: Sequence[Sequence[Transaction]],
        start_cycle: float,
        asid: int = 0,
    ) -> Tuple[List[BurstResult], float]:
        """Run several back-to-back bursts (e.g. a tile's IA then W fetch).

        Burst *n+1*'s translations start as soon as burst *n*'s last
        translation issued (the DMA does not interleave IA and W but need
        not wait for data return); the combined memory phase ends when all
        data has returned.
        """
        results: List[BurstResult] = []
        cycle = start_cycle
        data_end = start_cycle
        for burst in bursts:
            result = self.run_burst(burst, cycle, asid)
            results.append(result)
            cycle = result.issue_end_cycle
            if result.data_end_cycle > data_end:
                data_end = result.data_end_cycle
        return results, data_end

    def timeline_series(self) -> List[Tuple[int, int]]:
        """Sorted ``(window_start_cycle, request_count)`` pairs (Figure 7)."""
        window = self.timeline_window or 1
        return [(idx * window, count) for idx, count in sorted(self.timeline.items())]
