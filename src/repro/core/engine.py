"""Cycle-resolved translation/memory-phase engine.

This engine replays one DMA *burst* (all linearized transactions of one
tile fetch, Section III-C) against an MMU model and the shared memory
system:

* the DMA issues one translation request per cycle ("The DMA unit sends a
  single translation each cycle", Figure 7);
* a request either hits the TLB (5 cycles), merges into an in-flight walk's
  PRMB, starts a (possibly redundant) walk, or blocks the issue port until
  translation bandwidth frees up;
* once translated, the transaction's data read is queued on the
  bandwidth-limited memory system;
* the burst's *memory phase* ends when the last data beat returns — the
  implicit barrier before the tile's compute phase (Figure 3).

An oracular MMU makes every translation free, so the same engine computes
the paper's normalization baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..memory.dram import MainMemory
from .mmu import MMU, TranslationFault

#: A DMA transaction: (virtual address, size in bytes).
Transaction = Tuple[int, int]

#: Demand-paging hook: ``(vpn, fault_cycle) -> resolved_cycle``.  The hook
#: must install the mapping (and invalidate the resolver entry) before
#: returning; the engine retries the translation at ``resolved_cycle``.
FaultHandler = Callable[[int, float], float]


@dataclass
class BurstResult:
    """Timing of one tile-fetch burst."""

    start_cycle: float
    issue_end_cycle: float
    data_end_cycle: float
    transactions: int
    bytes_moved: int
    stall_cycles: float

    @property
    def duration(self) -> float:
        """Full memory-phase duration of this burst."""
        return self.data_end_cycle - self.start_cycle


class TranslationEngine:
    """Drives an MMU + memory system with DMA transaction streams."""

    def __init__(
        self,
        mmu: MMU,
        memory: MainMemory,
        issue_interval: float = 1.0,
        timeline_window: int = 0,
        fault_handler: Optional[FaultHandler] = None,
    ):
        if issue_interval <= 0:
            raise ValueError("issue interval must be positive")
        self.mmu = mmu
        self.memory = memory
        self.issue_interval = issue_interval
        self.timeline_window = timeline_window
        self.fault_handler = fault_handler
        #: window index -> number of translation requests issued in it
        #: (Figure 7's burst histogram).  Populated when timeline_window > 0.
        self.timeline: Dict[int, int] = {}

    def run_burst(
        self, transactions: Sequence[Transaction], start_cycle: float
    ) -> BurstResult:
        """Replay one burst; returns its timing.

        ``transactions`` are issued in order at one per ``issue_interval``
        cycles, subject to translation-bandwidth blocking.
        """
        mmu = self.mmu
        memory = self.memory
        vpn_shift = mmu._vpn_shift
        window = self.timeline_window
        timeline = self.timeline
        interval = self.issue_interval
        fault_handler = self.fault_handler
        oracle = mmu.config.oracle and fault_handler is None
        translate = mmu.translate
        process = mmu.process_completions
        heap = None if mmu.pool is None else mmu.pool.heap

        # Memory-channel state is inlined here — this loop runs millions of
        # times per workload and the channel update is pure arithmetic.
        mem_cfg = memory.config
        channel_free = memory._channel_free
        n_channels = mem_cfg.channels
        ch_bw = mem_cfg.channel_bandwidth
        mem_latency = mem_cfg.access_latency_cycles

        cycle = start_cycle
        data_end = start_cycle
        stall = 0.0
        total_bytes = 0

        for va, size in transactions:
            if oracle:
                mmu.stats.requests += 1
                ready = cycle
            else:
                if heap is not None and heap and heap[0][0] <= cycle:
                    process(cycle)
                vpn = va >> vpn_shift
                while True:
                    try:
                        ready, retry = translate(vpn, cycle)
                    except TranslationFault:
                        if fault_handler is None:
                            raise
                        resolved = fault_handler(vpn, cycle)
                        stall += resolved - cycle
                        cycle = resolved
                        process(cycle)
                        continue
                    if ready is None:
                        stall += retry - cycle
                        cycle = retry
                        process(cycle)
                        continue
                    break
            if window:
                key = int(cycle // window)
                timeline[key] = timeline.get(key, 0) + 1
            # Inlined MainMemory.access (same arithmetic/policy).
            channel = (va >> 8) % n_channels
            free_at = channel_free[channel]
            start = ready if ready > free_at else free_at
            finish = start + size / ch_bw
            channel_free[channel] = finish
            done = finish + mem_latency
            if done > data_end:
                data_end = done
            total_bytes += size
            cycle += interval

        memory.total_bytes += total_bytes
        memory.total_accesses += len(transactions)
        return BurstResult(
            start_cycle=start_cycle,
            issue_end_cycle=cycle,
            data_end_cycle=data_end,
            transactions=len(transactions),
            bytes_moved=total_bytes,
            stall_cycles=stall,
        )

    def run_bursts(
        self, bursts: Sequence[Sequence[Transaction]], start_cycle: float
    ) -> Tuple[List[BurstResult], float]:
        """Run several back-to-back bursts (e.g. a tile's IA then W fetch).

        Burst *n+1*'s translations start as soon as burst *n*'s last
        translation issued (the DMA does not interleave IA and W but need
        not wait for data return); the combined memory phase ends when all
        data has returned.
        """
        results: List[BurstResult] = []
        cycle = start_cycle
        data_end = start_cycle
        for burst in bursts:
            result = self.run_burst(burst, cycle)
            results.append(result)
            cycle = result.issue_end_cycle
            if result.data_end_cycle > data_end:
                data_end = result.data_end_cycle
        return results, data_end

    def timeline_series(self) -> List[Tuple[int, int]]:
        """Sorted ``(window_start_cycle, request_count)`` pairs (Figure 7)."""
        window = self.timeline_window or 1
        return [(idx * window, count) for idx, count in sorted(self.timeline.items())]
