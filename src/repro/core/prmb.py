"""Pending request merging buffer (PRMB) — Section IV-A.

Each page-table walker carries a PRMB with a fixed number of *mergeable
slots*.  While the walker's translation is in flight, subsequent requests to
the same virtual page are parked in the PRMB rather than consuming walk
bandwidth; when the translation returns, merged requests are replayed to
the DMA engine "on a cycle-by-cycle basis".

The PRMB is the paper's translation *bandwidth filter*: with 8–32 slots it
absorbs most of a tile fetch's intra-page burst (Figure 10), and without it
every same-page request must either launch a redundant walk or stall
(Figure 12a shows the performance/energy consequence).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MergeBufferStats:
    """Aggregate PRMB behaviour over a run."""

    merges: int = 0
    rejects_full: int = 0
    peak_occupancy: int = 0


class MergeBuffer:
    """One walker's PRMB.

    Only occupancy is tracked — the identity of merged requests lives with
    the engine, which knows each request's completion time is the walk's
    completion plus its drain position.
    """

    __slots__ = ("slots", "_occupied", "stats")

    def __init__(self, slots: int, stats: MergeBufferStats | None = None) -> None:
        if slots < 0:
            raise ValueError(f"PRMB slot count cannot be negative, got {slots}")
        self.slots = slots
        self._occupied = 0
        self.stats = stats if stats is not None else MergeBufferStats()

    @property
    def occupied(self) -> int:
        """Requests currently parked in this buffer."""
        return self._occupied

    @property
    def free_slots(self) -> int:
        """Remaining mergeable capacity."""
        return self.slots - self._occupied

    def try_merge(self) -> int:
        """Attempt to park one request.

        Returns the request's *drain position* (1-based: the walk completion
        cycle plus this number is when the merged request is replayed), or
        0 when the buffer is full.
        """
        if self._occupied >= self.slots:
            self.stats.rejects_full += 1
            return 0
        self._occupied += 1
        self.stats.merges += 1
        if self._occupied > self.stats.peak_occupancy:
            self.stats.peak_occupancy = self._occupied
        return self._occupied

    def drain(self) -> int:
        """Empty the buffer on walk completion; returns requests released."""
        released = self._occupied
        self._occupied = 0
        return released

    #: Bytes per PRMB slot for the area model: VA tag plus request metadata
    #: is conservatively 8 bytes (Section IV-E).
    SLOT_BYTES = 8
