"""Resolved page-table-walk descriptors.

The timing engine needs, per virtual page, everything a hardware walker
would discover: how many levels the walk traverses, the virtual L4/L3/L2
indices (the TPreg/TPC tag, Section IV-C), the physical addresses of the
entries read at each level (the UPTC tag), and the resulting PFN.
:class:`WalkResolver` computes these once per page from the functional page
table and memoizes them, since within a run millions of transactions hit a
much smaller set of pages.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

from ..memory.address import PAGE_SIZE_4K, page_offset_bits, split_indices
from ..memory.page_table import PageFault, PageTable


class WalkInfo(NamedTuple):
    """Everything known about one page's translation.

    A ``NamedTuple`` rather than a dataclass: resolvers mint one per
    distinct page per context, and the C-level tuple constructor keeps
    that churn off the profile while staying immutable and slotted.

    Attributes
    ----------
    vpn:
        Virtual page number (relative to the *walk's* page size).
    pfn:
        Physical frame number the walk resolves to.
    page_size:
        4 KB or 2 MB.
    levels:
        Memory references of an uncached walk (4 for 4 KB, 3 for 2 MB).
    path:
        Upper-level virtual indices, outermost first.  For a 4 KB page this
        is ``(l4, l3, l2)``; for a 2 MB page ``(l4, l3)`` — the skippable
        prefix of the walk.
    entry_pas:
        Physical address of the entry read at each level, outermost first;
        ``len(entry_pas) == levels``.
    asid:
        Address-space identifier of the context this walk belongs to.
        Single-context simulations leave it at 0; multi-tenant runs use it
        to tag shared translation structures (TLB, PTS, path caches).
    """

    vpn: int
    pfn: int
    page_size: int
    levels: int
    path: Tuple[int, ...]
    entry_pas: Tuple[int, ...]
    asid: int = 0


class WalkResolver:
    """Memoizing functional-walk front-end for the timing engine.

    One resolver serves one address-space context: it wraps that context's
    page table and stamps every :class:`WalkInfo` it produces with the
    context's ``asid``, which is how walk results carry their origin into
    ASID-tagged shared structures.
    """

    def __init__(
        self, page_table: PageTable, page_size: int = PAGE_SIZE_4K, asid: int = 0
    ) -> None:
        self.page_table = page_table
        self.page_size = page_size
        self.asid = asid
        self._offset_bits = page_offset_bits(page_size)
        self._cache: Dict[int, Optional[WalkInfo]] = {}

    def resolve_vpn(self, vpn: int) -> Optional[WalkInfo]:
        """Resolve a virtual page number; None means the walk page-faults."""
        cached = self._cache.get(vpn, _SENTINEL)
        if cached is not _SENTINEL:
            return cached
        va = vpn << self._offset_bits
        try:
            pfn, page_size, levels, entry_pas = self.page_table.resolve(va)
        except PageFault:
            self._cache[vpn] = None
            return None
        l4, l3, l2, _ = split_indices(va)
        if page_size == PAGE_SIZE_4K:
            path: Tuple[int, ...] = (l4, l3, l2)
        else:
            path = (l4, l3)
        info = WalkInfo(
            vpn=vpn,
            pfn=pfn,
            page_size=page_size,
            levels=levels,
            path=path,
            entry_pas=entry_pas,
            asid=self.asid,
        )
        self._cache[vpn] = info
        return info

    def resolve_va(self, va: int) -> Optional[WalkInfo]:
        """Resolve the page containing ``va``."""
        return self.resolve_vpn(va >> self._offset_bits)

    def invalidate(self, vpn: int) -> None:
        """Drop a memoized walk (after remapping/migration)."""
        self._cache.pop(vpn, None)

    def invalidate_all(self) -> None:
        """Drop every memoized walk."""
        self._cache.clear()


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()
