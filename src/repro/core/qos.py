"""Pluggable QoS layer: tenant share policies and shared-MMU arbitration.

PR 2's :class:`~repro.core.mmu.SharedMMU` made every sharing decision a
hard-coded constant: the TLB was a free-for-all, walkers and PRMB slots
were first-come-first-served, and the multi-tenant arbiter was a
whole-tile-step round robin baked into ``MultiTenantSimulator.run``.  The
partition-vs-share choice for translation structures is a first-order
design axis (Kim et al., *Address Translation Design Tradeoffs for
Heterogeneous Systems*; Picorel et al., *Near-Memory Address Translation*),
so this module turns it into one pluggable abstraction with two halves:

* :class:`SharePolicy` — per-resource occupancy quotas per ASID.  Every
  shared structure (TLB capacity/ways, walker pool, PRMB merge slots, and
  the demand-paging :class:`~repro.memory.tiering.MigrationFabric`'s
  transfer slots) consults the policy instead of assuming full sharing:

  - ``full_share`` — no quotas; bit-identical to the pre-QoS engine.
  - ``static_partition`` — weight-proportional *hard* quotas: a tenant can
    never occupy more than its reservation, even when the rest of the
    structure idles (strict isolation).
  - ``weighted`` — weight-proportional *work-conserving* quotas: the quota
    binds only under pressure; idle capacity beyond every other tenant's
    unmet reservation may be borrowed.

* :class:`Arbiter` — decides whose tile step the shared DMA front-end
  services next.  ``round_robin`` and ``priority`` reproduce the PR 2
  policies exactly; ``weighted_quantum`` is a deficit-round-robin arbiter
  that grants each tenant a weight-proportional quantum of *translation
  slots* (requests issued) instead of whole tile steps, so a heavy tenant
  keeps the walker pool warm across several consecutive steps.

The default (``full_share`` + ``round_robin``) is verified bit-identical
to the pre-QoS engine against golden captures (``tests/test_qos.py``).
"""

from __future__ import annotations

import heapq
from typing import Dict, KeysView, List, Optional, Sequence, Tuple

#: Valid :class:`SharePolicy` kinds, in documentation order.
SHARE_POLICIES = ("full_share", "static_partition", "weighted")

#: Valid :class:`Arbiter` kinds.
ARBITRATION_POLICIES = ("round_robin", "priority", "weighted_quantum")


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of ``values`` (per-tenant slowdowns).

    ``(sum x)^2 / (n * sum x^2)`` — 1.0 when every tenant is slowed
    equally, approaching ``1/n`` as one tenant absorbs all the contention.
    Returns 0.0 for an empty sequence.
    """
    if not values:
        return 0.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 0.0
    return (total * total) / (len(values) * squares)


# --------------------------------------------------------------------- #
# share policies                                                         #
# --------------------------------------------------------------------- #


class SharePolicy:
    """Per-ASID share of each shared translation resource.

    The base class is the ``full_share`` policy: every quota query answers
    ``None`` ("unlimited") and :attr:`trivial` is True, which lets every
    enforcement site — and the engine's batched fast path — skip QoS
    bookkeeping entirely, keeping the default bit-identical to the
    pre-QoS engine.

    Tenants are registered with a positive weight (default 1.0); quotas of
    the non-trivial subclasses are weight-proportional fractions of each
    resource's capacity, recomputed on the fly so tenant arrival/departure
    reshapes the partition immediately.
    """

    kind = "full_share"
    #: True when the policy never constrains anything (pure full sharing).
    trivial = True
    #: True when idle capacity beyond other tenants' unmet reservations
    #: may be borrowed (quota binds only under pressure).
    work_conserving = True

    def __init__(self, weights: Optional[Dict[int, float]] = None) -> None:
        self._weights: Dict[int, float] = {}
        #: Memoized ``(asid, capacity) -> quota`` answers.  Quotas are
        #: pure functions of the weight registry, recomputed from scratch
        #: on the translate hot path otherwise; any registry change
        #: invalidates the whole cache.
        self._quota_cache: Dict[Tuple[int, int], Optional[int]] = {}
        #: Monotone registry version.  Bumped on every register/unregister
        #: (the only events that can change a built-in policy's quota
        #: answers), so enforcement sites may keep flat per-structure
        #: quota memos and invalidate them by comparing one integer
        #: instead of re-calling :meth:`quota` per fill or walk dispatch.
        self.version = 0
        if weights:
            for asid, weight in weights.items():
                self.register(asid, weight)

    # -- tenant registry ----------------------------------------------- #

    def register(self, asid: int, weight: float = 1.0) -> None:
        """Add (or re-weight) one tenant's share."""
        if weight <= 0:
            raise ValueError(
                f"tenant weight must be positive, got {weight} for ASID {asid}"
            )
        self._weights[asid] = float(weight)
        self._quota_cache.clear()
        self.version += 1

    def unregister(self, asid: int) -> None:
        """Drop one tenant; surviving tenants' shares grow accordingly."""
        self._weights.pop(asid, None)
        self._quota_cache.clear()
        self.version += 1

    set_weight = register

    @property
    def tenants(self) -> List[int]:
        """Registered ASIDs, in registration order."""
        return list(self._weights)

    @property
    def asids(self) -> KeysView[int]:
        """Registered ASIDs as a live view (no copy — hot-path iteration)."""
        return self._weights.keys()

    def weight_of(self, asid: int) -> float:
        """The tenant's registered weight (1.0 when unregistered)."""
        return self._weights.get(asid, 1.0)

    # -- quotas --------------------------------------------------------- #

    def share_of(self, asid: int) -> Optional[float]:
        """Fraction of each resource owed to ``asid`` (None = unlimited)."""
        return None

    def quota(self, asid: int, capacity: int) -> Optional[int]:
        """Max entries of a ``capacity``-entry resource ``asid`` may hold.

        ``None`` means unlimited.  Non-trivial policies floor the
        weight-proportional share at one entry so a registered tenant can
        always make forward progress.
        """
        return None

    #: Resource-specific aliases — one enforcement vocabulary per
    #: structure, so a future policy can differentiate (e.g. partition
    #: walkers but share the TLB) without touching the call sites.
    def tlb_quota(self, asid: int, entries: int) -> Optional[int]:
        """Max TLB entries ``asid`` may occupy (None = unlimited)."""
        return self.quota(asid, entries)

    def walker_quota(self, asid: int, n_walkers: int) -> Optional[int]:
        """Max concurrent walks ``asid`` may hold (None = unlimited)."""
        return self.quota(asid, n_walkers)

    def prmb_quota(self, asid: int, total_slots: int) -> Optional[int]:
        """Max merged requests ``asid`` may park (None = unlimited)."""
        return self.quota(asid, total_slots)

    def fabric_quota(self, asid: int, slots: int) -> Optional[int]:
        """Max concurrent page migrations ``asid`` may hold in flight on
        the shared :class:`~repro.memory.tiering.MigrationFabric`
        (None = unlimited)."""
        return self.quota(asid, slots)

    # -- closed-form quota burn-down ------------------------------------ #

    def burn_down(
        self, asid: int, occupancy: int, demand: int, capacity: int
    ) -> int:
        """Admitted span: how many of ``demand`` consecutive same-resource
        acquisitions this tenant can retire, starting from ``occupancy``
        held units of a ``capacity``-unit structure, before its quota
        binds.

        This is the vectorized form of the per-event quota check: instead
        of consulting :meth:`quota` once per transaction, the engine's
        batched contended path asks for a whole stretch up front (TLB
        occupancy caps, walker reservations, PRMB merge slots) and only
        falls back to per-event stepping at the returned boundary.  The
        answer is a pure function of the weight registry — memoized
        through the :attr:`version`-validated quota cache, so repeated
        burn-down queries inside one epoch cost two dict lookups.

        Two deliberate scope limits, handled by the enforcement sites:

        * The admitted span ignores *work-conserving borrowing* — it is
          the span admitted against this tenant's own reservation alone.
          A work-conserving policy's caller may extend it with a global
          free-capacity check (exactly what the TLB fill path and the
          walker steady-state loop do per event today).
        * Another tenant's :meth:`next_event_for` horizon is a *time*
          bound, not an occupancy bound; callers already clamp batched
          stretches to the horizon before asking for a burn-down.

        The trivial policy admits everything (no quotas to burn down).
        """
        quota = self.quota(asid, capacity)
        if quota is None:
            return demand
        room = quota - occupancy
        if room <= 0:
            return 0
        return demand if demand < room else room

    # -- event horizon -------------------------------------------------- #

    def next_event_for(self, asid: int, cycle: float) -> float:
        """Next cycle at which this policy's answers for ``asid`` can
        change *of the policy's own accord*.

        The engine's contended batched path never extends a bulk segment
        past this cycle, re-consulting the policy there; the event-driven
        multi-tenant scheduler treats it the same way.  The built-in
        policies' quotas depend only on the tenant registry — never on
        time — so they report ``inf`` and segments are bounded by walk
        completions alone.  A time-varying policy (periodic weight
        rebalancing, SLO-driven boosts) overrides this to its next
        transition cycle.  Occupancy-driven changes (a tenant's own
        merges or fills approaching its cap) are accounted for by the
        enforcement sites directly and need not be reported here.
        """
        return float("inf")

    # -- closed-form quota trajectory ------------------------------------ #

    def rebalance_horizon(self, asid: int, cycle: float) -> float:
        """Next cycle at which this tenant's *quota itself* can change.

        Strictly later than (or equal to) :meth:`next_event_for`: the
        event horizon is conservative — it covers every answer the policy
        gives, including arbitration-turn bookkeeping that leaves quotas
        untouched — while the rebalance horizon covers only the admitted
        quota.  The mixed-window miss-phase planner
        (:meth:`repro.core.calendar.CompletionCalendar.plan_window`) may
        therefore batch a window *across* a finite event horizon when the
        rebalance horizon proves no quota change lands inside it.

        The built-in policies' quotas are pure functions of the tenant
        registry, and registry mutations are synchronous epoch events
        (:attr:`version` bumps between bursts), never time events — so
        they report ``inf``.  A time-varying policy (periodic weight
        rebalancing, SLO-driven boosts) must override this to its next
        scheduled quota transition.
        """
        return float("inf")

    def admitted_segments(
        self, asid: int, start: float, end: float, capacity: int
    ) -> Tuple[Tuple[float, float, Optional[int]], ...]:
        """Piecewise-constant admitted-quota trajectory over ``[start,
        end)`` for a ``capacity``-unit structure.

        Each ``(seg_start, seg_end, quota)`` segment certifies the
        tenant's admitted quota is constant on it — the closed form
        :meth:`burn_down` answers only pointwise.  Coverage may stop
        short of ``end``: segments never extend past
        :meth:`rebalance_horizon`, and a caller finding a gap must fall
        back to per-event stepping (the planner treats partial coverage
        as a decline).  The built-in policies are time-invariant, so one
        segment spans the whole request; a time-varying override must
        enumerate its planned transitions with their per-segment quotas.
        """
        if end <= start:
            return ()
        horizon = self.rebalance_horizon(asid, start)
        stop = end if end < horizon else horizon
        if stop <= start:
            return ()
        return ((start, stop, self.quota(asid, capacity)),)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tenants={self._weights})"


class FullShare(SharePolicy):
    """Every structure fully shared — the pre-QoS behaviour."""


class StaticPartition(SharePolicy):
    """Weight-proportional hard partitions of every shared structure.

    A tenant's quota is reserved for it exclusively: it can neither exceed
    its own share nor (because every other tenant is likewise capped)
    have its reservation stolen.  Strict isolation at the cost of idle
    reserved capacity.

    Quotas floor the proportional share, so a non-divisible split strands
    the remainder (3 equal tenants on 8 walkers get 2+2+2, leaving 2
    unusable) — deliberately mirroring way/bank-granular hardware
    partitions, which cannot apportion fractions either.  The stranded
    slack is exactly what the work-conserving ``weighted`` policy exists
    to reclaim.
    """

    kind = "static_partition"
    trivial = False
    work_conserving = False

    def share_of(self, asid: int) -> Optional[float]:
        total = sum(self._weights.values())
        if not total or asid not in self._weights:
            return None
        return self._weights[asid] / total

    def quota(self, asid: int, capacity: int) -> Optional[int]:
        cache = self._quota_cache
        key = (asid, capacity)
        if key in cache:
            return cache[key]
        share = self.share_of(asid)
        if share is None or capacity <= 0:
            value = None
        else:
            value = max(1, int(capacity * share))
        cache[key] = value
        return value


class WeightedShare(StaticPartition):
    """Weight-proportional quotas that bind only under pressure.

    Same quotas as :class:`StaticPartition`, but work-conserving: a tenant
    at its quota may keep growing into capacity no other tenant's unmet
    reservation is entitled to, and victim selection under pressure
    reclaims from over-quota tenants first.
    """

    kind = "weighted"
    work_conserving = True


_POLICY_CLASSES = {
    "full_share": FullShare,
    "static_partition": StaticPartition,
    "weighted": WeightedShare,
}


def make_share_policy(
    kind: str, weights: Optional[Dict[int, float]] = None
) -> SharePolicy:
    """Instantiate a share policy by name (:data:`SHARE_POLICIES`)."""
    try:
        cls = _POLICY_CLASSES[kind]
    except KeyError:
        raise ValueError(
            f"unknown QoS share policy {kind!r}; "
            f"choose from {', '.join(SHARE_POLICIES)}"
        ) from None
    return cls(weights)


# --------------------------------------------------------------------- #
# arbitration                                                            #
# --------------------------------------------------------------------- #


class Arbiter:
    """Schedules tenant tile pipelines onto the shared translation stack.

    :meth:`run` drives a list of stepwise tenant runs (duck-typed: each
    exposes ``done`` and ``advance() -> int``, the translation-request
    cost of the step just executed) to completion, deciding after every
    step whose pipeline the shared DMA front-end services next.

    The arbiters are *event-driven*: a run that additionally exposes
    ``advance_quiet(limit) -> int`` (see
    :meth:`repro.npu.simulator._TenantRun.advance_quiet`) is advanced to
    its next **interaction point** — the first tile step that must touch
    the shared walker pool, PRMB, TLB quotas or memory channels — in one
    closed-form stretch, instead of being stepped through every
    translation-slot quantum.  Quiet steps read and write only the run's
    private pipeline state, so each arbiter hoists them in a way that
    provably preserves its historical service order for the interacting
    steps (documented per arbiter); plain runs without ``advance_quiet``
    are scheduled exactly as before.
    """

    kind = "base"

    def run(self, runs: Sequence) -> None:
        """Advance every run to completion under this policy."""
        raise NotImplementedError

    def next_event_for(self, asid: int, cycle: float) -> float:
        """Next cycle at which this arbiter's service answer for ``asid``
        can change *of its own accord* (``inf`` for the built-ins, whose
        decisions are driven purely by run state, never by wall-clock
        cycles).  Mirrors :meth:`SharePolicy.next_event_for` so a future
        time-sliced arbiter can bound the event-driven core's stretches.
        """
        return float("inf")

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinArbiter(Arbiter):
    """Strict turns, one whole tile step each (the PR 2 default).

    Bursts from different tenants overlap in time, so walkers and memory
    channels see genuinely mixed traffic — the contention regime.

    Event-driven form: when a run's next steps are quiet, the whole
    stretch executes on its first turn and the run then *sits out* one
    rotation turn per remaining hoisted step.  Every interacting step
    therefore lands on exactly the rotation turn the one-step-per-turn
    schedule would have given it, and since quiet steps touch no shared
    state, the results are bit-identical to the historical arbiter.
    """

    kind = "round_robin"

    def run(self, runs: Sequence) -> None:
        pending = [run for run in runs if not run.done]
        owed: Dict[int, int] = {}
        while pending:
            for run in list(pending):
                # simlint: disable=det-hash-order -- id(run) is an opaque identity key for the owed-turns dict; it is only ever looked up, never ordered or iterated, so its value cannot affect scheduling order
                key = id(run)
                turns_owed = owed.get(key, 0)
                if turns_owed:
                    if turns_owed == 1:
                        del owed[key]
                        if run.done:
                            pending.remove(run)
                    else:
                        owed[key] = turns_owed - 1
                    continue
                quiet = getattr(run, "advance_quiet", None)
                executed = quiet() if quiet is not None else 0
                if not executed:
                    run.advance()
                    executed = 1
                if executed > 1:
                    owed[key] = executed - 1
                elif run.done:
                    pending.remove(run)


class PriorityArbiter(Arbiter):
    """Lower ASIDs run to completion first (strict time multiplexing).

    Later tenants inherit a polluted TLB/path-cache state but never
    overlap with earlier ones.  (Service is already sequential, so quiet
    stretches trivially preserve the order.)
    """

    kind = "priority"

    def run(self, runs: Sequence) -> None:
        for run in runs:
            quiet = getattr(run, "advance_quiet", None)
            while not run.done:
                if quiet is None or not quiet():
                    run.advance()


class WeightedQuantumArbiter(Arbiter):
    """Clock-ordered deficit round robin over translation-slot quanta.

    Every rotation credits each live tenant ``weight * quantum``
    translation slots.  Within the rotation the shared front-end always
    services the *eligible tenant whose pipeline clock is furthest
    behind* (each run's ``clock`` attribute), debiting the translation
    requests the step actually issued (a cached FAST-fidelity step debits
    one slot so progress is guaranteed).  A tenant whose credit is spent
    sits out the rest of the rotation, so a heavy tenant holds the
    front-end for weight-proportionally more slots.

    The min-clock service order matters beyond fairness: tenants simulate
    on private clocks against shared walker/memory-channel state, so an
    arbiter that lets one tenant's clock race ahead (as whole-tile-step
    round robin does when service rates diverge — exactly the regime
    share policies create) makes the laggard queue behind channel
    occupancy written at far-future cycles.  Two rules bound that skew:

    * service goes to the eligible tenant with the minimum clock, and
    * a tenant more than ``skew_window`` (a fraction of the laggard's
      elapsed clock, floored at ``skew_floor`` cycles) ahead of the
      laggard is ineligible even with credit; when nobody is eligible a
      new rotation refills every credit, so the laggard — by definition
      inside the window — always proceeds and deadlock is impossible.

    Without the window, unequal weights grow the clock gap without bound
    and the laggard's slowdown explodes through the shared channels
    (e.g. 2:1 weights on RNN-2 read as a 10x slowdown instead of the
    ~1.3x the weighted service split actually implies).  This is why the
    QoS fairness studies default to this arbiter.
    """

    kind = "weighted_quantum"

    def __init__(
        self,
        weights: Optional[Sequence[float]] = None,
        quantum: int = 2048,
        skew_window: float = 0.01,
        skew_floor: float = 20_000.0,
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if weights is not None and any(w <= 0 for w in weights):
            raise ValueError("arbitration weights must all be positive")
        if skew_window < 0 or skew_floor < 0:
            raise ValueError("skew_window and skew_floor cannot be negative")
        self.weights = list(weights) if weights is not None else None
        self.quantum = quantum
        self.skew_window = skew_window
        self.skew_floor = skew_floor

    def run(self, runs: Sequence) -> None:
        """Heap-ordered event loop over tenant clocks.

        The historical decision procedure — find the laggard, filter by
        credit and skew horizon, service the min-clock eligible tenant,
        debit, refill when nobody is eligible — is preserved decision for
        decision; what changed is how each decision is computed:

        * pending runs live in a lazily-invalidated min-heap keyed by
          ``(clock, index)``, so the laggard and the min-clock eligible
          tenant come off the heap top instead of O(n) scans (entries go
          stale when a run advances; a version counter skips them);
        * after servicing a tenant, service *stays* with it — without
          re-running the full decision — for as long as it holds credit
          and its clock remains strictly below every other pending
          tenant's: in that state it is the laggard (trivially inside
          its own skew horizon) and the unique min-clock eligible, so
          the reference procedure would pick it again.  Ties fall back
          to the full decision, whose ``(clock, index)`` heap order
          reproduces the reference's lowest-index tie-break.

        Both shortcuts reproduce the historical service sequence exactly
        (the decision-sequence unit tests and the bit-identical golden
        captures lock this in).
        """
        weights = self.weights or [1.0] * len(runs)
        if len(weights) != len(runs):
            raise ValueError(
                f"got {len(weights)} arbitration weights for {len(runs)} "
                f"tenants; pass exactly one positive weight per tenant"
            )
        deficit = [0.0] * len(runs)
        pending = [i for i, run in enumerate(runs) if not run.done]
        version = [0] * len(runs)
        heap = [(runs[i].clock, i, 0) for i in pending]
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop
        skew_floor = self.skew_floor
        skew_window = self.skew_window
        while pending:
            # -- one reference decision, off the heap ------------------- #
            while heap and heap[0][2] != version[heap[0][1]]:
                heappop(heap)
            laggard = heap[0][0]
            skew = skew_window * laggard
            horizon = laggard + (skew_floor if skew_floor > skew else skew)
            idx = -1
            parked = None
            while heap:
                clock, i, v = heap[0]
                if v != version[i]:
                    heappop(heap)
                    continue
                if clock > horizon:
                    break
                if deficit[i] > 0:
                    idx = i
                    break
                # Credit-exhausted tenant below the horizon: set it aside
                # so the next-lowest clock surfaces, restore afterwards.
                if parked is None:
                    parked = []
                parked.append(heappop(heap))
            if idx >= 0:
                # Consume idx's entry while it is still the heap top,
                # before the parked (lower-clock) entries come back.
                heappop(heap)
                version[idx] += 1
            if parked is not None:
                for entry in parked:
                    heappush(heap, entry)
            if idx < 0:
                for i in pending:
                    deficit[i] += weights[i] * self.quantum
                continue
            # -- service, staying with the strict laggard --------------- #
            while heap and heap[0][2] != version[heap[0][1]]:
                heappop(heap)
            others_min = heap[0][0] if heap else float("inf")
            run = runs[idx]
            credit = deficit[idx]
            while True:
                cost = run.advance()
                credit -= cost if cost and cost > 1 else 1
                if run.done:
                    credit = 0.0
                    pending.remove(idx)
                    break
                if credit <= 0 or run.clock >= others_min:
                    break
            deficit[idx] = credit
            if not run.done:
                heappush(heap, (run.clock, idx, version[idx]))


def make_arbiter(
    kind: str,
    weights: Optional[Sequence[float]] = None,
    quantum: int = 2048,
) -> Arbiter:
    """Instantiate an arbiter by name (:data:`ARBITRATION_POLICIES`).

    ``weights``/``quantum`` configure ``weighted_quantum`` and are
    ignored by the other policies.
    """
    if kind == "round_robin":
        return RoundRobinArbiter()
    if kind == "priority":
        return PriorityArbiter()
    if kind == "weighted_quantum":
        return WeightedQuantumArbiter(weights=weights, quantum=quantum)
    raise ValueError(
        f"unknown arbitration policy {kind!r}; "
        f"choose from {', '.join(ARBITRATION_POLICIES)}"
    )
