"""MMU assemblies: oracle, baseline IOMMU, and NeuMMU.

An :class:`MMU` wires together the TLB, pending-translation scoreboard,
walker pool, PRMBs and path caches into the translation state machine the
engine drives.  Three canonical configurations reproduce the paper's design
points:

* :func:`oracle_config` — every translation hits with zero latency; the
  normalization baseline for all "normalized performance" results.
* :func:`baseline_iommu_config` — Table I: 2048-entry IOTLB, 8 walkers,
  no PRMB, no MMU cache.
* :func:`neummu_config` — Section IV: 128 walkers, 32 PRMB slots per
  walker, one TPreg per walker.

The ``translate`` protocol: the engine calls :meth:`MMU.translate` with the
request's VPN and issue cycle; the result is either the cycle at which the
translated request is released to the memory system, or ``None`` with a
retry cycle when the request must stall (all walkers and merge capacity
busy — "any further translation requests are blocked until the translation
bandwidth is available", Section IV-A).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

if TYPE_CHECKING:  # runtime imports are deferred to avoid module cycles
    from ..memory.dram import MainMemory
    from ..memory.tiering import LocalMemoryTier
    from .engine import BurstResult, Transaction
    from .walk_info import WalkInfo

from ..memory.address import ASID_SHIFT, MAX_ASID, PAGE_SIZE_4K, page_offset_bits
from ..memory.page_table import PageTable
from .mmu_cache import (
    NullPathCache,
    PathCache,
    TranslationPathCache,
    UnifiedPageTableCache,
)
from .prefetch import NextPagePrefetcher
from .pts import PendingTranslationScoreboard
from .ptw import WalkerPool
from .qos import SHARE_POLICIES, SharePolicy, make_share_policy
from .stats import RunSummary, TranslationStats
from .tlb import TLB, TwoLevelTLB
from .walk_info import WalkResolver

#: Valid ``path_cache`` settings.
PATH_CACHE_KINDS = ("none", "tpreg", "tpc", "uptc")

#: Valid ``engine_mode`` settings: ``columnar`` is the structure-of-arrays
#: fast representation; ``reference`` is the per-object golden path the
#: columnar engine is bit-identical to (the PR 1/PR 4 switch pattern).
ENGINE_MODES = ("columnar", "reference")


def default_engine_mode() -> str:
    """Engine mode from ``NEUMMU_ENGINE`` (defaults to ``columnar``).

    Invalid values raise here — at config construction — rather than deep
    inside a run, so a typo'd environment variable fails loudly.
    """
    import os

    mode = os.environ.get("NEUMMU_ENGINE", "columnar")
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"NEUMMU_ENGINE must be one of {ENGINE_MODES}, got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class MMUConfig:
    """Knobs spanning the paper's whole design space (Sections III–VI)."""

    name: str = "custom"
    #: Every translation free — the paper's normalization target.
    oracle: bool = False
    tlb_entries: int = 2048
    tlb_hit_latency: int = 5
    n_walkers: int = 8
    #: PRMB mergeable slots per walker; 0 disables merging entirely.
    prmb_slots: int = 0
    walk_latency_per_level: int = 100
    #: One of :data:`PATH_CACHE_KINDS`.
    path_cache: str = "none"
    #: Capacity for the shared "tpc"/"uptc" options.
    path_cache_entries: int = 16
    page_size: int = PAGE_SIZE_4K
    #: When positive, a small L1 TLB fronts the main TLB (the GPU-style
    #: multi-level hierarchy of Section III-C's strawman).
    l1_tlb_entries: int = 0
    l1_tlb_latency: int = 1
    #: When positive, a next-page stream prefetcher issues up to this many
    #: speculative walks per demand miss (extension study; see
    #: :mod:`repro.core.prefetch`).
    prefetch_depth: int = 0
    #: Tenant share policy for the shared translation structures — one of
    #: :data:`~repro.core.qos.SHARE_POLICIES`.  ``full_share`` (the
    #: default) is bit-identical to the pre-QoS engine.
    qos: str = "full_share"
    #: Transaction representation the engine runs on — one of
    #: :data:`ENGINE_MODES`.  ``columnar`` threads structure-of-arrays
    #: streams through DMA/TLB/PRMB/engine; ``reference`` keeps the
    #: per-object path as the bit-identical golden reference.  Defaults
    #: from the ``NEUMMU_ENGINE`` environment variable.
    engine_mode: str = field(default_factory=default_engine_mode)

    def __post_init__(self) -> None:
        if self.engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {ENGINE_MODES}, got {self.engine_mode!r}"
            )
        if self.path_cache not in PATH_CACHE_KINDS:
            raise ValueError(
                f"path_cache must be one of {PATH_CACHE_KINDS}, got {self.path_cache!r}"
            )
        if self.qos not in SHARE_POLICIES:
            raise ValueError(
                f"unknown QoS share policy {self.qos!r}; "
                f"choose from {', '.join(SHARE_POLICIES)}"
            )
        if not self.oracle:
            if self.tlb_entries <= 0:
                raise ValueError("tlb_entries must be positive")
            if self.tlb_hit_latency < 0:
                raise ValueError("tlb_hit_latency cannot be negative")
            if self.l1_tlb_latency < 0:
                raise ValueError("l1_tlb_latency cannot be negative")
            if self.n_walkers <= 0:
                raise ValueError("n_walkers must be positive")
            if self.walk_latency_per_level <= 0:
                raise ValueError("walk_latency_per_level must be positive")
            if self.prmb_slots < 0:
                raise ValueError("prmb_slots cannot be negative")
            if self.l1_tlb_entries < 0 or self.prefetch_depth < 0:
                raise ValueError("l1_tlb_entries/prefetch_depth cannot be negative")

    def with_page_size(self, page_size: int) -> "MMUConfig":
        """Same design point at a different page size (Section VI-A)."""
        return replace(self, page_size=page_size)


def oracle_config(page_size: int = PAGE_SIZE_4K) -> MMUConfig:
    """An oracular MMU: all translations hit with no added latency."""
    return MMUConfig(name="oracle", oracle=True, page_size=page_size)


def baseline_iommu_config(
    tlb_entries: int = 2048,
    n_walkers: int = 8,
    page_size: int = PAGE_SIZE_4K,
) -> MMUConfig:
    """The GPU-centric strawman of Figure 8 (Table I parameters)."""
    return MMUConfig(
        name="iommu",
        tlb_entries=tlb_entries,
        n_walkers=n_walkers,
        prmb_slots=0,
        path_cache="none",
        page_size=page_size,
    )


def neummu_config(
    n_walkers: int = 128,
    prmb_slots: int = 32,
    tlb_entries: int = 2048,
    path_cache: str = "tpreg",
    page_size: int = PAGE_SIZE_4K,
) -> MMUConfig:
    """The proposed design: PRMB + many walkers + TPreg (Section IV-D)."""
    return MMUConfig(
        name="neummu",
        tlb_entries=tlb_entries,
        n_walkers=n_walkers,
        prmb_slots=prmb_slots,
        path_cache=path_cache,
        page_size=page_size,
    )


class TranslationFault(Exception):
    """A translation reached a non-present page and no fault handler ran."""

    def __init__(self, vpn: int) -> None:
        super().__init__(f"page fault translating VPN 0x{vpn:x}")
        self.vpn = vpn


class MMU:
    """The translation state machine for one NPU device.

    An MMU serves one or more address-space *contexts*, each identified by
    an ASID and owning its own page table (wrapped in a per-context
    :class:`~repro.core.walk_info.WalkResolver`).  The constructor's
    ``page_table`` becomes context 0 — the implicit single-tenant default;
    multi-tenant callers pass ``page_table=None`` and attach each tenant
    with :meth:`register_context`.  All translation state shared between
    contexts (TLB, PTS, TPreg/TPC/UPTC) is ASID-tagged, so contexts can
    never observe each other's translations; :meth:`shootdown` and
    :meth:`destroy_context` are the invalidation primitives page migration
    and context teardown use.
    """

    def __init__(
        self,
        config: MMUConfig,
        page_table: Optional[PageTable],
        share_policy: Optional[SharePolicy] = None,
    ) -> None:
        self.config = config
        #: The QoS layer's tenant share policy; every shared structure
        #: below consults it.  Defaults to the policy named by
        #: ``config.qos`` (``full_share`` unless overridden).
        self.share_policy = (
            share_policy if share_policy is not None else make_share_policy(config.qos)
        )
        self._resolvers: Dict[int, WalkResolver] = {}
        self.resolver: Optional[WalkResolver] = None
        if page_table is not None:
            self.register_context(0, page_table)
        #: Walkers whose in-flight walk was shot down: the walk still
        #: completes (freeing the walker) but must not fill the TLB with
        #: the stale PFN.  Keyed by walker id so a *fresh* post-shootdown
        #: walk for the same page fills normally.
        self._poisoned_walkers: Set[int] = set()
        #: Optional demand-paged memory tier
        #: (:class:`~repro.memory.tiering.LocalMemoryTier`) whose fault
        #: handler drives page migration through this MMU's shootdown
        #: path.  Set by :meth:`LocalMemoryTier.bind`.
        self.paging_tier: Optional[LocalMemoryTier] = None
        self.stats = TranslationStats()
        self._vpn_shift = page_offset_bits(config.page_size)
        self._tlb_latency = config.tlb_hit_latency
        self._prmb_slots = config.prmb_slots

        #: All four are None only in oracle mode (free translation); the
        #: non-oracle invariant — tlb/pts/pool present — is asserted by
        #: the hot paths that rely on it.
        self.tlb: Optional[Union[TLB, TwoLevelTLB]]
        self.pts: Optional[PendingTranslationScoreboard]
        self.pool: Optional[WalkerPool]
        self.prefetcher: Optional[NextPagePrefetcher]
        if config.oracle:
            self.tlb = None
            self.pts = None
            self.pool = None
            self.prefetcher = None
            self._two_level = False
            return

        self._two_level = config.l1_tlb_entries > 0
        if self._two_level:
            self.tlb = TwoLevelTLB(
                l1_entries=config.l1_tlb_entries,
                l2_entries=config.tlb_entries,
                l1_latency=config.l1_tlb_latency,
                l2_latency=config.tlb_hit_latency,
                policy=self.share_policy,
            )
        else:
            self.tlb = TLB(config.tlb_entries, policy=self.share_policy)
        self.prefetcher = (
            NextPagePrefetcher(config.prefetch_depth)
            if config.prefetch_depth > 0
            else None
        )
        shared_cache: Optional[PathCache] = None
        use_tpreg = False
        if config.path_cache == "tpreg":
            use_tpreg = True
        elif config.path_cache == "tpc":
            shared_cache = TranslationPathCache(config.path_cache_entries)
        elif config.path_cache == "uptc":
            shared_cache = UnifiedPageTableCache(config.path_cache_entries)
        self.pool = WalkerPool(
            n_walkers=config.n_walkers,
            walk_latency_per_level=config.walk_latency_per_level,
            prmb_slots=config.prmb_slots,
            use_tpreg=use_tpreg,
            shared_path_cache=shared_cache,
            policy=self.share_policy,
        )
        self.pts = PendingTranslationScoreboard(config.n_walkers)

    # ------------------------------------------------------------------ #
    # address-space contexts                                             #
    # ------------------------------------------------------------------ #

    def register_context(
        self,
        asid: int,
        page_table: PageTable,
        page_size: Optional[int] = None,
        weight: float = 1.0,
    ) -> WalkResolver:
        """Attach an address space: ``asid`` translates via ``page_table``.

        Returns the context's resolver.  ASID 0 is the single-tenant
        default the constructor registers automatically (when given a page
        table) and is also exposed as :attr:`resolver`.  ``weight`` is the
        context's share weight under the MMU's QoS policy (ignored by
        ``full_share``).
        """
        if not 0 <= asid <= MAX_ASID:
            raise ValueError(f"ASID {asid} outside [0, {MAX_ASID}]")
        if asid in self._resolvers:
            raise ValueError(f"ASID {asid} already has a registered context")
        resolver = WalkResolver(
            page_table, page_size or self.config.page_size, asid=asid
        )
        self._resolvers[asid] = resolver
        self.share_policy.register(asid, weight)
        if asid == 0:
            self.resolver = resolver
        return resolver

    def replace_resolver(self, resolver: WalkResolver, asid: int = 0) -> None:
        """Swap a registered context's resolver (e.g. for a pre-warmed
        memoization cache) — the one supported way to write
        :attr:`resolver`, keeping it in sync with the context table."""
        if asid not in self._resolvers:
            raise KeyError(f"no context registered for ASID {asid}")
        self._resolvers[asid] = resolver
        if asid == 0:
            self.resolver = resolver

    def resolver_for(self, asid: int = 0) -> WalkResolver:
        """The registered context's walk resolver (KeyError when absent)."""
        try:
            return self._resolvers[asid]
        except KeyError:
            raise KeyError(
                f"no context registered for ASID {asid}; call register_context"
            ) from None

    @property
    def contexts(self) -> List[int]:
        """ASIDs with a registered context, in registration order."""
        return list(self._resolvers)

    def shootdown(self, vpn: int, asid: int = 0) -> None:
        """Invalidate one page's translation everywhere it can be cached.

        The TLB-shootdown primitive of page migration and unmapping: drops
        the (ASID, VPN) from the TLB hierarchy and the context's memoized
        walk, so the next access re-walks the (re)mapped page table.  A
        walk already in flight for the page is *poisoned*: it is removed
        from the scoreboard immediately (no later request can merge into
        it) and its eventual completion frees the walker without filling
        the TLB — while a fresh post-shootdown walk for the same page
        proceeds normally.  Safe to call for pages that were never cached.
        """
        resolver = self._resolvers.get(asid)
        if resolver is not None:
            resolver.invalidate(vpn)
        if self.tlb is not None:
            self.tlb.invalidate(vpn, asid)
        if self.pts is not None:
            walkers = self.pts.peek(vpn, asid)
            if walkers:
                for walker in list(walkers):
                    self.pts.release(vpn, walker, asid)
                    self._poisoned_walkers.add(walker)

    def destroy_context(self, asid: int) -> None:
        """Tear down a context: shoot down all its cached translation state.

        In-flight walks are poisoned page by page (scoreboard entries
        removed, TLB fills suppressed), so teardown is safe at any time —
        completing a walk for a dead address space can never resurrect its
        translations, and other contexts' walks are untouched.
        """
        if asid not in self._resolvers:
            raise KeyError(f"no context registered for ASID {asid}")
        if self.pts is not None:
            for vpn in self.pts.vpns_for(asid):
                self.shootdown(vpn, asid)
        if self.tlb is not None:
            self.tlb.invalidate_asid(asid)
        if self.pool is not None:
            self.pool.shootdown_asid(asid)
        if self.prefetcher is not None:
            self.prefetcher.drop_asid(asid)
        del self._resolvers[asid]
        self.share_policy.unregister(asid)
        if asid == 0:
            self.resolver = None

    # ------------------------------------------------------------------ #
    # hot path                                                           #
    # ------------------------------------------------------------------ #

    def vpn_of(self, va: int) -> int:
        """Virtual page number of ``va`` at this MMU's page size."""
        return va >> self._vpn_shift

    def tlb_contains(self, vpn: int, asid: int = 0) -> bool:
        """Non-destructive TLB probe (used by the prefetcher)."""
        if self.tlb is None:
            return True
        return self.tlb.contains(vpn, asid)

    def translate(
        self, vpn: int, cycle: float, asid: int = 0
    ) -> Tuple[Optional[float], float]:
        """Attempt one translation for context ``asid`` at ``cycle``.

        Returns ``(ready_cycle, 0.0)`` on success — the cycle the translated
        request is released toward memory — or ``(None, retry_cycle)`` when
        the request blocks and must be retried at ``retry_cycle`` (after
        calling :meth:`process_completions`).

        Raises :class:`TranslationFault` when the page is unmapped; demand
        paging callers catch this and invoke their fault path.
        """
        stats = self.stats
        stats.requests += 1
        if asid:
            resolver = self.resolver_for(asid)
        else:
            resolver = self.resolver
            if resolver is None:
                resolver = self.resolver_for(0)  # the documented KeyError
        if self.config.oracle:
            # Translation is free, but a non-present page still faults —
            # the oracle of the demand-paging study (Fig. 16) pays the same
            # migrations, just zero translation latency.
            if resolver.resolve_vpn(vpn) is None:
                stats.requests -= 1
                stats.faults += 1
                raise TranslationFault(vpn)
            return (cycle, 0.0)

        tlb, pts, pool = self.tlb, self.pts, self.pool
        assert tlb is not None and pts is not None and pool is not None
        pfn: Optional[int]
        if self._two_level:
            assert isinstance(tlb, TwoLevelTLB)
            pfn, hit_latency = tlb.lookup(vpn, asid)
        else:
            assert not isinstance(tlb, TwoLevelTLB)
            pfn = tlb.lookup(vpn, asid)
            hit_latency = self._tlb_latency
        if pfn is not None:
            stats.tlb_hits += 1
            if self.prefetcher is not None:
                self.prefetcher.on_demand_hit(vpn, asid)
            return (cycle + hit_latency, 0.0)

        walkers = pts.lookup(vpn, asid)
        redundant = walkers is not None
        if redundant and self.prefetcher is not None:
            # The page's walk is already in flight — possibly ours.
            self.prefetcher.on_demand_hit(vpn, asid)
        if walkers is not None and self._prmb_slots and pool.can_merge(asid):
            for walker in walkers:
                ready = pool.merge_into(walker)
                if ready >= 0:
                    stats.merges += 1
                    return (ready, 0.0)

        if pool.can_start(asid):
            walk = resolver.resolve_vpn(vpn)
            if walk is None:
                stats.requests -= 1  # the retried request will recount
                stats.faults += 1
                raise TranslationFault(vpn)
            if redundant:
                stats.redundant_walk_requests += 1
            walker, completion = self.start_walk(walk, cycle, redundant)
            if self.prefetcher is not None and not redundant:
                self.prefetcher.on_demand_walk(self, vpn, cycle, asid)
            return (completion, 0.0)

        # Fully blocked: no merge capacity and no walker (or the context's
        # QoS quotas are exhausted).  Retry when the earliest walk that can
        # unblock *this* context completes.  The retried request will be
        # recounted, so back out this attempt from the request tally.
        stats.requests -= 1
        retry = pool.earliest_retry_for(asid)
        stats.stall_events += 1
        stats.stall_cycles += max(0.0, retry - cycle)
        return (None, retry)

    def start_walk(
        self, walk: WalkInfo, cycle: float, redundant: bool = False
    ) -> Tuple[int, float]:
        """Dispatch a walk and register it with the scoreboard."""
        pool, pts = self.pool, self.pts
        assert pool is not None and pts is not None  # walks never start in oracle mode
        walker, completion = pool.start_walk(walk, cycle, redundant)
        pts.register(walk.vpn, walker, walk.asid)
        return walker, completion

    def process_completions(self, cycle: float) -> None:
        """Retire every walk completing at or before ``cycle``.

        This is the walk-retirement hot loop (one iteration per finished
        walk, millions per run), so the walker-pool bookkeeping of
        :meth:`WalkerPool.complete_until` is fused inline rather than
        consumed through the generator — same operations in the same
        order, without the per-completion suspend/resume and record
        allocation (``tests/test_pts_prmb_ptw.py`` pins the two paths to
        each other).
        """
        if self.config.oracle:
            return
        pool, pts, tlb = self.pool, self.pts, self.tlb
        assert pool is not None and pts is not None and tlb is not None
        heap = pool.heap
        if not heap or heap[0][0] > cycle:
            return
        poisoned = self._poisoned_walkers
        pts_by_vpn = pts._by_vpn
        heappop = heapq.heappop
        walk_of = pool._walk_of
        vpn_of = pool._vpn
        buffers = pool._buffers
        free = pool._free
        tpregs = pool._tpregs
        shared_cache = None if pool._no_path_cache else pool._shared_cache
        policied = pool._policy is not None
        while heap and heap[0][0] <= cycle:
            _, _, walker = heappop(heap)
            walk = walk_of[walker]
            if tpregs is not None:
                tpregs[walker].fill(walk)
            elif shared_cache is not None:
                shared_cache.fill(walk)
            buf = buffers[walker]
            merged = buf._occupied
            buf._occupied = 0
            vpn_of[walker] = None
            walk_of[walker] = None
            if policied:
                busy = pool._busy_by_asid.get(walk.asid)
                if busy is not None:
                    busy.discard(walker)
                if merged:
                    pool._prmb_occ[walk.asid] -= merged
            free.append(walker)
            if poisoned and walker in poisoned:
                # Shot down mid-walk: the scoreboard entry was already
                # released; free the walker without filling the TLB.
                poisoned.discard(walker)
                continue
            # Inlined PTS.release (the walker is always registered here).
            key = walk.vpn | (walk.asid << ASID_SHIFT)
            walkers = pts_by_vpn[key]
            walkers.remove(walker)
            if not walkers:
                del pts_by_vpn[key]
            pts._count -= 1
            tlb.insert(walk.vpn, walk.pfn, walk.asid)

    def earliest_event(self) -> float:
        """Next cycle at which MMU state changes (``inf`` when idle)."""
        if self.config.oracle:
            return float("inf")
        assert self.pool is not None
        return self.pool.earliest_completion()

    def drain(self) -> None:
        """Retire all in-flight walks (end of run)."""
        self.process_completions(float("inf"))

    # ------------------------------------------------------------------ #
    # reporting                                                          #
    # ------------------------------------------------------------------ #

    def summary(self) -> RunSummary:
        """Flattened counter view across all components."""
        stats = self.stats
        if self.config.oracle:
            return RunSummary(
                requests=stats.requests,
                tlb_hits=stats.requests,
                tlb_hit_rate=1.0,
                merges=0,
                walks=0,
                redundant_walks=0,
                walk_level_accesses=0,
                walk_levels_skipped=0,
                stall_events=0,
                stall_cycles=0.0,
                faults=stats.faults,
                tpreg_l4_rate=0.0,
                tpreg_l3_rate=0.0,
                tpreg_l2_rate=0.0,
            )
        assert self.pool is not None and self.tlb is not None
        tpreg = self.pool.collect_tpreg_stats()
        l4, l3, l2 = tpreg.hit_rates()
        return RunSummary(
            requests=stats.requests,
            tlb_hits=stats.tlb_hits,
            tlb_hit_rate=self.tlb.hit_rate,
            merges=stats.merges,
            walks=self.pool.stats.walks,
            redundant_walks=self.pool.stats.redundant_walks,
            walk_level_accesses=self.pool.stats.level_accesses,
            walk_levels_skipped=self.pool.stats.levels_skipped,
            stall_events=stats.stall_events,
            stall_cycles=stats.stall_cycles,
            faults=stats.faults,
            tpreg_l4_rate=l4,
            tpreg_l3_rate=l3,
            tpreg_l2_rate=l2,
            prefetches=self.prefetcher.stats.issued if self.prefetcher else 0,
            prefetch_accuracy=(
                self.prefetcher.stats.accuracy if self.prefetcher else 0.0
            ),
        )


# --------------------------------------------------------------------- #
# multi-tenant sharing                                                  #
# --------------------------------------------------------------------- #


@dataclass
class TenantUsage:
    """Per-tenant share of a :class:`SharedMMU`'s translation activity.

    Counters are exact per-tenant attributions: bursts run to completion,
    so diffing the global counters around each tenant burst assigns every
    request/merge/walk/stall to the context that issued it.
    """

    asid: int
    bursts: int = 0
    transactions: int = 0
    bytes_moved: int = 0
    #: Sum of this tenant's burst memory-phase durations (overlapping
    #: tenants can sum past wall-clock — that is the contention signal).
    busy_cycles: float = 0.0
    requests: int = 0
    tlb_hits: int = 0
    merges: int = 0
    walks: int = 0
    redundant_walks: int = 0
    walk_level_accesses: int = 0
    stall_events: int = 0
    stall_cycles: float = 0.0
    faults: int = 0

    @property
    def tlb_hit_rate(self) -> float:
        """Fraction of this tenant's requests served by the shared TLB."""
        return self.tlb_hits / self.requests if self.requests else 0.0


class SharedMMU:
    """One MMU, walker pool and memory system serving several tenants.

    The multi-tenant regime of the ROADMAP's scale-out serving scenario:
    each tenant model owns a private address space (its own page table,
    registered under its ASID) but *contends* with every other tenant for
    the shared TLB capacity, PTS/walker pool, PRMB slots and memory
    bandwidth.  :meth:`run_bursts` routes one tenant's DMA bursts through
    the shared engine and attributes the translation activity to that
    tenant, giving the per-tenant contention statistics the isolated
    single-tenant runs can then be compared against.
    """

    def __init__(
        self,
        config: MMUConfig,
        memory: Optional[MainMemory] = None,
        issue_interval: float = 1.0,
        share_policy: Optional[SharePolicy] = None,
    ) -> None:
        from ..memory.dram import MainMemory, MemoryConfig
        from .engine import TranslationEngine  # deferred: engine imports mmu

        self.config = config
        self.mmu = MMU(config, page_table=None, share_policy=share_policy)
        self.memory = memory if memory is not None else MainMemory(MemoryConfig())
        self.engine = TranslationEngine(
            self.mmu, self.memory, issue_interval=issue_interval
        )
        self.usage: Dict[int, TenantUsage] = {}
        self._contention_epoch = 0

    @property
    def share_policy(self) -> SharePolicy:
        """The QoS share policy every shared structure consults."""
        return self.mmu.share_policy

    @property
    def paging_tier(self) -> Optional[LocalMemoryTier]:
        """The attached demand-paged memory tier (None without paging)."""
        return self.mmu.paging_tier

    def attach_paging(self, tier: LocalMemoryTier) -> None:
        """Wire a :class:`~repro.memory.tiering.LocalMemoryTier` in.

        Binds the tier to this MMU (evictions route through the
        ASID-tagged shootdown path) and installs its fault handler on
        the shared engine, so every tenant's page faults migrate through
        the one shared fabric.  Idempotent for the same tier.
        """
        tier.bind(self.mmu)
        self.engine.fault_handler = tier.handle_fault

    @property
    def contention_epoch(self) -> int:
        """Monotone fingerprint of the contention regime.

        Bumped whenever the set of active tenants, a tenant's weight, or
        the share-policy state changes (:meth:`add_tenant`,
        :meth:`remove_tenant`, :meth:`set_tenant_weight`,
        :meth:`bump_contention_epoch`).  FAST-fidelity tile timings
        converge *within* one epoch: tenant runs key their converged
        timing caches on it and drop them when it moves, since a timing
        measured against yesterday's tenant mix says nothing about
        today's (``tests/test_multi_tenant_fidelity.py``).
        """
        return self._contention_epoch

    def bump_contention_epoch(self) -> None:
        """Invalidate tenants' converged FAST timings (regime change).

        Called automatically by the tenant-registry mutators; call it
        directly after mutating share-policy state through other means.
        """
        self._contention_epoch += 1

    def add_tenant(
        self, asid: int, page_table: PageTable, weight: float = 1.0
    ) -> TenantUsage:
        """Register a tenant context; returns its usage accumulator.

        ``weight`` is the tenant's share weight under the MMU's QoS policy
        (ignored by ``full_share``).
        """
        self.mmu.register_context(asid, page_table, weight=weight)
        self.usage[asid] = TenantUsage(asid=asid)
        self.bump_contention_epoch()
        return self.usage[asid]

    def set_tenant_weight(self, asid: int, weight: float) -> None:
        """Re-weight a registered tenant's QoS share."""
        if asid not in self.mmu._resolvers:
            raise KeyError(f"no tenant registered for ASID {asid}")
        self.mmu.share_policy.set_weight(asid, weight)
        self.bump_contention_epoch()

    def remove_tenant(self, asid: int) -> TenantUsage:
        """Tear down one tenant's context without disturbing the others.

        The departing tenant's in-flight walks are poisoned in place (see
        :meth:`MMU.destroy_context`) rather than drained, so the remaining
        tenants' walk timing and contention are unaffected.  The tenant's
        usage record is returned (and kept readable) so its statistics
        survive teardown.
        """
        self.mmu.destroy_context(asid)
        self.bump_contention_epoch()
        return self.usage[asid]

    @property
    def tenants(self) -> List[int]:
        """*Currently registered* tenant ASIDs, in registration order.

        Removed tenants drop out of this list (their usage records remain
        readable in :attr:`usage`).
        """
        return [asid for asid in self.usage if asid in self.mmu._resolvers]

    def run_bursts(
        self,
        asid: int,
        bursts: Sequence[Sequence[Transaction]],
        start_cycle: float,
    ) -> Tuple[List[BurstResult], float]:
        """Run one tenant's back-to-back bursts through the shared engine.

        Returns ``(burst_results, data_end_cycle)`` exactly like
        :meth:`~repro.core.engine.TranslationEngine.run_bursts`, while
        accumulating the translation-counter deltas into the tenant's
        :class:`TenantUsage`.
        """
        usage = self.usage[asid]
        stats = self.mmu.stats
        pool_stats = self.mmu.pool.stats if self.mmu.pool is not None else None
        before = (
            stats.requests,
            stats.tlb_hits,
            stats.merges,
            stats.stall_events,
            stats.stall_cycles,
            stats.faults,
        )
        walks_before = (
            (pool_stats.walks, pool_stats.redundant_walks, pool_stats.level_accesses)
            if pool_stats is not None
            else (0, 0, 0)
        )
        results, data_end = self.engine.run_bursts(bursts, start_cycle, asid=asid)
        requests_delta = stats.requests - before[0]
        usage.requests += requests_delta
        if self.config.oracle:
            # RunSummary's oracle convention: every request is a free hit.
            usage.tlb_hits += requests_delta
        else:
            usage.tlb_hits += stats.tlb_hits - before[1]
        usage.merges += stats.merges - before[2]
        usage.stall_events += stats.stall_events - before[3]
        usage.stall_cycles += stats.stall_cycles - before[4]
        usage.faults += stats.faults - before[5]
        if pool_stats is not None:
            usage.walks += pool_stats.walks - walks_before[0]
            usage.redundant_walks += pool_stats.redundant_walks - walks_before[1]
            usage.walk_level_accesses += pool_stats.level_accesses - walks_before[2]
        for result in results:
            usage.bursts += 1
            usage.transactions += result.transactions
            usage.bytes_moved += result.bytes_moved
            usage.busy_cycles += result.duration
        return results, data_end
