"""MMU assemblies: oracle, baseline IOMMU, and NeuMMU.

An :class:`MMU` wires together the TLB, pending-translation scoreboard,
walker pool, PRMBs and path caches into the translation state machine the
engine drives.  Three canonical configurations reproduce the paper's design
points:

* :func:`oracle_config` — every translation hits with zero latency; the
  normalization baseline for all "normalized performance" results.
* :func:`baseline_iommu_config` — Table I: 2048-entry IOTLB, 8 walkers,
  no PRMB, no MMU cache.
* :func:`neummu_config` — Section IV: 128 walkers, 32 PRMB slots per
  walker, one TPreg per walker.

The ``translate`` protocol: the engine calls :meth:`MMU.translate` with the
request's VPN and issue cycle; the result is either the cycle at which the
translated request is released to the memory system, or ``None`` with a
retry cycle when the request must stall (all walkers and merge capacity
busy — "any further translation requests are blocked until the translation
bandwidth is available", Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..memory.address import PAGE_SIZE_4K, page_offset_bits
from ..memory.page_table import PageTable
from .mmu_cache import (
    NullPathCache,
    PathCache,
    TranslationPathCache,
    UnifiedPageTableCache,
)
from .pts import PendingTranslationScoreboard
from .ptw import WalkerPool
from .stats import RunSummary, TranslationStats
from .walk_info import WalkResolver

#: Valid ``path_cache`` settings.
PATH_CACHE_KINDS = ("none", "tpreg", "tpc", "uptc")


@dataclass(frozen=True)
class MMUConfig:
    """Knobs spanning the paper's whole design space (Sections III–VI)."""

    name: str = "custom"
    #: Every translation free — the paper's normalization target.
    oracle: bool = False
    tlb_entries: int = 2048
    tlb_hit_latency: int = 5
    n_walkers: int = 8
    #: PRMB mergeable slots per walker; 0 disables merging entirely.
    prmb_slots: int = 0
    walk_latency_per_level: int = 100
    #: One of :data:`PATH_CACHE_KINDS`.
    path_cache: str = "none"
    #: Capacity for the shared "tpc"/"uptc" options.
    path_cache_entries: int = 16
    page_size: int = PAGE_SIZE_4K
    #: When positive, a small L1 TLB fronts the main TLB (the GPU-style
    #: multi-level hierarchy of Section III-C's strawman).
    l1_tlb_entries: int = 0
    l1_tlb_latency: int = 1
    #: When positive, a next-page stream prefetcher issues up to this many
    #: speculative walks per demand miss (extension study; see
    #: :mod:`repro.core.prefetch`).
    prefetch_depth: int = 0

    def __post_init__(self) -> None:
        if self.path_cache not in PATH_CACHE_KINDS:
            raise ValueError(
                f"path_cache must be one of {PATH_CACHE_KINDS}, got {self.path_cache!r}"
            )
        if not self.oracle:
            if self.tlb_entries <= 0:
                raise ValueError("tlb_entries must be positive")
            if self.tlb_hit_latency < 0:
                raise ValueError("tlb_hit_latency cannot be negative")
            if self.l1_tlb_latency < 0:
                raise ValueError("l1_tlb_latency cannot be negative")
            if self.n_walkers <= 0:
                raise ValueError("n_walkers must be positive")
            if self.walk_latency_per_level <= 0:
                raise ValueError("walk_latency_per_level must be positive")
            if self.prmb_slots < 0:
                raise ValueError("prmb_slots cannot be negative")
            if self.l1_tlb_entries < 0 or self.prefetch_depth < 0:
                raise ValueError("l1_tlb_entries/prefetch_depth cannot be negative")

    def with_page_size(self, page_size: int) -> "MMUConfig":
        """Same design point at a different page size (Section VI-A)."""
        return replace(self, page_size=page_size)


def oracle_config(page_size: int = PAGE_SIZE_4K) -> MMUConfig:
    """An oracular MMU: all translations hit with no added latency."""
    return MMUConfig(name="oracle", oracle=True, page_size=page_size)


def baseline_iommu_config(
    tlb_entries: int = 2048,
    n_walkers: int = 8,
    page_size: int = PAGE_SIZE_4K,
) -> MMUConfig:
    """The GPU-centric strawman of Figure 8 (Table I parameters)."""
    return MMUConfig(
        name="iommu",
        tlb_entries=tlb_entries,
        n_walkers=n_walkers,
        prmb_slots=0,
        path_cache="none",
        page_size=page_size,
    )


def neummu_config(
    n_walkers: int = 128,
    prmb_slots: int = 32,
    tlb_entries: int = 2048,
    path_cache: str = "tpreg",
    page_size: int = PAGE_SIZE_4K,
) -> MMUConfig:
    """The proposed design: PRMB + many walkers + TPreg (Section IV-D)."""
    return MMUConfig(
        name="neummu",
        tlb_entries=tlb_entries,
        n_walkers=n_walkers,
        prmb_slots=prmb_slots,
        path_cache=path_cache,
        page_size=page_size,
    )


class TranslationFault(Exception):
    """A translation reached a non-present page and no fault handler ran."""

    def __init__(self, vpn: int):
        super().__init__(f"page fault translating VPN 0x{vpn:x}")
        self.vpn = vpn


class MMU:
    """The translation state machine for one NPU device."""

    def __init__(self, config: MMUConfig, page_table: PageTable):
        from .prefetch import NextPagePrefetcher
        from .tlb import TLB, TwoLevelTLB  # deferred to avoid doc-build cycles

        self.config = config
        self.resolver = WalkResolver(page_table, config.page_size)
        self.stats = TranslationStats()
        self._vpn_shift = page_offset_bits(config.page_size)
        self._tlb_latency = config.tlb_hit_latency
        self._prmb_slots = config.prmb_slots

        if config.oracle:
            self.tlb = None
            self.pts = None
            self.pool = None
            self.prefetcher = None
            self._two_level = False
            return

        self._two_level = config.l1_tlb_entries > 0
        if self._two_level:
            self.tlb = TwoLevelTLB(
                l1_entries=config.l1_tlb_entries,
                l2_entries=config.tlb_entries,
                l1_latency=config.l1_tlb_latency,
                l2_latency=config.tlb_hit_latency,
            )
        else:
            self.tlb = TLB(config.tlb_entries)
        self.prefetcher = (
            NextPagePrefetcher(config.prefetch_depth)
            if config.prefetch_depth > 0
            else None
        )
        shared_cache: Optional[PathCache] = None
        use_tpreg = False
        if config.path_cache == "tpreg":
            use_tpreg = True
        elif config.path_cache == "tpc":
            shared_cache = TranslationPathCache(config.path_cache_entries)
        elif config.path_cache == "uptc":
            shared_cache = UnifiedPageTableCache(config.path_cache_entries)
        self.pool = WalkerPool(
            n_walkers=config.n_walkers,
            walk_latency_per_level=config.walk_latency_per_level,
            prmb_slots=config.prmb_slots,
            use_tpreg=use_tpreg,
            shared_path_cache=shared_cache,
        )
        self.pts = PendingTranslationScoreboard(config.n_walkers)

    # ------------------------------------------------------------------ #
    # hot path                                                           #
    # ------------------------------------------------------------------ #

    def vpn_of(self, va: int) -> int:
        """Virtual page number of ``va`` at this MMU's page size."""
        return va >> self._vpn_shift

    def tlb_contains(self, vpn: int) -> bool:
        """Non-destructive TLB probe (used by the prefetcher)."""
        if self.tlb is None:
            return True
        return self.tlb.contains(vpn)

    def translate(self, vpn: int, cycle: float) -> Tuple[Optional[float], float]:
        """Attempt one translation at ``cycle``.

        Returns ``(ready_cycle, 0.0)`` on success — the cycle the translated
        request is released toward memory — or ``(None, retry_cycle)`` when
        the request blocks and must be retried at ``retry_cycle`` (after
        calling :meth:`process_completions`).

        Raises :class:`TranslationFault` when the page is unmapped; demand
        paging callers catch this and invoke their fault path.
        """
        stats = self.stats
        stats.requests += 1
        if self.config.oracle:
            # Translation is free, but a non-present page still faults —
            # the oracle of the demand-paging study (Fig. 16) pays the same
            # migrations, just zero translation latency.
            if self.resolver.resolve_vpn(vpn) is None:
                stats.requests -= 1
                stats.faults += 1
                raise TranslationFault(vpn)
            return (cycle, 0.0)

        if self._two_level:
            pfn, hit_latency = self.tlb.lookup(vpn)
        else:
            pfn = self.tlb.lookup(vpn)
            hit_latency = self._tlb_latency
        if pfn is not None:
            stats.tlb_hits += 1
            if self.prefetcher is not None:
                self.prefetcher.on_demand_hit(vpn)
            return (cycle + hit_latency, 0.0)

        walkers = self.pts.lookup(vpn)
        redundant = walkers is not None
        if redundant and self.prefetcher is not None:
            # The page's walk is already in flight — possibly ours.
            self.prefetcher.on_demand_hit(vpn)
        if walkers is not None and self._prmb_slots:
            for walker in walkers:
                ready = self.pool.merge_into(walker)
                if ready >= 0:
                    stats.merges += 1
                    return (ready, 0.0)

        if self.pool.free_walkers:
            walk = self.resolver.resolve_vpn(vpn)
            if walk is None:
                stats.requests -= 1  # the retried request will recount
                stats.faults += 1
                raise TranslationFault(vpn)
            if redundant:
                stats.redundant_walk_requests += 1
            walker, completion = self.start_walk(walk, cycle, redundant)
            if self.prefetcher is not None and not redundant:
                self.prefetcher.on_demand_walk(self, vpn, cycle)
            return (completion, 0.0)

        # Fully blocked: no merge capacity and no walker.  Retry when the
        # earliest in-flight walk completes.  The retried request will be
        # recounted, so back out this attempt from the request tally.
        stats.requests -= 1
        retry = self.pool.earliest_completion()
        stats.stall_events += 1
        stats.stall_cycles += max(0.0, retry - cycle)
        return (None, retry)

    def start_walk(
        self, walk, cycle: float, redundant: bool = False
    ) -> Tuple[int, float]:
        """Dispatch a walk and register it with the scoreboard."""
        walker, completion = self.pool.start_walk(walk, cycle, redundant)
        self.pts.register(walk.vpn, walker)
        return walker, completion

    def process_completions(self, cycle: float) -> None:
        """Retire every walk completing at or before ``cycle``."""
        if self.config.oracle:
            return
        heap = self.pool.heap
        if not heap or heap[0][0] > cycle:
            return
        for comp in self.pool.complete_until(cycle):
            self.pts.release(comp.walk.vpn, comp.walker)
            self.tlb.insert(comp.walk.vpn, comp.walk.pfn)

    def earliest_event(self) -> float:
        """Next cycle at which MMU state changes (``inf`` when idle)."""
        if self.config.oracle:
            return float("inf")
        return self.pool.earliest_completion()

    def drain(self) -> None:
        """Retire all in-flight walks (end of run)."""
        self.process_completions(float("inf"))

    # ------------------------------------------------------------------ #
    # reporting                                                          #
    # ------------------------------------------------------------------ #

    def summary(self) -> RunSummary:
        """Flattened counter view across all components."""
        stats = self.stats
        if self.config.oracle:
            return RunSummary(
                requests=stats.requests,
                tlb_hits=stats.requests,
                tlb_hit_rate=1.0,
                merges=0,
                walks=0,
                redundant_walks=0,
                walk_level_accesses=0,
                walk_levels_skipped=0,
                stall_events=0,
                stall_cycles=0.0,
                faults=stats.faults,
                tpreg_l4_rate=0.0,
                tpreg_l3_rate=0.0,
                tpreg_l2_rate=0.0,
            )
        tpreg = self.pool.collect_tpreg_stats()
        l4, l3, l2 = tpreg.hit_rates()
        return RunSummary(
            requests=stats.requests,
            tlb_hits=stats.tlb_hits,
            tlb_hit_rate=self.tlb.hit_rate,
            merges=stats.merges,
            walks=self.pool.stats.walks,
            redundant_walks=self.pool.stats.redundant_walks,
            walk_level_accesses=self.pool.stats.level_accesses,
            walk_levels_skipped=self.pool.stats.levels_skipped,
            stall_events=stats.stall_events,
            stall_cycles=stats.stall_cycles,
            faults=stats.faults,
            tpreg_l4_rate=l4,
            tpreg_l3_rate=l3,
            tpreg_l2_rate=l2,
            prefetches=self.prefetcher.stats.issued if self.prefetcher else 0,
            prefetch_accuracy=(
                self.prefetcher.stats.accuracy if self.prefetcher else 0.0
            ),
        )
