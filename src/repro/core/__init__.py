"""The paper's contribution: NPU MMU models (oracle, IOMMU, NeuMMU).

Public surface:

* :class:`MMUConfig` plus the three canonical factories
  (:func:`oracle_config`, :func:`baseline_iommu_config`,
  :func:`neummu_config`) spanning the paper's design space;
* :class:`MMU` — the translation state machine;
* :class:`TranslationEngine` — replays DMA bursts against an MMU and the
  shared memory system, producing memory-phase timings;
* component models (:class:`TLB`, :class:`PendingTranslationScoreboard`,
  :class:`MergeBuffer`, :class:`TPreg`, :class:`TranslationPathCache`,
  :class:`UnifiedPageTableCache`, :class:`WalkerPool`) for unit-level
  studies.
"""

from .engine import BurstResult, FaultHandler, Transaction, TranslationEngine
from .mmu import (
    MMU,
    MMUConfig,
    PATH_CACHE_KINDS,
    SharedMMU,
    TenantUsage,
    TranslationFault,
    baseline_iommu_config,
    neummu_config,
    oracle_config,
)
from .mmu_cache import (
    NullPathCache,
    PathCache,
    PathCacheStats,
    TranslationPathCache,
    UnifiedPageTableCache,
)
from .prmb import MergeBuffer, MergeBufferStats
from .pts import PendingTranslationScoreboard
from .ptw import WalkCompletion, WalkerPool, WalkerPoolStats
from .qos import (
    ARBITRATION_POLICIES,
    SHARE_POLICIES,
    Arbiter,
    FullShare,
    PriorityArbiter,
    RoundRobinArbiter,
    SharePolicy,
    StaticPartition,
    WeightedQuantumArbiter,
    WeightedShare,
    jain_index,
    make_arbiter,
    make_share_policy,
)
from .stats import RunSummary, TranslationStats, delta
from .tlb import TLB
from .tpreg import TPreg, TPregStats
from .walk_info import WalkInfo, WalkResolver

__all__ = [
    "ARBITRATION_POLICIES",
    "MMU",
    "MMUConfig",
    "PATH_CACHE_KINDS",
    "SHARE_POLICIES",
    "Arbiter",
    "BurstResult",
    "FullShare",
    "PriorityArbiter",
    "RoundRobinArbiter",
    "SharePolicy",
    "StaticPartition",
    "WeightedQuantumArbiter",
    "WeightedShare",
    "FaultHandler",
    "MergeBuffer",
    "MergeBufferStats",
    "NullPathCache",
    "PathCache",
    "PathCacheStats",
    "PendingTranslationScoreboard",
    "RunSummary",
    "SharedMMU",
    "TLB",
    "TPreg",
    "TenantUsage",
    "TPregStats",
    "Transaction",
    "TranslationEngine",
    "TranslationFault",
    "TranslationPathCache",
    "TranslationStats",
    "UnifiedPageTableCache",
    "WalkCompletion",
    "WalkInfo",
    "WalkResolver",
    "WalkerPool",
    "WalkerPoolStats",
    "baseline_iommu_config",
    "delta",
    "jain_index",
    "make_arbiter",
    "make_share_policy",
    "neummu_config",
    "oracle_config",
]
