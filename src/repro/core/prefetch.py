"""Translation prefetching (extension study).

The paper's related-work section points at TLB prefetching for CPUs
[Jacob+Mudge ASPLOS'98; Saulsbury+ ISCA'00; Kandiraju+ ISCA'02] but never
evaluates it for NPUs.  Because dense DNN tile streams walk virtual
addresses *sequentially* (Figure 14), a next-page stream prefetcher is the
natural extension: when a demand walk for page ``p`` starts, speculatively
walk ``p+1 .. p+depth`` on otherwise-idle walkers.

The ablation (``neummu run prefetch`` / ``benchmarks/bench_prefetch.py``)
shows the paper's throughput argument survives the extension: prefetching
helps the under-provisioned 8-walker IOMMU a little (it effectively raises
translation throughput during bursts) but cannot replace merging + walker
scaling, because every prefetch still consumes a walker and page-table
bandwidth that demand bursts need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Set

from ..memory.address import ASID_SHIFT, tagged_vpn
from .walk_info import WalkResolver

if TYPE_CHECKING:  # runtime import would cycle with core.mmu
    from .mmu import MMU


@dataclass
class PrefetchStats:
    """Prefetcher effectiveness counters."""

    issued: int = 0
    useful: int = 0
    #: Prefetches skipped because no walker was spare.
    dropped_no_walker: int = 0
    #: Prefetches skipped because the page was already covered.
    dropped_covered: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches later consumed by a demand hit."""
        return self.useful / self.issued if self.issued else 0.0


class NextPagePrefetcher:
    """Sequential next-page translation prefetcher.

    The MMU calls :meth:`on_demand_walk` whenever a demand miss starts a
    walk; the prefetcher may start additional walks for the following
    ``depth`` pages, but only on walkers the demand stream is not using
    (``reserve`` walkers are always left free for demand traffic).
    """

    def __init__(self, depth: int = 1, reserve: int = 1) -> None:
        if depth <= 0:
            raise ValueError("prefetch depth must be positive")
        if reserve < 0:
            raise ValueError("walker reserve cannot be negative")
        self.depth = depth
        self.reserve = reserve
        self.stats = PrefetchStats()
        #: ASID-tagged pages brought in (or in flight) speculatively, for
        #: accuracy accounting; consumed by :meth:`on_demand_hit`.
        self._outstanding: Set[int] = set()

    def on_demand_walk(self, mmu: MMU, vpn: int, cycle: float, asid: int = 0) -> None:
        """Issue up to ``depth`` next-page prefetch walks at ``cycle``.

        Prefetches stay inside the demand stream's address space: walks
        resolve through context ``asid``'s page table and probe the shared
        structures with that context's tag.
        """
        resolver = mmu.resolver_for(asid)
        pool, pts = mmu.pool, mmu.pts
        assert pool is not None and pts is not None  # oracle MMUs never prefetch
        for offset in range(1, self.depth + 1):
            target = vpn + offset
            # Speculative walks are the issuing context's traffic: they
            # respect both the demand reserve and the context's QoS
            # walker quota (a prefetch must never breach another
            # tenant's reservation).
            if (
                pool.free_walkers <= self.reserve
                or not pool.can_start(asid)
            ):
                self.stats.dropped_no_walker += 1
                return
            if (
                mmu.tlb_contains(target, asid)
                or pts.peek(target, asid) is not None
                or tagged_vpn(target, asid) in self._outstanding
            ):
                self.stats.dropped_covered += 1
                continue
            walk = resolver.resolve_vpn(target)
            if walk is None:
                # Never prefetch across an unmapped page (no speculative
                # page faults).
                return
            mmu.start_walk(walk, cycle, redundant=False)
            self._outstanding.add(tagged_vpn(target, asid))
            self.stats.issued += 1

    def on_demand_hit(self, vpn: int, asid: int = 0) -> None:
        """Credit a demand access that found a prefetched translation."""
        key = tagged_vpn(vpn, asid)
        if key in self._outstanding:
            self._outstanding.discard(key)
            self.stats.useful += 1

    def drop_asid(self, asid: int) -> None:
        """Forget one context's outstanding prefetches (teardown)."""
        lo = asid << ASID_SHIFT
        hi = (asid + 1) << ASID_SHIFT
        self._outstanding = {k for k in self._outstanding if not lo <= k < hi}

    def reset(self) -> None:
        """Clear outstanding-set and statistics."""
        self._outstanding.clear()
        self.stats = PrefetchStats()
