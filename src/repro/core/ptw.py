"""Hardware page-table walker pool.

Table I's baseline IOMMU provisions 8 shared walkers; the paper's central
result (Figures 11/12) is that SPM-centric NPUs need *throughput* — on the
order of 128 walkers once PRMB merging filters redundant requests.  This
module models a pool of walkers with:

* fixed per-level walk latency (100 cycles/level, Table I),
* a per-walker :class:`~repro.core.prmb.MergeBuffer` (PRMB),
* a per-walker :class:`~repro.core.tpreg.TPreg` *or* a shared translation
  path cache (TPC/UPTC) that lets walks skip upper-level references,
* a completion event queue the MMU drains as time advances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .mmu_cache import NullPathCache, PathCache
from .prmb import MergeBuffer, MergeBufferStats
from .qos import SharePolicy
from .tpreg import TPreg, TPregStats
from .walk_info import WalkInfo


@dataclass(slots=True)
class WalkCompletion:
    """One finished page-table walk, ready for MMU post-processing."""

    cycle: float
    walker: int
    walk: WalkInfo
    merged_requests: int


@dataclass
class WalkerPoolStats:
    """Aggregate walk activity (feeds the energy model and Figure 12)."""

    walks: int = 0
    redundant_walks: int = 0
    level_accesses: int = 0
    levels_skipped: int = 0

    @property
    def mean_levels_per_walk(self) -> float:
        """Average memory references per walk after path-cache skipping."""
        return self.level_accesses / self.walks if self.walks else 0.0


class WalkerPool:
    """A pool of page-table walkers with merging and path-skip support.

    A non-trivial :class:`~repro.core.qos.SharePolicy` partitions the pool
    between address spaces: :meth:`can_start` caps each ASID's concurrent
    walks at its walker quota (hard under ``static_partition``;
    work-conserving borrowing under ``weighted``), and :meth:`can_merge`
    caps each ASID's parked PRMB requests at its merge-slot quota.  With
    the default ``full_share`` policy every check collapses to the
    historical free-list test and the pool is bit-identical to PR 2's.
    """

    def __init__(
        self,
        n_walkers: int,
        walk_latency_per_level: int = 100,
        prmb_slots: int = 0,
        use_tpreg: bool = False,
        shared_path_cache: Optional[PathCache] = None,
        policy: Optional[SharePolicy] = None,
    ) -> None:
        if n_walkers <= 0:
            raise ValueError(f"need at least one walker, got {n_walkers}")
        if walk_latency_per_level <= 0:
            raise ValueError("walk latency must be positive")
        self.n_walkers = n_walkers
        self.walk_latency_per_level = walk_latency_per_level
        self.prmb_slots = prmb_slots
        self.use_tpreg = use_tpreg

        self.prmb_stats = MergeBufferStats()
        self._buffers = [MergeBuffer(prmb_slots, self.prmb_stats) for _ in range(n_walkers)]
        self.tpreg_stats = TPregStats()
        self._tpregs: Optional[List[TPreg]] = (
            [TPreg() for _ in range(n_walkers)] if use_tpreg else None
        )
        self._shared_cache: PathCache = shared_path_cache or NullPathCache()
        #: True when no path cache is configured at all (neither per-walker
        #: TPregs nor a shared TPC/UPTC): the hot walk-dispatch and
        #: completion loops skip the null cache's virtual calls entirely.
        self._no_path_cache = self._tpregs is None and isinstance(
            self._shared_cache, NullPathCache
        )

        #: Non-trivial share policy (None = full sharing, zero overhead).
        self._policy = policy if policy is not None and not policy.trivial else None
        #: Busy walker ids per ASID, maintained only under a policy: an
        #: ASID's PRMB occupancy is the sum of its busy walkers' buffers
        #: (the PTS never merges across address spaces).
        self._busy_by_asid: Dict[int, Set[int]] = {}
        #: Per-ASID count of requests parked in PRMBs, maintained only
        #: under a policy (incremented on merge, decremented on drain) so
        #: :meth:`can_merge`'s quota check is O(1) on the translate path.
        self._prmb_occ: Dict[int, int] = {}
        self._free: List[int] = list(range(n_walkers - 1, -1, -1))
        self._vpn: List[Optional[int]] = [None] * n_walkers
        self._completion_of: List[float] = [0.0] * n_walkers
        #: Completion min-heap of (cycle, seq, walker); exposed so the
        #: MMU/engine can peek cheaply on the hot path.
        self.heap: List[Tuple[float, int, int]] = []
        self._walk_of: List[Optional[WalkInfo]] = [None] * n_walkers
        self._seq = 0
        self.stats = WalkerPoolStats()
        # Flat ``asid -> walker_quota(asid, n_walkers)`` memo, validated
        # against the policy's registry version (see TLB._quota_memo):
        # the dispatch-eligibility checks otherwise re-ask the policy for
        # the same constant answer on every blocked translation attempt.
        self._wq_memo: Dict[int, Optional[int]] = {}
        self._wq_version = -1

    def _walker_quota(self, asid: int) -> Optional[int]:
        """Memoized ``policy.walker_quota(asid, n_walkers)`` (policy mode)."""
        policy = self._policy
        if self._wq_version != policy.version:
            self._wq_memo.clear()
            self._wq_version = policy.version
        try:
            return self._wq_memo[asid]
        except KeyError:
            quota = policy.walker_quota(asid, self.n_walkers)
            self._wq_memo[asid] = quota
            return quota

    # ------------------------------------------------------------------ #
    # allocation                                                         #
    # ------------------------------------------------------------------ #

    @property
    def free_walkers(self) -> int:
        """Walkers currently idle."""
        return len(self._free)

    @property
    def busy_walkers(self) -> int:
        """Walkers with a walk in flight."""
        return self.n_walkers - len(self._free)

    def busy_walkers_of(self, asid: int) -> int:
        """Walks in flight for one address space (policy mode only)."""
        busy = self._busy_by_asid.get(asid)
        return len(busy) if busy else 0

    def prmb_occupancy_of(self, asid: int) -> int:
        """Merged requests parked in one address space's walkers' PRMBs.

        O(1) under a share policy (merge/drain maintain a per-ASID
        counter); computed by scanning the tenant's busy walkers otherwise.
        """
        if self._policy is not None:
            return self._prmb_occ.get(asid, 0)
        busy = self._busy_by_asid.get(asid)
        if not busy:
            return 0
        buffers = self._buffers
        # simlint: disable=det-set-iter -- sum of non-negative int occupancies is associative and commutative, so set order cannot change the total
        return sum(buffers[walker].occupied for walker in busy)

    def can_start(self, asid: int = 0) -> bool:
        """Whether ``asid`` may dispatch a walk right now.

        Full sharing: any free walker will do.  Under a share policy the
        ASID must be below its walker quota — or, for a work-conserving
        policy, enough walkers must be free to cover every *other*
        tenant's unmet reservation with one left over to borrow.
        """
        free = len(self._free)
        if not free:
            return False
        policy = self._policy
        if policy is None:
            return True
        quota = self._walker_quota(asid)
        if quota is None or self.busy_walkers_of(asid) < quota:
            return True
        if not policy.work_conserving:
            return False
        reserved_unmet = 0
        for other in policy.asids:
            if other == asid:
                continue
            other_quota = self._walker_quota(other)
            if other_quota is not None:
                shortfall = other_quota - self.busy_walkers_of(other)
                if shortfall > 0:
                    reserved_unmet += shortfall
        return free > reserved_unmet

    def can_merge(self, asid: int = 0) -> bool:
        """Whether ``asid`` may park another request in a PRMB.

        Under a share policy, the ASID's total parked requests (across all
        of its walkers' buffers) are capped at its merge-slot quota.
        """
        policy = self._policy
        if policy is None or not self.prmb_slots:
            return True
        quota = policy.prmb_quota(asid, self.n_walkers * self.prmb_slots)
        return quota is None or self.prmb_occupancy_of(asid) < quota

    def earliest_retry_for(self, asid: int = 0) -> float:
        """Cycle at which a blocked ``asid`` should retry translation.

        Full sharing: the next walk completion (any walker freeing up
        unblocks everyone).  Under a *hard* partition, a tenant blocked by
        its quota (free walkers exist but its reservation is exhausted)
        only unblocks when one of its own walks completes.  Under a
        work-conserving policy any completion can reopen borrowing
        headroom (e.g. an over-quota tenant's walk retiring), so the
        blocked tenant retries at the pool-wide earliest completion.
        """
        policy = self._policy
        if policy is None or policy.work_conserving:
            return self.earliest_completion()
        busy = self._busy_by_asid.get(asid)
        quota = self._walker_quota(asid)
        if busy and quota is not None and len(busy) >= quota:
            # At quota: another tenant's completion frees a walker this
            # tenant still may not use, so only its own walks matter —
            # even when the pool is also fully busy.
            completion_of = self._completion_of
            # simlint: disable=det-set-iter -- min() over completion cycles is order-independent: floats are totally ordered and ties yield the same value
            return min(completion_of[walker] for walker in busy)
        return self.earliest_completion()

    def merge_into(self, walker: int) -> float:
        """Try to merge a request into ``walker``'s PRMB.

        Returns the request's ready cycle (walk completion + drain slot) or
        ``-1.0`` when the buffer is full.
        """
        position = self._buffers[walker].try_merge()
        if position == 0:
            return -1.0
        if self._policy is not None:
            walk = self._walk_of[walker]
            occ = self._prmb_occ
            occ[walk.asid] = occ.get(walk.asid, 0) + 1
        return self._completion_of[walker] + position

    def start_walk(
        self, walk: WalkInfo, cycle: float, redundant: bool = False
    ) -> Tuple[int, float]:
        """Dispatch ``walk`` on a free walker at ``cycle``.

        Returns ``(walker_id, completion_cycle)``.  Caller must ensure a
        walker is free (check :attr:`free_walkers`).
        """
        if not self._free:
            raise RuntimeError("start_walk called with no free walker")
        walker = self._free.pop()

        if self._no_path_cache:
            skip = 0
        elif self._tpregs is not None:
            skip = self._tpregs[walker].lookup(walk)
        else:
            skip = self._shared_cache.lookup(walk)
        # The leaf PTE read can never be skipped.
        levels_accessed = walk.levels - min(skip, walk.levels - 1)
        duration = levels_accessed * self.walk_latency_per_level
        completion = cycle + duration

        self.stats.walks += 1
        if redundant:
            self.stats.redundant_walks += 1
        self.stats.level_accesses += levels_accessed
        self.stats.levels_skipped += walk.levels - levels_accessed

        self._vpn[walker] = walk.vpn
        self._walk_of[walker] = walk
        self._completion_of[walker] = completion
        if self._policy is not None:
            self._busy_by_asid.setdefault(walk.asid, set()).add(walker)
        self._seq += 1
        heapq.heappush(self.heap, (completion, self._seq, walker))
        return walker, completion

    # ------------------------------------------------------------------ #
    # completion                                                         #
    # ------------------------------------------------------------------ #

    def earliest_completion(self) -> float:
        """Cycle of the next walk completion (``inf`` when idle)."""
        return self.heap[0][0] if self.heap else float("inf")

    def complete_until(self, cycle: float) -> Iterator[WalkCompletion]:
        """Yield (and retire) every walk completing at or before ``cycle``.

        On completion the walker's path register / shared cache is filled
        and its PRMB drained; the walker returns to the free list.
        """
        while self.heap and self.heap[0][0] <= cycle:
            completion, _, walker = heapq.heappop(self.heap)
            walk = self._walk_of[walker]
            assert walk is not None
            if not self._no_path_cache:
                if self._tpregs is not None:
                    self._tpregs[walker].fill(walk)
                else:
                    self._shared_cache.fill(walk)
            merged = self._buffers[walker].drain()
            self._vpn[walker] = None
            self._walk_of[walker] = None
            if self._policy is not None:
                busy = self._busy_by_asid.get(walk.asid)
                if busy is not None:
                    busy.discard(walker)
                if merged:
                    self._prmb_occ[walk.asid] -= merged
            self._free.append(walker)
            yield WalkCompletion(
                cycle=completion, walker=walker, walk=walk, merged_requests=merged
            )

    def shootdown_asid(self, asid: int) -> None:
        """Purge one context's path state from every walker (teardown).

        TPregs latched with the context's walk paths and shared TPC/UPTC
        entries it installed are dropped; in-flight walks are the caller's
        responsibility (the MMU refuses teardown while any are pending).
        """
        if self._tpregs is not None:
            for reg in self._tpregs:
                reg.invalidate_asid(asid)
        self._shared_cache.invalidate_asid(asid)

    def collect_tpreg_stats(self) -> TPregStats:
        """Aggregate per-walker TPreg counters (Figure 13)."""
        total = TPregStats()
        if self._tpregs is not None:
            for reg in self._tpregs:
                total.merge(reg.stats)
        return total

    @property
    def shared_cache(self) -> PathCache:
        """The shared TPC/UPTC, or a null cache when TPreg mode is active."""
        return self._shared_cache
