"""Hardware page-table walker pool.

Table I's baseline IOMMU provisions 8 shared walkers; the paper's central
result (Figures 11/12) is that SPM-centric NPUs need *throughput* — on the
order of 128 walkers once PRMB merging filters redundant requests.  This
module models a pool of walkers with:

* fixed per-level walk latency (100 cycles/level, Table I),
* a per-walker :class:`~repro.core.prmb.MergeBuffer` (PRMB),
* a per-walker :class:`~repro.core.tpreg.TPreg` *or* a shared translation
  path cache (TPC/UPTC) that lets walks skip upper-level references,
* a completion event queue the MMU drains as time advances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .mmu_cache import NullPathCache, PathCache
from .prmb import MergeBuffer, MergeBufferStats
from .tpreg import TPreg, TPregStats
from .walk_info import WalkInfo


@dataclass
class WalkCompletion:
    """One finished page-table walk, ready for MMU post-processing."""

    cycle: float
    walker: int
    walk: WalkInfo
    merged_requests: int


@dataclass
class WalkerPoolStats:
    """Aggregate walk activity (feeds the energy model and Figure 12)."""

    walks: int = 0
    redundant_walks: int = 0
    level_accesses: int = 0
    levels_skipped: int = 0

    @property
    def mean_levels_per_walk(self) -> float:
        """Average memory references per walk after path-cache skipping."""
        return self.level_accesses / self.walks if self.walks else 0.0


class WalkerPool:
    """A pool of page-table walkers with merging and path-skip support."""

    def __init__(
        self,
        n_walkers: int,
        walk_latency_per_level: int = 100,
        prmb_slots: int = 0,
        use_tpreg: bool = False,
        shared_path_cache: Optional[PathCache] = None,
    ):
        if n_walkers <= 0:
            raise ValueError(f"need at least one walker, got {n_walkers}")
        if walk_latency_per_level <= 0:
            raise ValueError("walk latency must be positive")
        self.n_walkers = n_walkers
        self.walk_latency_per_level = walk_latency_per_level
        self.prmb_slots = prmb_slots
        self.use_tpreg = use_tpreg

        self.prmb_stats = MergeBufferStats()
        self._buffers = [MergeBuffer(prmb_slots, self.prmb_stats) for _ in range(n_walkers)]
        self.tpreg_stats = TPregStats()
        self._tpregs: Optional[List[TPreg]] = (
            [TPreg() for _ in range(n_walkers)] if use_tpreg else None
        )
        self._shared_cache: PathCache = shared_path_cache or NullPathCache()

        self._free: List[int] = list(range(n_walkers - 1, -1, -1))
        self._vpn: List[Optional[int]] = [None] * n_walkers
        self._completion_of: List[float] = [0.0] * n_walkers
        #: Completion min-heap of (cycle, seq, walker); exposed so the
        #: MMU/engine can peek cheaply on the hot path.
        self.heap: List[Tuple[float, int, int]] = []
        self._walk_of: List[Optional[WalkInfo]] = [None] * n_walkers
        self._seq = 0
        self.stats = WalkerPoolStats()

    # ------------------------------------------------------------------ #
    # allocation                                                         #
    # ------------------------------------------------------------------ #

    @property
    def free_walkers(self) -> int:
        """Walkers currently idle."""
        return len(self._free)

    @property
    def busy_walkers(self) -> int:
        """Walkers with a walk in flight."""
        return self.n_walkers - len(self._free)

    def merge_into(self, walker: int) -> float:
        """Try to merge a request into ``walker``'s PRMB.

        Returns the request's ready cycle (walk completion + drain slot) or
        ``-1.0`` when the buffer is full.
        """
        position = self._buffers[walker].try_merge()
        if position == 0:
            return -1.0
        return self._completion_of[walker] + position

    def start_walk(
        self, walk: WalkInfo, cycle: float, redundant: bool = False
    ) -> Tuple[int, float]:
        """Dispatch ``walk`` on a free walker at ``cycle``.

        Returns ``(walker_id, completion_cycle)``.  Caller must ensure a
        walker is free (check :attr:`free_walkers`).
        """
        if not self._free:
            raise RuntimeError("start_walk called with no free walker")
        walker = self._free.pop()

        skip = 0
        if self._tpregs is not None:
            skip = self._tpregs[walker].lookup(walk)
        else:
            skip = self._shared_cache.lookup(walk)
        # The leaf PTE read can never be skipped.
        levels_accessed = walk.levels - min(skip, walk.levels - 1)
        duration = levels_accessed * self.walk_latency_per_level
        completion = cycle + duration

        self.stats.walks += 1
        if redundant:
            self.stats.redundant_walks += 1
        self.stats.level_accesses += levels_accessed
        self.stats.levels_skipped += walk.levels - levels_accessed

        self._vpn[walker] = walk.vpn
        self._walk_of[walker] = walk
        self._completion_of[walker] = completion
        self._seq += 1
        heapq.heappush(self.heap, (completion, self._seq, walker))
        return walker, completion

    # ------------------------------------------------------------------ #
    # completion                                                         #
    # ------------------------------------------------------------------ #

    def earliest_completion(self) -> float:
        """Cycle of the next walk completion (``inf`` when idle)."""
        return self.heap[0][0] if self.heap else float("inf")

    def complete_until(self, cycle: float) -> Iterator[WalkCompletion]:
        """Yield (and retire) every walk completing at or before ``cycle``.

        On completion the walker's path register / shared cache is filled
        and its PRMB drained; the walker returns to the free list.
        """
        while self.heap and self.heap[0][0] <= cycle:
            completion, _, walker = heapq.heappop(self.heap)
            walk = self._walk_of[walker]
            assert walk is not None
            if self._tpregs is not None:
                self._tpregs[walker].fill(walk)
            else:
                self._shared_cache.fill(walk)
            merged = self._buffers[walker].drain()
            self._vpn[walker] = None
            self._walk_of[walker] = None
            self._free.append(walker)
            yield WalkCompletion(
                cycle=completion, walker=walker, walk=walk, merged_requests=merged
            )

    def shootdown_asid(self, asid: int) -> None:
        """Purge one context's path state from every walker (teardown).

        TPregs latched with the context's walk paths and shared TPC/UPTC
        entries it installed are dropped; in-flight walks are the caller's
        responsibility (the MMU refuses teardown while any are pending).
        """
        if self._tpregs is not None:
            for reg in self._tpregs:
                reg.invalidate_asid(asid)
        self._shared_cache.invalidate_asid(asid)

    def collect_tpreg_stats(self) -> TPregStats:
        """Aggregate per-walker TPreg counters (Figure 13)."""
        total = TPregStats()
        if self._tpregs is not None:
            for reg in self._tpregs:
                total.merge(reg.stats)
        return total

    @property
    def shared_cache(self) -> PathCache:
        """The shared TPC/UPTC, or a null cache when TPreg mode is active."""
        return self._shared_cache
