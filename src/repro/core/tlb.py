"""Translation lookaside buffer.

Table I's baseline IOMMU has a 2048-entry IOTLB with a 5-cycle hit latency.
The paper's key observation (Section III-C) is that for SPM-centric NPUs the
TLB is *not* the lever it is for CPUs/GPUs: translation bursts query the TLB
before in-flight walks return, and streaming tile fetches revisit pages
rarely — "even with an unrealistically large TLB with 128K entries ...
less than 0.02% performance improvement".  Reproducing that result requires
a faithful TLB, so one is provided: fully associative or set-associative,
LRU replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..memory.address import ASID_SHIFT
from .qos import SharePolicy


class TLB:
    """An LRU TLB mapping virtual page numbers to physical frame numbers.

    ``associativity=None`` (the default) selects full associativity, which is
    how IOTLBs are typically modelled in the GPU-MMU literature the paper
    builds on.  Set-associative mode is provided for sensitivity studies.

    Entries are tagged with an address-space identifier: every probe/fill
    method takes ``asid`` (default 0) and internally keys the entry by
    ``vpn | (asid << ASID_SHIFT)``.  The tag bits sit above every possible
    VPN *and* above the set-index mask, so ASID 0 behaves exactly like the
    historical untagged TLB — same sets, same LRU order, same victims —
    while distinct contexts can never alias each other's translations.
    Context teardown and page migration use :meth:`invalidate_asid` /
    :meth:`invalidate` as the shootdown primitives.

    A non-trivial :class:`~repro.core.qos.SharePolicy` adds per-ASID
    occupancy caps with policy-respecting victim selection (the
    way-partitioning of the QoS layer): a tenant at its quota evicts its
    *own* LRU entry instead of another tenant's, a tenant inserting into a
    full structure reclaims from over-quota tenants first, and
    work-conserving policies let a capped tenant keep growing while free
    capacity remains.  With the default ``full_share`` policy every code
    path below is exactly the historical TLB.
    """

    def __init__(
        self,
        entries: int = 2048,
        associativity: Optional[int] = None,
        policy: Optional[SharePolicy] = None,
    ) -> None:
        if entries <= 0:
            raise ValueError(f"TLB needs a positive entry count, got {entries}")
        if associativity is not None:
            if associativity <= 0 or entries % associativity:
                raise ValueError(
                    f"associativity {associativity} must divide entry count {entries}"
                )
        self.entries = entries
        self.associativity = associativity
        #: Non-trivial share policy (None = full sharing, zero overhead).
        self._policy = policy if policy is not None and not policy.trivial else None
        #: Per-ASID valid-entry counts, maintained only under a policy.
        self._asid_occupancy: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        if associativity is None:
            self._sets: List[OrderedDict] = [OrderedDict()]
            self._set_mask = 0
            self._ways = entries
        else:
            n_sets = entries // associativity
            if n_sets & (n_sets - 1):
                raise ValueError(f"number of sets {n_sets} must be a power of two")
            self._sets = [OrderedDict() for _ in range(n_sets)]
            self._set_mask = n_sets - 1
            self._ways = associativity
        # Policy mode keeps, per set, one OrderedDict per resident ASID
        # mirroring that tenant's keys in recency order (value = a global
        # recency stamp).  Victim selection then reads a mirror head in
        # O(1) instead of scanning the whole set per fill — the scan was
        # the dominant cost of policied multi-tenant runs.  The mirrors
        # are pure acceleration state: every recency change updates the
        # main set first, so the LRU semantics (and victims) are
        # bit-identical to the historical scanning implementation
        # (``tests/test_tlb.py`` locks this in differentially).
        self._mirrors: Optional[List[Dict[int, OrderedDict]]] = (
            [{} for _ in self._sets] if self._policy is not None else None
        )
        self._stamp = 0
        # Flat ``asid -> tlb_quota(asid, entries)`` memo, validated
        # against the policy's registry version: the policied fill path
        # (and its victim scan) otherwise re-asks the policy for the
        # same constant answer on every insert.
        self._quota_memo: Dict[int, Optional[int]] = {}
        self._quota_version = -1

    def lookup(self, vpn: int, asid: int = 0) -> Optional[int]:
        """Probe the TLB; returns the cached PFN or None, updating LRU/stats."""
        key = vpn | (asid << ASID_SHIFT)
        entry_set = self._sets[key & self._set_mask]
        pfn = entry_set.get(key)
        if pfn is None:
            self.misses += 1
            return None
        entry_set.move_to_end(key)
        if self._mirrors is not None:
            self._bump_mirror(key, asid)
        self.hits += 1
        return pfn

    def _bump_mirror(self, key: int, asid: int) -> None:
        """Record a recency bump for a resident key (policy mode only)."""
        self._stamp += 1
        mirror = self._mirrors[key & self._set_mask][asid]
        mirror.move_to_end(key)
        mirror[key] = self._stamp

    def contains(self, vpn: int, asid: int = 0) -> bool:
        """Probe without disturbing LRU order or statistics."""
        key = vpn | (asid << ASID_SHIFT)
        return key in self._sets[key & self._set_mask]

    def touch(self, vpn: int, count: int = 1, asid: int = 0) -> None:
        """Bulk equivalent of ``count`` consecutive hitting lookups.

        ``count`` back-to-back lookups of a resident VPN bump it to MRU
        once and add ``count`` hits; the batched engine fast path uses this
        to retire a same-page run with a single TLB update.  Raises
        ``KeyError`` when the VPN is not resident (callers must check
        :meth:`contains` first).
        """
        key = vpn | (asid << ASID_SHIFT)
        entry_set = self._sets[key & self._set_mask]
        entry_set.move_to_end(key)
        if self._mirrors is not None:
            self._bump_mirror(key, asid)
        self.hits += count

    def insert(self, vpn: int, pfn: int, asid: int = 0) -> None:
        """Fill an entry (typically on page-table-walk completion).

        Under a non-trivial share policy, victim selection respects the
        per-ASID occupancy quotas (see :meth:`_insert_policied`).
        """
        key = vpn | (asid << ASID_SHIFT)
        set_idx = key & self._set_mask
        entry_set = self._sets[set_idx]
        if self._policy is not None:
            self._insert_policied(key, pfn, asid, entry_set, set_idx)
            return
        if key in entry_set:
            entry_set.move_to_end(key)
            entry_set[key] = pfn
            return
        if len(entry_set) >= self._ways:
            entry_set.popitem(last=False)
        entry_set[key] = pfn

    def _insert_policied(
        self, key: int, pfn: int, asid: int, entry_set: OrderedDict, set_idx: int
    ) -> None:
        """Quota-aware fill: the QoS layer's TLB partitioning.

        * A tenant at/over its quota self-victimizes (evicts its own LRU
          entry in the target set) unless the policy is work-conserving
          and genuinely free capacity remains to borrow.
        * A tenant under its quota inserting into a full set reclaims an
          over-quota tenant's LRU entry first, falling back to plain set
          LRU only when every resident tenant is within quota.
        """
        occupancy = self._asid_occupancy
        if key in entry_set:
            entry_set.move_to_end(key)
            entry_set[key] = pfn
            self._bump_mirror(key, asid)
            return
        policy = self._policy
        memo = self._quota_memo
        if self._quota_version != policy.version:
            memo.clear()
            self._quota_version = policy.version
        try:
            quota = memo[asid]
        except KeyError:
            quota = memo[asid] = policy.tlb_quota(asid, self.entries)
        count = occupancy.get(asid, 0)
        victim = None
        if quota is not None and count >= quota:
            borrow = (
                policy.work_conserving
                and len(entry_set) < self._ways
                and sum(occupancy.values()) < self.entries
            )
            if not borrow:
                victim = self._victim(entry_set, set_idx, owner=asid)
                if victim is None:
                    # Set-associative corner: the at-quota tenant holds no
                    # entry in the target set, so self-victimization is
                    # impossible.  Drop the fill — growing into the set
                    # would breach this tenant's cap, and evicting another
                    # tenant's way would steal its reservation.
                    return
        if victim is None and len(entry_set) >= self._ways:
            victim = self._victim(entry_set, set_idx, over_quota_first=True)
        if victim is not None:
            del entry_set[victim]
            v_asid = victim >> ASID_SHIFT
            occupancy[v_asid] = occupancy.get(v_asid, 1) - 1
            self._drop_mirror(victim, v_asid, set_idx)
        entry_set[key] = pfn
        occupancy[asid] = occupancy.get(asid, 0) + 1
        self._stamp += 1
        mirror = self._mirrors[set_idx]
        tenant_lru = mirror.get(asid)
        if tenant_lru is None:
            mirror[asid] = tenant_lru = OrderedDict()
        tenant_lru[key] = self._stamp

    def _drop_mirror(self, key: int, asid: int, set_idx: int) -> None:
        """Remove an evicted/invalidated key from its tenant mirror."""
        mirror = self._mirrors[set_idx]
        tenant_lru = mirror.get(asid)
        if tenant_lru is not None:
            tenant_lru.pop(key, None)
            if not tenant_lru:
                del mirror[asid]

    def _victim(
        self,
        entry_set: OrderedDict,
        set_idx: int,
        owner: Optional[int] = None,
        over_quota_first: bool = False,
    ) -> Optional[int]:
        """Pick an eviction victim key from ``entry_set`` in LRU order.

        ``owner`` restricts the search to one tenant's entries (self
        victimization) and yields None when that tenant holds nothing in
        this set; ``over_quota_first`` prefers the LRU entry of any tenant
        exceeding its quota, falling back to the set's global LRU.

        Selection reads the per-tenant recency mirrors: a tenant's LRU key
        in this set is its mirror head, and cross-tenant "first in global
        LRU order" is decided by the global recency stamps the mirrors
        store — O(#tenants) instead of an O(#entries) set scan, with
        victims identical to the historical scanning implementation.
        """
        mirror = self._mirrors[set_idx]
        if owner is not None:
            tenant_lru = mirror.get(owner)
            if not tenant_lru:
                return None
            return next(iter(tenant_lru))
        if over_quota_first:
            policy = self._policy
            memo = self._quota_memo
            best_key = None
            best_stamp = None
            for asid, count in self._asid_occupancy.items():
                try:
                    quota = memo[asid]
                except KeyError:
                    quota = memo[asid] = policy.tlb_quota(asid, self.entries)
                if quota is None or count <= quota:
                    continue
                tenant_lru = mirror.get(asid)
                if not tenant_lru:
                    continue
                head = next(iter(tenant_lru))
                stamp = tenant_lru[head]
                if best_stamp is None or stamp < best_stamp:
                    best_key, best_stamp = head, stamp
            if best_key is not None:
                return best_key
        # Nobody to reclaim from: the set LRU is the victim.
        return next(iter(entry_set), None)

    def invalidate(self, vpn: int, asid: int = 0) -> bool:
        """Drop one translation (e.g. after page migration); True if present."""
        key = vpn | (asid << ASID_SHIFT)
        set_idx = key & self._set_mask
        entry_set = self._sets[set_idx]
        if key in entry_set:
            del entry_set[key]
            if self._policy is not None:
                self._asid_occupancy[asid] = self._asid_occupancy.get(asid, 1) - 1
                self._drop_mirror(key, asid, set_idx)
            return True
        return False

    def invalidate_asid(self, asid: int) -> int:
        """Shoot down every entry of one address space (context teardown).

        Returns the number of entries dropped.  LRU order of surviving
        entries and all statistics are untouched.
        """
        lo = asid << ASID_SHIFT
        hi = (asid + 1) << ASID_SHIFT
        dropped = 0
        for set_idx, entry_set in enumerate(self._sets):
            if self._mirrors is not None:
                tenant_lru = self._mirrors[set_idx].pop(asid, None)
                victims = list(tenant_lru) if tenant_lru else []
            else:
                victims = [key for key in entry_set if lo <= key < hi]
            for key in victims:
                del entry_set[key]
            dropped += len(victims)
        if self._policy is not None:
            self._asid_occupancy.pop(asid, None)
        return dropped

    def flush(self) -> None:
        """Invalidate everything (keeps hit/miss statistics)."""
        for entry_set in self._sets:
            entry_set.clear()
        self._asid_occupancy.clear()
        if self._mirrors is not None:
            for mirror in self._mirrors:
                mirror.clear()

    def reset_stats(self) -> None:
        """Zero hit/miss counters."""
        self.hits = 0
        self.misses = 0

    @property
    def occupancy(self) -> int:
        """Number of valid entries currently cached."""
        return sum(len(s) for s in self._sets)

    def occupancy_of(self, asid: int) -> int:
        """Valid entries held by one address space.

        O(1) under a share policy (the policied insert path maintains
        per-ASID counts); computed by scanning otherwise.
        """
        if self._policy is not None:
            return self._asid_occupancy.get(asid, 0)
        lo = asid << ASID_SHIFT
        hi = (asid + 1) << ASID_SHIFT
        return sum(
            1 for entry_set in self._sets for key in entry_set if lo <= key < hi
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never probed)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        assoc = "full" if self.associativity is None else str(self.associativity)
        return f"TLB(entries={self.entries}, assoc={assoc}, occupancy={self.occupancy})"


class TwoLevelTLB:
    """A GPU-style L1/L2 TLB hierarchy (the Section III-C strawman).

    Power et al. and Pichai et al. lean on multi-level TLBs to capture GPU
    translation locality; the paper argues (and our Figure 8/sens_tlb
    results confirm) that NPU translation *bursts* defeat capacity-based
    filtering.  This class exists so that claim is testable: it presents
    the same probe/insert interface as :class:`TLB` but with a small,
    fast L1 backed by a larger L2.

    ``lookup`` returns ``(pfn, latency)`` — L1 hits cost ``l1_latency``,
    L2 hits cost ``l1_latency + l2_latency`` and promote into L1.
    """

    def __init__(
        self,
        l1_entries: int = 64,
        l2_entries: int = 2048,
        l1_latency: int = 1,
        l2_latency: int = 5,
        policy: Optional[SharePolicy] = None,
    ) -> None:
        if l1_latency < 0 or l2_latency < 0:
            raise ValueError("TLB latencies cannot be negative")
        self.l1 = TLB(l1_entries, policy=policy)
        self.l2 = TLB(l2_entries, policy=policy)
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency

    def lookup(self, vpn: int, asid: int = 0) -> Tuple[Optional[int], int]:
        """Probe L1 then L2; returns ``(pfn or None, hit_latency)``."""
        pfn = self.l1.lookup(vpn, asid)
        if pfn is not None:
            return pfn, self.l1_latency
        pfn = self.l2.lookup(vpn, asid)
        if pfn is not None:
            self.l1.insert(vpn, pfn, asid)
            return pfn, self.l1_latency + self.l2_latency
        return None, self.l1_latency + self.l2_latency

    def insert(self, vpn: int, pfn: int, asid: int = 0) -> None:
        """Fill both levels (walk completion)."""
        self.l1.insert(vpn, pfn, asid)
        self.l2.insert(vpn, pfn, asid)

    def invalidate(self, vpn: int, asid: int = 0) -> bool:
        """Drop a translation from both levels."""
        in_l1 = self.l1.invalidate(vpn, asid)
        in_l2 = self.l2.invalidate(vpn, asid)
        return in_l1 or in_l2

    def invalidate_asid(self, asid: int) -> int:
        """Shoot down one address space at both levels; returns drops."""
        return self.l1.invalidate_asid(asid) + self.l2.invalidate_asid(asid)

    def contains(self, vpn: int, asid: int = 0) -> bool:
        """Probe either level without touching LRU state."""
        return self.l1.contains(vpn, asid) or self.l2.contains(vpn, asid)

    def flush(self) -> None:
        """Invalidate both levels."""
        self.l1.flush()
        self.l2.flush()

    @property
    def hit_rate(self) -> float:
        """Combined hierarchy hit rate (hits at either level)."""
        probes = self.l1.hits + self.l1.misses
        if not probes:
            return 0.0
        return (self.l1.hits + self.l2.hits) / probes
