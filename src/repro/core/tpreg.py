"""Translation path register (TPreg) — Section IV-C.

A TPreg is a *single-entry*, per-walker, TPC-style translation cache: it
remembers the upper-level virtual indices ``(L4, L3, L2)`` of the last walk
the walker performed, together with (conceptually) the physical pointers
those entries held.  On the next walk, the longest matching prefix of
indices lets the walker skip that many upper-level memory references —
e.g. a full ``(L4, L3, L2)`` match jumps straight to the leaf PTE read,
turning a 4-reference walk into 1 reference.

The paper's insight is that DNN tile streams touch a handful of large VA
segments sequentially, so consecutive walks on a walker almost always share
L4/L3 (measured ≈99.5%) and often share L2 (≈63.1%), making a 16-byte
register nearly as effective as a full MMU cache (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .walk_info import WalkInfo


@dataclass
class TPregStats:
    """Per-level tag-match counters across all walks (Figure 13)."""

    walks: int = 0
    l4_hits: int = 0
    l3_hits: int = 0
    l2_hits: int = 0

    def merge(self, other: "TPregStats") -> None:
        """Accumulate another stats block into this one."""
        self.walks += other.walks
        self.l4_hits += other.l4_hits
        self.l3_hits += other.l3_hits
        self.l2_hits += other.l2_hits

    def hit_rates(self) -> Tuple[float, float, float]:
        """``(L4, L3, L2)`` tag-match rates; zeros when no walks occurred."""
        if not self.walks:
            return (0.0, 0.0, 0.0)
        return (
            self.l4_hits / self.walks,
            self.l3_hits / self.walks,
            self.l2_hits / self.walks,
        )


class TPreg:
    """One translation path register attached to one page-table walker.

    ``lookup`` returns how many upper-level memory references the walk may
    skip (0..len(path)); ``fill`` records the completed walk's path.  A
    prefix match is required: skipping L3 without matching L4 would follow a
    stale pointer, exactly as in hardware translation-path caches [Barr+
    ISCA'10].
    """

    __slots__ = ("_path", "_asid", "stats")

    def __init__(self) -> None:
        self._path: Optional[Tuple[int, ...]] = None
        self._asid: int = 0
        self.stats = TPregStats()

    def lookup(self, walk: WalkInfo) -> int:
        """Number of upper levels of ``walk`` whose reads can be skipped.

        The latched path carries the ASID of the walk that filled it:
        upper-level pointers from one context's page table are meaningless
        in another, so a register shared across tenants misses (never
        aliases) when the requesting walk's ASID differs.
        """
        self.stats.walks += 1
        if self._path is None or self._asid != walk.asid:
            return 0
        skip = 0
        for cached, wanted in zip(self._path, walk.path):
            if cached != wanted:
                break
            skip += 1
        # Per-level stats use 4 KB semantics: path = (l4, l3, l2).  For 2 MB
        # walks only (l4, l3) exist; l2 then never counts as a hit.
        if skip >= 1:
            self.stats.l4_hits += 1
        if skip >= 2:
            self.stats.l3_hits += 1
        if skip >= 3:
            self.stats.l2_hits += 1
        return skip

    def fill(self, walk: WalkInfo) -> None:
        """Latch the just-completed walk's upper-level path (and its ASID)."""
        self._path = walk.path
        self._asid = walk.asid

    def invalidate(self) -> None:
        """Clear the register (TLB-shootdown style)."""
        self._path = None
        self._asid = 0

    def invalidate_asid(self, asid: int) -> None:
        """Clear the register iff it holds the given context's path."""
        if self._path is not None and self._asid == asid:
            self.invalidate()

    @property
    def path(self) -> Optional[Tuple[int, ...]]:
        """Currently latched path (None when empty)."""
        return self._path

    #: SRAM cost per register used by the area model (Section IV-E):
    #: three 9-bit tags plus three physical pointers fit in 16 bytes.
    STORAGE_BYTES = 16
