"""Pending translation scoreboard (PTS) — Section IV-A.

The PTS is a fully-associative structure with one entry per page-table
walker, tagged by virtual page number.  Every TLB miss first queries the
PTS: a hit means some walker is already translating that page, so the
request may be merged into that walker's PRMB instead of spending walk
bandwidth; a miss allocates a fresh walker (if available) and registers the
VPN so later requests can merge.

Because redundant walks are possible when merging capacity is exhausted
(the "many PTWs, no PRMB" design of Figure 12a), a VPN may map to *several*
in-flight walkers; the scoreboard keeps them all.

Like the TLB, scoreboard entries are ASID-tagged: all methods accept
``asid`` (default 0) and key entries by ``vpn | (asid << ASID_SHIFT)``, so
two contexts walking the same VPN never merge into each other's walkers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..memory.address import ASID_SHIFT


class PendingTranslationScoreboard:
    """Tracks which walkers are translating which virtual page numbers."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"PTS capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._by_vpn: Dict[int, List[int]] = {}
        self._count = 0
        self.lookups = 0
        self.hits = 0

    def lookup(self, vpn: int, asid: int = 0) -> Optional[List[int]]:
        """Walkers currently translating ``vpn`` (None on miss); counts stats."""
        self.lookups += 1
        walkers = self._by_vpn.get(vpn | (asid << ASID_SHIFT))
        if walkers:
            self.hits += 1
            return walkers
        return None

    def peek(self, vpn: int, asid: int = 0) -> Optional[List[int]]:
        """Like :meth:`lookup` without touching statistics."""
        return self._by_vpn.get(vpn | (asid << ASID_SHIFT))

    def register(self, vpn: int, walker: int, asid: int = 0) -> None:
        """Record that ``walker`` started a walk for ``vpn``."""
        if self._count >= self.capacity:
            raise RuntimeError(
                f"PTS overflow: {self._count} in-flight walks with capacity "
                f"{self.capacity} (walker allocation must gate registration)"
            )
        self._by_vpn.setdefault(vpn | (asid << ASID_SHIFT), []).append(walker)
        self._count += 1

    def release(self, vpn: int, walker: int, asid: int = 0) -> None:
        """Remove ``walker``'s entry for ``vpn`` on walk completion."""
        key = vpn | (asid << ASID_SHIFT)
        walkers = self._by_vpn.get(key)
        if not walkers or walker not in walkers:
            raise KeyError(
                f"walker {walker} not registered for VPN 0x{vpn:x} "
                f"(ASID {asid})"
            )
        walkers.remove(walker)
        if not walkers:
            del self._by_vpn[key]
        self._count -= 1

    def in_flight_for(self, asid: int) -> int:
        """Walker entries currently registered for one address space."""
        lo = asid << ASID_SHIFT
        hi = (asid + 1) << ASID_SHIFT
        return sum(
            len(walkers) for key, walkers in self._by_vpn.items() if lo <= key < hi
        )

    def vpns_for(self, asid: int) -> List[int]:
        """Untagged VPNs of one address space's in-flight walks."""
        lo = asid << ASID_SHIFT
        hi = (asid + 1) << ASID_SHIFT
        mask = (1 << ASID_SHIFT) - 1
        return [key & mask for key in self._by_vpn if lo <= key < hi]

    @property
    def in_flight(self) -> int:
        """Total walker entries currently registered."""
        return self._count

    @property
    def distinct_pages(self) -> int:
        """Distinct VPNs with at least one walk in flight."""
        return len(self._by_vpn)

    def iter_vpns(self) -> Iterator[int]:
        """All ASID-tagged VPN keys with in-flight walks."""
        return iter(self._by_vpn)

    def clear(self) -> None:
        """Drop all scoreboard state."""
        self._by_vpn.clear()
        self._count = 0

    #: Bytes per PTS entry for the area model: a 36-bit VPN tag plus walker
    #: id and valid bit round up to 6 bytes (Section IV-E).
    ENTRY_BYTES = 6
