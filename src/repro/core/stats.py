"""Translation-activity statistics.

Every figure in the paper's evaluation is a projection of the counters
collected here: normalized performance needs stall accounting, Figure 12(b)
needs walk-invoked memory references, Figure 13 needs TPreg tag hits, and
the headline 18.8×/16.3× claims need both.  Counters accumulate for the
lifetime of an MMU; :func:`snapshot`/:func:`delta` support per-phase
attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TranslationStats:
    """Counters owned by one MMU instance."""

    #: Translation requests received from the DMA engine.
    requests: int = 0
    #: Requests satisfied by the TLB.
    tlb_hits: int = 0
    #: Requests absorbed by a PRMB (no walk issued).
    merges: int = 0
    #: Requests that had to launch a redundant walk (same VPN already in
    #: flight but no merge capacity) — the energy wastage of Figure 12.
    redundant_walk_requests: int = 0
    #: Times the DMA was blocked because walkers and merge slots were full.
    stall_events: int = 0
    #: Total cycles the DMA issue port spent blocked.
    stall_cycles: float = 0.0
    #: Page faults taken (demand-paging runs only).
    faults: int = 0

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict copy of all counters."""
        return {
            "requests": self.requests,
            "tlb_hits": self.tlb_hits,
            "merges": self.merges,
            "redundant_walk_requests": self.redundant_walk_requests,
            "stall_events": self.stall_events,
            "stall_cycles": self.stall_cycles,
            "faults": self.faults,
        }


def delta(before: Dict[str, float], after: Dict[str, float]) -> Dict[str, float]:
    """Per-phase counter difference (``after`` minus ``before``)."""
    return {key: after[key] - before.get(key, 0) for key in after}


@dataclass
class BurnDownTelemetry:
    """Process-wide quota-burn-down planner telemetry (``--profile``).

    The quota-batched hit phase (``NEUMMU_QUOTA_BATCH``, see
    :mod:`repro.core.calendar`) either retires a whole hit stretch in
    closed form or falls back to per-event stepping; these counters say
    which, and why, so perf ledgers can cite counts instead of cProfile
    guesses.  Pure observability: nothing on a simulation path ever
    *reads* these, so they cannot influence results, and they aggregate
    across every engine in the process (worker processes keep their own —
    ``--profile`` reports the parent's, like the profiler itself).
    """

    #: Hit stretches retired in closed form, and the transactions and
    #: deferred walk completions they covered.
    hit_segments: int = 0
    hit_txns: int = 0
    hit_drained: int = 0
    #: Hit segments that fell back to per-event stepping, by plan-failure
    #: reason: a TLB quota/capacity would bind mid-stretch, the burst or
    #: arbitration turn ends before batching pays, a fault/invalid walk
    #: sits in the window, or a shootdown poisoned an in-flight walker
    #: (residency event).
    fallback_segments: int = 0
    fail_quota_bound: int = 0
    fail_arbitration_turn: int = 0
    fail_fault: int = 0
    fail_residency: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of all counters."""
        return {
            "hit_segments": self.hit_segments,
            "hit_txns": self.hit_txns,
            "hit_drained": self.hit_drained,
            "fallback_segments": self.fallback_segments,
            "fail_quota_bound": self.fail_quota_bound,
            "fail_arbitration_turn": self.fail_arbitration_turn,
            "fail_fault": self.fail_fault,
            "fail_residency": self.fail_residency,
        }

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        self.hit_segments = 0
        self.hit_txns = 0
        self.hit_drained = 0
        self.fallback_segments = 0
        self.fail_quota_bound = 0
        self.fail_arbitration_turn = 0
        self.fail_fault = 0
        self.fail_residency = 0


#: The process-wide aggregate every engine increments (see class docs).
BURN_DOWN = BurnDownTelemetry()


@dataclass
class MissWindowTelemetry:
    """Process-wide mixed-window miss-phase planner telemetry
    (``--profile``).

    The miss-batched window planner (``NEUMMU_MISS_BATCH``, see
    :meth:`repro.core.calendar.CompletionCalendar.plan_window`) either
    retires a whole mixed window — TLB fills from foreign in-flight
    walks interleaved with our own stall/retire/restart chain — in
    closed form, or falls back to per-event stepping; these counters say
    which, and *quantitatively* why, so the perf ledger can explain its
    measured ratios.  Same observability contract as
    :class:`BurnDownTelemetry`: nothing on a simulation path reads
    these, worker processes keep their own.
    """

    #: Windows retired in closed form, the transactions they covered,
    #: and the foreign in-flight walks absorbed into them.
    windows_planned: int = 0
    window_txns: int = 0
    window_foreign: int = 0
    #: Windows planned under a quota-trajectory proof (the region the
    #: stretch planner's pointwise gate declines outright).
    window_quota_proofs: int = 0
    #: Windows that fell back to per-event stepping, by reason: the
    #: closed-form quota trajectory binds before the minimum profitable
    #: stretch, the policy's admitted-segment coverage stops short of
    #: the window (or changes quota inside it), or the delegated
    #: arithmetic/channel/page-scan validation declined.
    fallback_windows: int = 0
    fail_quota_bound: int = 0
    fail_rebalance: int = 0
    fail_plan: int = 0
    #: Sum of quota-feasible prefix lengths (in transactions) over the
    #: ``fail_quota_bound`` declines — dividing by that count says how
    #: far, on average, the trajectory ran before a tenant's reservation
    #: bound it (the ledger's "why parity" number).
    quota_prefix_txns: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of all counters."""
        return {
            "windows_planned": self.windows_planned,
            "window_txns": self.window_txns,
            "window_foreign": self.window_foreign,
            "window_quota_proofs": self.window_quota_proofs,
            "fallback_windows": self.fallback_windows,
            "fail_quota_bound": self.fail_quota_bound,
            "fail_rebalance": self.fail_rebalance,
            "fail_plan": self.fail_plan,
            "quota_prefix_txns": self.quota_prefix_txns,
        }

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        self.windows_planned = 0
        self.window_txns = 0
        self.window_foreign = 0
        self.window_quota_proofs = 0
        self.fallback_windows = 0
        self.fail_quota_bound = 0
        self.fail_rebalance = 0
        self.fail_plan = 0
        self.quota_prefix_txns = 0


#: The process-wide aggregate every engine increments (see class docs).
MISS_WINDOW = MissWindowTelemetry()


@dataclass
class RunSummary:
    """Flattened view across MMU, walker pool, TLB and TPreg counters.

    Produced by :meth:`repro.core.mmu.MMU.summary`; consumed by the energy
    model and the experiment harness.
    """

    requests: int
    tlb_hits: int
    tlb_hit_rate: float
    merges: int
    walks: int
    redundant_walks: int
    walk_level_accesses: int
    walk_levels_skipped: int
    stall_events: int
    stall_cycles: float
    faults: int
    tpreg_l4_rate: float
    tpreg_l3_rate: float
    tpreg_l2_rate: float
    #: Speculative walks issued / consumed by the optional prefetcher.
    prefetches: int = 0
    prefetch_accuracy: float = 0.0

    @property
    def walk_rate(self) -> float:
        """Walks per translation request."""
        return self.walks / self.requests if self.requests else 0.0

    @property
    def accesses_per_request(self) -> float:
        """Walk-invoked memory references per translation request —
        the quantity NeuMMU reduces 18.8× vs the baseline IOMMU."""
        return self.walk_level_accesses / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, float]:
        """All fields as a plain dict (for CSV/JSON emission)."""
        return {
            "requests": self.requests,
            "tlb_hits": self.tlb_hits,
            "tlb_hit_rate": self.tlb_hit_rate,
            "merges": self.merges,
            "walks": self.walks,
            "redundant_walks": self.redundant_walks,
            "walk_level_accesses": self.walk_level_accesses,
            "walk_levels_skipped": self.walk_levels_skipped,
            "stall_events": self.stall_events,
            "stall_cycles": self.stall_cycles,
            "faults": self.faults,
            "tpreg_l4_rate": self.tpreg_l4_rate,
            "tpreg_l3_rate": self.tpreg_l3_rate,
            "tpreg_l2_rate": self.tpreg_l2_rate,
            "prefetches": self.prefetches,
            "prefetch_accuracy": self.prefetch_accuracy,
        }
