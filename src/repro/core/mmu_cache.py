"""Translation path caches: UPTC and TPC (Section IV-C design space).

The paper contrasts two MMU-cache organizations before settling on the
single-entry TPreg:

* **UPTC** (unified page-table cache, AMD style): individual upper-level
  page-table entries, tagged by the *physical address* of each entry, shared
  across levels in one cache.  A walk probes once per level and skips the
  memory reference on a hit.
* **TPC** (translation path cache, Intel style): entries tagged by the
  *virtual* ``(L4, L3, L2)`` index triple; a single entry covers a whole
  walk path, and prefix matches skip the matched upper levels.

Measured on the paper's workloads, TPC's L4/L3/L2 tag hit rates were
99.5%/99.5%/63.1% vs UPTC's 92.4%, letting TPC eliminate 59% more walk
references — the motivation for the TPreg.  Both are implemented here with
LRU replacement so the comparison is reproducible
(``benchmarks/bench_tpc_vs_uptc.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from .walk_info import WalkInfo


@dataclass
class PathCacheStats:
    """Lookup/skip accounting common to both cache styles."""

    walks: int = 0
    levels_skippable: int = 0
    levels_skipped: int = 0

    @property
    def skip_rate(self) -> float:
        """Fraction of skippable upper-level reads actually skipped."""
        if not self.levels_skippable:
            return 0.0
        return self.levels_skipped / self.levels_skippable


class PathCache:
    """Interface shared by UPTC, TPC, and the per-walker TPreg adapter.

    ``lookup`` returns the number of upper-level memory references a walk
    may skip; ``fill`` installs the completed walk.
    """

    def lookup(self, walk: WalkInfo) -> int:
        raise NotImplementedError

    def fill(self, walk: WalkInfo) -> None:
        raise NotImplementedError

    def invalidate_all(self) -> None:
        raise NotImplementedError

    def invalidate_asid(self, asid: int) -> None:
        """Drop every entry installed by the given context (teardown)."""
        raise NotImplementedError


class NullPathCache(PathCache):
    """No MMU cache: every walk reads every level (baseline IOMMU)."""

    def lookup(self, walk: WalkInfo) -> int:
        return 0

    def fill(self, walk: WalkInfo) -> None:
        return None

    def invalidate_all(self) -> None:
        return None

    def invalidate_asid(self, asid: int) -> None:
        return None


class UnifiedPageTableCache(PathCache):
    """UPTC: LRU cache of upper-level PTEs tagged by entry physical address."""

    def __init__(self, entries: int = 16) -> None:
        if entries <= 0:
            raise ValueError(f"UPTC needs positive capacity, got {entries}")
        self.entries = entries
        # (asid, entry PA) -> True, in LRU order.
        self._cache: OrderedDict[Tuple[int, int], bool] = OrderedDict()
        self.stats = PathCacheStats()

    def lookup(self, walk: WalkInfo) -> int:
        """Upper levels are probed root-first; the skip run must be a prefix.

        A walk cannot skip L3 if the L4 entry missed — without the L4 entry
        the walker does not know the L3 node's address.  (With the entry PAs
        precomputed in :class:`WalkInfo` we *could* probe out of order, but
        hardware cannot, so neither do we.)
        """
        self.stats.walks += 1
        skippable = walk.levels - 1  # leaf PTE read is never skippable
        self.stats.levels_skippable += skippable
        skip = 0
        for entry_pa in walk.entry_pas[:skippable]:
            key = (walk.asid, entry_pa)
            if key in self._cache:
                self._cache.move_to_end(key)
                skip += 1
            else:
                break
        self.stats.levels_skipped += skip
        return skip

    def fill(self, walk: WalkInfo) -> None:
        """Install each upper-level entry this walk read.

        Entries are keyed by ``(asid, entry PA)``: the model's page tables
        draw node addresses from per-table synthetic ranges that may
        collide across contexts, and a real shared UPTC is ASID-tagged for
        exactly this reason.
        """
        for entry_pa in walk.entry_pas[: walk.levels - 1]:
            key = (walk.asid, entry_pa)
            if key in self._cache:
                self._cache.move_to_end(key)
                continue
            if len(self._cache) >= self.entries:
                self._cache.popitem(last=False)
            self._cache[key] = True

    def invalidate_all(self) -> None:
        self._cache.clear()

    def invalidate_asid(self, asid: int) -> None:
        for key in [k for k in self._cache if k[0] == asid]:
            del self._cache[key]


class TranslationPathCache(PathCache):
    """TPC: LRU cache of whole walk paths tagged by virtual indices.

    A full-path match skips all upper levels; otherwise the longest common
    prefix with any cached path is skipped (hardware implements this with
    per-prefix tag compares on the same entry array).
    """

    def __init__(self, entries: int = 16) -> None:
        if entries <= 0:
            raise ValueError(f"TPC needs positive capacity, got {entries}")
        self.entries = entries
        # (asid, path tuple) -> True, in LRU order.
        self._cache: OrderedDict[Tuple[int, Tuple[int, ...]], bool] = OrderedDict()
        self.stats = PathCacheStats()
        # Per-level tag-match counters, comparable with TPregStats (Fig. 13).
        self.l4_hits = 0
        self.l3_hits = 0
        self.l2_hits = 0

    def lookup(self, walk: WalkInfo) -> int:
        self.stats.walks += 1
        skippable = len(walk.path)
        self.stats.levels_skippable += skippable
        best = 0
        best_path = None
        for asid, cached in self._cache:
            if asid != walk.asid:
                continue
            common = 0
            for a, b in zip(cached, walk.path):
                if a != b:
                    break
                common += 1
            if common > best:
                best = common
                best_path = (asid, cached)
                if best == skippable:
                    break
        if best_path is not None:
            self._cache.move_to_end(best_path)
        if best >= 1:
            self.l4_hits += 1
        if best >= 2:
            self.l3_hits += 1
        if best >= 3:
            self.l2_hits += 1
        self.stats.levels_skipped += best
        return best

    def fill(self, walk: WalkInfo) -> None:
        key = (walk.asid, walk.path)
        if key in self._cache:
            self._cache.move_to_end(key)
            return
        if len(self._cache) >= self.entries:
            self._cache.popitem(last=False)
        self._cache[key] = True

    def invalidate_all(self) -> None:
        self._cache.clear()

    def invalidate_asid(self, asid: int) -> None:
        for key in [k for k in self._cache if k[0] == asid]:
            del self._cache[key]

    def hit_rates(self) -> Tuple[float, float, float]:
        """``(L4, L3, L2)`` tag-match rates across all lookups."""
        if not self.stats.walks:
            return (0.0, 0.0, 0.0)
        walks = self.stats.walks
        return (self.l4_hits / walks, self.l3_hits / walks, self.l2_hits / walks)
