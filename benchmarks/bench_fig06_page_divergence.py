"""Figure 6: max/avg distinct pages touched per DMA tile fetch."""

from repro.analysis import fig6_page_divergence

from .common import batch_grid, emit, run_once


def bench_fig06(benchmark):
    figure = run_once(benchmark, lambda: fig6_page_divergence(batches=batch_grid()))
    emit(figure)
    # Section III-C: multi-MB tiles touch >1K distinct 4 KB pages.
    assert max(figure.column("max_pages")) > 1000
