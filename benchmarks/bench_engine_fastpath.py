"""Batched-engine fast path vs the seed's per-transaction reference path.

Replays real DMA transaction streams — the linearized tile fetches of a
dense workload (Section III-C's streaming case) — through the raw
:class:`~repro.core.engine.TranslationEngine` under the three canonical
MMU configurations at both evaluated page sizes (Table I's 4 KB and
Section VI-A's 2 MB), once with the batched fast path and once with the
per-transaction reference path (the seed engine's semantics, kept as the
golden fallback).

Asserts that (a) every sweep cell produces bit-identical results on both
paths and (b) the sweep's geometric-mean wall-clock speedup is >= 3x.
"""

from __future__ import annotations

import gc
import math
import time

from repro.analysis.figures import FigureResult, geometric_mean
from repro.core.engine import TranslationEngine
from repro.core.mmu import (
    MMU,
    baseline_iommu_config,
    neummu_config,
    oracle_config,
)
from repro.core.walk_info import WalkResolver
from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.memory.dram import MainMemory
from repro.npu.simulator import NPUSimulator
from repro.workloads.registry import dense_workload

from .common import emit, run_once

#: Streaming-heavy dense networks (long same-page runs per tile fetch —
#: the Section III-C streaming case the batched fast path targets).
WORKLOADS = ("CNN-2", "CNN-3")

#: The canonical design points at both evaluated page sizes.
CONFIGS = tuple(
    make(page_size=page_size)
    for page_size in (PAGE_SIZE_4K, PAGE_SIZE_2M)
    for make in (oracle_config, baseline_iommu_config, neummu_config)
)

#: Cap on replayed transactions per workload (keeps one cell ~100 ms).
MAX_TRANSACTIONS = 120_000


def _streams(workload_name: str, page_size: int):
    """The workload's first tile-fetch bursts, DMA-linearized and annotated."""
    sim = NPUSimulator(dense_workload(workload_name, 1), oracle_config(page_size))
    sim.dma.run_page_size = page_size
    bursts = []
    total = 0
    for schedule in sim.schedules:
        for step in schedule.steps:
            for fetch in step.fetches:
                txs = sim.dma.transactions(fetch)
                bursts.append(txs)
                total += len(txs)
                if total >= MAX_TRANSACTIONS:
                    return sim, bursts
    return sim, bursts


def _replay(sim, bursts, mmu_config, batched: bool, resolver=None):
    """Run the bursts through a fresh engine; returns (seconds, results).

    ``resolver`` optionally substitutes a pre-warmed
    :class:`~repro.core.walk_info.WalkResolver` so the timed region
    measures engine steady state rather than first-touch functional page
    walks (which both paths pay identically).
    """
    mmu = MMU(mmu_config, sim.address_space.page_table)
    if resolver is not None:
        mmu.replace_resolver(resolver)
    engine = TranslationEngine(mmu, MainMemory(), batched=batched)
    gc.disable()
    started = time.perf_counter()
    results, data_end = engine.run_bursts(bursts, 0.0)
    elapsed = time.perf_counter() - started
    gc.enable()
    mmu.drain()
    return elapsed, (results, data_end, mmu.summary())


def fastpath_sweep(repeats: int = 3) -> FigureResult:
    """Wall-clock comparison over the config x page-size x workload grid."""
    fig = FigureResult(
        figure_id="engine_fastpath",
        title="Batched fast path vs per-transaction reference engine",
        columns=["ref_ms", "batched_ms", "speedup"],
        notes=[
            "identical BurstResults/RunSummary asserted per cell; "
            "speedup = best-of-N reference time / best-of-N batched time",
        ],
    )
    speedups = []
    for workload_name in WORKLOADS:
        for config in CONFIGS:
            sim, bursts = _streams(workload_name, config.page_size)
            # Warm a shared memoizing walk resolver once (untimed):
            # first-touch functional walks cost both paths the same and are
            # not what this benchmark compares.
            resolver = WalkResolver(
                sim.address_space.page_table, config.page_size
            )
            _replay(sim, bursts, config, True, resolver)
            best = {True: math.inf, False: math.inf}
            outcomes = {}
            for _ in range(repeats):
                for batched in (True, False):
                    elapsed, outcome = _replay(sim, bursts, config, batched, resolver)
                    best[batched] = min(best[batched], elapsed)
                    outcomes.setdefault(batched, outcome)
            assert outcomes[True] == outcomes[False], (
                f"fast path diverged on {workload_name}/{config.name}"
            )
            speedup = best[False] / best[True]
            speedups.append(speedup)
            page_kb = config.page_size // 1024
            fig.add(
                f"{workload_name}/{config.name}/{page_kb}K",
                ref_ms=best[False] * 1e3,
                batched_ms=best[True] * 1e3,
                speedup=speedup,
            )
    fig.notes.append(f"geomean speedup: {geometric_mean(speedups):.2f}x")
    return fig


def bench_engine_fastpath(benchmark):
    figure = run_once(benchmark, fastpath_sweep)
    emit(figure)
    # Tentpole acceptance: >= 3x wall-clock on the dense sweep, with the
    # reference path standing in for the seed engine (same semantics).
    assert geometric_mean(figure.column("speedup")) >= 3.0


if __name__ == "__main__":
    figure = fastpath_sweep()
    print(figure.render())
    assert geometric_mean(figure.column("speedup")) >= 3.0
