"""Benchmark package: one bench per paper table/figure (see DESIGN.md)."""
