"""Figure 16: demand paging at 4 KB vs 2 MB pages, IOMMU vs NeuMMU."""

from repro.analysis import fig16_demand_paging

from .common import emit, run_once


def bench_fig16(benchmark):
    figure = run_once(benchmark, fig16_demand_paging)
    emit(figure)
    # Paper: NeuMMU recovers small pages (~96% of oracle); large pages are
    # catastrophic for sparse access regardless of MMU.
    neummu_4k = figure.value("DLRM/b08/neummu/4K", "normalized_perf")
    iommu_4k = figure.value("DLRM/b08/iommu/4K", "normalized_perf")
    neummu_2m = figure.value("DLRM/b08/neummu/2M", "normalized_perf")
    assert neummu_4k > 0.85
    assert iommu_4k < neummu_4k
    assert neummu_2m < 0.5
