"""Figure 7: translation-request burst histogram (CNN-1 and RNN-1)."""

from repro.analysis import fig7_translation_bursts

from .common import emit, run_once


def bench_fig07(benchmark):
    figure = run_once(benchmark, fig7_translation_bursts)
    emit(figure)
    # The DMA saturates its 1-translation/cycle issue port in long bursts.
    assert figure.mean("full_rate_frac") > 0.5
