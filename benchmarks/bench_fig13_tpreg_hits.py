"""Figure 13: TPreg L4/L3/L2 tag hit rates."""

from repro.analysis import fig13_tpreg_hit_rates

from .common import batch_grid, emit, experiment_runner, run_once


def bench_fig13(benchmark):
    figure = run_once(
        benchmark, lambda: fig13_tpreg_hit_rates(batches=batch_grid(), runner=experiment_runner())
    )
    emit(figure)
    # Paper: ~99.5% / 99.5% / 63.1% average tag-match rates.
    assert figure.mean("l4") > 0.95
    assert figure.mean("l3") > 0.95
    assert 0.2 < figure.mean("l2") < 0.98
