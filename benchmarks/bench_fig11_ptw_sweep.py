"""Figure 11: throughput-centric walker scaling with PRMB(32)."""

from repro.analysis import fig11_ptw_sweep

from .common import batch_grid, emit, experiment_runner, run_once


def bench_fig11(benchmark):
    figure = run_once(benchmark, lambda: fig11_ptw_sweep(batches=batch_grid(), runner=experiment_runner()))
    emit(figure)
    # Paper: 128 walkers close the gap to ~99% of the oracle.
    assert figure.mean("ptw128") > 0.9
    assert figure.mean("ptw8") < figure.mean("ptw128")
