"""Figure 14: AlexNet's VA regions across consecutive tile fetches."""

from repro.analysis import fig14_va_trace

from .common import emit, run_once


def bench_fig14(benchmark):
    figure = run_once(benchmark, fig14_va_trace)
    emit(figure)
    assert figure.rows
