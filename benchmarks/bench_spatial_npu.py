"""Section VI-B: NeuMMU on a spatial-array (Eyeriss/DaDianNao-like) NPU."""

from repro.analysis import spatial_npu

from .common import emit, run_once


def bench_spatial(benchmark):
    figure = run_once(benchmark, spatial_npu)
    emit(figure)
    # Paper: NeuMMU stays within ~2% of the oracle on the spatial design.
    assert figure.mean("neummu_perf") > 0.95
    assert figure.mean("iommu_perf") < figure.mean("neummu_perf")
