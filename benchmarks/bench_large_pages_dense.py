"""Section VI-A: 2 MB pages mostly fix the baseline IOMMU on dense nets."""

from repro.analysis import large_pages_dense

from .common import emit, experiment_runner, run_once


def bench_large_pages(benchmark):
    figure = run_once(
        benchmark, lambda: large_pages_dense(runner=experiment_runner())
    )
    emit(figure)
    # Paper: IOMMU overhead falls to ~4% average with 2 MB pages.
    assert figure.mean("iommu_2m") > 0.85
    assert figure.mean("neummu_2m") > 0.95
