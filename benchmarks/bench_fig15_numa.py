"""Figure 15: MMU-less CPU-bounce vs NeuMMU-enabled NUMA for embeddings."""

from repro.analysis import fig15_numa

from .common import emit, run_once


def bench_fig15(benchmark):
    figure = run_once(benchmark, fig15_numa)
    emit(figure)
    # Fast NUMA must beat slow NUMA must beat the CPU-bounce baseline.
    for model in ("NCF", "DLRM"):
        base = figure.value(f"{model}/b64/baseline", "total")
        slow = figure.value(f"{model}/b64/numa_slow", "total")
        fast = figure.value(f"{model}/b64/numa_fast", "total")
        assert fast <= slow <= base
