"""Shared benchmark plumbing.

Each bench_*.py regenerates one paper table/figure.  Results are written to
``benchmarks/results/<figure>.txt`` and echoed to the *real* stdout so they
survive pytest's capture into ``bench_output.txt`` logs.

Environment knobs:

* ``NEUMMU_FULL=1`` — run the paper's full b01/b04/b08 batch grid for the
  dense sweeps (default: b01+b08, which preserves every trend at roughly
  half the runtime).
* ``NEUMMU_JOBS=N`` — shard sweep grid points across N worker processes
  (0 = all CPUs; default 1 = serial).
* ``NEUMMU_CACHE_DIR=path`` — persist simulation results on disk so
  repeated benchmark runs skip already-simulated grid points.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Optional, Tuple

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def batch_grid() -> Tuple[int, ...]:
    """Dense-sweep batch grid (trimmed by default; NEUMMU_FULL=1 for all)."""
    if os.environ.get("NEUMMU_FULL"):
        return (1, 4, 8)
    return (1, 8)


def jobs() -> int:
    """Worker-process count for sweeps (``NEUMMU_JOBS``, default serial)."""
    return int(os.environ.get("NEUMMU_JOBS", "1"))


def cache_dir() -> Optional[Path]:
    """On-disk result-cache directory (``NEUMMU_CACHE_DIR``), if set."""
    value = os.environ.get("NEUMMU_CACHE_DIR")
    return Path(value) if value else None


def experiment_runner(**overrides):
    """An :class:`~repro.analysis.runner.ExperimentRunner` honouring the
    ``NEUMMU_JOBS``/``NEUMMU_CACHE_DIR`` environment knobs."""
    from repro.analysis.runner import ExperimentRunner

    overrides.setdefault("jobs", jobs())
    overrides.setdefault("cache_dir", cache_dir())
    return ExperimentRunner(**overrides)


def emit(figure) -> None:
    """Persist and display one rendered FigureResult."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = figure.render()
    (RESULTS_DIR / f"{figure.figure_id}.txt").write_text(text + "\n")
    # Bypass pytest capture so the table lands in tee'd logs.
    print(f"\n{text}\n", file=sys.__stdout__, flush=True)


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
