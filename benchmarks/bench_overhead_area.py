"""Section IV-E: implementation overhead (SRAM, area, leakage)."""

from repro.analysis import overhead_area

from .common import emit, run_once


def bench_overhead(benchmark):
    figure = run_once(benchmark, overhead_area)
    emit(figure)
    # Paper's arithmetic: 32 KB PRMB + 2 KB TPreg + 768 B PTS.
    assert figure.value("PRMB", "kb") == 32.0
    assert abs(figure.value("total", "area_mm2") - 0.10) < 0.02
