"""Section IV-C: TPC (virtual path tags) vs UPTC (physical entry tags)."""

from repro.analysis import tpc_vs_uptc

from .common import emit, run_once


def bench_tpc_vs_uptc(benchmark):
    figure = run_once(benchmark, tpc_vs_uptc)
    emit(figure)
    # Paper's ordering: TPC skips at least as many walk references as UPTC.
    assert figure.mean("tpc_skip_rate") >= figure.mean("uptc_skip_rate") - 0.01
