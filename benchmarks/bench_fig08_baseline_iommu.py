"""Figure 8: the GPU-centric baseline IOMMU collapses on NPU bursts."""

from repro.analysis import fig8_baseline_iommu

from .common import batch_grid, emit, experiment_runner, run_once


def bench_fig08(benchmark):
    figure = run_once(benchmark, lambda: fig8_baseline_iommu(batches=batch_grid(), runner=experiment_runner()))
    emit(figure)
    # Paper: ~95% average performance loss vs the oracular MMU.
    assert figure.mean("normalized_perf") < 0.25
