"""Perf-regression harness: wall-clock + translations/sec per scenario.

Times three scenarios that exercise the simulator's distinct hot paths
and writes ``benchmarks/results/BENCH_perf.json``:

* ``engine_fastpath`` — the batched translation engine alone (streaming
  bursts on the NeuMMU design point; PR 1's fast path).
* ``single_tenant`` — a full workload run (CNN-1 on NeuMMU; tile
  pipeline + FAST fidelity + engine).
* ``qos_sweep`` — the full 9-combo share-policy × arbitration sweep on
  the 8-walker baseline IOMMU (2 RNN-2 tenants, 2:1 weights): the
  multi-tenant contended path this repo's QoS studies live on.  Honours
  ``NEUMMU_JOBS`` (grid cells shard across processes); committed
  baselines are always serial.
* ``contended_sweep`` — the walker-completion-calendar path isolated:
  3 RNN-2 tenants saturating the 8-walker IOMMU under the two
  non-trivial QoS regimes, so the weekly gate watches the calendar's
  bulk-retire discipline directly.  Recorded from PR 8 onward.
* ``quota_hit_phase`` — the quota burn-down planner's target shape
  isolated: two weighted tenants alternating cold-walk trains with long
  resident hit stretches, so walker completions come due *inside* the
  stretches and ``NEUMMU_QUOTA_BATCH`` retires them in closed form.
  Recorded from PR 9 onward.
* ``quota_miss_phase`` — the mixed-window miss planner's target shape
  isolated: two weighted tenants alternating saturated cold-page storms
  (one transaction per fresh page, shot down between bursts so every
  pass stays cold), so the issue port lives in the blocked
  stall/retire/restart chain ``NEUMMU_MISS_BATCH`` retires as whole
  windows (``plan_window``/``drain_window``).  Recorded from PR 10
  onward.
* ``demand_paging`` — one DLRM Figure 16 cell on the 8-walker IOMMU
  plus a 2-tenant paged contention run through the memory-tier
  subsystem (``repro.memory.tiering``): fault handling, migration-fabric
  accounting and budget eviction on the shootdown path.  Recorded from
  PR 5 onward (no earlier baseline exists for it).

Each scenario reports wall-clock seconds, the number of translation
requests it retired, and translations/sec — the throughput number to
watch across PRs.  ``BASELINE`` pins per-PR before/after pairs, each
measured back to back on that PR's development machine (PR 4: the
event-driven scheduling core; PR 6: the columnar transaction core,
including the reference-engine-mode numbers the columnar path is
golden-diffed against).  Compare like-for-like: absolute numbers are
machine-dependent; the *ratio* between a fresh run and a stored run on
the same machine is the signal.

Run directly (``python -m benchmarks.bench_perf``) or via the weekly CI
job, which passes ``--check``: every scenario's throughput ratio against
the committed root ``BENCH_perf.json`` is normalized by the
cross-scenario median (machine speed cancels out) and the job fails if
any scenario sits more than 20% below the normalized expectation
(records of schema 1 and 2 both compare).  Output goes to
``benchmarks/results/BENCH_perf.json``
(gitignored, like every generated benchmark artifact) so local and CI
runs never dirty the working tree; the copy committed at the repository
root is PR 10's frozen record (columnar engine + completion calendar +
quota burn-down + mixed-window planners), regenerated only when a PR
intentionally moves the needle.  ``NEUMMU_PERF_OUT`` overrides the
output path.

Paired A/B mode (``--paired VAR=a,b [--pairs N] [--only s1,s2]``): times
each scenario under both values of one environment knob, *interleaved*
back to back (A then B, order flipped every pair so ambient machine
drift cancels instead of biasing one leg), and reports the per-scenario
median throughput ratio b/a with its inter-quartile range.  This is the
methodology behind the per-PR ledger claims: single unpaired runs on a
shared box swing ±20% on ambient load alone, which is larger than most
effects being measured.

Records are schema 2 from PR 10 onward: each run carries its
environment provenance (every ``NEUMMU_*`` flag, the effective job
count, the CPU count) so a stored number can never be silently compared
against a run under different knobs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Before/after pairs measured back to back on one machine per PR (see
#: module docstring).  Kept in the output so the bench trajectory has
#: fixed points even on fresh checkouts.
BASELINE = {
    "note": (
        "each pre/post pair was measured back to back on that PR's "
        "development machine; compare ratios, not absolute numbers, "
        "across machines"
    ),
    "pre_pr4": {
        "engine_fastpath": {"wall_s": 0.129, "translations_per_sec": 2027699},
        "single_tenant": {"wall_s": 1.285, "translations_per_sec": 239641},
        "qos_sweep": {"wall_s": 30.138, "translations_per_sec": 88184},
    },
    "post_pr4": {
        "engine_fastpath": {"wall_s": 0.109, "translations_per_sec": 2409145},
        "single_tenant": {"wall_s": 0.926, "translations_per_sec": 332443},
        "qos_sweep": {"wall_s": 10.150, "translations_per_sec": 261847},
    },
    # PR 6 (columnar transaction core): the pre_pr6 row is the PR 5 tree
    # on the PR 6 machine; pr6_reference_engine is the same tree as the
    # current scenarios but with NEUMMU_ENGINE=reference — the per-object
    # golden path the columnar engine is diffed against bit for bit.
    "pre_pr6": {
        "engine_fastpath": {"wall_s": 0.148, "translations_per_sec": 1775662},
        "single_tenant": {"wall_s": 1.295, "translations_per_sec": 237630},
        "qos_sweep": {"wall_s": 14.127, "translations_per_sec": 188133},
        "demand_paging": {"wall_s": 1.932, "translations_per_sec": 95467},
    },
    "pr6_reference_engine": {
        "engine_fastpath": {"wall_s": 0.320, "translations_per_sec": 819603},
        "single_tenant": {"wall_s": 1.280, "translations_per_sec": 240565},
        "qos_sweep": {"wall_s": 18.558, "translations_per_sec": 143205},
        "demand_paging": {"wall_s": 1.863, "translations_per_sec": 99052},
    },
    # PR 8 (batched walker-completion calendar): the pre_pr8 row is the
    # PR 7 tree on the PR 8 machine (no contended_sweep scenario existed
    # yet), measured back to back with post_pr8.  The PR 8 machine is a
    # noisy shared 1-CPU box: repeated pairs put the qos_sweep gain at
    # 1.15-1.6x depending on ambient load — honest numbers, well short
    # of the 3x single-process target (see README "Performance").
    "pre_pr8": {
        "engine_fastpath": {"wall_s": 0.143, "translations_per_sec": 1830781},
        "single_tenant": {"wall_s": 1.112, "translations_per_sec": 276704},
        "qos_sweep": {"wall_s": 7.536, "translations_per_sec": 352665},
        "demand_paging": {"wall_s": 1.244, "translations_per_sec": 148353},
    },
    "post_pr8": {
        "engine_fastpath": {"wall_s": 0.185, "translations_per_sec": 1418611},
        "single_tenant": {"wall_s": 1.055, "translations_per_sec": 291915},
        "qos_sweep": {"wall_s": 6.455, "translations_per_sec": 411725},
        "contended_sweep": {"wall_s": 2.660, "translations_per_sec": 333011},
        "demand_paging": {"wall_s": 1.262, "translations_per_sec": 146177},
    },
    # PR 9 (closed-form quota burn-down): pre_pr9 is the PR 9 tree with
    # NEUMMU_QUOTA_BATCH=0 (the per-event hit/retire ping-pong), post_pr9
    # the default batched planner; each row is the per-scenario median of
    # three interleaved back-to-back pairs on the same noisy shared box.
    # Interleaved paired ratios put qos_sweep off/on at a median of ~1.01
    # (parity; individual pairs swing 0.91-1.24 on ambient load alone),
    # far short of the 1.5x batching goal for this phase: on the RNN
    # sweeps hit stretches carry one or two dues and sit below the
    # planner's three-due profitability gate, and even quota_hit_phase —
    # which engages the planner on every burst (200 planned stretches,
    # 900 deferred retirements, zero fallbacks) — stays at parity because
    # the per-event mode already span-batches *between* dues and the dues
    # per stretch are bounded by walker-pool depth.  See README
    # "Performance" for the full accounting.
    "pre_pr9": {
        "engine_fastpath": {"wall_s": 0.162, "translations_per_sec": 1619828},
        "single_tenant": {"wall_s": 1.137, "translations_per_sec": 270708},
        "qos_sweep": {"wall_s": 5.594, "translations_per_sec": 475131},
        "contended_sweep": {"wall_s": 2.550, "translations_per_sec": 347468},
        "quota_hit_phase": {"wall_s": 0.595, "translations_per_sec": 1028006},
        "demand_paging": {"wall_s": 1.349, "translations_per_sec": 136781},
    },
    "post_pr9": {
        "engine_fastpath": {"wall_s": 0.140, "translations_per_sec": 1867134},
        "single_tenant": {"wall_s": 1.051, "translations_per_sec": 292837},
        "qos_sweep": {"wall_s": 6.317, "translations_per_sec": 420710},
        "contended_sweep": {"wall_s": 2.576, "translations_per_sec": 343954},
        "quota_hit_phase": {"wall_s": 0.592, "translations_per_sec": 1032969},
        "demand_paging": {"wall_s": 1.334, "translations_per_sec": 138300},
    },
    # PR 10 (mixed-window miss-phase batching): pre_pr10 is the PR 10
    # tree with NEUMMU_MISS_BATCH=0 (per-event miss path), post_pr10 the
    # default mixed-window planner; one full back-to-back run per mode on
    # the same shared box.  These single-shot rows drift with ambient
    # load — the signal is the interleaved paired mode (``--paired
    # NEUMMU_MISS_BATCH=0,1 --pairs 5``), whose medians are 0.99x on
    # quota_miss_phase (IQR 0.96-0.99), 0.96x on qos_sweep (0.95-0.97)
    # and 1.02x on contended_sweep (1.02-1.04): parity, short of the
    # 1.5x/1.25x goals.  MISS_WINDOW telemetry explains it — on
    # quota_miss_phase all 900 mixed-window attempts decline with
    # fail_quota_bound at an average provable prefix of 3 transactions
    # (under the 12-txn floor), and the 150 own-windows that do plan
    # (~47% of the scenario's transactions) replace a per-event chain
    # that already span-batches between completions.  See README
    # "Performance" and ROADMAP open item 2.
    "pre_pr10": {
        "engine_fastpath": {"wall_s": 0.158, "translations_per_sec": 1663588},
        "single_tenant": {"wall_s": 1.181, "translations_per_sec": 260637},
        "qos_sweep": {"wall_s": 5.868, "translations_per_sec": 452899},
        "contended_sweep": {"wall_s": 2.848, "translations_per_sec": 311047},
        "quota_hit_phase": {"wall_s": 0.663, "translations_per_sec": 923025},
        "quota_miss_phase": {"wall_s": 0.375, "translations_per_sec": 96114},
        "demand_paging": {"wall_s": 1.459, "translations_per_sec": 126424},
    },
    "post_pr10": {
        "engine_fastpath": {"wall_s": 0.149, "translations_per_sec": 1756894},
        "single_tenant": {"wall_s": 1.043, "translations_per_sec": 295020},
        "qos_sweep": {"wall_s": 6.208, "translations_per_sec": 428133},
        "contended_sweep": {"wall_s": 3.240, "translations_per_sec": 273451},
        "quota_hit_phase": {"wall_s": 0.728, "translations_per_sec": 840274},
        "quota_miss_phase": {"wall_s": 0.457, "translations_per_sec": 78725},
        "demand_paging": {"wall_s": 1.543, "translations_per_sec": 119569},
    },
}


def engine_fastpath():
    """Streaming bursts straight through the batched engine (NeuMMU)."""
    from repro.core.engine import TranslationEngine
    from repro.core.mmu import MMU, neummu_config
    from repro.memory.dram import MainMemory
    from repro.memory.page_table import PageTable

    base = 0x7F00_0000_0000
    page = 4096
    n_pages = 2048
    table = PageTable()
    table.map_range(base, n_pages * page, first_pfn=10)
    txs = [(base + k * 256, 256) for k in range(n_pages * 16)]
    mmu = MMU(neummu_config(), table)
    engine = TranslationEngine(mmu, MainMemory())
    started = time.perf_counter()
    for burst in range(8):
        engine.run_burst(txs, burst * 1e7)
    mmu.drain()
    return time.perf_counter() - started, mmu.stats.requests


def single_tenant():
    """One full CNN-1 workload on the NeuMMU design point."""
    from repro.core.mmu import neummu_config
    from repro.npu.simulator import run_workload
    from repro.workloads.registry import dense_workload

    workload = dense_workload("CNN-1", 1)
    started = time.perf_counter()
    result = run_workload(workload, neummu_config())
    return time.perf_counter() - started, result.mmu_summary.requests


def qos_sweep():
    """All 9 policy × arbitration combos, 2 tenants on the 8-walker IOMMU.

    Honours ``NEUMMU_JOBS``: the 9 grid cells are independent, so they
    shard across worker processes through
    :class:`~repro.analysis.parallel.ParallelRunner` (results identical;
    the committed baseline numbers are always ``NEUMMU_JOBS=1``).
    """
    from repro.analysis.parallel import ParallelRunner, TenantRunRequest
    from repro.core.mmu import baseline_iommu_config
    from repro.core.qos import ARBITRATION_POLICIES, SHARE_POLICIES
    from repro.workloads.registry import DenseWorkloadFactory

    factory = DenseWorkloadFactory("RNN-2", 1)
    config = baseline_iommu_config()
    cells = [
        TenantRunRequest(
            label=f"qos_sweep/{qos}/{arbitration}",
            factories=(factory, factory),
            mmu_config=config,
            arbitration=arbitration,
            qos=qos,
            weights=(2.0, 1.0),
        )
        for qos in SHARE_POLICIES
        for arbitration in ARBITRATION_POLICIES
    ]
    runner = ParallelRunner(jobs=int(os.environ.get("NEUMMU_JOBS", "1")))
    started = time.perf_counter()
    outcomes = runner.run_many(cells)
    requests = sum(o.result.mmu_summary.requests for o in outcomes)
    return time.perf_counter() - started, requests


def contended_sweep():
    """The calendar-batched contended walk path, isolated.

    Three RNN-2 tenants saturate the 8-walker IOMMU's walker pool under
    the two non-trivial QoS regimes (hard partitions under round robin,
    work-conserving weighted quotas under the quantum arbiter) — the
    sustained quota-regime miss bursts the walker-completion calendar
    retires in bulk.  Separate from ``qos_sweep`` so the weekly gate can
    tell a contended-path regression from a sweep-harness one.
    """
    from repro.core.mmu import baseline_iommu_config
    from repro.npu.simulator import run_multi_tenant
    from repro.workloads.registry import DenseWorkloadFactory

    factory = DenseWorkloadFactory("RNN-2", 1)
    started = time.perf_counter()
    requests = 0
    for qos, arbitration in (
        ("static_partition", "round_robin"),
        ("weighted", "weighted_quantum"),
    ):
        result = run_multi_tenant(
            factory,
            baseline_iommu_config(),
            3,
            arbitration=arbitration,
            qos=qos,
            weights=(3.0, 2.0, 1.0),
        )
        requests += result.mmu_summary.requests
    return time.perf_counter() - started, requests


def quota_hit_phase():
    """The quota burn-down planner's target, isolated.

    Two weighted tenants on the 8-walker IOMMU alternate bursts that
    saturate the walker pool with cold pages and then hold a single
    resident page's hit stretch open for hundreds of transactions — so
    the in-flight walker completions come due *inside* the hit stretch,
    the hit/retire ping-pong ``NEUMMU_QUOTA_BATCH`` retires in closed
    form (``plan_hits``/``drain_hits``).  The RNN-driven sweeps barely
    expose this shape (their hit runs are short and carry one or two
    dues); this cell pins it so the weekly gate watches the burn-down
    discipline directly.  Recorded from PR 9 onward.
    """
    from dataclasses import replace

    from repro.core.engine import TranslationEngine
    from repro.core.mmu import MMU, baseline_iommu_config
    from repro.memory.address import PAGE_SIZE_4K
    from repro.memory.dram import MainMemory
    from repro.memory.page_table import PageTable
    from repro.npu.dma import ColumnarTransactionStream

    base = 0x7F00_0000_0000
    n_pages = 256
    config = replace(
        baseline_iommu_config(), engine_mode="columnar", qos="weighted"
    )
    mmu = MMU(config, None)
    for asid, first_pfn, weight in ((0, 10, 2.0), (5, 500_000, 1.0)):
        table = PageTable()
        table.map_range(base, n_pages * PAGE_SIZE_4K, first_pfn=first_pfn)
        mmu.register_context(asid, table, weight=weight)
    engine = TranslationEngine(mmu, MainMemory())
    started = time.perf_counter()
    cycle = 0.0
    for burst in range(200):
        asid = (0, 5)[burst & 1]
        head = (burst * 60) % (n_pages - 60)
        pairs = [(base + (head + k) * PAGE_SIZE_4K, 256) for k in range(60)]
        hot = base + head * PAGE_SIZE_4K
        pairs.extend((hot + (k % 16) * 256, 256) for k in range(3000))
        txs = ColumnarTransactionStream.from_pairs(pairs, PAGE_SIZE_4K)
        engine.run_burst(txs, cycle, asid)
        # Unmap the burst's window (streaming churn): occupancy stays
        # bounded below the weighted quota, so the deferred fills remain
        # admissible and the planner engages on every burst rather than
        # declining on quota-bound once the TLB fills up.
        mmu.drain()
        for k in range(60):
            mmu.shootdown(base // PAGE_SIZE_4K + head + k, asid)
        cycle += 1e6
    mmu.drain()
    return time.perf_counter() - started, mmu.stats.requests


def quota_miss_phase():
    """The mixed-window miss planner's target, isolated.

    Two weighted tenants on the 8-walker IOMMU alternate saturated
    cold-page storms: one transaction per fresh page keeps the walker
    pool full and the issue port fully blocked, so between interaction
    points the engine lives in the FIFO stall/retire/restart chain that
    ``NEUMMU_MISS_BATCH`` plans and retires as whole mixed windows
    (``plan_window``/``drain_window``).  Each burst's pages are shot
    down afterwards so every pass stays cold (sustained miss phase, no
    hit stretches).  The quota policy makes every window a *policied*
    window: the planner must prove it via the pointwise gate or the
    closed-form quota trajectory, exactly the regime the PR 10 ledger
    measures.  Recorded from PR 10 onward.
    """
    from dataclasses import replace

    from repro.core.engine import TranslationEngine
    from repro.core.mmu import MMU, baseline_iommu_config
    from repro.memory.address import PAGE_SIZE_4K
    from repro.memory.dram import MainMemory
    from repro.memory.page_table import PageTable
    from repro.npu.dma import ColumnarTransactionStream

    base = 0x7F00_0000_0000
    n_pages = 512
    config = replace(
        baseline_iommu_config(), engine_mode="columnar", qos="weighted"
    )
    mmu = MMU(config, None)
    for asid, first_pfn, weight in ((0, 10, 2.0), (5, 500_000, 1.0)):
        table = PageTable()
        table.map_range(base, n_pages * PAGE_SIZE_4K, first_pfn=first_pfn)
        mmu.register_context(asid, table, weight=weight)
    engine = TranslationEngine(mmu, MainMemory())
    started = time.perf_counter()
    cycle = 0.0
    span = 120
    for rnd in range(150):
        heads = []
        for slot, asid in enumerate((0, 5)):
            head = ((rnd * 2 + slot) * 97) % (n_pages - span)
            heads.append((asid, head))
            # Rotate the intra-page offset so consecutive fresh pages
            # land on distinct DRAM channels (page-aligned 4 KiB strides
            # alias to one channel and the queueing declines every plan).
            pairs = [
                (base + (head + k) * PAGE_SIZE_4K + (k % 16) * 256, 256)
                for k in range(span)
            ]
            txs = ColumnarTransactionStream.from_pairs(pairs, PAGE_SIZE_4K)
            # The second tenant's burst abuts the first (cycle + 7, the
            # fuzz harness's spacing): the first tenant's residual
            # in-flight walks sit at the head of the second's windows,
            # making them *mixed* — the quota-trajectory regime this
            # scenario exists to measure.
            engine.run_burst(txs, cycle + slot * 7, asid)
        mmu.drain()
        for asid, head in heads:
            for k in range(span):
                mmu.shootdown(base // PAGE_SIZE_4K + head + k, asid)
        cycle += 1e6
    mmu.drain()
    return time.perf_counter() - started, mmu.stats.requests


def demand_paging():
    """Demand-paged translation: one Fig. 16 cell + a paged 2-tenant run."""
    from repro.core.mmu import baseline_iommu_config
    from repro.memory.address import PAGE_SIZE_4K
    from repro.npu.simulator import MultiTenantSimulator
    from repro.sparse.demand_paging import DemandPagingConfig, demand_paging_cell
    from repro.workloads.embedding import dlrm
    from repro.workloads.registry import mix_factories

    mb = 1024 * 1024
    system = DemandPagingConfig(
        batches=12, warm_batches=5, table_rows=200_000,
        local_budget_bytes=48 * mb,
    )
    started = time.perf_counter()
    cell = demand_paging_cell(
        dlrm(), baseline_iommu_config(page_size=PAGE_SIZE_4K), 8, system
    )
    requests = cell.mmu_summary.requests
    sim = MultiTenantSimulator(
        [factory() for factory in mix_factories("rnn,recsys")],
        baseline_iommu_config(),
        qos="weighted",
        arbitration="weighted_quantum",
        weights=(2.0, 1.0),
        memory_budgets=(32 * mb, 32 * mb),
    )
    requests += sim.run().mmu_summary.requests
    return time.perf_counter() - started, requests


SCENARIOS = (
    ("engine_fastpath", engine_fastpath),
    ("single_tenant", single_tenant),
    ("qos_sweep", qos_sweep),
    ("contended_sweep", contended_sweep),
    ("quota_hit_phase", quota_hit_phase),
    ("quota_miss_phase", quota_miss_phase),
    ("demand_paging", demand_paging),
)


def environment_provenance() -> dict:
    """The knobs a stored record was measured under (schema 2).

    Every ``NEUMMU_*`` environment flag, the effective worker count the
    sweeps shard across, and the CPU count — enough to refuse an
    apples-to-oranges comparison when a record from a different
    configuration sneaks into a ledger.
    """
    return {
        "neummu_flags": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("NEUMMU_")
        },
        "jobs": int(os.environ.get("NEUMMU_JOBS", "1")),
        "cpu_count": os.cpu_count(),
    }


def run_bench(out_path: Path | None = None) -> dict:
    """Time every scenario and write ``BENCH_perf.json``; returns the doc."""
    scenarios = {}
    for name, scenario in SCENARIOS:
        wall, translations = scenario()
        scenarios[name] = {
            "wall_s": round(wall, 3),
            "translations": translations,
            "translations_per_sec": round(translations / wall),
        }
        print(
            f"{name:16s} {wall:8.3f} s   "
            f"{scenarios[name]['translations_per_sec']:>10,} translations/s",
            flush=True,
        )
    doc = {
        "schema": 2,
        "generated_unix": int(time.time()),
        "environment": environment_provenance(),
        "scenarios": scenarios,
        "baseline": BASELINE,
    }
    path = out_path or Path(
        os.environ.get(
            "NEUMMU_PERF_OUT",
            REPO_ROOT / "benchmarks" / "results" / "BENCH_perf.json",
        )
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {path}")
    return doc


#: A scenario fails the regression gate when its throughput falls more
#: than this far below the machine-normalized expectation.
REGRESSION_TOLERANCE = 0.20


def check_regressions(doc: dict, committed_path: Path) -> list:
    """Compare ``doc`` against the committed record; return failures.

    Absolute numbers are machine-dependent, so the gate follows the
    baseline note and compares *ratios*: each scenario's current
    translations/sec over the committed record's, normalized by the
    median ratio across scenarios.  A uniformly slower (or faster)
    runner moves every scenario together and normalizes out; a real
    regression drags its scenario more than ``REGRESSION_TOLERANCE``
    below the rest and fails the check.
    """
    try:
        committed = json.loads(committed_path.read_text())
    except FileNotFoundError:
        return [f"no committed baseline at {committed_path}"]
    schema = committed.get("schema")
    if schema not in (1, 2):
        # Schema 1 records predate environment provenance; schema 2
        # carries it.  Either compares — the gate only reads scenario
        # throughputs — but an unknown future schema must fail loudly
        # rather than silently comparing incompatible records.
        return [f"unsupported BENCH_perf schema {schema!r} in {committed_path}"]
    baseline = committed.get("scenarios", {})
    ratios = {}
    for name, current in doc["scenarios"].items():
        ref = baseline.get(name, {}).get("translations_per_sec")
        if ref:
            ratios[name] = current["translations_per_sec"] / ref
    if not ratios:
        return [f"no comparable scenarios in {committed_path}"]
    ordered = sorted(ratios.values())
    median = ordered[len(ordered) // 2]
    if median <= 0:
        return ["degenerate throughput ratios (median <= 0)"]
    failures = []
    floor = 1.0 - REGRESSION_TOLERANCE
    print(f"\nregression check vs {committed_path} (median ratio {median:.3f}):")
    for name, ratio in sorted(ratios.items()):
        normalized = ratio / median
        verdict = "ok" if normalized >= floor else "REGRESSION"
        print(f"  {name:16s} {normalized:6.3f}x of expected   {verdict}")
        if normalized < floor:
            failures.append(
                f"{name}: {normalized:.3f}x of machine-normalized expected "
                f"throughput (> {REGRESSION_TOLERANCE:.0%} regression vs "
                f"{committed_path.name})"
            )
    return failures


def bench_perf(benchmark):
    """pytest-benchmark entry point (one timed pass, like the figures)."""
    benchmark.pedantic(run_bench, rounds=1, iterations=1)


def _quartiles(values: list) -> tuple:
    """(q1, median, q3) by linear interpolation (inclusive method)."""
    ordered = sorted(values)
    n = len(ordered)

    def at(q: float) -> float:
        pos = q * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    return at(0.25), at(0.5), at(0.75)


def run_paired(var_spec: str, pairs: int = 3, only=None) -> dict:
    """Interleaved paired A/B runs over one environment knob.

    ``var_spec`` is ``VAR=a,b``.  Each pair times every selected
    scenario under value ``a`` and value ``b`` back to back (the A/B
    order flips every pair, so slow ambient drift hits both legs
    equally instead of biasing whichever ran second), and the ratio
    recorded is leg-b throughput over leg-a.  Reports — and returns —
    the per-scenario median ratio with its inter-quartile range, the
    numbers the per-PR perf ledger cites.
    """
    var, _, values = var_spec.partition("=")
    if not var or "," not in values:
        raise SystemExit(f"--paired expects VAR=a,b, got {var_spec!r}")
    a_val, b_val = (v.strip() for v in values.split(",", 1))
    names = [
        (name, fn) for name, fn in SCENARIOS
        if only is None or name in only
    ]
    if not names:
        raise SystemExit(f"--only matched no scenarios out of {only!r}")
    before = os.environ.get(var)
    ratios: dict = {name: [] for name, _ in names}
    try:
        for k in range(pairs):
            legs = (a_val, b_val) if k % 2 == 0 else (b_val, a_val)
            for name, fn in names:
                tps = {}
                for val in legs:
                    os.environ[var] = val
                    wall, translations = fn()
                    tps[val] = translations / wall
                ratio = tps[b_val] / tps[a_val]
                ratios[name].append(ratio)
                print(
                    f"pair {k + 1}/{pairs}  {name:16s} "
                    f"{var}={a_val}: {tps[a_val]:>12,.0f}/s   "
                    f"{var}={b_val}: {tps[b_val]:>12,.0f}/s   "
                    f"ratio {ratio:.3f}",
                    flush=True,
                )
    finally:
        if before is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = before
    summary = {}
    print(
        f"\npaired {var}={a_val} vs {b_val} over {pairs} interleaved "
        f"pairs (ratio = {b_val}-leg throughput / {a_val}-leg):"
    )
    for name, _ in names:
        q1, median, q3 = _quartiles(ratios[name])
        summary[name] = {
            "median_ratio": round(median, 3),
            "iqr": [round(q1, 3), round(q3, 3)],
            "ratios": [round(r, 3) for r in ratios[name]],
        }
        print(
            f"  {name:16s} median {median:5.2f}x   "
            f"IQR [{q1:.2f}, {q3:.2f}]"
        )
    return {
        "schema": 2,
        "paired": {"var": var, "a": a_val, "b": b_val, "pairs": pairs},
        "environment": environment_provenance(),
        "scenarios": summary,
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paired = None
    pairs = 3
    only = None
    it = iter(argv)
    for arg in it:
        if arg == "--paired":
            paired = next(it, None)
            if paired is None:
                raise SystemExit("--paired requires VAR=a,b")
        elif arg == "--pairs":
            pairs = int(next(it, "3"))
        elif arg == "--only":
            only = set((next(it, "") or "").split(","))
    if paired is not None:
        run_paired(paired, pairs=pairs, only=only)
        return 0
    doc = run_bench()
    if "--check" in argv:
        failures = check_regressions(doc, REPO_ROOT / "BENCH_perf.json")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
