"""Perf-regression harness: wall-clock + translations/sec per scenario.

Times three scenarios that exercise the simulator's distinct hot paths
and writes ``benchmarks/results/BENCH_perf.json``:

* ``engine_fastpath`` — the batched translation engine alone (streaming
  bursts on the NeuMMU design point; PR 1's fast path).
* ``single_tenant`` — a full workload run (CNN-1 on NeuMMU; tile
  pipeline + FAST fidelity + engine).
* ``qos_sweep`` — the full 9-combo share-policy × arbitration sweep on
  the 8-walker baseline IOMMU (2 RNN-2 tenants, 2:1 weights): the
  multi-tenant contended path this repo's QoS studies live on.
* ``demand_paging`` — one DLRM Figure 16 cell on the 8-walker IOMMU
  plus a 2-tenant paged contention run through the memory-tier
  subsystem (``repro.memory.tiering``): fault handling, migration-fabric
  accounting and budget eviction on the shootdown path.  Recorded from
  PR 5 onward (no earlier baseline exists for it).

Each scenario reports wall-clock seconds, the number of translation
requests it retired, and translations/sec — the throughput number to
watch across PRs.  ``BASELINE`` pins the numbers measured immediately
before and after PR 4 (the event-driven scheduling core + contended
batching) on the PR 4 development machine, so the written JSON always
records that PR's before/after alongside the current run.  Compare
like-for-like: absolute numbers are machine-dependent; the *ratio*
between a fresh run and a stored run on the same machine is the signal.

Run directly (``python -m benchmarks.bench_perf``) or via the weekly CI
job (non-blocking).  Output goes to ``benchmarks/results/BENCH_perf.json``
(gitignored, like every generated benchmark artifact) so local and CI
runs never dirty the working tree; the copy committed at the repository
root is PR 4's frozen record, regenerated only when a PR intentionally
moves the needle.  ``NEUMMU_PERF_OUT`` overrides the output path.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: PR 4's before/after, measured back to back on one machine (see module
#: docstring).  Kept in the output so the bench trajectory has a first
#: fixed point even on fresh checkouts.
BASELINE = {
    "note": (
        "measured on the PR 4 development machine; compare ratios, "
        "not absolute numbers, across machines"
    ),
    "pre_pr4": {
        "engine_fastpath": {"wall_s": 0.129, "translations_per_sec": 2027699},
        "single_tenant": {"wall_s": 1.285, "translations_per_sec": 239641},
        "qos_sweep": {"wall_s": 30.138, "translations_per_sec": 88184},
    },
    "post_pr4": {
        "engine_fastpath": {"wall_s": 0.109, "translations_per_sec": 2409145},
        "single_tenant": {"wall_s": 0.926, "translations_per_sec": 332443},
        "qos_sweep": {"wall_s": 10.150, "translations_per_sec": 261847},
    },
}


def engine_fastpath():
    """Streaming bursts straight through the batched engine (NeuMMU)."""
    from repro.core.engine import TranslationEngine
    from repro.core.mmu import MMU, neummu_config
    from repro.memory.dram import MainMemory
    from repro.memory.page_table import PageTable

    base = 0x7F00_0000_0000
    page = 4096
    n_pages = 2048
    table = PageTable()
    table.map_range(base, n_pages * page, first_pfn=10)
    txs = [(base + k * 256, 256) for k in range(n_pages * 16)]
    mmu = MMU(neummu_config(), table)
    engine = TranslationEngine(mmu, MainMemory())
    started = time.perf_counter()
    for burst in range(8):
        engine.run_burst(txs, burst * 1e7)
    mmu.drain()
    return time.perf_counter() - started, mmu.stats.requests


def single_tenant():
    """One full CNN-1 workload on the NeuMMU design point."""
    from repro.core.mmu import neummu_config
    from repro.npu.simulator import run_workload
    from repro.workloads.registry import dense_workload

    workload = dense_workload("CNN-1", 1)
    started = time.perf_counter()
    result = run_workload(workload, neummu_config())
    return time.perf_counter() - started, result.mmu_summary.requests


def qos_sweep():
    """All 9 policy × arbitration combos, 2 tenants on the 8-walker IOMMU."""
    from repro.core.mmu import baseline_iommu_config
    from repro.core.qos import ARBITRATION_POLICIES, SHARE_POLICIES
    from repro.npu.simulator import run_multi_tenant
    from repro.workloads.registry import DenseWorkloadFactory

    factory = DenseWorkloadFactory("RNN-2", 1)
    started = time.perf_counter()
    requests = 0
    for qos in SHARE_POLICIES:
        for arbitration in ARBITRATION_POLICIES:
            result = run_multi_tenant(
                factory,
                baseline_iommu_config(),
                2,
                arbitration=arbitration,
                qos=qos,
                weights=(2.0, 1.0),
            )
            requests += result.mmu_summary.requests
    return time.perf_counter() - started, requests


def demand_paging():
    """Demand-paged translation: one Fig. 16 cell + a paged 2-tenant run."""
    from repro.core.mmu import baseline_iommu_config
    from repro.memory.address import PAGE_SIZE_4K
    from repro.npu.simulator import MultiTenantSimulator
    from repro.sparse.demand_paging import DemandPagingConfig, demand_paging_cell
    from repro.workloads.embedding import dlrm
    from repro.workloads.registry import mix_factories

    mb = 1024 * 1024
    system = DemandPagingConfig(
        batches=12, warm_batches=5, table_rows=200_000,
        local_budget_bytes=48 * mb,
    )
    started = time.perf_counter()
    cell = demand_paging_cell(
        dlrm(), baseline_iommu_config(page_size=PAGE_SIZE_4K), 8, system
    )
    requests = cell.mmu_summary.requests
    sim = MultiTenantSimulator(
        [factory() for factory in mix_factories("rnn,recsys")],
        baseline_iommu_config(),
        qos="weighted",
        arbitration="weighted_quantum",
        weights=(2.0, 1.0),
        memory_budgets=(32 * mb, 32 * mb),
    )
    requests += sim.run().mmu_summary.requests
    return time.perf_counter() - started, requests


SCENARIOS = (
    ("engine_fastpath", engine_fastpath),
    ("single_tenant", single_tenant),
    ("qos_sweep", qos_sweep),
    ("demand_paging", demand_paging),
)


def run_bench(out_path: Path | None = None) -> dict:
    """Time every scenario and write ``BENCH_perf.json``; returns the doc."""
    scenarios = {}
    for name, scenario in SCENARIOS:
        wall, translations = scenario()
        scenarios[name] = {
            "wall_s": round(wall, 3),
            "translations": translations,
            "translations_per_sec": round(translations / wall),
        }
        print(
            f"{name:16s} {wall:8.3f} s   "
            f"{scenarios[name]['translations_per_sec']:>10,} translations/s",
            flush=True,
        )
    doc = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "scenarios": scenarios,
        "baseline": BASELINE,
    }
    path = out_path or Path(
        os.environ.get(
            "NEUMMU_PERF_OUT",
            REPO_ROOT / "benchmarks" / "results" / "BENCH_perf.json",
        )
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"wrote {path}")
    return doc


def bench_perf(benchmark):
    """pytest-benchmark entry point (one timed pass, like the figures)."""
    benchmark.pedantic(run_bench, rounds=1, iterations=1)


if __name__ == "__main__":
    run_bench()
    sys.exit(0)
