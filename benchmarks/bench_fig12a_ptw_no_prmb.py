"""Figure 12a: walker scaling *without* PRMB — brute force works but wastes."""

from repro.analysis import fig12a_ptw_no_prmb

from .common import batch_grid, emit, experiment_runner, run_once


def bench_fig12a(benchmark):
    figure = run_once(benchmark, lambda: fig12a_ptw_no_prmb(batches=batch_grid(), runner=experiment_runner()))
    emit(figure)
    # Without merging, 128 walkers are not enough; ~1024 are (Figure 12a).
    assert figure.mean("ptw1024") > figure.mean("ptw128")
    assert figure.mean("ptw1024") > 0.9
