"""Table I: baseline configuration dump (sanity anchor for every bench)."""

from repro.analysis import table1_config

from .common import emit, run_once


def bench_table1(benchmark):
    figure = run_once(benchmark, table1_config)
    emit(figure)
    assert figure.value("IOMMU walkers", "value") == 8
