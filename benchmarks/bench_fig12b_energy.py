"""Figure 12b: performance/energy across [PRMB slots, walkers] pairs."""

from repro.analysis import fig12b_energy_sweep

from .common import emit, experiment_runner, run_once


def bench_fig12b(benchmark):
    figure = run_once(
        benchmark, lambda: fig12b_energy_sweep(runner=experiment_runner())
    )
    emit(figure)
    nominal = figure.value("[32,128]", "normalized_energy")
    extreme = figure.value("[1,4096]", "normalized_energy")
    # Paper: merging-free designs burn up to ~7.1x more translation energy.
    assert extreme > 3 * nominal
