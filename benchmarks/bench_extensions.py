"""Extension ablations beyond the paper's grid: translation prefetching and
a GPU-style two-level TLB, both applied to the baseline IOMMU."""

from repro.analysis import multilevel_tlb_ablation, prefetch_ablation

from .common import emit, run_once


def bench_prefetch(benchmark):
    figure = run_once(benchmark, prefetch_ablation)
    emit(figure)
    # Prefetching never hurts, helps a little, and stays far from oracle:
    # translation throughput, not anticipation, is the binding constraint.
    assert figure.mean("pf4") >= figure.mean("pf0") - 0.01
    assert figure.mean("pf4") < 0.7


def bench_multilevel_tlb(benchmark):
    figure = run_once(benchmark, multilevel_tlb_ablation)
    emit(figure)
    # Section III-C's claim, quantified: an L1/L2 TLB hierarchy moves the
    # baseline IOMMU by at most a few percent.
    assert abs(figure.mean("two_level") - figure.mean("single_level")) < 0.05
