"""Shared-MMU multi-tenant contention: per-tenant slowdown vs isolation.

Each tenant owns an ASID-tagged address space but contends with the others
for one TLB, one walker pool, the PRMB capacity and memory bandwidth.  The
oracle rows isolate pure bandwidth contention, so the gap between the
IOMMU/NeuMMU rows and the oracle rows is *translation* contention.
"""

import os

from repro.analysis import multi_tenant_contention

from .common import emit, run_once


def bench_multi_tenant(benchmark):
    tenants = 4 if os.environ.get("NEUMMU_FULL") else 2
    figure = run_once(benchmark, lambda: multi_tenant_contention(tenants=tenants))
    emit(figure)
    slowdowns = {"oracle": [], "iommu": [], "neummu": []}
    for row in figure.rows:
        config = row.label.split("/")[0]
        # Sharing never makes a tenant faster than running alone.
        assert row.values["slowdown"] >= 0.999
        slowdowns[config].append(row.values["slowdown"])
    mean = {k: sum(v) / len(v) for k, v in slowdowns.items() if v}
    # The 8-walker IOMMU's translation bottleneck amplifies contention;
    # NeuMMU's walker/PRMB headroom absorbs most of it.
    assert mean["iommu"] > mean["neummu"]
