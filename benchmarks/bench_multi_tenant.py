"""Shared-MMU multi-tenant contention: per-tenant slowdown vs isolation.

Each tenant owns an ASID-tagged address space but contends with the others
for one TLB, one walker pool, the PRMB capacity and memory bandwidth.  The
oracle rows isolate pure bandwidth contention, so the gap between the
IOMMU/NeuMMU rows and the oracle rows is *translation* contention.

``bench_qos_fairness`` additionally sweeps the QoS layer's share policies
(full_share / static_partition / weighted) under the clock-ordered
``weighted_quantum`` arbiter and checks the fairness invariants: Jain's
index stays in (0, 1] and a weight-reserved tenant is never slower than
under full sharing.
"""

import os

from repro.analysis import fairness, multi_tenant_contention

from .common import emit, run_once


def bench_multi_tenant(benchmark):
    tenants = 4 if os.environ.get("NEUMMU_FULL") else 2
    figure = run_once(benchmark, lambda: multi_tenant_contention(tenants=tenants))
    emit(figure)
    slowdowns = {"oracle": [], "iommu": [], "neummu": []}
    for row in figure.rows:
        config = row.label.split("/")[0]
        # Sharing never makes a tenant faster than running alone.
        assert row.values["slowdown"] >= 0.999
        slowdowns[config].append(row.values["slowdown"])
    mean = {k: sum(v) / len(v) for k, v in slowdowns.items() if v}
    # The 8-walker IOMMU's translation bottleneck amplifies contention;
    # NeuMMU's walker/PRMB headroom absorbs most of it.
    assert mean["iommu"] > mean["neummu"]


def bench_qos_fairness(benchmark):
    workload = "CNN-1" if os.environ.get("NEUMMU_FULL") else "RNN-2"
    figure = run_once(benchmark, lambda: fairness(workload=workload))
    emit(figure)
    by_policy = {}
    for row in figure.rows:
        config, policy, _ = row.label.split("/")
        cell = by_policy.setdefault((config, policy), {"slowdowns": []})
        cell["slowdowns"].append(row.values["slowdown"])
        cell["jain"] = row.values["jain_index"]
    for (config, policy), cell in by_policy.items():
        assert 0.0 < cell["jain"] <= 1.0, (config, policy, cell)
        # Sharing never makes a tenant faster than running alone.
        assert all(s >= 0.999 for s in cell["slowdowns"]), (config, policy)
    for config in ("iommu", "neummu"):
        full = by_policy[(config, "full_share")]["slowdowns"]
        for policy in ("static_partition", "weighted"):
            reserved = by_policy[(config, policy)]["slowdowns"]
            # The heavy tenant's (t0, weight 2) reservation buys latency:
            # never slower than under the full-share free-for-all.
            assert reserved[0] <= full[0] * 1.01, (config, policy)
