"""Shared-MMU multi-tenant contention: per-tenant slowdown vs isolation.

Each tenant owns an ASID-tagged address space but contends with the others
for one TLB, one walker pool, the PRMB capacity and memory bandwidth.  The
oracle rows isolate pure bandwidth contention, so the gap between the
IOMMU/NeuMMU rows and the oracle rows is *translation* contention.

``bench_qos_fairness`` additionally sweeps the QoS layer's share policies
(full_share / static_partition / weighted) under the clock-ordered
``weighted_quantum`` arbiter and checks the fairness invariants: Jain's
index stays in (0, 1] and a weight-reserved tenant is never slower than
under full sharing.

``bench_paging_contention`` runs the multi-tenant demand-paging study: a
heterogeneous tenant mix pages its tensors in over one shared migration
fabric under all three share policies, checking exact byte conservation
on the fabric (asserted inside the figure) and that every tenant's
fabric share is a genuine fraction.

Both QoS figures route through the shared
:class:`~repro.analysis.runner.ExperimentRunner`, so ``NEUMMU_JOBS=N``
shards their isolated baselines and shared cells across N worker
processes (and ``NEUMMU_CACHE_DIR`` persists results), bit-identical to
the serial run.
"""

import os

from repro.analysis import fairness, multi_tenant_contention, paging_tenants

from .common import emit, experiment_runner, run_once


def bench_multi_tenant(benchmark):
    tenants = 4 if os.environ.get("NEUMMU_FULL") else 2
    figure = run_once(benchmark, lambda: multi_tenant_contention(tenants=tenants))
    emit(figure)
    slowdowns = {"oracle": [], "iommu": [], "neummu": []}
    for row in figure.rows:
        config = row.label.split("/")[0]
        # Sharing never makes a tenant faster than running alone.
        assert row.values["slowdown"] >= 0.999
        slowdowns[config].append(row.values["slowdown"])
    mean = {k: sum(v) / len(v) for k, v in slowdowns.items() if v}
    # The 8-walker IOMMU's translation bottleneck amplifies contention;
    # NeuMMU's walker/PRMB headroom absorbs most of it.
    assert mean["iommu"] > mean["neummu"]


def bench_qos_fairness(benchmark):
    workload = "CNN-1" if os.environ.get("NEUMMU_FULL") else "RNN-2"
    figure = run_once(
        benchmark, lambda: fairness(workload=workload, runner=experiment_runner())
    )
    emit(figure)
    by_policy = {}
    for row in figure.rows:
        config, policy, _ = row.label.split("/")
        cell = by_policy.setdefault((config, policy), {"slowdowns": []})
        cell["slowdowns"].append(row.values["slowdown"])
        cell["jain"] = row.values["jain_index"]
    for (config, policy), cell in by_policy.items():
        assert 0.0 < cell["jain"] <= 1.0, (config, policy, cell)
        # Sharing never makes a tenant faster than running alone.
        assert all(s >= 0.999 for s in cell["slowdowns"]), (config, policy)
    for config in ("iommu", "neummu"):
        full = by_policy[(config, "full_share")]["slowdowns"]
        for policy in ("static_partition", "weighted"):
            reserved = by_policy[(config, policy)]["slowdowns"]
            # The heavy tenant's (t0, weight 2) reservation buys latency:
            # never slower than under the full-share free-for-all.
            assert reserved[0] <= full[0] * 1.01, (config, policy)


def bench_paging_contention(benchmark):
    mix = "cnn,rnn,recsys" if os.environ.get("NEUMMU_FULL") else "rnn,recsys"
    figure = run_once(
        benchmark, lambda: paging_tenants(mix=mix, runner=experiment_runner())
    )
    emit(figure)
    by_cell = {}
    for row in figure.rows:
        config, policy, _ = row.label.split("/")
        cell = by_cell.setdefault((config, policy), {"shares": [], "slow": []})
        cell["shares"].append(row.values["fabric_share"])
        cell["slow"].append(row.values["slowdown"])
        # Every tenant genuinely paged (the mix's tensors all start
        # unmapped) and the migration charge is visible.
        assert row.values["faults"] > 0, row.label
        assert row.values["migrated_mb"] > 0, row.label
    for (config, policy), cell in by_cell.items():
        # The fabric's byte accounting is exact (the figure asserts the
        # integer conservation; the shares must therefore sum to 1).
        assert abs(sum(cell["shares"]) - 1.0) < 1e-12, (config, policy)
        # Sharing one fabric + MMU never beats the isolated paged run
        # (small FAST-fidelity noise allowed).
        assert all(s >= 0.99 for s in cell["slow"]), (config, policy)
