"""Figure 10: PRMB mergeable-slot sensitivity on the 8-walker baseline."""

from repro.analysis import fig10_prmb_sweep

from .common import batch_grid, emit, experiment_runner, run_once


def bench_fig10(benchmark):
    figure = run_once(benchmark, lambda: fig10_prmb_sweep(batches=batch_grid(), runner=experiment_runner()))
    emit(figure)
    # More merge capacity monotonically recovers performance (Figure 10).
    assert figure.mean("prmb32") >= figure.mean("prmb1")
