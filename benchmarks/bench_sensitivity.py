"""Section VI-C: sensitivity sweeps (TLB capacity, large-batch layers)."""

from repro.analysis import sensitivity_large_batch, sensitivity_tlb

from .common import emit, experiment_runner, run_once


def bench_sens_tlb(benchmark):
    figure = run_once(benchmark, lambda: sensitivity_tlb(runner=experiment_runner()))
    emit(figure)
    # Section III-C: TLB capacity is not the bottleneck for NPU bursts.
    assert abs(figure.mean("tlb2048") - figure.mean("tlb128")) < 0.05


def bench_sens_large_batch(benchmark):
    figure = run_once(
        benchmark, lambda: sensitivity_large_batch(runner=experiment_runner())
    )
    emit(figure)
    # Paper: IOMMU ~5.9% of oracle at large batch; NeuMMU ~99.9%.
    assert figure.mean("neummu_perf") > 0.95
    assert figure.mean("iommu_perf") < 0.3
