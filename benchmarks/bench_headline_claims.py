"""Section IV-D headline: NeuMMU ≈ oracle; IOMMU ≈ 95% loss; big energy/
walk-traffic savings."""

from repro.analysis import headline_claims

from .common import batch_grid, emit, experiment_runner, run_once


def bench_headline(benchmark):
    figure = run_once(benchmark, lambda: headline_claims(batches=batch_grid(), runner=experiment_runner()))
    emit(figure)
    assert figure.mean("neummu_perf") > 0.97
    assert figure.mean("iommu_perf") < 0.25
    assert figure.mean("energy_ratio") > 3.0
    assert figure.mean("walk_access_ratio") > 3.0
