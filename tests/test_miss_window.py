"""Differential fuzz: mixed-window miss-phase batching vs per-event stepping.

The mixed-window planner (:meth:`repro.core.calendar.CompletionCalendar.
plan_window` / :meth:`~repro.core.calendar.CompletionCalendar.drain_window`,
reached from both engine dispatch routes through the fused no-PRMB runner)
retires whole miss-phase windows in closed form, including windows the
stretch planner's pointwise quota gate declines (mixed over-quota windows,
proven by the closed-form quota trajectory) and windows spanning a finite
policy event horizon (proven constant by
:meth:`~repro.core.qos.SharePolicy.rebalance_horizon` /
:meth:`~repro.core.qos.SharePolicy.admitted_segments`).
``NEUMMU_MISS_BATCH=0`` forces the per-event stall/retire chain it
replaces.  Both modes must be *bit-identical*: same burst results, same
``RunSummary``, same channel state, same TLB contents in LRU order, same
PTS map, same per-ASID occupancy — across multi-ASID bursts, every QoS
policy × arbitration combo, mid-window faults, re-weight/remove epoch
bumps, both no-PRMB and PRMB configs, and custom time-varying policies.

Coverage is asserted, not hoped for: deterministic cases check via the
:data:`repro.core.stats.MISS_WINDOW` telemetry that batched window drains
actually fired on both dispatch routes, that finite-horizon spanning
actually planned windows, and that the quota-trajectory decline paths are
actually exercised.
"""

import os
from dataclasses import replace
from typing import Dict, Optional, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import TranslationEngine
from repro.core.mmu import MMU, MMUConfig, baseline_iommu_config
from repro.core.qos import (
    ARBITRATION_POLICIES,
    SHARE_POLICIES,
    SharePolicy,
    WeightedShare,
)
from repro.core.stats import MISS_WINDOW
from repro.memory.address import PAGE_SIZE_4K
from repro.memory.dram import MainMemory
from repro.memory.page_table import PageTable
from repro.npu.dma import ColumnarTransactionStream

BASE = 0x7F00_0000_0000
N_PAGES = 256
#: Disjoint never-mapped region used for mid-window fault injection.
FAULT_BASE = BASE + (1 << 40)

#: Design points spanning both engine dispatch routes to the fused FIFO
#: runner (the paper's no-PRMB 8-walker IOMMU) plus a PRMB pool whose
#: merge-based miss phase must stay untouched by the window planner.
MW_CONFIGS = [
    baseline_iommu_config(),
    MMUConfig(name="prmb4", n_walkers=8, prmb_slots=4),
]


def build_table(first_pfn=10):
    table = PageTable()
    table.map_range(BASE, N_PAGES * PAGE_SIZE_4K, first_pfn=first_pfn)
    return table


# --------------------------------------------------------------------- #
# custom policies: the quota-trajectory API's non-default regions
# --------------------------------------------------------------------- #


class PeriodicEventShare(WeightedShare):
    """Weighted share whose *event* horizon ticks every ``period`` cycles
    but whose quotas never change: ``next_event_for`` is finite (the
    per-event runner exits its closure and replays one reference step at
    every boundary) while the inherited ``rebalance_horizon`` stays
    ``inf`` and ``admitted_segments`` covers any request — so the window
    planner may batch straight across the event horizon.
    """

    def __init__(
        self, period: float, weights: Optional[Dict[int, float]] = None
    ) -> None:
        super().__init__(weights)
        self._period = float(period)

    def next_event_for(self, asid: int, cycle: float) -> float:
        return (cycle // self._period + 1.0) * self._period


class SegmentedConstantShare(PeriodicEventShare):
    """Finite rebalance horizon, but the quota is certified constant
    across it: ``admitted_segments`` enumerates period-aligned segments
    that all answer the same quota, so coverage reaches any requested
    ``end`` and the planner's constancy walk must accept multi-segment
    trajectories.
    """

    def rebalance_horizon(self, asid: int, cycle: float) -> float:
        return (cycle // self._period + 1.0) * self._period

    def admitted_segments(
        self, asid: int, start: float, end: float, capacity: int
    ) -> Tuple[Tuple[float, float, Optional[int]], ...]:
        if end <= start:
            return ()
        quota = self.quota(asid, capacity)
        period = self._period
        segs = []
        t = start
        while t < end and len(segs) < 1024:
            nxt = (t // period + 1.0) * period
            if nxt > end:
                nxt = end
            segs.append((t, nxt, quota))
            t = nxt
        return tuple(segs)


class OpaqueRebalanceShare(PeriodicEventShare):
    """Finite rebalance horizon with only the *default* (horizon-clipped)
    segment coverage: the planner cannot certify quota constancy past the
    horizon and must decline every window reaching it
    (``MISS_WINDOW.fail_rebalance``), falling back to the per-event path.
    """

    def rebalance_horizon(self, asid: int, cycle: float) -> float:
        return (cycle // self._period + 1.0) * self._period


# --------------------------------------------------------------------- #
# strategies: saturated miss storms — long fresh-page chains keep all
# eight walkers in flight, so the blocked issue port sits in exactly the
# stall/retire/restart chain the window planner retires in closed form
# --------------------------------------------------------------------- #

#: One streaming segment: (start page, page count, txns per page).  The
#: 1-per-page arms build the saturated fresh-page chains (the miss
#: phase); the heavier arms interleave resident hit runs so windows abut
#: TLB flips and policy re-consultations.
_segment = st.tuples(
    st.integers(0, N_PAGES - 48),
    st.integers(1, 48),
    st.sampled_from([1, 1, 1, 2, 16, 200]),
)

#: A mid-window faulting page (never mapped until the handler maps it).
_fault = st.integers(1, 6)

_chunk = st.one_of(_segment, _fault)

_burst = st.lists(_chunk, min_size=1, max_size=6)

#: Schedules interleave up to three address spaces (ASIDs 0, 5, 9).
_schedule = st.lists(
    st.tuples(st.sampled_from([0, 5, 9]), _burst), min_size=1, max_size=4
)

_qos = st.sampled_from(SHARE_POLICIES)


def materialize(burst):
    """Chunks -> (va, size) transactions (streaming 256 B runs)."""
    txs = []
    for chunk in burst:
        if isinstance(chunk, int):  # fault page
            txs.append((FAULT_BASE + chunk * PAGE_SIZE_4K, 256))
            continue
        start, pages, per_page = chunk
        pages = min(pages, N_PAGES - start)
        for p in range(start, start + pages):
            base = BASE + p * PAGE_SIZE_4K
            txs.extend(
                (base + ((p + k) % 16) * 256, 256) for k in range(per_page)
            )
    return txs


# --------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------- #


def run_miss_mode(
    batch_on, config, qos, schedule, epoch_ops=None, policy_factory=None
):
    """One multi-ASID columnar run with NEUMMU_MISS_BATCH pinned.

    ``epoch_ops`` maps a schedule index to a policy mutation applied
    *after* that burst (same vocabulary as the quota-batch fuzz);
    ``policy_factory`` builds a fresh custom :class:`SharePolicy` per run
    so the on/off legs never share mutated policy state.
    """
    before = os.environ.get("NEUMMU_MISS_BATCH")
    os.environ["NEUMMU_MISS_BATCH"] = "1" if batch_on else "0"
    try:
        cfg = replace(config, engine_mode="columnar", qos=qos)
        policy = policy_factory() if policy_factory is not None else None
        mmu = MMU(cfg, None, share_policy=policy)
        tables = {
            0: build_table(first_pfn=10),
            5: build_table(first_pfn=500_000),
            9: build_table(first_pfn=900_000),
        }
        mmu.register_context(0, tables[0], weight=2.0)
        mmu.register_context(5, tables[5], weight=1.0)
        mmu.register_context(9, tables[9], weight=1.5)
        memory = MainMemory()
        engine = TranslationEngine(mmu, memory)

        def demand_map(vpn, cycle, asid):
            tables[asid].map_range(
                vpn << 12, PAGE_SIZE_4K,
                first_pfn=2_000_000 + (vpn & 0xFFFF) * 8 + asid,
            )
            mmu.shootdown(vpn, asid)
            return cycle + 2500.0

        engine.fault_handler = demand_map
        removed = set()
        results = []
        for i, (asid, burst) in enumerate(schedule):
            if asid not in removed:
                txs = ColumnarTransactionStream.from_pairs(
                    materialize(burst), PAGE_SIZE_4K
                )
                results.append(engine.run_burst(txs, float(i * 7), asid))
            op = (epoch_ops or {}).get(i)
            if op is not None:
                if op[0] == "weight":
                    mmu.share_policy.set_weight(op[1], op[2])
                else:
                    mmu.destroy_context(op[1])
                    removed.add(op[1])
        mmu.drain()
        state = {
            "results": results,
            "summary": mmu.summary(),
            "channels": tuple(memory._channel_free),
            "mem": (memory.total_bytes, memory.total_accesses),
            "pts": (mmu.pts.lookups, mmu.pts.hits, mmu.pts.in_flight),
            "tlb_sets": [list(s.items()) for s in mmu.tlb._sets],
            "occupancy": dict(mmu.tlb._asid_occupancy),
        }
        return state
    finally:
        if before is None:
            os.environ.pop("NEUMMU_MISS_BATCH", None)
        else:
            os.environ["NEUMMU_MISS_BATCH"] = before


def assert_modes_identical(
    config, qos, schedule, epoch_ops=None, policy_factory=None
):
    on = run_miss_mode(
        True, config, qos, schedule, epoch_ops, policy_factory
    )
    off = run_miss_mode(
        False, config, qos, schedule, epoch_ops, policy_factory
    )
    assert on == off


# --------------------------------------------------------------------- #
# engine-level differential fuzz
# --------------------------------------------------------------------- #


class TestMissWindowDifferential:
    @pytest.mark.parametrize("config", MW_CONFIGS, ids=lambda c: c.name)
    @given(schedule=_schedule, qos=_qos)
    @settings(max_examples=20, deadline=None)
    def test_batched_matches_per_event(self, config, schedule, qos):
        assert_modes_identical(config, qos, schedule)

    @given(schedule=_schedule)
    @settings(max_examples=10, deadline=None)
    def test_mid_window_faults(self, schedule):
        """Every burst gets a guaranteed mid-window fault injected."""
        faulted = [
            (asid, burst[: len(burst) // 2] + [3] + burst[len(burst) // 2:])
            for asid, burst in schedule
        ]
        assert_modes_identical(
            baseline_iommu_config(), "static_partition", faulted
        )

    @given(schedule=_schedule, qos=_qos)
    @settings(max_examples=10, deadline=None)
    def test_epoch_bumps(self, schedule, qos):
        """Re-weight after the first burst, remove ASID 9 after the second.

        ``set_weight`` bumps ``SharePolicy.version`` (the synchronous
        rebalance events the built-ins' ``rebalance_horizon = inf``
        contract rests on); ``destroy_context`` poisons in-flight walks,
        which must keep the window planner out entirely.
        """
        ops = {0: ("weight", 5, 3.0), 1: ("remove", 9)}
        assert_modes_identical(
            baseline_iommu_config(), qos, schedule, epoch_ops=ops
        )

    @given(schedule=_schedule)
    @settings(max_examples=10, deadline=None)
    def test_finite_event_horizon_spanning(self, schedule):
        """Custom policy with a finite event horizon but constant quotas:
        the per-event leg exits its closure at every period boundary
        while the batched leg spans them — results must stay identical.
        """
        assert_modes_identical(
            baseline_iommu_config(), "weighted", schedule,
            policy_factory=lambda: PeriodicEventShare(4096.0),
        )

    @given(schedule=_schedule)
    @settings(max_examples=10, deadline=None)
    def test_segmented_constant_trajectory(self, schedule):
        """Finite rebalance horizon certified constant segment by
        segment: the planner's multi-segment constancy walk must accept
        exactly what the per-event path would have done anyway.
        """
        assert_modes_identical(
            baseline_iommu_config(), "weighted", schedule,
            policy_factory=lambda: SegmentedConstantShare(4096.0),
        )

    @given(schedule=_schedule)
    @settings(max_examples=10, deadline=None)
    def test_opaque_rebalance_declines(self, schedule):
        """Default (horizon-clipped) segment coverage: every window
        reaching the horizon must decline to the per-event path."""
        assert_modes_identical(
            baseline_iommu_config(), "weighted", schedule,
            policy_factory=lambda: OpaqueRebalanceShare(4096.0),
        )


# --------------------------------------------------------------------- #
# deterministic engagement coverage: the window planner must actually
# fire — and decline for the reasons the ledger cites
# --------------------------------------------------------------------- #

#: Saturated miss storms: long fresh-page chains (1 txn per page) hold
#: all eight walkers in flight so the blocked issue port runs the FIFO
#: stall/retire/restart chain for hundreds of consecutive transactions.
_ENGAGE = [
    (0, [(0, 48, 1), (48, 48, 1), (96, 48, 1), (144, 48, 1)]),
    (0, [(0, 48, 1), (48, 48, 1), (96, 48, 1), (144, 48, 1)]),
]

#: The same storms from two tenants: under quota policies the windows
#: mix in-flight walks across tenants, exercising the quota-trajectory
#: decline accounting (``fail_quota_bound``/``quota_prefix_txns``).
_ENGAGE_MIXED = [
    (0, [(0, 48, 1), (48, 48, 1), (96, 48, 1)]),
    (5, [(0, 48, 1), (48, 48, 1), (96, 48, 1)]),
    (0, [(96, 48, 1), (144, 48, 1), (192, 48, 1)]),
    (5, [(96, 48, 1), (144, 48, 1), (192, 48, 1)]),
]


class TestWindowEngages:
    # full_share routes bursts through the batched dispatch; a
    # work-conserving weighted policy routes them through the contended
    # dispatch.  Both delegate their no-PRMB miss phases to the fused
    # FIFO runner, where the window planner lives.
    @pytest.mark.parametrize(
        "qos", ["full_share", "weighted"], ids=["fused", "contended"]
    )
    def test_window_drains_fire(self, qos):
        MISS_WINDOW.reset()
        state = run_miss_mode(True, baseline_iommu_config(), qos, _ENGAGE)
        engaged = MISS_WINDOW.snapshot()
        assert engaged["windows_planned"] > 0, engaged
        assert engaged["window_txns"] >= 12 * engaged["windows_planned"]
        MISS_WINDOW.reset()
        assert state == run_miss_mode(
            False, baseline_iommu_config(), qos, _ENGAGE
        )
        # The per-event mode must never touch the planner.
        assert MISS_WINDOW.snapshot()["windows_planned"] == 0

    def test_quota_trajectory_accounting(self):
        """Mixed over-quota windows under a quota policy: the trajectory
        either proves a prefix or records how quickly the quota bound it
        — the ledger's "why parity" evidence must actually accumulate.
        """
        MISS_WINDOW.reset()
        state = run_miss_mode(
            True, baseline_iommu_config(), "weighted", _ENGAGE_MIXED
        )
        engaged = MISS_WINDOW.snapshot()
        assert engaged["windows_planned"] > 0, engaged
        attempts = engaged["fail_quota_bound"] + engaged["window_quota_proofs"]
        assert attempts > 0, engaged
        MISS_WINDOW.reset()
        assert state == run_miss_mode(
            False, baseline_iommu_config(), "weighted", _ENGAGE_MIXED
        )

    def test_horizon_spanning_engages(self):
        """The finite-horizon policy must not lock the planner out: with
        constant certified quotas the batched leg still plans windows
        (the whole point of ``rebalance_horizon``), and the opaque
        variant declines them with ``fail_rebalance`` accounting.
        """
        MISS_WINDOW.reset()
        run_miss_mode(
            True, baseline_iommu_config(), "weighted", _ENGAGE,
            policy_factory=lambda: PeriodicEventShare(4096.0),
        )
        spanning = MISS_WINDOW.snapshot()
        assert spanning["windows_planned"] > 0, spanning
        MISS_WINDOW.reset()
        run_miss_mode(
            True, baseline_iommu_config(), "weighted", _ENGAGE,
            policy_factory=lambda: OpaqueRebalanceShare(4096.0),
        )
        opaque = MISS_WINDOW.snapshot()
        assert opaque["fail_rebalance"] > 0, opaque


# --------------------------------------------------------------------- #
# multi-tenant: all 9 QoS policy × arbitration combos
# --------------------------------------------------------------------- #


def _tenant_cell(qos, arbitration, batch_on):
    from repro.npu.simulator import run_multi_tenant
    from repro.workloads.registry import DenseWorkloadFactory

    before = os.environ.get("NEUMMU_MISS_BATCH")
    os.environ["NEUMMU_MISS_BATCH"] = "1" if batch_on else "0"
    try:
        return run_multi_tenant(
            DenseWorkloadFactory("RNN-2", 1),
            baseline_iommu_config(),
            2,
            arbitration=arbitration,
            qos=qos,
            weights=(2.0, 1.0),
        )
    finally:
        if before is None:
            os.environ.pop("NEUMMU_MISS_BATCH", None)
        else:
            os.environ["NEUMMU_MISS_BATCH"] = before


class TestTenantCombos:
    def test_contended_cell_identical(self):
        """Fast tier: the deepest quota regime, batch on vs off."""
        on = _tenant_cell("static_partition", "round_robin", True)
        off = _tenant_cell("static_partition", "round_robin", False)
        assert on == off

    @pytest.mark.slow
    @pytest.mark.parametrize("qos", SHARE_POLICIES)
    @pytest.mark.parametrize("arbitration", ARBITRATION_POLICIES)
    def test_all_nine_combos_identical(self, qos, arbitration):
        on = _tenant_cell(qos, arbitration, True)
        off = _tenant_cell(qos, arbitration, False)
        assert on == off


# --------------------------------------------------------------------- #
# golden diff: paper figures bit-identical across miss-batch modes
# --------------------------------------------------------------------- #


def _figure_in_mode(batch_on, experiment):
    before = os.environ.get("NEUMMU_MISS_BATCH")
    os.environ["NEUMMU_MISS_BATCH"] = "1" if batch_on else "0"
    try:
        return experiment()
    finally:
        if before is None:
            os.environ.pop("NEUMMU_MISS_BATCH", None)
        else:
            os.environ["NEUMMU_MISS_BATCH"] = before


def _golden_diff(experiment):
    on = _figure_in_mode(True, experiment)
    off = _figure_in_mode(False, experiment)
    assert on.figure_id == off.figure_id
    assert on.columns == off.columns
    assert [r.label for r in on.rows] == [r.label for r in off.rows]
    for mine, theirs in zip(on.rows, off.rows):
        # Exact equality on purpose: the modes must agree bit for bit.
        assert mine.values == theirs.values, mine.label
    assert on.render() == off.render()


class TestGoldenFigures:
    def test_fig7_bursts(self):
        from repro.analysis import fig7_translation_bursts

        _golden_diff(
            lambda: fig7_translation_bursts(workloads=("RNN-1",), batch=1)
        )

    def test_fairness_contended(self):
        # The contended QoS figure: its quota cells are where the window
        # planner's trajectory proofs and declines both concentrate.
        from repro.analysis import fairness

        _golden_diff(lambda: fairness(workload="RNN-2", batch=1))

    @pytest.mark.slow
    def test_fig8_baseline_iommu(self):
        # The saturated baseline-IOMMU regime: the miss storms whose
        # windows the planner retires wholesale.
        from repro.analysis import ExperimentRunner, fig8_baseline_iommu

        _golden_diff(
            lambda: fig8_baseline_iommu(
                batches=(1,), runner=ExperimentRunner()
            )
        )
