"""The bench_perf regression gate (``--check``) semantics.

The gate must be machine-independent: it compares each scenario's
throughput ratio against the committed root ``BENCH_perf.json``
normalized by the cross-scenario median, so uniform machine-speed
differences cancel and only relative regressions fail.
"""

import json

import pytest

from benchmarks.bench_perf import (
    REGRESSION_TOLERANCE,
    REPO_ROOT,
    check_regressions,
)

COMMITTED = REPO_ROOT / "BENCH_perf.json"


def scaled_doc(scale=1.0):
    committed = json.loads(COMMITTED.read_text())
    return {
        "scenarios": {
            name: {
                "translations_per_sec": round(
                    rec["translations_per_sec"] * scale
                )
            }
            for name, rec in committed["scenarios"].items()
        }
    }


def test_committed_record_has_throughputs():
    committed = json.loads(COMMITTED.read_text())
    assert committed["scenarios"], "committed BENCH_perf.json lost its scenarios"
    for name, rec in committed["scenarios"].items():
        assert rec["translations_per_sec"] > 0, name


@pytest.mark.parametrize("scale", [0.25, 1.0, 4.0])
def test_uniform_machine_speed_cancels(scale):
    assert check_regressions(scaled_doc(scale), COMMITTED) == []


def test_single_scenario_regression_fails():
    doc = scaled_doc(0.5)  # a slow machine, uniformly
    bad = 1.0 - REGRESSION_TOLERANCE - 0.1
    doc["scenarios"]["qos_sweep"]["translations_per_sec"] = round(
        doc["scenarios"]["qos_sweep"]["translations_per_sec"] * bad
    )
    failures = check_regressions(doc, COMMITTED)
    assert len(failures) == 1 and "qos_sweep" in failures[0]


def test_within_tolerance_passes():
    doc = scaled_doc(1.0)
    ok = 1.0 - REGRESSION_TOLERANCE + 0.05
    doc["scenarios"]["single_tenant"]["translations_per_sec"] = round(
        doc["scenarios"]["single_tenant"]["translations_per_sec"] * ok
    )
    assert check_regressions(doc, COMMITTED) == []


def test_missing_baseline_reports_actionably(tmp_path):
    failures = check_regressions(scaled_doc(), tmp_path / "nope.json")
    assert failures and "nope.json" in failures[0]
