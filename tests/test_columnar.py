"""Differential fuzzing: columnar engine mode vs the per-object reference.

The columnar path (``MMUConfig.engine_mode="columnar"``) threads a
structure-of-arrays transaction representation from the DMA through
TLB/PRMB/engine; the object path (``engine_mode="reference"``) is the
bit-identical golden reference.  Hypothesis drives random bursts spanning
multiple ASIDs, page sizes, QoS share policies and injected translation
faults through both modes and requires identical service order and
statistics — the same ``BurstResult`` sequences, ``RunSummary``, channel
state, TLB contents *in LRU order*, PTS counters and PRMB statistics.

Two layers are fuzzed:

* representation: :class:`ColumnarTransactionStream` must project the
  exact ``(va, size)`` tuples and run metadata the scalar DMA loop
  derives, for arbitrary streams;
* engine: full translation runs must retire bit-identically whether the
  engine consumes columns in columnar mode or objects in reference mode.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import TranslationEngine
from repro.core.mmu import (
    ENGINE_MODES,
    MMU,
    MMUConfig,
    baseline_iommu_config,
    neummu_config,
)
from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.memory.dram import MainMemory
from repro.memory.page_table import PageTable
from repro.npu.dma import ColumnarTransactionStream, TransactionStream
from repro.npu.simulator import NPUSimulator
from repro.workloads.cnn import Workload
from repro.workloads.layers import DenseLayer

BASE = 0x7F00_0000_0000
#: 4 KB pages mapped per context; VAs beyond the span fault.
N_PAGES = 96
#: Disjoint never-mapped region used for fault injection — far enough
#: from ``BASE`` that no 2 MB VPN straddles mapped and unmapped space.
FAULT_BASE = BASE + (1 << 40)

#: Design points spanning the engine's dispatch paths: the fused no-PRMB
#: runner (baseline IOMMU), the merge-heavy NeuMMU point, and a
#: walker/slot-starved point that exercises stall recycling.
FUZZ_CONFIGS = [
    baseline_iommu_config(),
    neummu_config(),
    MMUConfig(name="w2s4", n_walkers=2, prmb_slots=4),
]


def build_table(first_pfn=10):
    table = PageTable()
    table.map_range(BASE, N_PAGES * PAGE_SIZE_4K, first_pfn=first_pfn)
    return table


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #

#: One transaction: (page index, 256 B slot, size).  Negative page index
#: selects an unmapped fault page in the disjoint FAULT_BASE region.
_tx = st.tuples(
    st.one_of(
        st.integers(0, N_PAGES - 1),
        st.integers(-8, -1),
    ),
    st.integers(0, (PAGE_SIZE_4K // 256) - 2),
    st.sampled_from([64, 128, 256, 256, 256]),
)

_burst = st.lists(_tx, min_size=1, max_size=60)

#: Schedules interleave up to three address spaces (ASIDs 0, 5, 9).
_schedule = st.lists(
    st.tuples(st.sampled_from([0, 5, 9]), _burst), min_size=1, max_size=4
)

_qos = st.sampled_from(["full_share", "static_partition", "weighted"])


def materialize(burst):
    """(page, slot, size) triples -> (va, size) transactions."""
    txs = []
    for page, slot, size in burst:
        if page < 0:
            base = FAULT_BASE + (-page) * PAGE_SIZE_2M
        else:
            base = BASE + page * PAGE_SIZE_4K
        txs.append((base + slot * 256, size))
    return txs


def golden_runs(txs, page_size):
    """The scalar DMA loop's run metadata, re-derived independently."""
    runs = []
    mask = ~(page_size - 1)
    run_page, streamable, prev_end = -1, True, -1
    for idx, (va, size) in enumerate(txs):
        page = va & mask
        if page != run_page:
            if run_page >= 0:
                runs.append((idx, streamable))
            run_page, streamable = page, True
        elif va != prev_end:
            streamable = False
        if size != 256:
            streamable = False
        prev_end = va + size
    if run_page >= 0:
        runs.append((len(txs), streamable))
    return runs


# --------------------------------------------------------------------- #
# representation parity
# --------------------------------------------------------------------- #


class TestColumnarRepresentation:
    @given(_burst, st.sampled_from([PAGE_SIZE_4K, PAGE_SIZE_2M]))
    @settings(max_examples=60, deadline=None)
    def test_columns_project_golden_tuples_and_runs(self, burst, page_size):
        txs = materialize(burst)
        stream = ColumnarTransactionStream.from_pairs(txs, page_size)
        assert list(stream) == txs
        assert len(stream) == len(txs)
        assert stream[len(txs) // 2] == txs[len(txs) // 2]
        assert stream[1:] == txs[1:]
        assert stream.runs == golden_runs(txs, page_size)

    @given(_burst)
    @settings(max_examples=30, deadline=None)
    def test_derived_columns_match_scalars(self, burst):
        txs = materialize(burst)
        stream = ColumnarTransactionStream.from_pairs(txs, PAGE_SIZE_4K)
        assert stream.offsets().tolist() == [
            va & (PAGE_SIZE_4K - 1) for va, _ in txs
        ]
        starts = [0] + [end for end, _ in stream.runs[:-1]]
        assert stream.run_vpns().tolist() == [
            txs[s][0] >> 12 for s in starts
        ]

    def test_uniform_size_collapses_column(self):
        txs = [(BASE + k * 256, 256) for k in range(32)]
        stream = ColumnarTransactionStream.from_pairs(txs)
        assert stream.sizes is None and stream.uniform_size == 256
        assert stream.size_list == [256] * 32
        mixed = ColumnarTransactionStream.from_pairs(txs + [(BASE, 64)])
        assert mixed.sizes is not None and mixed.uniform_size == 0


# --------------------------------------------------------------------- #
# engine differential fuzzing
# --------------------------------------------------------------------- #


def run_mode(mode, config, qos, schedule, page_size):
    """One full multi-ASID run in ``mode``; returns comparable state."""
    cfg = replace(config, engine_mode=mode, qos=qos, page_size=page_size)
    mmu = MMU(cfg, None)
    tables = {
        0: build_table(first_pfn=10),
        5: build_table(first_pfn=500_000),
        9: build_table(first_pfn=900_000),
    }
    mmu.register_context(0, tables[0], weight=2.0)
    mmu.register_context(5, tables[5], weight=1.0)
    mmu.register_context(9, tables[9], weight=1.5)
    memory = MainMemory()
    engine = TranslationEngine(mmu, memory)
    assert engine.batched == (mode != "reference")

    page_bits = page_size.bit_length() - 1

    def demand_map(vpn, cycle, asid):
        # Deterministic demand-paging stand-in: map the faulting page at
        # a fixed cost so the burst continues identically in both modes.
        tables[asid].map_range(
            vpn << page_bits, page_size,
            first_pfn=2_000_000 + (vpn & 0xFFFF) * 512 + asid,
        )
        # Shoot down the negative-result caches so the retry resolves
        # (mirrors LocalMemoryTier.handle_fault).
        mmu.shootdown(vpn, asid)
        return cycle + 2500.0

    engine.fault_handler = demand_map
    results = []
    for i, (asid, burst) in enumerate(schedule):
        txs = materialize(burst)
        if mode == "columnar":
            txs = ColumnarTransactionStream.from_pairs(txs, page_size)
        results.append(engine.run_burst(txs, float(i * 7), asid))
    mmu.drain()
    state = {
        "results": results,
        "summary": mmu.summary(),
        "channels": tuple(memory._channel_free),
        "mem": (memory.total_bytes, memory.total_accesses),
    }
    if mmu.pool is not None:
        state["prmb"] = dict(mmu.pool.prmb_stats.__dict__)
        state["pts"] = (mmu.pts.lookups, mmu.pts.hits, mmu.pts.in_flight)
        # Items in order capture the exact service/insertion sequence.
        state["tlb_sets"] = [list(s.items()) for s in mmu.tlb._sets]
        state["occupancy"] = dict(mmu.tlb._asid_occupancy)
    return state


class TestEngineDifferential:
    @pytest.mark.parametrize(
        "config", FUZZ_CONFIGS, ids=lambda c: c.name
    )
    @given(schedule=_schedule, qos=_qos)
    @settings(max_examples=25, deadline=None)
    def test_columnar_matches_reference(self, config, schedule, qos):
        columnar = run_mode("columnar", config, qos, schedule, PAGE_SIZE_4K)
        reference = run_mode("reference", config, qos, schedule, PAGE_SIZE_4K)
        assert columnar == reference

    @given(schedule=_schedule)
    @settings(max_examples=15, deadline=None)
    def test_large_pages_match(self, schedule):
        config = baseline_iommu_config()
        columnar = run_mode(
            "columnar", config, "weighted", schedule, PAGE_SIZE_2M
        )
        reference = run_mode(
            "reference", config, "weighted", schedule, PAGE_SIZE_2M
        )
        assert columnar == reference

    @given(_burst)
    @settings(max_examples=20, deadline=None)
    def test_faults_counted_identically(self, burst):
        """Injected faults retire with the same count and service order."""
        schedule = [(0, burst)]
        columnar = run_mode(
            "columnar", neummu_config(), "full_share", schedule, PAGE_SIZE_4K
        )
        reference = run_mode(
            "reference", neummu_config(), "full_share", schedule, PAGE_SIZE_4K
        )
        assert columnar == reference
        n_faulting = sum(1 for page, _, _ in burst if page < 0)
        if n_faulting:
            assert columnar["summary"].faults > 0


# --------------------------------------------------------------------- #
# full-pipeline mode parity
# --------------------------------------------------------------------- #


class TestPipelineModes:
    def test_engine_mode_validation(self):
        assert set(ENGINE_MODES) == {"columnar", "reference"}
        with pytest.raises(ValueError):
            MMUConfig(name="bad", engine_mode="rowwise")

    @pytest.mark.parametrize("base", [baseline_iommu_config, neummu_config])
    def test_simulator_modes_bit_identical(self, base):
        """engine_mode only changes the data path, never any figure."""
        workload = Workload(
            name="mode_fc",
            batch=1,
            layers=(
                DenseLayer("fc1", 1, 2048, 1024),
                DenseLayer("fc2", 1, 1024, 512),
            ),
        )
        results = {}
        for mode in ENGINE_MODES:
            sim = NPUSimulator(workload, replace(base(), engine_mode=mode))
            assert sim.dma.emit_columns == (mode == "columnar")
            results[mode] = sim.run()
        ref, col = results["reference"], results["columnar"]
        assert col.total_cycles == ref.total_cycles
        assert col.mmu_summary == ref.mmu_summary
        assert [l.cycles for l in col.layers] == [l.cycles for l in ref.layers]

    def test_columnar_dma_emits_columns(self):
        workload = Workload(
            name="col_fc",
            batch=1,
            layers=(DenseLayer("fc", 1, 512, 256),),
        )
        sim = NPUSimulator(workload, neummu_config())
        step = sim._schedules[0].steps[0]
        stream = sim.dma.transactions(step.fetches[0])
        assert isinstance(stream, ColumnarTransactionStream)
        obj = TransactionStream(stream.page_size)
        obj.extend(iter(stream))
        assert list(obj) == list(stream)
