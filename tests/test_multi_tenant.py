"""Multi-tenant address spaces: ASID isolation, shootdown, shared-MMU runs.

Two tenants sharing one translation stack must never observe each other's
translations (same VPN, different page tables, different PFNs), teardown
and page migration must leave no stale state anywhere, and a shared-MMU
run must degrade — never accelerate — each tenant versus running alone.
"""

import pytest

from repro.core.mmu import (
    MMU,
    SharedMMU,
    MMUConfig,
    baseline_iommu_config,
    neummu_config,
    oracle_config,
)
from repro.core.mmu_cache import TranslationPathCache, UnifiedPageTableCache
from repro.core.tlb import TLB, TwoLevelTLB
from repro.core.tpreg import TPreg
from repro.memory.address import PAGE_SIZE_4K, tagged_vpn
from repro.memory.page_table import PageTable
from repro.npu.simulator import (
    MultiTenantSimulator,
    NPUSimulator,
    run_multi_tenant,
    run_workload,
)
from repro.workloads.cnn import Workload
from repro.workloads.layers import ConvLayer, DenseLayer

BASE = 0x7F00_0000_0000


def table_mapping(first_pfn, n_pages=64):
    table = PageTable()
    table.map_range(BASE, n_pages * PAGE_SIZE_4K, first_pfn=first_pfn)
    return table


def tiny_workload(batch=1, tag="t"):
    return Workload(
        name=f"tiny_{tag}_b{batch:02d}",
        batch=batch,
        layers=(
            ConvLayer("c1", batch, 28, 28, 16, 64, kernel=3, pad=1),
            DenseLayer("fc", batch, 28 * 28 * 64, 256),
        ),
    )


VPN = BASE >> 12


class TestTaggedStructures:
    def test_tagged_vpn_identity_for_asid0(self):
        assert tagged_vpn(0x1234) == 0x1234
        assert tagged_vpn(0x1234, 3) != 0x1234
        with pytest.raises(ValueError):
            tagged_vpn(1, -1)

    def test_tlb_no_cross_asid_hit(self):
        tlb = TLB(16)
        tlb.insert(VPN, 111, asid=1)
        assert tlb.lookup(VPN, asid=2) is None
        assert tlb.lookup(VPN) is None  # asid 0 also isolated
        assert tlb.lookup(VPN, asid=1) == 111

    def test_tlb_same_vpn_different_pfn_coexist(self):
        tlb = TLB(16)
        tlb.insert(VPN, 111, asid=1)
        tlb.insert(VPN, 222, asid=2)
        assert tlb.lookup(VPN, asid=1) == 111
        assert tlb.lookup(VPN, asid=2) == 222

    def test_tlb_invalidate_is_per_asid(self):
        tlb = TLB(16)
        tlb.insert(VPN, 111, asid=1)
        tlb.insert(VPN, 222, asid=2)
        assert tlb.invalidate(VPN, asid=1)
        assert not tlb.contains(VPN, asid=1)
        assert tlb.contains(VPN, asid=2)

    def test_tlb_invalidate_asid_sweeps_only_that_space(self):
        tlb = TLB(64)
        for vpn in range(VPN, VPN + 5):
            tlb.insert(vpn, vpn, asid=1)
            tlb.insert(vpn, vpn + 100, asid=2)
        assert tlb.invalidate_asid(1) == 5
        assert tlb.occupancy == 5
        for vpn in range(VPN, VPN + 5):
            assert not tlb.contains(vpn, asid=1)
            assert tlb.lookup(vpn, asid=2) == vpn + 100

    def test_set_associative_tags_keep_set_index(self):
        """ASID bits live above the set mask: same VPN, same set."""
        tlb = TLB(8, associativity=2)
        tlb.insert(VPN, 1, asid=0)
        tlb.insert(VPN, 2, asid=7)
        tlb.insert(VPN, 3, asid=9)  # evicts the set's LRU (asid 0)
        assert not tlb.contains(VPN, asid=0)
        assert tlb.lookup(VPN, asid=7) == 2
        assert tlb.lookup(VPN, asid=9) == 3

    def test_two_level_tlb_isolation(self):
        tlb = TwoLevelTLB(l1_entries=4, l2_entries=16)
        tlb.insert(VPN, 111, asid=1)
        pfn, _ = tlb.lookup(VPN, asid=2)
        assert pfn is None
        pfn, _ = tlb.lookup(VPN, asid=1)
        assert pfn == 111
        assert tlb.invalidate_asid(1) >= 1
        assert not tlb.contains(VPN, asid=1)

    def test_tpreg_asid_mismatch_never_skips(self):
        reg = TPreg()
        mmu_a = MMU(neummu_config(), table_mapping(10))
        table_b = table_mapping(500)
        mmu_a.register_context(1, table_b)
        walk_a = mmu_a.resolver.resolve_vpn(VPN)
        walk_b = mmu_a.resolver_for(1).resolve_vpn(VPN)
        assert walk_a.path == walk_b.path  # identical VA layout...
        reg.fill(walk_a)
        assert reg.lookup(walk_b) == 0  # ...but no cross-context skip
        assert reg.lookup(walk_a) == len(walk_a.path)
        reg.invalidate_asid(1)
        assert reg.path is not None  # holds asid 0's path
        reg.invalidate_asid(0)
        assert reg.path is None

    @pytest.mark.parametrize("cache_cls", [TranslationPathCache, UnifiedPageTableCache])
    def test_shared_path_caches_are_asid_tagged(self, cache_cls):
        mmu = MMU(neummu_config(), table_mapping(10))
        mmu.register_context(1, table_mapping(500))
        walk_a = mmu.resolver.resolve_vpn(VPN)
        walk_b = mmu.resolver_for(1).resolve_vpn(VPN)
        cache = cache_cls(16)
        cache.fill(walk_a)
        assert cache.lookup(walk_b) == 0
        assert cache.lookup(walk_a) > 0
        cache.invalidate_asid(0)
        assert cache.lookup(walk_a) == 0


class TestMMUContexts:
    def test_contexts_translate_to_their_own_frames(self):
        mmu = MMU(neummu_config(), table_mapping(10))
        mmu.register_context(1, table_mapping(500))
        walk_a = mmu.resolver_for(0).resolve_vpn(VPN)
        walk_b = mmu.resolver_for(1).resolve_vpn(VPN)
        assert walk_a.pfn == 10
        assert walk_b.pfn == 500
        assert walk_a.asid == 0 and walk_b.asid == 1

    def test_no_cross_context_tlb_pts_hits(self):
        """Context 1 walking a VPN gives context 2 no TLB hit, no merge."""
        config = MMUConfig(name="x", n_walkers=4, prmb_slots=4)
        mmu = MMU(config, None)
        mmu.register_context(1, table_mapping(10))
        mmu.register_context(2, table_mapping(500))
        ready, _ = mmu.translate(VPN, 0.0, asid=1)
        assert ready is not None
        # Context 1's walk is in flight: context 2 must not merge into it.
        assert mmu.pts.peek(VPN, asid=1) is not None
        assert mmu.pts.peek(VPN, asid=2) is None
        merges_before = mmu.stats.merges
        mmu.translate(VPN, 1.0, asid=2)
        assert mmu.stats.merges == merges_before
        mmu.drain()
        # Both walks retired into distinct, correctly-tagged TLB entries.
        assert mmu.tlb.lookup(VPN, asid=1) == 10
        assert mmu.tlb.lookup(VPN, asid=2) == 500
        assert mmu.tlb.lookup(VPN) is None

    def test_same_context_still_merges(self):
        config = MMUConfig(name="x", n_walkers=4, prmb_slots=4)
        mmu = MMU(config, None)
        mmu.register_context(1, table_mapping(10))
        mmu.translate(VPN, 0.0, asid=1)
        mmu.translate(VPN, 1.0, asid=1)
        assert mmu.stats.merges == 1

    def test_unregistered_asid_raises(self):
        mmu = MMU(neummu_config(), table_mapping(10))
        with pytest.raises(KeyError):
            mmu.translate(VPN, 0.0, asid=9)
        with pytest.raises(KeyError):
            mmu.resolver_for(9)

    def test_missing_default_context_raises_keyerror_too(self):
        """ASID 0 gets the same documented KeyError as any other ASID."""
        mmu = MMU(neummu_config(), None)
        mmu.register_context(1, table_mapping(10))
        with pytest.raises(KeyError):
            mmu.translate(VPN, 0.0)
        mmu2 = MMU(oracle_config(), table_mapping(10))
        mmu2.destroy_context(0)
        with pytest.raises(KeyError):
            mmu2.translate(VPN, 0.0)

    def test_duplicate_or_invalid_registration_rejected(self):
        mmu = MMU(neummu_config(), table_mapping(10))
        with pytest.raises(ValueError):
            mmu.register_context(0, table_mapping(99))
        with pytest.raises(ValueError):
            mmu.register_context(-1, table_mapping(99))

    def test_destroy_context_shoots_everything_down(self):
        mmu = MMU(neummu_config(), table_mapping(10))
        mmu.register_context(1, table_mapping(500))
        mmu.translate(VPN, 0.0, asid=1)
        mmu.drain()
        assert mmu.tlb.contains(VPN, asid=1)
        mmu.destroy_context(1)
        assert not mmu.tlb.contains(VPN, asid=1)
        assert 1 not in mmu.contexts
        with pytest.raises(KeyError):
            mmu.destroy_context(1)

    def test_destroy_context_mid_flight_poisons_only_that_tenant(self):
        """Teardown with walks in flight must neither resurrect the dead
        context's translations nor disturb other tenants' walks."""
        mmu = MMU(neummu_config(), table_mapping(10))
        mmu.register_context(1, table_mapping(500))
        mmu.translate(VPN, 0.0, asid=0)
        mmu.translate(VPN, 1.0, asid=1)  # in flight at teardown
        mmu.destroy_context(1)
        assert mmu.pts.in_flight_for(1) == 0
        assert mmu.pts.in_flight_for(0) == 1  # tenant 0 untouched
        mmu.drain()
        assert mmu.tlb.lookup(VPN, asid=1) is None
        assert mmu.tlb.lookup(VPN, asid=0) == 10

    def test_shootdown_drops_tlb_and_memoized_walk(self):
        """A migrated page must never translate to its old PFN."""
        table = table_mapping(10)
        mmu = MMU(neummu_config(), table)
        mmu.translate(VPN, 0.0)
        mmu.drain()
        assert mmu.tlb.lookup(VPN) == 10
        # Migrate: remap the page to a new frame.
        table.map_page(BASE, 4321)
        mmu.shootdown(VPN)
        assert mmu.tlb.lookup(VPN) is None
        assert mmu.resolver.resolve_vpn(VPN).pfn == 4321
        ready, _ = mmu.translate(VPN, 100.0)
        assert ready is not None
        mmu.drain()
        assert mmu.tlb.lookup(VPN) == 4321

    def test_shootdown_poisons_in_flight_walk(self):
        """A walk racing the shootdown must not resurrect the stale PFN."""
        table = table_mapping(10)
        mmu = MMU(neummu_config(), table)
        mmu.translate(VPN, 0.0)  # walk for PFN 10 now in flight
        table.map_page(BASE, 4321)  # migrate mid-walk
        mmu.shootdown(VPN)
        assert mmu.pts.peek(VPN) is None  # nothing can merge into it
        mmu.drain()  # the poisoned walk completes...
        assert mmu.tlb.lookup(VPN) is None  # ...without filling the TLB
        assert not mmu._poisoned_walkers  # and the poison mark is consumed
        ready, _ = mmu.translate(VPN, 1000.0)
        assert ready is not None
        mmu.drain()
        assert mmu.tlb.lookup(VPN) == 4321

    def test_fresh_walk_after_shootdown_fills_normally(self):
        """The poison belongs to the stale walk, not the page: a new walk
        started after the shootdown installs the new PFN even while the
        old walk is still in flight."""
        table = table_mapping(10)
        mmu = MMU(neummu_config(), table)
        mmu.translate(VPN, 0.0)  # stale walk in flight
        table.map_page(BASE, 4321)
        mmu.shootdown(VPN)
        ready, _ = mmu.translate(VPN, 1.0)  # fresh walk, new PFN
        assert ready is not None
        mmu.drain()  # retires both walks
        assert mmu.tlb.lookup(VPN) == 4321
        assert not mmu._poisoned_walkers

    def test_poison_is_per_page_and_per_asid(self):
        config = MMUConfig(name="x", n_walkers=8, prmb_slots=0)
        mmu = MMU(config, table_mapping(10))
        mmu.register_context(1, table_mapping(500))
        mmu.translate(VPN, 0.0, asid=0)
        mmu.translate(VPN, 1.0, asid=1)
        mmu.translate(VPN + 1, 2.0, asid=0)
        mmu.shootdown(VPN, asid=0)  # poison only (asid 0, VPN)
        mmu.drain()
        assert mmu.tlb.lookup(VPN, asid=0) is None
        assert mmu.tlb.lookup(VPN, asid=1) == 500
        assert mmu.tlb.lookup(VPN + 1, asid=0) == 11


class TestSharedMMU:
    def test_tenant_usage_attribution_sums_to_total(self):
        shared = SharedMMU(neummu_config())
        shared.add_tenant(0, table_mapping(10))
        shared.add_tenant(1, table_mapping(500))
        txs = [(BASE + k * 256, 256) for k in range(512)]
        shared.run_bursts(0, [txs], 0.0)
        shared.run_bursts(1, [txs], 0.0)
        stats = shared.mmu.stats
        assert sum(u.requests for u in shared.usage.values()) == stats.requests
        assert sum(u.merges for u in shared.usage.values()) == stats.merges
        assert shared.usage[0].requests == len(txs)
        assert shared.usage[1].requests == len(txs)

    def test_remove_tenant_keeps_usage_readable(self):
        shared = SharedMMU(neummu_config())
        shared.add_tenant(0, table_mapping(10))
        txs = [(BASE + k * 256, 256) for k in range(64)]
        shared.run_bursts(0, [txs], 0.0)
        usage = shared.remove_tenant(0)
        assert usage.requests == 64
        assert 0 not in shared.mmu.contexts

    def test_oracle_shared_mmu_counts_requests(self):
        shared = SharedMMU(oracle_config())
        shared.add_tenant(3, table_mapping(10))
        txs = [(BASE + k * 256, 256) for k in range(64)]
        shared.run_bursts(3, [txs], 0.0)
        assert shared.usage[3].requests == 64
        assert shared.usage[3].walks == 0
        # RunSummary's oracle convention carries over: free hits.
        assert shared.usage[3].tlb_hit_rate == 1.0

    def test_remove_tenant_mid_flight_leaves_others_undisturbed(self):
        shared = SharedMMU(MMUConfig(name="x", n_walkers=8, prmb_slots=0))
        shared.add_tenant(0, table_mapping(10))
        shared.add_tenant(1, table_mapping(500))
        shared.mmu.translate(VPN, 0.0, asid=0)
        shared.mmu.translate(VPN, 1.0, asid=1)
        shared.remove_tenant(1)
        # Tenant 0's walk is still in flight — not retired early.
        assert shared.mmu.pts.in_flight_for(0) == 1
        shared.mmu.drain()
        assert shared.mmu.tlb.lookup(VPN, asid=0) == 10
        assert shared.mmu.tlb.lookup(VPN, asid=1) is None


class TestMultiTenantSimulator:
    @pytest.fixture(scope="class")
    def isolated(self):
        return {
            name: run_workload(tiny_workload(), config)
            for name, config in (
                ("iommu", baseline_iommu_config()),
                ("neummu", neummu_config()),
            )
        }

    def test_single_tenant_matches_isolated_exactly(self, isolated):
        """A 1-tenant shared run is the single-tenant simulator, bit for bit."""
        for name, config in (
            ("iommu", baseline_iommu_config()),
            ("neummu", neummu_config()),
        ):
            shared = run_multi_tenant(tiny_workload, config, 1)
            assert shared.tenants[0].total_cycles == isolated[name].total_cycles
            assert (
                shared.mmu_summary.requests == isolated[name].mmu_summary.requests
            )

    @pytest.mark.parametrize("config_factory", [baseline_iommu_config, neummu_config])
    def test_sharing_never_speeds_a_tenant_up(self, config_factory, isolated):
        config = config_factory()
        result = run_multi_tenant(tiny_workload, config, 2)
        iso_cycles = isolated[config.name].total_cycles
        for tenant in result.tenants:
            assert tenant.total_cycles >= iso_cycles * 0.999
        assert result.makespan_cycles == max(
            t.total_cycles for t in result.tenants
        )

    def test_iommu_contends_harder_than_neummu(self, isolated):
        """The 8-walker IOMMU's shared-pool slowdown dwarfs NeuMMU's."""
        slow = {}
        for name, config in (
            ("iommu", baseline_iommu_config()),
            ("neummu", neummu_config()),
        ):
            result = run_multi_tenant(tiny_workload, config, 2)
            iso = isolated[name].total_cycles
            slow[name] = max(t.total_cycles for t in result.tenants) / iso
        assert slow["iommu"] > slow["neummu"]

    def test_per_tenant_requests_match_isolated_workload(self, isolated):
        result = run_multi_tenant(tiny_workload, neummu_config(), 2)
        expected = isolated["neummu"].mmu_summary.requests
        for tenant in result.tenants:
            assert tenant.usage.requests == expected
        assert result.mmu_summary.requests == 2 * expected

    def test_priority_runs_first_tenant_at_isolated_speed(self, isolated):
        result = run_multi_tenant(
            tiny_workload, neummu_config(), 2, arbitration="priority"
        )
        t0, t1 = result.tenants
        assert t0.total_cycles == isolated["neummu"].total_cycles
        assert t1.total_cycles > t0.total_cycles

    def test_heterogeneous_tenants(self):
        sim = MultiTenantSimulator(
            [tiny_workload(tag="a"), tiny_workload(batch=2, tag="b")],
            neummu_config(),
        )
        result = sim.run()
        assert len(result.tenants) == 2
        assert result.tenants[0].workload != result.tenants[1].workload
        assert result.tenant(1).usage.requests > result.tenant(0).usage.requests

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiTenantSimulator([], neummu_config())
        with pytest.raises(ValueError):
            MultiTenantSimulator(
                [tiny_workload()], neummu_config(), arbitration="coin_flip"
            )
        with pytest.raises(ValueError):
            run_multi_tenant(tiny_workload, neummu_config(), 0)
        with pytest.raises(ValueError):
            NPUSimulator(
                tiny_workload(),
                neummu_config(),
                shared_mmu=SharedMMU(neummu_config()),
                timeline_window=100,
            )
