"""Tests for the extension features: two-level TLB and translation prefetch."""

import pytest

from repro.core.mmu import MMU, MMUConfig, baseline_iommu_config
from repro.core.prefetch import NextPagePrefetcher, PrefetchStats
from repro.core.tlb import TwoLevelTLB
from repro.memory.address import PAGE_SIZE_4K
from repro.memory.page_table import PageTable
from repro.npu.simulator import run_workload
from tests.test_simulator import tiny_cnn

BASE = 0x7F00_0000_0000


def make_table(n_pages=128):
    pt = PageTable()
    pt.map_range(BASE, n_pages * PAGE_SIZE_4K, first_pfn=1000)
    return pt


def vpn_at(index):
    return (BASE >> 12) + index


class TestTwoLevelTLB:
    def test_l1_hit_is_fast(self):
        tlb = TwoLevelTLB(l1_entries=2, l2_entries=8, l1_latency=1, l2_latency=5)
        tlb.insert(1, 11)
        pfn, latency = tlb.lookup(1)
        assert pfn == 11
        assert latency == 1

    def test_l2_hit_promotes_to_l1(self):
        tlb = TwoLevelTLB(l1_entries=1, l2_entries=8)
        tlb.insert(1, 11)
        tlb.insert(2, 22)  # evicts 1 from the 1-entry L1, stays in L2
        pfn, latency = tlb.lookup(1)
        assert pfn == 11
        assert latency == 1 + 5  # came from L2
        pfn, latency = tlb.lookup(1)
        assert latency == 1  # now promoted

    def test_miss_costs_both_probes(self):
        tlb = TwoLevelTLB()
        pfn, latency = tlb.lookup(99)
        assert pfn is None
        assert latency == 6

    def test_invalidate_both_levels(self):
        tlb = TwoLevelTLB()
        tlb.insert(1, 11)
        assert tlb.invalidate(1)
        assert not tlb.contains(1)
        assert not tlb.invalidate(1)

    def test_hierarchy_hit_rate(self):
        tlb = TwoLevelTLB()
        tlb.insert(1, 11)
        tlb.lookup(1)
        tlb.lookup(2)
        assert tlb.hit_rate == pytest.approx(0.5)

    def test_flush(self):
        tlb = TwoLevelTLB()
        tlb.insert(1, 11)
        tlb.flush()
        assert not tlb.contains(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelTLB(l1_latency=-1)

    def test_mmu_integration(self):
        config = MMUConfig(n_walkers=8, l1_tlb_entries=64)
        mmu = MMU(config, make_table())
        ready, _ = mmu.translate(vpn_at(0), 0.0)
        mmu.process_completions(ready)
        hit, _ = mmu.translate(vpn_at(0), ready)
        assert hit - ready == pytest.approx(1.0)  # L1 latency
        hit2, _ = mmu.translate(vpn_at(0), hit)
        assert hit2 - hit == pytest.approx(1.0)

    def test_two_level_does_not_fix_iommu(self):
        """Section III-C: TLB hierarchy is not the bottleneck."""
        plain = run_workload(tiny_cnn(), baseline_iommu_config())
        fancy = run_workload(
            tiny_cnn(), MMUConfig(name="ml", n_walkers=8, l1_tlb_entries=64)
        )
        # Within a few percent of each other: no rescue.
        assert fancy.total_cycles == pytest.approx(plain.total_cycles, rel=0.1)


class TestPrefetcherUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            NextPagePrefetcher(depth=0)
        with pytest.raises(ValueError):
            NextPagePrefetcher(depth=1, reserve=-1)

    def test_accuracy_math(self):
        stats = PrefetchStats(issued=4, useful=3)
        assert stats.accuracy == pytest.approx(0.75)
        assert PrefetchStats().accuracy == 0.0

    def test_issues_next_page_walk(self):
        config = MMUConfig(n_walkers=8, prefetch_depth=1)
        mmu = MMU(config, make_table())
        mmu.translate(vpn_at(0), 0.0)
        # Demand walk for page 0 plus a speculative walk for page 1.
        assert mmu.pool.stats.walks == 2
        assert mmu.prefetcher.stats.issued == 1
        assert mmu.pts.peek(vpn_at(1)) is not None

    def test_prefetch_hit_counts_useful(self):
        config = MMUConfig(n_walkers=8, prefetch_depth=1)
        mmu = MMU(config, make_table())
        ready, _ = mmu.translate(vpn_at(0), 0.0)
        mmu.process_completions(ready + 1)
        mmu.translate(vpn_at(1), ready + 1)  # TLB hit from the prefetch
        assert mmu.prefetcher.stats.useful == 1
        assert mmu.stats.tlb_hits == 1

    def test_reserve_keeps_walkers_for_demand(self):
        config = MMUConfig(n_walkers=2, prefetch_depth=4)
        mmu = MMU(config, make_table())
        mmu.translate(vpn_at(0), 0.0)
        # 2 walkers, reserve 1: at most one walker may host prefetches, and
        # the demand walk already took one — nothing is issued.
        assert mmu.prefetcher.stats.issued == 0
        assert mmu.prefetcher.stats.dropped_no_walker >= 1

    def test_never_prefetches_unmapped(self):
        config = MMUConfig(n_walkers=8, prefetch_depth=2)
        mmu = MMU(config, make_table(n_pages=1))
        mmu.translate(vpn_at(0), 0.0)  # page 1 unmapped
        assert mmu.prefetcher.stats.issued == 0
        assert mmu.stats.faults == 0  # no speculative faults

    def test_covered_pages_skipped(self):
        config = MMUConfig(n_walkers=8, prefetch_depth=1)
        mmu = MMU(config, make_table())
        ready, _ = mmu.translate(vpn_at(0), 0.0)  # prefetches page 1
        mmu.process_completions(ready + 1)
        mmu.translate(vpn_at(1), ready + 1)
        # Demand hit on page 1 prefetches page 2... but a second walk for
        # page 1 never re-issues.
        before = mmu.prefetcher.stats.issued
        mmu.translate(vpn_at(1), ready + 2)
        assert mmu.prefetcher.stats.issued == before

    def test_reset(self):
        pf = NextPagePrefetcher(depth=1)
        pf.stats.issued = 5
        pf._outstanding.add(7)
        pf.reset()
        assert pf.stats.issued == 0
        assert not pf._outstanding


class TestPrefetchEndToEnd:
    def test_prefetch_helps_but_not_enough(self):
        """The extension-study shape: prefetching improves the 8-walker
        IOMMU yet stays far from NeuMMU territory."""
        from repro.core.mmu import neummu_config, oracle_config

        oracle = run_workload(tiny_cnn(), oracle_config())
        plain = run_workload(tiny_cnn(), MMUConfig(name="p0", n_walkers=8))
        prefetch = run_workload(
            tiny_cnn(), MMUConfig(name="p4", n_walkers=8, prefetch_depth=4)
        )
        neummu = run_workload(tiny_cnn(), neummu_config())
        assert prefetch.total_cycles <= plain.total_cycles * 1.02
        assert prefetch.total_cycles > neummu.total_cycles
        assert prefetch.mmu_summary.prefetches > 0
        assert 0.0 <= prefetch.mmu_summary.prefetch_accuracy <= 1.0
        assert oracle.total_cycles <= neummu.total_cycles
