"""Tests for translation-trace capture, persistence and replay."""

import pytest

from repro.core.mmu import MMUConfig, baseline_iommu_config, neummu_config, oracle_config
from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.npu.trace import (
    TranslationTrace,
    capture_trace,
    replay_trace,
    synthesize_page_table,
)
from tests.test_simulator import tiny_cnn


@pytest.fixture(scope="module")
def cnn_trace():
    return capture_trace(tiny_cnn())


class TestCapture:
    def test_burst_per_fetch(self, cnn_trace):
        assert cnn_trace.bursts
        assert all(len(b) > 0 for b in cnn_trace.bursts)

    def test_bytes_match_model_traffic(self, cnn_trace):
        # At minimum every weight byte is fetched once.
        assert cnn_trace.total_bytes >= tiny_cnn().total_weight_bytes()

    def test_transactions_bounded(self, cnn_trace):
        from repro.npu.config import NPUConfig

        max_bytes = NPUConfig().dma_transaction_bytes
        for burst in cnn_trace.bursts:
            for _va, size in burst:
                assert 0 < size <= max_bytes

    def test_distinct_pages_positive(self, cnn_trace):
        assert cnn_trace.distinct_pages() > 100
        # 2 MB granularity must never exceed 4 KB granularity.
        assert cnn_trace.distinct_pages(PAGE_SIZE_2M) < cnn_trace.distinct_pages()


class TestPersistence:
    def test_save_load_roundtrip(self, cnn_trace, tmp_path):
        path = cnn_trace.save(tmp_path / "t.trace")
        loaded = TranslationTrace.load(path)
        assert loaded.name == cnn_trace.name
        assert loaded.bursts == cnn_trace.bursts

    def test_load_rejects_other_files(self, tmp_path):
        path = tmp_path / "bogus.trace"
        path.write_text("not a trace\n")
        with pytest.raises(ValueError):
            TranslationTrace.load(path)

    def test_load_rejects_orphan_transactions(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("neummu-trace-v1\nname\nff 256\n")
        with pytest.raises(ValueError):
            TranslationTrace.load(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = TranslationTrace(name="empty")
        loaded = TranslationTrace.load(trace.save(tmp_path / "e.trace"))
        assert loaded.bursts == []


class TestSynthesizePageTable:
    def test_covers_every_page(self, cnn_trace):
        table = synthesize_page_table(cnn_trace)
        for burst in cnn_trace.bursts[:5]:
            for va, size in burst:
                assert table.is_mapped(va)
                assert table.is_mapped(va + size - 1)

    def test_frames_ascend_with_va(self):
        trace = TranslationTrace(
            name="t", bursts=[[(0x10_0000, 256), (0x20_0000, 256)]]
        )
        table = synthesize_page_table(trace)
        assert table.walk(0x10_0000).pfn < table.walk(0x20_0000).pfn


class TestReplay:
    def test_replay_matches_simulator_ordering(self, cnn_trace):
        """Replaying the captured trace reproduces the paper's ordering."""
        oracle = replay_trace(cnn_trace, oracle_config())
        iommu = replay_trace(cnn_trace, baseline_iommu_config())
        neummu = replay_trace(cnn_trace, neummu_config())
        assert oracle.total_cycles <= neummu.total_cycles <= iommu.total_cycles
        # Memory phases alone: the IOMMU gap is even starker than end-to-end.
        assert iommu.total_cycles > 5 * oracle.total_cycles

    def test_summary_requests_match_trace(self, cnn_trace):
        result = replay_trace(cnn_trace, neummu_config())
        assert result.mmu_summary.requests == cnn_trace.transaction_count

    def test_inter_burst_gap_stretches_time(self, cnn_trace):
        tight = replay_trace(cnn_trace, oracle_config())
        gapped = replay_trace(cnn_trace, oracle_config(), inter_burst_gap=500.0)
        assert gapped.total_cycles > tight.total_cycles
        with pytest.raises(ValueError):
            replay_trace(cnn_trace, oracle_config(), inter_burst_gap=-1)

    def test_replay_at_2mb_pages(self, cnn_trace):
        config = baseline_iommu_config(page_size=PAGE_SIZE_2M)
        oracle_2m = replay_trace(cnn_trace, oracle_config(PAGE_SIZE_2M))
        iommu_2m = replay_trace(cnn_trace, config)
        # Section VI-A: large pages nearly close the IOMMU's memory-phase gap.
        assert iommu_2m.total_cycles < 1.6 * oracle_2m.total_cycles

    def test_stall_accounting(self, cnn_trace):
        result = replay_trace(cnn_trace, MMUConfig(name="tiny", n_walkers=1))
        assert result.stall_cycles > 0
