"""FAST ≈ EXACT in multi-tenant mode, across the full QoS matrix.

The event-driven scheduling core changed *how* tenant pipelines advance
(closed-form quiet stretches, contended batched engine segments), not
*what* they compute: FAST fidelity must still agree with EXACT within
the usual tolerance for every (share policy × arbitration) combination,
and the contention-epoch memoization must drop converged timings the
moment the tenant mix changes (``SharedMMU.remove_tenant`` mid-run).
"""

import pytest

from repro.core.mmu import baseline_iommu_config, neummu_config
from repro.core.qos import ARBITRATION_POLICIES, SHARE_POLICIES
from repro.npu.simulator import Fidelity, MultiTenantSimulator, _TenantRun
from repro.workloads.cnn import Workload
from repro.workloads.layers import ConvLayer, DenseLayer

#: FAST-vs-EXACT relative tolerance per arbitration policy.  The
#: interleaving arbiters keep contention stationary, so the converged
#: per-signature means replay faithfully (measured deviation 0–6%).
#: ``priority`` strictly serializes tenants: a later tenant's warmup
#: instances are dominated by the one-off catch-up against the shared
#: channel backlog the earlier tenants left behind, so the converged
#: mean misrepresents its steady state and FAST is only a coarse
#: estimate (~25% here) — EXACT is the reference for priority studies.
TOLERANCE = {
    "round_robin": 0.02,
    "weighted_quantum": 0.08,
    "priority": 0.35,
}


def tiny_workload(tag, batch=1):
    # Small enough for the EXACT sweeps to stay in the fast CI tier, but
    # wide enough that two tenants saturate the 8-walker IOMMU — and with
    # enough same-signature repetition (a stack of identical dense
    # blocks, RNN style) that FAST's timing memoization genuinely
    # engages past its warmup instead of degenerating to EXACT.
    blocks = tuple(
        DenseLayer(f"fc{i}", batch, 1024, 512) for i in range(8)
    )
    return Workload(
        name=f"tiny_{tag}_b{batch:02d}",
        batch=batch,
        layers=(
            ConvLayer("c1", batch, 14, 14, 8, 32, kernel=3, pad=1),
        )
        + blocks,
    )


def run_tenants(fidelity, qos, arbitration, config=None):
    sim = MultiTenantSimulator(
        [tiny_workload("a"), tiny_workload("b", batch=2)],
        config or baseline_iommu_config(),
        arbitration=arbitration,
        qos=qos,
        weights=[2.0, 1.0],
        fidelity=fidelity,
    )
    return sim.run()


class TestFastExactParity:
    """All 9 policy×arbitration combos on the 8-walker IOMMU."""

    @pytest.mark.parametrize("qos", SHARE_POLICIES)
    @pytest.mark.parametrize("arbitration", ARBITRATION_POLICIES)
    def test_per_tenant_cycles_within_tolerance(self, qos, arbitration):
        tolerance = TOLERANCE[arbitration]
        fast = run_tenants(Fidelity.FAST, qos, arbitration)
        exact = run_tenants(Fidelity.EXACT, qos, arbitration)
        for fast_tenant, exact_tenant in zip(fast.tenants, exact.tenants):
            assert fast_tenant.total_cycles == pytest.approx(
                exact_tenant.total_cycles, rel=tolerance
            ), (qos, arbitration, fast_tenant.asid)
        assert fast.makespan_cycles == pytest.approx(
            exact.makespan_cycles, rel=tolerance
        )

    def test_neummu_design_point_within_tolerance(self):
        fast = run_tenants(
            Fidelity.FAST, "weighted", "weighted_quantum", neummu_config()
        )
        exact = run_tenants(
            Fidelity.EXACT, "weighted", "weighted_quantum", neummu_config()
        )
        for fast_tenant, exact_tenant in zip(fast.tenants, exact.tenants):
            assert fast_tenant.total_cycles == pytest.approx(
                exact_tenant.total_cycles,
                rel=TOLERANCE["weighted_quantum"],
            )


def small_footprint_workload(tag, batch=1):
    # Few enough distinct pages that two tenants together never fill the
    # 2048-entry shared TLB: with zero capacity pressure, the departed
    # tenant's cached state cannot influence the survivor through victim
    # selection, so survivor timing must be *exactly* reproducible.
    return Workload(
        name=f"small_{tag}_b{batch:02d}",
        batch=batch,
        layers=tuple(DenseLayer(f"fc{i}", batch, 256, 256) for i in range(10)),
    )


class TestShootdownUnderContention:
    """Satellite: ``invalidate_asid``/``destroy_context`` fired mid-run
    leave the surviving tenants' results bit-identical.

    Tenant 1 stops being serviced halfway (with walks still in flight);
    three worlds then finish tenant 0: (a) tenant 1 simply idles, (b) its
    TLB footprint is swept with ``invalidate_asid``, (c) its context is
    destroyed outright (``SharedMMU.remove_tenant`` → ``destroy_context``,
    poisoning its in-flight walks).  EXACT fidelity, so every cycle of
    the survivor is compared, not a converged estimate.
    """

    PREFIX_STEPS = 5

    def _survivor_after(self, teardown, config_factory=neummu_config):
        sim = MultiTenantSimulator(
            [small_footprint_workload("a"), small_footprint_workload("b")],
            config_factory(),
            fidelity=Fidelity.EXACT,
        )
        runs = [_TenantRun(tenant) for tenant in sim.tenants]
        for _ in range(self.PREFIX_STEPS):
            for run in runs:
                if not run.done:
                    run.advance()
        assert not runs[0].done and not runs[1].done, "prefix ran to completion"
        if teardown == "invalidate_asid":
            assert sim.shared.mmu.tlb.invalidate_asid(1) > 0
        elif teardown == "destroy_context":
            sim.shared.remove_tenant(1)
            assert 1 not in sim.shared.mmu.contexts
        # Tenant 1 is never advanced again in any world.
        while not runs[0].done:
            runs[0].advance()
        sim.shared.mmu.drain()
        return runs[0]

    @pytest.mark.parametrize(
        "teardown", ["invalidate_asid", "destroy_context"]
    )
    @pytest.mark.parametrize(
        "config_factory", [baseline_iommu_config, neummu_config]
    )
    def test_survivor_bit_identical(self, teardown, config_factory):
        baseline = self._survivor_after(None, config_factory)
        swept = self._survivor_after(teardown, config_factory)
        assert swept.cycle == baseline.cycle  # exact, not approx
        assert len(swept.layer_results) == len(baseline.layer_results)
        for mine, theirs in zip(swept.layer_results, baseline.layer_results):
            assert mine.cycles == theirs.cycles
            assert mine.compute_cycles == theirs.compute_cycles


class TestContentionEpoch:
    """Converged timings are scoped to one contention epoch."""

    def make_sim(self, qos="full_share"):
        return MultiTenantSimulator(
            [tiny_workload("a"), tiny_workload("b")],
            neummu_config(),
            qos=qos,
        )

    def test_epoch_bumps_on_registry_changes(self):
        sim = self.make_sim()
        shared = sim.shared
        before = shared.contention_epoch
        shared.set_tenant_weight(0, 3.0)
        assert shared.contention_epoch == before + 1
        shared.remove_tenant(1)
        assert shared.contention_epoch == before + 2
        shared.bump_contention_epoch()
        assert shared.contention_epoch == before + 3

    def test_runs_adopt_current_epoch_at_creation(self):
        sim = self.make_sim()
        run = _TenantRun(sim.tenants[0])
        assert run.timing_cache.epoch == sim.shared.contention_epoch

    def test_mid_run_remove_tenant_invalidates_memoization(self):
        sim = self.make_sim()
        runs = [_TenantRun(tenant) for tenant in sim.tenants]
        # Warm tenant 0's cache past convergence, stopping mid-run.
        while (
            runs[0].step_counter < 12
            and not runs[0].done
            and not runs[0].timing_cache.converged
        ):
            if not runs[0].advance_quiet(1):
                runs[0].advance()
        assert not runs[0].done, "workload too small to stop mid-run"
        assert runs[0].timing_cache.history, "cache never warmed"
        warmed = dict(runs[0].timing_cache.history)

        # Tenant 1 departs mid-run: the contention regime changed, so
        # tenant 0's converged timings are stale.
        sim.shared.remove_tenant(1)
        assert runs[0].timing_cache.epoch != sim.shared.contention_epoch

        # A quiet stretch cannot run from the stale cache...
        assert runs[0].advance_quiet() == 0
        assert not runs[0].timing_cache.history  # dropped wholesale
        assert not runs[0].timing_cache.converged
        assert runs[0].timing_cache.epoch == sim.shared.contention_epoch

        # ...and the next simulated step re-warms from scratch.
        runs[0].advance()
        assert len(runs[0].timing_cache.history) <= len(warmed)
        while not runs[0].done:
            if not runs[0].advance_quiet():
                runs[0].advance()
        assert runs[0].done

    def test_single_tenant_epoch_is_stable(self):
        """Without a shared MMU the cache never invalidates."""
        from repro.npu.simulator import NPUSimulator

        sim = NPUSimulator(tiny_workload("solo"), neummu_config())
        result = sim.run()
        assert result.total_cycles > 0


class TestResidencyEpoch:
    """Converged timings are scoped to one residency regime too.

    Demand paging adds a second regime axis next to contention: a tile
    timing measured while its pages were local is stale once an eviction
    (or refault) changes what is resident.  The paging tier bumps a
    per-tenant residency epoch on every resident-set change and the
    timing cache re-warms when it moves.
    """

    def make_sim(self):
        mb = 1024 * 1024
        return MultiTenantSimulator(
            [tiny_workload("a"), tiny_workload("b")],
            neummu_config(),
            memory_budgets=(256 * mb, 256 * mb),
        )

    def test_runs_adopt_current_residency_epoch_at_creation(self):
        sim = self.make_sim()
        run = _TenantRun(sim.tenants[0])
        assert run.timing_cache.residency_epoch == sim.paging.residency_epoch(0)

    def test_first_touch_faults_leave_the_epoch_alone(self):
        # Generous budgets: pages only ever join the resident set, so
        # the cold-start fault storm must not wipe the warming cache.
        sim = self.make_sim()
        run = _TenantRun(sim.tenants[0])
        before = sim.paging.residency_epoch(0)
        run.advance()
        assert sim.paging.tenants[0].faults > 0
        assert sim.paging.tenants[0].evictions == 0
        assert sim.paging.residency_epoch(0) == before

    def test_residency_change_invalidates_memoization(self):
        sim = self.make_sim()
        run = _TenantRun(sim.tenants[0])
        while run.step_counter < 6 and not run.done:
            run.advance()
        assert not run.done, "workload too small to stop mid-run"
        cache = run.timing_cache
        tier = sim.paging
        run._sync_timing_epochs()
        assert cache.residency_epoch == tier.residency_epoch(0)

        # Pin a converged timing under the current regime; a sync with
        # no residency movement must leave it alone.
        sig = ("warmed",)
        cache.history[sig] = [(100.0, 10.0)]
        cache.converged[sig] = (100.0, 10.0)
        run._sync_timing_epochs()
        assert cache.converged, "stable residency must not drop timings"

        # A budget eviction moves this tenant into a different residency
        # regime: every cached timing was measured against pages that
        # are no longer (all) local, so the cache drops wholesale...
        tier.tenants[0].bump_residency_epoch()
        run._sync_timing_epochs()
        assert not cache.history and not cache.converged
        assert cache.residency_epoch == tier.residency_epoch(0)

        # ...and the next step re-simulates, re-warming from scratch.
        run.advance()
        assert run.timing_cache.history
