"""Tests for the DMA engine: transaction splitting and page divergence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import PAGE_SIZE_4K, Extent, page_number
from repro.memory.layout import TensorLayout
from repro.npu.config import NPUConfig
from repro.npu.dma import (
    DMAEngine,
    FetchSpec,
    PageDivergence,
    distinct_pages,
    page_divergence_of_fetches,
)


def fetch_2d(rows, cols, elem=4, base=0x10_0000_0000, starts=(0, 0), sizes=None):
    layout = TensorLayout("t", base, (rows, cols), elem)
    sizes = sizes or (rows, cols)
    return FetchSpec("w", layout, starts, sizes)


class TestTransactions:
    def test_cover_fetch_exactly(self):
        dma = DMAEngine(NPUConfig(dma_transaction_bytes=256))
        fetch = fetch_2d(8, 1024)
        txs = dma.transactions(fetch)
        assert sum(size for _, size in txs) == fetch.nbytes
        # In order, no gaps within the contiguous region.
        for (va_a, sz_a), (va_b, _) in zip(txs, txs[1:]):
            assert va_a + sz_a == va_b

    def test_max_size_respected(self):
        dma = DMAEngine(NPUConfig(dma_transaction_bytes=256))
        txs = dma.transactions(fetch_2d(4, 1024))
        assert all(size <= 256 for _, size in txs)

    def test_never_cross_page_boundary(self):
        dma = DMAEngine(NPUConfig(dma_transaction_bytes=1024))
        # Base offset 3000 into a page forces a straddle without splitting.
        txs = dma.transactions(fetch_2d(4, 2048, base=0x10_0000_0000 + 3000))
        for va, size in txs:
            assert page_number(va) == page_number(va + size - 1)

    def test_strided_tile_many_transactions(self):
        dma = DMAEngine(NPUConfig(dma_transaction_bytes=1024))
        # A column slice of a wide matrix: one transaction per row.
        fetch = fetch_2d(128, 4096, starts=(0, 0), sizes=(128, 64))
        txs = dma.transactions(fetch)
        assert len(txs) == 128
        assert all(size == 64 * 4 for _, size in txs)

    def test_transaction_count_helper(self):
        dma = DMAEngine()
        fetch = fetch_2d(16, 256)
        assert dma.transaction_count(fetch) == len(dma.transactions(fetch))

    def test_multi_mb_tile_yields_thousands(self):
        """Section III-C: a multi-MB tile decomposes into thousands of
        translations — the burst the whole paper is about."""
        dma = DMAEngine(NPUConfig(dma_transaction_bytes=256))
        fetch = fetch_2d(1280, 1024)  # 5 MB
        assert dma.transaction_count(fetch) >= 5 * 1024 * 1024 // 256

    @given(
        st.integers(1, 64),
        st.integers(1, 2048),
        st.sampled_from([64, 256, 1024]),
        st.integers(0, PAGE_SIZE_4K - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_split_invariants(self, rows, cols, tx_bytes, page_offset):
        dma = DMAEngine(NPUConfig(dma_transaction_bytes=tx_bytes))
        fetch = fetch_2d(rows, cols, base=0x10_0000_0000 + page_offset)
        txs = dma.transactions(fetch)
        assert sum(s for _, s in txs) == fetch.nbytes
        for va, size in txs:
            assert size <= tx_bytes
            assert page_number(va) == page_number(va + size - 1)


class TestSignature:
    def test_excludes_position_and_name(self):
        a = FetchSpec("w", TensorLayout("layer1.w", 0, (64, 64), 4), (0, 0), (8, 64))
        b = FetchSpec("w", TensorLayout("layer9.w", 4096, (64, 64), 4), (8, 0), (8, 64))
        assert a.signature == b.signature

    def test_distinguishes_shape(self):
        a = fetch_2d(8, 64)
        b = fetch_2d(8, 128)
        assert a.signature != b.signature

    def test_distinguishes_stream(self):
        layout = TensorLayout("t", 0, (8, 8), 4)
        a = FetchSpec("ia", layout, (0, 0), (8, 8))
        b = FetchSpec("w", layout, (0, 0), (8, 8))
        assert a.signature != b.signature


class TestDistinctPages:
    def test_empty(self):
        assert distinct_pages([]) == 0

    def test_single_extent(self):
        assert distinct_pages([Extent(0, PAGE_SIZE_4K * 3)]) == 3
        assert distinct_pages([Extent(100, 10)]) == 1

    def test_adjacent_extents_share_page(self):
        extents = [Extent(0, 100), Extent(100, 100)]
        assert distinct_pages(extents) == 1

    def test_unsorted_input(self):
        extents = [Extent(PAGE_SIZE_4K * 5, 10), Extent(0, 10)]
        assert distinct_pages(extents) == 2

    def test_overlapping_extents_not_double_counted(self):
        extents = [Extent(0, PAGE_SIZE_4K * 2), Extent(PAGE_SIZE_4K, PAGE_SIZE_4K * 2)]
        assert distinct_pages(extents) == 3

    @given(
        st.lists(
            st.tuples(st.integers(0, 200_000), st.integers(1, 20_000)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_property_matches_bruteforce(self, raw):
        extents = [Extent(va, ln) for va, ln in raw]
        pages = set()
        for e in extents:
            pages.update(
                range(page_number(e.va), page_number(e.end - 1) + 1)
            )
        assert distinct_pages(extents) == len(pages)


class TestPageDivergence:
    def test_from_counts(self):
        d = PageDivergence.from_counts([10, 20, 30])
        assert d.max_pages == 30
        assert d.mean_pages == pytest.approx(20.0)
        assert d.fetches == 3

    def test_empty(self):
        d = PageDivergence.from_counts([])
        assert d.max_pages == 0
        assert d.fetches == 0

    def test_of_fetches(self):
        fetches = [fetch_2d(1, 1024), fetch_2d(4, 1024)]
        d = page_divergence_of_fetches(fetches)
        assert d.fetches == 2
        assert d.max_pages >= d.mean_pages

    def test_multi_mb_tile_exceeds_1k_pages(self):
        """Section III-C: a 5 MB tile touches ≥1.2K distinct 4 KB pages."""
        fetch = fetch_2d(1280, 1024)  # 5 MB dense
        d = page_divergence_of_fetches([fetch])
        assert d.max_pages >= 1280
