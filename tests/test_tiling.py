"""Tests for SPM accounting and the tile planners."""

import pytest

from repro.memory.layout import TensorLayout
from repro.npu.config import NPUConfig
from repro.npu.spm import Scratchpad, SPMCapacityError
from repro.npu.tiling import (
    ConvGeometry,
    plan_conv,
    plan_gemm,
    plan_recurrent,
)

MB = 1024 * 1024


class TestScratchpad:
    def test_double_buffer_halves_budget(self):
        spm = Scratchpad("ia", 10 * MB)
        assert spm.tile_budget == 5 * MB

    def test_single_buffer_full_budget(self):
        spm = Scratchpad("ia", 10 * MB, double_buffered=False)
        assert spm.tile_budget == 10 * MB

    def test_check_tile(self):
        spm = Scratchpad("w", 10 * MB)
        spm.check_tile(5 * MB)
        with pytest.raises(SPMCapacityError):
            spm.check_tile(5 * MB + 1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SPMCapacityError):
            Scratchpad("x", 0)


def layouts_for_gemm(m, k, n, elem=4):
    return (
        TensorLayout("ia", 0x10_0000_0000, (m, k), elem),
        TensorLayout("w", 0x20_0000_0000, (k, n), elem),
    )


class TestPlanGemm:
    def test_tiles_respect_w_budget(self):
        config = NPUConfig()
        ia, w = layouts_for_gemm(8, 9216, 4096)
        schedule = plan_gemm("fc", 8, 9216, 4096, ia, w, config)
        budget = config.w_tile_budget
        for step in schedule.steps:
            for fetch in step.fetches:
                if fetch.tensor == "w":
                    assert fetch.nbytes <= budget

    def test_w_traffic_covers_whole_matrix_once(self):
        config = NPUConfig()
        ia, w = layouts_for_gemm(8, 9216, 4096)
        schedule = plan_gemm("fc", 8, 9216, 4096, ia, w, config)
        w_bytes = sum(
            f.nbytes
            for step in schedule.steps
            for f in step.fetches
            if f.tensor == "w"
        )
        assert w_bytes == 9216 * 4096 * 4

    def test_compute_covers_all_macs(self):
        config = NPUConfig()
        ia, w = layouts_for_gemm(8, 9216, 4096)
        schedule = plan_gemm("fc", 8, 9216, 4096, ia, w, config)
        assert schedule.total_macs == 8 * 9216 * 4096

    def test_small_ia_fetched_once(self):
        config = NPUConfig()
        ia, w = layouts_for_gemm(8, 9216, 4096)
        schedule = plan_gemm("fc", 8, 9216, 4096, ia, w, config)
        ia_fetches = [
            f for step in schedule.steps for f in step.fetches if f.tensor == "ia"
        ]
        assert len(ia_fetches) == 1
        assert ia_fetches[0].nbytes == 8 * 9216 * 4

    def test_huge_ia_blocks_m(self):
        config = NPUConfig()
        m = 100_000  # IA = 100000x4096x4 = 1.6 GB, far over budget
        ia, w = layouts_for_gemm(m, 4096, 256)
        schedule = plan_gemm("fc", m, 4096, 256, ia, w, config)
        budget = config.ia_tile_budget
        ia_fetches = [
            f for step in schedule.steps for f in step.fetches if f.tensor == "ia"
        ]
        assert len(ia_fetches) > 1
        assert all(f.nbytes <= budget for f in ia_fetches)


class TestConvGeometry:
    def test_output_dims(self):
        g = ConvGeometry(1, 227, 227, 3, 96, kernel=11, stride=4)
        assert (g.out_h, g.out_w) == (55, 55)

    def test_padding(self):
        g = ConvGeometry(1, 13, 13, 256, 384, kernel=3, pad=1)
        assert (g.out_h, g.out_w) == (13, 13)

    def test_gemm_k(self):
        g = ConvGeometry(1, 13, 13, 256, 384, kernel=3, pad=1)
        assert g.gemm_k == 3 * 3 * 256

    def test_rejects_empty_output(self):
        with pytest.raises(ValueError):
            ConvGeometry(1, 4, 4, 3, 8, kernel=7)


class TestPlanConv:
    def build(self, batch=1, hw=56, c=64, f=256, kernel=3, pad=1):
        config = NPUConfig()
        geom = ConvGeometry(batch, hw, hw, c, f, kernel=kernel, pad=pad)
        ia = TensorLayout("ia", 0x10_0000_0000, (batch, hw, hw, c), 4)
        w = TensorLayout("w", 0x20_0000_0000, (f, kernel, kernel, c), 4)
        return plan_conv("conv", geom, ia, w, config), geom, config

    def test_w_traffic_exactly_once(self):
        schedule, geom, _ = self.build()
        w_bytes = sum(
            f.nbytes for s in schedule.steps for f in s.fetches if f.tensor == "w"
        )
        assert w_bytes == geom.out_c * geom.kernel * geom.kernel * geom.in_c * 4

    def test_macs_cover_convolution(self):
        schedule, geom, _ = self.build()
        expected = (
            geom.batch * geom.out_h * geom.out_w * geom.gemm_k * geom.out_c
        )
        assert schedule.total_macs == expected

    def test_resident_ia_fetched_once(self):
        schedule, _, _ = self.build(batch=1, hw=56, c=64)  # IA ~0.8 MB
        ia_fetches = [
            f for s in schedule.steps for f in s.fetches if f.tensor == "ia"
        ]
        assert len(ia_fetches) == 1

    def test_large_ia_row_blocks_within_budget(self):
        schedule, _, config = self.build(batch=8, hw=224, c=64)  # IA ~102 MB
        ia_fetches = [
            f for s in schedule.steps for f in s.fetches if f.tensor == "ia"
        ]
        assert len(ia_fetches) > 1
        assert all(f.nbytes <= config.ia_tile_budget for f in ia_fetches)

    def test_row_blocks_cover_all_input_rows(self):
        schedule, geom, _ = self.build(batch=8, hw=224, c=64)
        covered = set()
        for s in schedule.steps:
            for f in s.fetches:
                if f.tensor == "ia":
                    start_h = f.starts[1]
                    covered.update(range(start_h, start_h + f.sizes[1]))
        assert covered == set(range(geom.in_h))


class TestPlanRecurrent:
    def build(self, hidden=2048, seq=4, gates=4, batch=1):
        config = NPUConfig()
        k = 2 * hidden
        n = gates * hidden
        ia = TensorLayout("ia", 0x10_0000_0000, (seq, batch, k), 4)
        w = TensorLayout("w", 0x20_0000_0000, (k, n), 4)
        return (
            plan_recurrent("rnn", batch, hidden, hidden, seq, gates, ia, w, config),
            config,
            k,
            n,
        )

    def test_weights_restream_every_timestep(self):
        schedule, _, k, n = self.build()
        w_bytes = sum(
            f.nbytes for s in schedule.steps for f in s.fetches if f.tensor == "w"
        )
        assert w_bytes == 4 * k * n * 4  # seq_len times the matrix

    def test_small_weights_fetched_once(self):
        schedule, _, k, n = self.build(hidden=128, seq=6)
        w_bytes = sum(
            f.nbytes for s in schedule.steps for f in s.fetches if f.tensor == "w"
        )
        assert w_bytes == k * n * 4  # resident across timesteps

    def test_each_timestep_reads_its_slice(self):
        schedule, _, _, _ = self.build(hidden=128, seq=6)
        ia_steps = {
            f.starts[0]
            for s in schedule.steps
            for f in s.fetches
            if f.tensor == "ia"
        }
        assert ia_steps == set(range(6))

    def test_gates_multiply_width(self):
        lstm, _, _, n_lstm = self.build(gates=4)
        rnn, _, _, n_rnn = self.build(gates=1)
        assert n_lstm == 4 * n_rnn
