"""The pluggable QoS layer: share policies, arbiters, fairness.

Three layers of coverage:

* unit — :class:`SharePolicy` quota arithmetic, Jain's index, the
  policy-aware TLB victim selection, walker reservations and PRMB slot
  quotas, and the :class:`Arbiter` hierarchy;
* integration — :class:`MultiTenantSimulator` under every (policy,
  arbitration) combination, including the exact-conservation property
  (per-tenant usage must sum to the shared MMU's global counters) and
  mid-run tenant teardown;
* fairness smoke — 2 tiny tenants: Jain's index in (0, 1], weighted
  shares order the per-tenant slowdowns, and a reserved heavy tenant is
  never slower than under full sharing.
"""

import pytest

from repro.core.mmu import MMU, MMUConfig, SharedMMU, baseline_iommu_config, neummu_config
from repro.core.qos import (
    ARBITRATION_POLICIES,
    SHARE_POLICIES,
    PriorityArbiter,
    RoundRobinArbiter,
    WeightedQuantumArbiter,
    jain_index,
    make_arbiter,
    make_share_policy,
)
from repro.core.tlb import TLB, TwoLevelTLB
from repro.memory.address import PAGE_SIZE_4K
from repro.memory.page_table import PageTable
from repro.npu.simulator import MultiTenantSimulator, run_workload
from repro.workloads.cnn import Workload
from repro.workloads.layers import ConvLayer, DenseLayer

BASE = 0x7F00_0000_0000
VPN = BASE >> 12


def table_mapping(first_pfn, n_pages=4096):
    table = PageTable()
    table.map_range(BASE, n_pages * PAGE_SIZE_4K, first_pfn=first_pfn)
    return table


def tiny_workload(batch=1, tag="t"):
    # Deliberately small (non-trivial policies force the engine's
    # per-transaction reference path, and this keeps the whole QoS suite
    # inside the fast CI tier) but with a dense layer wide enough that
    # two tenants genuinely saturate the 8-walker IOMMU's translation
    # throughput — the regime where share policies have teeth.
    return Workload(
        name=f"tiny_{tag}_b{batch:02d}",
        batch=batch,
        layers=(
            ConvLayer("c1", batch, 14, 14, 8, 32, kernel=3, pad=1),
            DenseLayer("fc", batch, 14 * 14 * 32, 256),
        ),
    )


# --------------------------------------------------------------------- #
# policy unit tests                                                      #
# --------------------------------------------------------------------- #


class TestSharePolicy:
    def test_full_share_never_constrains(self):
        policy = make_share_policy("full_share")
        policy.register(0, 1.0)
        policy.register(1, 9.0)
        assert policy.trivial
        assert policy.quota(0, 128) is None
        assert policy.tlb_quota(1, 2048) is None

    def test_static_partition_equal_split(self):
        policy = make_share_policy("static_partition")
        policy.register(0)
        policy.register(1)
        assert not policy.trivial and not policy.work_conserving
        assert policy.walker_quota(0, 128) == 64
        assert policy.walker_quota(1, 128) == 64

    def test_weighted_proportional_split(self):
        policy = make_share_policy("weighted")
        policy.register(0, 3.0)
        policy.register(1, 1.0)
        assert policy.work_conserving
        assert policy.walker_quota(0, 8) == 6
        assert policy.walker_quota(1, 8) == 2

    def test_quota_floors_at_one_entry(self):
        policy = make_share_policy("static_partition")
        for asid in range(16):
            policy.register(asid)
        assert policy.walker_quota(0, 8) == 1

    def test_unregistered_asid_is_unconstrained(self):
        policy = make_share_policy("static_partition")
        policy.register(0)
        assert policy.quota(7, 128) is None

    def test_unregister_grows_survivors(self):
        policy = make_share_policy("static_partition")
        policy.register(0)
        policy.register(1)
        assert policy.walker_quota(0, 128) == 64
        policy.unregister(1)
        assert policy.walker_quota(0, 128) == 128

    def test_validation(self):
        with pytest.raises(ValueError, match="choose from"):
            make_share_policy("coin_flip")
        policy = make_share_policy("weighted")
        with pytest.raises(ValueError, match="positive"):
            policy.register(0, 0.0)

    def test_jain_index(self):
        assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_index([2.0, 1.0]) == pytest.approx(0.9)
        # Bounded by [1/n, 1].
        assert jain_index([100.0, 1.0, 1.0]) > 1 / 3
        assert jain_index([]) == 0.0


# --------------------------------------------------------------------- #
# TLB partitioning                                                       #
# --------------------------------------------------------------------- #


def two_tenant_policy(kind="static_partition", w0=1.0, w1=1.0):
    policy = make_share_policy(kind)
    policy.register(0, w0)
    policy.register(1, w1)
    return policy


class TestTLBPartitioning:
    def test_occupancy_capped_at_quota(self):
        tlb = TLB(8, policy=two_tenant_policy())
        for i in range(16):
            tlb.insert(VPN + i, i, asid=0)
        assert tlb.occupancy_of(0) == 4
        assert tlb.occupancy <= 8

    def test_capped_tenant_self_victimizes(self):
        """A tenant at quota evicts its own LRU, not another tenant's."""
        tlb = TLB(8, policy=two_tenant_policy())
        for i in range(4):
            tlb.insert(VPN + i, i, asid=1)
        for i in range(8):
            tlb.insert(VPN + i, i, asid=0)
        # Tenant 1's four entries all survived tenant 0's overflow.
        for i in range(4):
            assert tlb.contains(VPN + i, asid=1)
        assert tlb.occupancy_of(0) == 4
        # Tenant 0 holds its four most recent pages (LRU self-eviction).
        for i in range(4, 8):
            assert tlb.contains(VPN + i, asid=0)

    def test_weighted_quotas_skew_capacity(self):
        tlb = TLB(8, policy=two_tenant_policy("static_partition", 3.0, 1.0))
        for i in range(16):
            tlb.insert(VPN + i, i, asid=0)
            tlb.insert(VPN + i, i, asid=1)
        assert tlb.occupancy_of(0) == 6
        assert tlb.occupancy_of(1) == 2

    def test_work_conserving_borrows_idle_capacity(self):
        """Under ``weighted``, a lone tenant may overflow its quota."""
        tlb = TLB(8, policy=two_tenant_policy("weighted"))
        for i in range(8):
            tlb.insert(VPN + i, i, asid=0)
        assert tlb.occupancy_of(0) == 8  # borrowed tenant 1's idle half
        # Pressure from tenant 1 reclaims the borrowed (over-quota) entries.
        tlb.insert(VPN + 100, 1, asid=1)
        assert tlb.occupancy_of(0) == 7
        assert tlb.contains(VPN + 100, asid=1)

    def test_static_partition_never_borrows(self):
        tlb = TLB(8, policy=two_tenant_policy("static_partition"))
        for i in range(8):
            tlb.insert(VPN + i, i, asid=0)
        assert tlb.occupancy_of(0) == 4

    def test_invalidate_releases_quota(self):
        tlb = TLB(8, policy=two_tenant_policy())
        for i in range(4):
            tlb.insert(VPN + i, i, asid=0)
        assert tlb.invalidate(VPN, asid=0)
        assert tlb.occupancy_of(0) == 3
        tlb.insert(VPN + 9, 9, asid=0)
        assert tlb.occupancy_of(0) == 4

    def test_invalidate_asid_releases_quota(self):
        tlb = TLB(8, policy=two_tenant_policy())
        for i in range(4):
            tlb.insert(VPN + i, i, asid=0)
        assert tlb.invalidate_asid(0) == 4
        assert tlb.occupancy_of(0) == 0

    def test_reinsert_resident_key_does_not_leak_quota(self):
        tlb = TLB(8, policy=two_tenant_policy())
        for _ in range(5):
            tlb.insert(VPN, 1, asid=0)
        assert tlb.occupancy_of(0) == 1

    def test_set_associative_quota_is_hard(self):
        """An at-quota tenant with no entry in the target set drops the
        fill instead of growing past its cap or stealing another way."""
        tlb = TLB(4, associativity=2, policy=two_tenant_policy())
        # 2 sets x 2 ways; quota 2 per tenant.  Even VPNs map to set 0.
        tlb.insert(VPN, 1, asid=0)
        tlb.insert(VPN + 2, 2, asid=0)
        assert tlb.occupancy_of(0) == 2
        tlb.insert(VPN + 1, 3, asid=0)  # set 1: no self-victim available
        assert not tlb.contains(VPN + 1, asid=0)
        assert tlb.occupancy_of(0) == 2
        # Tenant 1's ways in set 1 were not stolen either.
        tlb.insert(VPN + 3, 4, asid=1)
        assert tlb.contains(VPN + 3, asid=1)

    def test_two_level_tlb_partitions_both_levels(self):
        tlb = TwoLevelTLB(l1_entries=4, l2_entries=8, policy=two_tenant_policy())
        for i in range(8):
            tlb.insert(VPN + i, i, asid=0)
        assert tlb.l1.occupancy_of(0) == 2
        assert tlb.l2.occupancy_of(0) == 4

    def test_trivial_policy_is_plain_tlb(self):
        """full_share must leave the historical insert path untouched."""
        plain = TLB(4)
        policied = TLB(4, policy=make_share_policy("full_share"))
        for i in range(8):
            plain.insert(VPN + i, i, asid=0)
            policied.insert(VPN + i, i, asid=0)
        assert policied._policy is None
        for i in range(8):
            assert plain.contains(VPN + i) == policied.contains(VPN + i)


# --------------------------------------------------------------------- #
# walker + PRMB partitioning                                             #
# --------------------------------------------------------------------- #


def policied_mmu(kind, w0=1.0, w1=1.0, n_walkers=8, prmb_slots=0):
    config = MMUConfig(name="x", n_walkers=n_walkers, prmb_slots=prmb_slots, qos=kind)
    mmu = MMU(config, None)
    mmu.register_context(0, table_mapping(10), weight=w0)
    mmu.register_context(1, table_mapping(50000), weight=w1)
    return mmu


class TestWalkerReservations:
    def test_walker_quota_blocks_at_reservation(self):
        mmu = policied_mmu("static_partition", 3.0, 1.0)
        pool = mmu.pool
        # Tenant 1 (quota 2) dispatches walks for distinct pages.
        for i in range(2):
            ready, _ = mmu.translate(VPN + i, float(i), asid=1)
            assert ready is not None
        assert not pool.can_start(1)
        assert pool.free_walkers == 6  # six walkers idle but reserved
        ready, retry = mmu.translate(VPN + 2, 2.0, asid=1)
        assert ready is None and retry > 2.0
        # Tenant 0 (quota 6) still gets its reservation.
        assert pool.can_start(0)
        ready, _ = mmu.translate(VPN + 3, 3.0, asid=0)
        assert ready is not None

    def test_quota_blocked_retry_waits_for_own_walk(self):
        mmu = policied_mmu("static_partition", 1.0, 1.0)
        pool = mmu.pool
        mmu.translate(VPN + 100, 0.0, asid=1)  # completes earliest
        # Fill tenant 0's quota (4 of 8 walkers) with later walks.
        for i in range(4):
            mmu.translate(VPN + i, 100.0 + i, asid=0)
        ready, retry = mmu.translate(VPN + 50, 200.0, asid=0)
        assert ready is None
        assert pool.free_walkers > 0  # blocked by quota, not capacity
        # Tenant 0 unblocks when *its* earliest walk completes, not when
        # tenant 1's (earlier) walk frees a walker it may not use.
        own = min(pool._completion_of[w] for w in pool._busy_by_asid[0])
        other = min(pool._completion_of[w] for w in pool._busy_by_asid[1])
        assert retry == own
        assert retry > other

    def test_work_conserving_borrows_idle_walkers(self):
        # Quotas floor to 3 + 3 of 7 walkers, leaving one unreserved;
        # tenant 0 may borrow it past its quota while tenant 1 idles,
        # but never dip into tenant 1's unmet reservation.
        mmu = policied_mmu("weighted", 1.0, 1.0, n_walkers=7)
        for i in range(5):
            ready, _ = mmu.translate(VPN + i, float(i), asid=0)
            assert (ready is not None) == (i < 4)
        assert mmu.pool.busy_walkers_of(0) == 4  # quota 3 + 1 borrowed
        assert mmu.pool.free_walkers == 3  # tenant 1's reservation intact

    def test_quota_blocked_retry_ignores_others_when_pool_full(self):
        """Even with zero free walkers, a hard-partitioned tenant at
        quota waits for its *own* walk — another tenant's completion
        frees a walker it still may not use."""
        mmu = policied_mmu("static_partition", 1.0, 1.0)
        pool = mmu.pool
        for i in range(4):  # tenant 1's walks complete early
            mmu.translate(VPN + 100 + i, float(i), asid=1)
        for i in range(4):  # tenant 0 fills its quota much later
            mmu.translate(VPN + i, 200.0 + i, asid=0)
        assert pool.free_walkers == 0
        ready, retry = mmu.translate(VPN + 50, 300.0, asid=0)
        assert ready is None
        own = min(pool._completion_of[w] for w in pool._busy_by_asid[0])
        assert retry == own > pool.earliest_completion()

    def test_work_conserving_retry_waits_for_any_completion(self):
        """Any walk retiring can reopen borrow headroom, so a blocked
        tenant under ``weighted`` retries at the pool-wide earliest
        completion — not just its own (which may be far later)."""
        config = MMUConfig(name="x", n_walkers=8, prmb_slots=0, qos="weighted")
        mmu = MMU(config, None)
        for asid in range(3):  # quotas floor to 2 of 8 walkers each
            mmu.register_context(asid, table_mapping(10 + 40000 * asid))
        pool = mmu.pool
        # Tenant 2 borrows to 4 walkers with early completions...
        for i in range(4):
            ready, _ = mmu.translate(VPN + i, float(i), asid=2)
            assert ready is not None
        # ...then tenant 0 fills its quota with much later walks.
        mmu.translate(VPN + 10, 500.0, asid=0)
        mmu.translate(VPN + 11, 501.0, asid=0)
        ready, retry = mmu.translate(VPN + 12, 502.0, asid=0)
        assert ready is None
        own = min(pool._completion_of[w] for w in pool._busy_by_asid[0])
        assert retry == pool.earliest_completion() < own

    def test_work_conserving_respects_other_reservations(self):
        mmu = policied_mmu("weighted", 1.0, 1.0)
        for i in range(4):
            mmu.translate(VPN + i, float(i), asid=0)
        # 4 free walkers exactly cover tenant 1's unmet reservation:
        # no headroom to borrow.
        assert not mmu.pool.can_start(0)

    def test_prefetcher_respects_walker_quota(self):
        """Speculative walks never breach the issuing tenant's reservation."""
        config = MMUConfig(
            name="x", n_walkers=4, prmb_slots=0, prefetch_depth=3,
            qos="static_partition",
        )
        mmu = MMU(config, None)
        mmu.register_context(0, table_mapping(10))
        mmu.register_context(1, table_mapping(50000))
        # Quota 2 of 4 walkers: one demand walk plus at most one prefetch.
        ready, _ = mmu.translate(VPN, 0.0, asid=0)
        assert ready is not None
        assert mmu.pool.busy_walkers_of(0) == 2
        assert mmu.prefetcher.stats.dropped_no_walker >= 1
        # Tenant 1's reservation is untouched.
        assert mmu.pool.can_start(1)

    def test_full_share_can_start_is_free_list(self):
        config = MMUConfig(name="x", n_walkers=2, prmb_slots=0)
        mmu = MMU(config, table_mapping(10))
        assert mmu.pool.can_start(0)
        mmu.translate(VPN, 0.0)
        mmu.translate(VPN + 1, 1.0)
        assert not mmu.pool.can_start(0)


class TestPRMBQuotas:
    def test_merge_quota_caps_parked_requests(self):
        # 2 walkers x 4 slots = 8 mergeable slots; equal split = 4 each.
        mmu = policied_mmu("static_partition", n_walkers=2, prmb_slots=4)
        pool = mmu.pool
        mmu.translate(VPN, 0.0, asid=0)  # walk in flight
        merges = 0
        for i in range(6):
            ready, _ = mmu.translate(VPN, 1.0 + i, asid=0)
            if ready is not None and mmu.stats.merges > merges:
                merges = mmu.stats.merges
        assert mmu.stats.merges == 4  # quota, not the walker's 4-slot cap x2
        assert pool.prmb_occupancy_of(0) == 4
        assert not pool.can_merge(0)
        assert pool.can_merge(1)

    def test_drain_releases_merge_quota(self):
        mmu = policied_mmu("static_partition", n_walkers=2, prmb_slots=4)
        mmu.translate(VPN, 0.0, asid=0)
        for i in range(4):
            mmu.translate(VPN, 1.0 + i, asid=0)
        assert not mmu.pool.can_merge(0)
        mmu.drain()
        assert mmu.pool.can_merge(0)
        assert mmu.pool.prmb_occupancy_of(0) == 0


# --------------------------------------------------------------------- #
# arbiters                                                               #
# --------------------------------------------------------------------- #


class FakeRun:
    """Minimal stepwise run: ``n`` steps of unit cost."""

    def __init__(self, n, cost=1):
        self.left = n
        self.cost = cost
        self.trace = []
        # Static clock: ties break on list order, exposing pure DRR
        # credit behaviour (clock ordering is exercised end-to-end by the
        # MultiTenantSimulator integration tests).
        self.clock = 0.0

    @property
    def done(self):
        return self.left <= 0

    def advance(self):
        if self.done:
            raise RuntimeError("already finished")
        self.left -= 1
        self.trace.append(self.left)
        return self.cost


class TestArbiters:
    def test_factory_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="choose from"):
            make_arbiter("lottery")

    def test_factory_kinds(self):
        assert isinstance(make_arbiter("round_robin"), RoundRobinArbiter)
        assert isinstance(make_arbiter("priority"), PriorityArbiter)
        assert isinstance(
            make_arbiter("weighted_quantum"), WeightedQuantumArbiter
        )

    def test_round_robin_interleaves(self):
        runs = [FakeRun(3), FakeRun(3)]
        steps = []
        for run in runs:
            orig = run.advance

            def wrapped(run=run, orig=orig):
                steps.append(runs.index(run))
                return orig()

            run.advance = wrapped
        RoundRobinArbiter().run(runs)
        assert steps == [0, 1, 0, 1, 0, 1]

    def test_priority_serializes(self):
        runs = [FakeRun(2), FakeRun(2)]
        steps = []
        for i, run in enumerate(runs):
            orig = run.advance

            def wrapped(i=i, orig=orig):
                steps.append(i)
                return orig()

            run.advance = wrapped
        PriorityArbiter().run(runs)
        assert steps == [0, 0, 1, 1]

    def test_weighted_quantum_grants_proportional_bursts(self):
        """Weight 3 gets three consecutive unit-cost steps per grant."""
        runs = [FakeRun(6, cost=1), FakeRun(6, cost=1)]
        steps = []
        for i, run in enumerate(runs):
            orig = run.advance

            def wrapped(i=i, orig=orig):
                steps.append(i)
                return orig()

            run.advance = wrapped
        WeightedQuantumArbiter(weights=[3, 1], quantum=1).run(runs)
        assert steps == [0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1]

    def test_weighted_quantum_completes_everyone(self):
        runs = [FakeRun(5), FakeRun(17), FakeRun(1)]
        WeightedQuantumArbiter(weights=[1, 4, 2], quantum=3).run(runs)
        assert all(run.done for run in runs)

    def test_weighted_quantum_validation(self):
        with pytest.raises(ValueError, match="positive"):
            WeightedQuantumArbiter(weights=[1, -1])
        with pytest.raises(ValueError, match="quantum"):
            WeightedQuantumArbiter(quantum=0)
        with pytest.raises(ValueError, match="weight"):
            WeightedQuantumArbiter(weights=[1]).run([FakeRun(1), FakeRun(1)])
        with pytest.raises(ValueError, match="skew"):
            WeightedQuantumArbiter(skew_window=-0.1)
        with pytest.raises(ValueError, match="skew"):
            WeightedQuantumArbiter(skew_floor=-1.0)

    def test_skew_window_holds_back_runaway_clock(self):
        """A tenant far ahead of the laggard waits even with credit.

        Tenants couple through shared channel state keyed by their private
        clocks, so the arbiter must not service a run whose clock has
        raced past the laggard's skew horizon (see the qos module docs).
        """

        class ClockedRun(FakeRun):
            def __init__(self, n, step):
                super().__init__(n)
                self.step = step

            def advance(self):
                cost = super().advance()
                self.clock += self.step
                return cost

        slow, fast = ClockedRun(8, step=1.0), ClockedRun(8, step=1e9)
        steps = []
        for i, run in enumerate((slow, fast)):
            orig = run.advance

            def wrapped(i=i, orig=orig):
                steps.append(i)
                return orig()

            run.advance = wrapped
        WeightedQuantumArbiter(weights=[1, 1], quantum=2).run([slow, fast])
        assert slow.done and fast.done
        # The fast run's first step leaves it ~1e9 ahead, outside the skew
        # horizon: every remaining slow step precedes its second step.
        first = steps.index(1)
        assert first < 4
        # All of slow's remaining steps run before fast's second step.
        assert steps[first + 1:].count(0) == 8 - first
        assert steps[-7:] == [1] * 7


# --------------------------------------------------------------------- #
# integration: conservation, teardown, fairness                          #
# --------------------------------------------------------------------- #


class TestConservation:
    """Satellite: per-tenant usage must sum to the global counters exactly."""

    @pytest.mark.parametrize("qos", SHARE_POLICIES)
    @pytest.mark.parametrize("arbitration", ARBITRATION_POLICIES)
    def test_usage_sums_to_global_counters(self, qos, arbitration):
        sim = MultiTenantSimulator(
            [tiny_workload(tag="a"), tiny_workload(batch=2, tag="b")],
            neummu_config(),
            arbitration=arbitration,
            qos=qos,
            weights=[2.0, 1.0],
        )
        sim.run()
        shared = sim.shared
        stats = shared.mmu.stats
        usages = list(shared.usage.values())
        assert sum(u.requests for u in usages) == stats.requests
        assert sum(u.tlb_hits for u in usages) == stats.tlb_hits
        assert sum(u.merges for u in usages) == stats.merges
        assert sum(u.walks for u in usages) == shared.mmu.pool.stats.walks
        assert sum(u.stall_cycles for u in usages) == stats.stall_cycles
        assert sum(u.faults for u in usages) == stats.faults

    def test_conservation_on_iommu_design_point(self):
        sim = MultiTenantSimulator(
            [tiny_workload(tag="a"), tiny_workload(tag="b")],
            baseline_iommu_config(),
            qos="static_partition",
        )
        sim.run()
        shared = sim.shared
        stats = shared.mmu.stats
        usages = list(shared.usage.values())
        assert sum(u.requests for u in usages) == stats.requests
        assert sum(u.stall_cycles for u in usages) == stats.stall_cycles
        assert sum(u.walks for u in usages) == shared.mmu.pool.stats.walks


class TestMidRunTeardown:
    """Satellite: removing a tenant between bursts must not disturb the rest."""

    BURST = [(BASE + k * 256, 256) for k in range(256)]

    def _run(self, remove_departed):
        """Tenants 0/1 interleave bursts; tenant 1 departs halfway."""
        shared = SharedMMU(neummu_config())
        shared.add_tenant(0, table_mapping(10))
        shared.add_tenant(1, table_mapping(50000))
        timings = []
        results, _ = shared.run_bursts(0, [self.BURST], 0.0)
        timings.append(results[0])
        results, _ = shared.run_bursts(1, [self.BURST], 0.0)
        if remove_departed:
            shared.remove_tenant(1)
        # Tenant 1 issues nothing past this point in either world.
        for start in (5000.0, 20000.0):
            results, _ = shared.run_bursts(0, [self.BURST], start)
            timings.append(results[0])
        return shared, timings

    def test_remaining_tenant_unchanged_after_departure(self):
        with_removal, timings_removed = self._run(remove_departed=True)
        without, timings_kept = self._run(remove_departed=False)
        for removed, kept in zip(timings_removed, timings_kept):
            assert removed.issue_end_cycle == kept.issue_end_cycle
            assert removed.data_end_cycle == kept.data_end_cycle
            assert removed.stall_cycles == kept.stall_cycles
        u_removed = with_removal.usage[0]
        u_kept = without.usage[0]
        assert u_removed.requests == u_kept.requests
        assert u_removed.tlb_hits == u_kept.tlb_hits
        assert u_removed.merges == u_kept.merges
        assert u_removed.stall_cycles == u_kept.stall_cycles

    def test_departed_tenant_gone_but_usage_readable(self):
        shared, _ = self._run(remove_departed=True)
        assert shared.tenants == [0]
        assert shared.usage[1].requests == len(self.BURST)
        assert 1 not in shared.mmu.contexts

    def test_departure_unregisters_share(self):
        shared = SharedMMU(
            neummu_config(), share_policy=make_share_policy("static_partition")
        )
        shared.add_tenant(0, table_mapping(10))
        shared.add_tenant(1, table_mapping(50000))
        assert shared.share_policy.walker_quota(0, 128) == 64
        shared.remove_tenant(1)
        assert shared.share_policy.walker_quota(0, 128) == 128


class TestFairnessSmoke:
    """Satellite: the fast-tier fairness smoke test (2 tiny tenants)."""

    @pytest.fixture(scope="class")
    def isolated_cycles(self):
        return run_workload(tiny_workload(), baseline_iommu_config()).total_cycles

    def _slowdowns(self, qos, weights, arbitration="round_robin"):
        sim = MultiTenantSimulator(
            [tiny_workload(tag="a"), tiny_workload(tag="b")],
            baseline_iommu_config(),
            arbitration=arbitration,
            qos=qos,
            weights=weights,
        )
        result = sim.run()
        return [t.total_cycles for t in result.tenants]

    def test_weighted_shares_order_slowdowns_and_jain_in_range(
        self, isolated_cycles
    ):
        cycles = self._slowdowns("weighted", [4.0, 1.0])
        slowdowns = [c / isolated_cycles for c in cycles]
        index = jain_index(slowdowns)
        assert 0.0 < index <= 1.0
        # The heavy tenant's reservation buys it latency: its slowdown
        # cannot exceed the light tenant's.
        assert slowdowns[0] <= slowdowns[1]

    def test_reserved_tenant_no_slower_than_full_share(self, isolated_cycles):
        full = self._slowdowns("full_share", [3.0, 1.0])
        static = self._slowdowns("static_partition", [3.0, 1.0])
        assert static[0] <= full[0] * 1.001

    def test_weighted_quantum_protects_heavy_tenant(self, isolated_cycles):
        rr = self._slowdowns("full_share", [3.0, 1.0])
        wq = self._slowdowns(
            "full_share", [3.0, 1.0], arbitration="weighted_quantum"
        )
        # The heavy tenant's longer quanta reduce mid-burst preemption.
        assert wq[0] <= rr[0] * 1.001
        assert wq[0] <= wq[1]


class TestSimulatorValidation:
    def test_unknown_qos_policy(self):
        with pytest.raises(ValueError, match="choose from"):
            MultiTenantSimulator(
                [tiny_workload()], neummu_config(), qos="coin_flip"
            )

    def test_unknown_arbitration_policy(self):
        with pytest.raises(ValueError, match="choose from"):
            MultiTenantSimulator(
                [tiny_workload()], neummu_config(), arbitration="lottery"
            )

    def test_weights_length_mismatch(self):
        with pytest.raises(ValueError, match="exactly one positive weight"):
            MultiTenantSimulator(
                [tiny_workload()], neummu_config(), weights=[1.0, 2.0]
            )

    def test_non_positive_weights(self):
        with pytest.raises(ValueError, match="positive"):
            MultiTenantSimulator(
                [tiny_workload(tag="a"), tiny_workload(tag="b")],
                neummu_config(),
                weights=[1.0, 0.0],
            )

    def test_config_rejects_unknown_qos(self):
        with pytest.raises(ValueError, match="choose from"):
            MMUConfig(name="x", qos="coin_flip")


class TestDefaultBitIdentity:
    """full_share + round_robin must reproduce the pre-QoS engine exactly."""

    def test_default_run_matches_explicit_full_share(self):
        baseline = MultiTenantSimulator(
            [tiny_workload(tag="a"), tiny_workload(tag="b")], neummu_config()
        ).run()
        explicit = MultiTenantSimulator(
            [tiny_workload(tag="a"), tiny_workload(tag="b")],
            neummu_config(),
            qos="full_share",
            arbitration="round_robin",
            weights=[1.0, 1.0],
        ).run()
        for a, b in zip(baseline.tenants, explicit.tenants):
            assert a.total_cycles == b.total_cycles
            assert a.usage.requests == b.usage.requests
            assert a.usage.stall_cycles == b.usage.stall_cycles
        assert baseline.mmu_summary.requests == explicit.mmu_summary.requests

    def test_trivial_policy_keeps_batched_fast_path(self):
        sim = MultiTenantSimulator([tiny_workload()], neummu_config())
        assert sim.shared.engine._batchable()

    def test_nontrivial_policy_takes_contended_batched_path(self):
        """Quota enforcement no longer forces the per-transaction
        reference loop: the contended batched path covers it (and is
        locked to the reference bit for bit by the parity suite)."""
        sim = MultiTenantSimulator(
            [tiny_workload()], neummu_config(), qos="static_partition"
        )
        assert sim.shared.engine._batchable()
        assert not sim.shared.mmu.share_policy.trivial
