"""Tests for frame/segment allocation and the shared address space."""

import pytest

from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K, AddressError
from repro.memory.allocator import AddressSpace, FrameAllocator, OutOfMemory

MB = 1024 * 1024


class TestFrameAllocator:
    def test_alloc_contiguous(self):
        fa = FrameAllocator(16 * PAGE_SIZE_4K)
        assert fa.alloc(4) == [0, 1, 2, 3]
        assert fa.allocated_frames == 4
        assert fa.free_frames == 12

    def test_exhaustion_raises(self):
        fa = FrameAllocator(4 * PAGE_SIZE_4K)
        fa.alloc(4)
        with pytest.raises(OutOfMemory):
            fa.alloc(1)

    def test_free_and_reuse(self):
        fa = FrameAllocator(4 * PAGE_SIZE_4K)
        frames = fa.alloc(4)
        fa.free(frames[:2])
        assert fa.free_frames == 2
        reused = fa.alloc(2)
        assert set(reused) == set(frames[:2])

    def test_shuffled_policy_is_deterministic(self):
        a = FrameAllocator(1024 * PAGE_SIZE_4K, policy="shuffled", seed=3)
        b = FrameAllocator(1024 * PAGE_SIZE_4K, policy="shuffled", seed=3)
        assert a.alloc(100) == b.alloc(100)

    def test_shuffled_policy_permutes(self):
        fa = FrameAllocator(1024 * PAGE_SIZE_4K, policy="shuffled", seed=3)
        frames = fa.alloc(100)
        assert sorted(frames) != frames  # overwhelmingly likely permuted
        assert len(set(frames)) == 100

    def test_rejects_unknown_policy(self):
        with pytest.raises(AddressError):
            FrameAllocator(PAGE_SIZE_4K, policy="random")

    def test_negative_alloc_rejected(self):
        fa = FrameAllocator(PAGE_SIZE_4K)
        with pytest.raises(AddressError):
            fa.alloc(-1)


class TestAddressSpace:
    def test_segments_are_2mb_aligned_and_disjoint(self):
        space = AddressSpace(memory_bytes=1024 * MB)
        a = space.alloc_segment("a", 5 * MB)
        b = space.alloc_segment("b", 3 * MB)
        assert a.va % PAGE_SIZE_2M == 0
        assert b.va % PAGE_SIZE_2M == 0
        assert a.end <= b.va  # guard gap between segments

    def test_segments_never_share_2mb_region(self):
        space = AddressSpace(memory_bytes=1024 * MB)
        a = space.alloc_segment("a", 1000)  # tiny
        b = space.alloc_segment("b", 1000)
        assert b.va // PAGE_SIZE_2M > (a.end - 1) // PAGE_SIZE_2M

    def test_populated_segment_is_mapped(self):
        space = AddressSpace(memory_bytes=64 * MB)
        seg = space.alloc_segment("x", 1 * MB)
        assert space.page_table.is_mapped(seg.va)
        assert space.page_table.is_mapped(seg.end - 1)

    def test_unpopulated_segment_faults(self):
        space = AddressSpace(memory_bytes=64 * MB)
        seg = space.alloc_segment("x", 1 * MB, populate=False)
        assert not space.page_table.is_mapped(seg.va)

    def test_touch_installs_mapping_once(self):
        space = AddressSpace(memory_bytes=64 * MB)
        seg = space.alloc_segment("x", 1 * MB, populate=False)
        assert space.touch(seg.va + 100) is True
        assert space.touch(seg.va + 200) is False  # same page already in
        assert space.page_table.is_mapped(seg.va)

    def test_duplicate_name_rejected(self):
        space = AddressSpace(memory_bytes=64 * MB)
        space.alloc_segment("x", 1000)
        with pytest.raises(AddressError):
            space.alloc_segment("x", 1000)

    def test_lookup_helpers(self):
        space = AddressSpace(memory_bytes=64 * MB)
        seg = space.alloc_segment("x", 1000)
        assert space.segment("x") == seg
        assert space.find_segment(seg.va + 10) == seg
        assert space.find_segment(seg.va - 1) is None
        with pytest.raises(AddressError):
            space.segment("missing")

    def test_footprint(self):
        space = AddressSpace(memory_bytes=64 * MB)
        space.alloc_segment("a", 1 * MB)
        space.alloc_segment("b", 2 * MB)
        assert space.footprint_bytes == 3 * MB

    def test_2m_page_space(self):
        space = AddressSpace(memory_bytes=64 * MB, page_size=PAGE_SIZE_2M)
        seg = space.alloc_segment("x", 3 * MB)
        walk = space.page_table.walk(seg.va)
        assert walk.page_size == PAGE_SIZE_2M

    def test_oversubscription_raises(self):
        space = AddressSpace(memory_bytes=4 * MB)
        with pytest.raises(OutOfMemory):
            space.alloc_segment("big", 8 * MB)
