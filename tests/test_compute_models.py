"""Tests for the systolic and spatial compute-timing models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npu.config import NPUConfig
from repro.npu.spatial import SpatialArrayConfig, SpatialArrayModel
from repro.npu.systolic import GemmShape, SystolicArrayModel, VectorUnitModel

dims = st.integers(1, 4096)


class TestGemmShape:
    def test_macs(self):
        assert GemmShape(2, 3, 4).macs == 24

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)


class TestSystolic:
    def setup_method(self):
        self.model = SystolicArrayModel(NPUConfig())

    def test_fold_count(self):
        assert self.model.folds(GemmShape(10, 128, 128)) == 1
        assert self.model.folds(GemmShape(10, 129, 128)) == 2
        assert self.model.folds(GemmShape(10, 256, 256)) == 4

    def test_single_fold_cycles(self):
        # One fold at M=128: 128 steady-state + fill/drain.
        cycles = self.model.gemm_cycles(128, 128, 128)
        assert cycles == pytest.approx(128 + 128 + 128 + 128 - 2)

    def test_small_m_pays_array_fill(self):
        # A GEMV (M=1) fold still occupies the array for `rows` cycles
        # (weight shift-in depth) — the TPU GEMV underutilization.
        one = self.model.gemm_cycles(1, 128, 128)
        batch = self.model.gemm_cycles(128, 128, 128)
        assert one >= 128
        assert batch < one * 128  # batching amortizes

    def test_scales_linearly_in_folds(self):
        base = self.model.folds(GemmShape(256, 128, 128))
        double = self.model.folds(GemmShape(256, 256, 128))
        assert double == 2 * base

    def test_utilization_bounds(self):
        for shape in (GemmShape(1, 128, 128), GemmShape(1024, 512, 512)):
            util = self.model.utilization(shape)
            assert 0 < util <= 1

    def test_big_gemm_utilization_near_one(self):
        util = self.model.utilization(GemmShape(8192, 1024, 1024))
        assert util > 0.9

    @given(dims, dims, dims)
    @settings(max_examples=60)
    def test_cycles_lower_bound(self, m, k, n):
        """Compute can never beat the ideal MAC throughput bound."""
        model = SystolicArrayModel(NPUConfig())
        cycles = model.gemm_cycles(m, k, n)
        ideal = m * k * n / model.config.pe_count
        assert cycles >= ideal * 0.999

    @given(dims, dims, dims)
    @settings(max_examples=60)
    def test_cycles_monotone_in_m(self, m, k, n):
        model = SystolicArrayModel(NPUConfig())
        assert model.gemm_cycles(m + 1, k, n) >= model.gemm_cycles(m, k, n)


class TestVectorUnit:
    def test_elementwise_throughput(self):
        vu = VectorUnitModel(NPUConfig())
        assert vu.elementwise_cycles(1280) == pytest.approx(10.0)

    def test_reduction_includes_tree_depth(self):
        vu = VectorUnitModel(NPUConfig())
        assert vu.reduction_cycles(128) > 1.0

    def test_rejects_negative(self):
        vu = VectorUnitModel()
        with pytest.raises(ValueError):
            vu.elementwise_cycles(-1)
        with pytest.raises(ValueError):
            vu.reduction_cycles(-1)


class TestSpatial:
    def test_interface_matches_systolic(self):
        model = SpatialArrayModel()
        cycles = model.gemm_cycles(64, 256, 64)
        assert cycles > 0

    def test_scales_with_output_elements(self):
        model = SpatialArrayModel()
        small = model.gemm_cycles(16, 256, 16)
        big = model.gemm_cycles(256, 256, 256)
        assert big > small

    def test_utilization_bounds(self):
        model = SpatialArrayModel()
        util = model.utilization(GemmShape(1024, 1024, 1024))
        assert 0 < util <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SpatialArrayConfig(grid_rows=0)

    @given(dims, dims, dims)
    @settings(max_examples=40)
    def test_spatial_lower_bound(self, m, k, n):
        model = SpatialArrayModel()
        cycles = model.gemm_cycles(m, k, n)
        peak = model.spatial.pe_count * model.spatial.vector_lanes
        assert cycles >= m * k * n / peak * 0.999
