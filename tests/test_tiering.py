"""The first-class memory-tier subsystem (``repro.memory.tiering``).

Covers the shared :class:`MigrationFabric` (slot admission under every
share policy, exact byte conservation, queueing), the
:class:`LocalMemoryTier` (budgets, pluggable eviction, and the
ASID-tagged shootdown regression: eviction must sweep the *owning*
context's cached translations — and only that context's), and the
demand-paged simulator modes wired through it, including the fast-tier
multi-tenant paging-contention smoke that CI runs on every push.
"""

import pytest

from repro.core.mmu import MMU, MMUConfig, baseline_iommu_config, neummu_config
from repro.core.qos import make_share_policy
from repro.memory.address import PAGE_SIZE_4K
from repro.memory.allocator import AddressSpace
from repro.memory.tiering import (
    EVICTION_POLICIES,
    LocalMemoryTier,
    MigrationFabric,
    TieringConfig,
)
from repro.npu.simulator import (
    Fidelity,
    MultiTenantSimulator,
    NPUSimulator,
    _TenantRun,
    run_multi_tenant,
)
from repro.workloads.cnn import Workload
from repro.workloads.layers import DenseLayer

MB = 1024 * 1024
PAGE = PAGE_SIZE_4K


class FixedLink:
    """Deterministic duck-typed link: latency + bytes/bandwidth."""

    def __init__(self, latency=100.0, bandwidth=64.0):
        self.latency = latency
        self.bandwidth = bandwidth

    def bulk_transfer_cycles(self, nbytes):
        return self.latency + nbytes / self.bandwidth


def tiny_workload(tag, batch=1, layers=2, width=256):
    return Workload(
        name=f"paged_{tag}_b{batch:02d}",
        batch=batch,
        layers=tuple(
            DenseLayer(f"fc{i}", batch, width, width) for i in range(layers)
        ),
    )


class TestMigrationFabric:
    def test_uncontended_completion_math(self):
        link = FixedLink(latency=100.0, bandwidth=64.0)
        fabric = MigrationFabric(link, slots=1)
        done = fabric.migrate(0, PAGE, 500.0)
        assert done == 500.0 + link.bulk_transfer_cycles(PAGE)
        assert fabric.usage[0].queue_cycles == 0.0

    def test_single_slot_serializes_overlapping_tenants(self):
        link = FixedLink(latency=100.0, bandwidth=64.0)
        fabric = MigrationFabric(link, slots=1)
        duration = link.bulk_transfer_cycles(PAGE)
        first = fabric.migrate(0, PAGE, 0.0)
        second = fabric.migrate(1, PAGE, 1.0)  # overlaps the first
        assert first == duration
        assert second == first + duration  # queued behind tenant 0
        assert fabric.usage[1].queue_cycles == pytest.approx(first - 1.0)

    def test_parallel_slots_overlap(self):
        fabric = MigrationFabric(FixedLink(), slots=2)
        duration = FixedLink().bulk_transfer_cycles(PAGE)
        fabric.migrate(0, PAGE, 0.0)
        second = fabric.migrate(1, PAGE, 1.0)
        assert second == 1.0 + duration  # streamed on the second lane
        assert fabric.in_flight_at(10.0) == 2

    def test_exact_byte_conservation(self):
        fabric = MigrationFabric(FixedLink(), slots=3)
        cycle = 0.0
        for i in range(60):
            cycle = fabric.migrate(i % 4, PAGE, cycle + 1.0)
        per_tenant = {a: u.bytes_moved for a, u in fabric.usage.items()}
        assert sum(per_tenant.values()) == fabric.total_bytes
        assert fabric.total_bytes == 60 * PAGE
        assert fabric.total_migrations == 60
        assert sum(u.migrations for u in fabric.usage.values()) == 60

    def test_static_partition_blocks_on_own_quota(self):
        """A hard-partitioned tenant at quota waits for its *own* slot,
        even while another lane idles."""
        policy = make_share_policy("static_partition", {0: 1.0, 1: 1.0})
        fabric = MigrationFabric(FixedLink(), slots=2, policy=policy)
        duration = FixedLink().bulk_transfer_cycles(PAGE)
        first = fabric.migrate(0, PAGE, 0.0)  # tenant 0's reserved slot
        second = fabric.migrate(0, PAGE, 1.0)  # at quota (1 of 2 slots)
        assert second == first + duration  # waited despite the idle lane
        # Tenant 1's reservation was untouched: it streams immediately.
        third = fabric.migrate(1, PAGE, 2.0)
        assert third == 2.0 + duration

    def test_full_share_uses_idle_lane(self):
        policy = make_share_policy("full_share", {0: 1.0, 1: 1.0})
        fabric = MigrationFabric(FixedLink(), slots=2, policy=policy)
        duration = FixedLink().bulk_transfer_cycles(PAGE)
        fabric.migrate(0, PAGE, 0.0)
        second = fabric.migrate(0, PAGE, 1.0)
        assert second == 1.0 + duration  # no quota: the idle lane serves

    def test_weighted_borrows_beyond_unmet_reservations(self):
        policy = make_share_policy("weighted", {0: 1.0, 1: 1.0})
        fabric = MigrationFabric(FixedLink(), slots=5, policy=policy)
        duration = FixedLink().bulk_transfer_cycles(PAGE)
        fabric.migrate(0, PAGE, 0.0)
        fabric.migrate(0, PAGE, 0.0)  # tenant 0 now at its quota of 2
        # 3 lanes free, tenant 1's unmet reservation is 2: borrowing OK.
        third = fabric.migrate(0, PAGE, 1.0)
        assert third == 1.0 + duration

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MigrationFabric(FixedLink(), slots=0)
        fabric = MigrationFabric(FixedLink(), slots=1)
        with pytest.raises(ValueError):
            fabric.migrate(0, 0, 0.0)


def two_context_tier(budget_pages_0=64, budget_pages_1=64, eviction="lru"):
    """One MMU serving two contexts, one tier, unmapped 8-page segments."""
    spaces = []
    mmu = MMU(MMUConfig(name="x", n_walkers=8, prmb_slots=0), None)
    fabric = MigrationFabric(FixedLink(), slots=2)
    tier = LocalMemoryTier(
        fabric, page_size=PAGE, fault_overhead_cycles=10.0, eviction=eviction
    )
    tier.bind(mmu)
    for asid, budget in ((0, budget_pages_0), (1, budget_pages_1)):
        space = AddressSpace(page_size=PAGE)
        space.alloc_segment("emb", 8 * PAGE, populate=False)
        mmu.register_context(asid, space.page_table)
        tier.register_tenant(asid, space, budget * PAGE)
        spaces.append(space)
    return mmu, tier, spaces


def fill_tlb(mmu, vpn, asid):
    """Walk one page to completion so its translation is TLB-resident."""
    ready, _ = mmu.translate(vpn, 0.0, asid)
    assert ready is not None
    mmu.drain()
    assert mmu.tlb.contains(vpn, asid)


class TestLocalMemoryTier:
    def test_fault_maps_page_and_charges_fabric(self):
        mmu, tier, spaces = two_context_tier()
        seg = spaces[0].segments()[0]
        vpn = seg.va >> 12
        resolved = tier.handle_fault(vpn, 100.0, asid=0)
        assert spaces[0].page_table.is_mapped(seg.va)
        assert resolved == 110.0 + FixedLink().bulk_transfer_cycles(PAGE)
        assert tier.tenants[0].faults == 1
        assert tier.fabric.usage[0].bytes_moved == PAGE

    def test_fault_for_unregistered_asid_raises(self):
        mmu, tier, _ = two_context_tier()
        with pytest.raises(KeyError):
            tier.handle_fault(0x123, 0.0, asid=7)

    def test_bind_rejects_second_mmu(self):
        mmu, tier, _ = two_context_tier()
        other = MMU(MMUConfig(name="y", n_walkers=8), None)
        with pytest.raises(ValueError):
            tier.bind(other)
        tier.bind(mmu)  # same MMU: idempotent
        assert mmu.paging_tier is tier

    def test_eviction_respects_budget_and_unmaps(self):
        mmu, tier, spaces = two_context_tier(budget_pages_1=2)
        seg = spaces[1].segments()[0]
        vpns = [(seg.va + i * PAGE) >> 12 for i in range(4)]
        cycle = 0.0
        for vpn in vpns:
            cycle = tier.handle_fault(vpn, cycle, asid=1)
        tenant = tier.tenants[1]
        assert tenant.resident_bytes <= 2 * PAGE
        assert tenant.evictions == 2
        # Oldest two migrated pages were unmapped again.
        assert not spaces[1].page_table.is_mapped(vpns[0] << 12)
        assert not spaces[1].page_table.is_mapped(vpns[1] << 12)
        assert spaces[1].page_table.is_mapped(vpns[3] << 12)

    def test_eviction_shoots_down_owning_context_only(self):
        """Stale-PFN regression (ASID-tagged shootdown on eviction).

        Both tenants map the same VA range, so the evicted page's VPN is
        TLB-resident for *both* contexts.  Evicting tenant 1's copy must
        sweep tenant 1's cached translation everywhere — and leave
        tenant 0's alias for the same VPN untouched.
        """
        mmu, tier, spaces = two_context_tier(budget_pages_1=2)
        seg0 = spaces[0].segments()[0]
        seg1 = spaces[1].segments()[0]
        shared_vpn = seg1.va >> 12
        assert (seg0.va >> 12) == shared_vpn  # genuine cross-ASID alias

        tier.handle_fault(shared_vpn, 0.0, asid=0)
        fill_tlb(mmu, shared_vpn, asid=0)
        tier.handle_fault(shared_vpn, 1000.0, asid=1)
        fill_tlb(mmu, shared_vpn, asid=1)

        # Two more tenant-1 faults push tenant 1 past its 2-page budget,
        # evicting its copy of shared_vpn (the oldest resident page).
        cycle = 2000.0
        for i in (1, 2):
            cycle = tier.handle_fault(shared_vpn + i, cycle, asid=1)
        assert shared_vpn not in tier.tenants[1].resident

        # Tenant 1: unmapped, TLB swept, memoized walk dropped.
        assert not spaces[1].page_table.is_mapped(seg1.va)
        assert not mmu.tlb.contains(shared_vpn, asid=1)
        assert mmu.resolver_for(1).resolve_vpn(shared_vpn) is None
        # Tenant 0's alias of the very same VPN is untouched.
        assert spaces[0].page_table.is_mapped(seg0.va)
        assert mmu.tlb.contains(shared_vpn, asid=0)
        assert mmu.resolver_for(0).resolve_vpn(shared_vpn) is not None

        # A re-fault installs a fresh frame — never the stale PFN.
        tier.handle_fault(shared_vpn, cycle, asid=1)
        walk = mmu.resolver_for(1).resolve_vpn(shared_vpn)
        assert walk is not None
        assert walk.pfn == spaces[1].page_table.walk(seg1.va).pfn

    def test_eviction_policies_pick_opposite_victims(self):
        victims = {}
        for policy in EVICTION_POLICIES:
            mmu, tier, spaces = two_context_tier(
                budget_pages_0=2, eviction=policy
            )
            seg = spaces[0].segments()[0]
            vpns = [(seg.va + i * PAGE) >> 12 for i in range(3)]
            cycle = 0.0
            for vpn in vpns:
                cycle = tier.handle_fault(vpn, cycle, asid=0)
            victims[policy] = [
                vpn for vpn in vpns if vpn not in tier.tenants[0].resident
            ]
        assert victims["lru"] == [vpns[0]]  # oldest migrated page
        # MRU evicts the most recent *previously*-resident page: the
        # just-faulted page itself is protected (evicting it would make
        # the engine's retry refault the same VPN forever).
        assert victims["mru"] == [vpns[1]]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            LocalMemoryTier(
                MigrationFabric(FixedLink()), PAGE, eviction="bogus"
            )
        with pytest.raises(ValueError):
            TieringConfig(eviction="bogus")
        with pytest.raises(ValueError):
            TieringConfig(fabric_slots=0)
        mmu, tier, _ = two_context_tier()
        with pytest.raises(ValueError):
            tier.register_tenant(5, None, budget_bytes=0)
        with pytest.raises(ValueError, match="at least one"):
            # A sub-page budget could never keep the faulting page
            # resident — the fault loop would livelock.
            tier.register_tenant(5, None, budget_bytes=PAGE - 1)


class TestPagedNPUSimulator:
    def test_pages_fault_in_once_and_budget_holds(self):
        fabric = MigrationFabric(FixedLink(), slots=2)
        tier = LocalMemoryTier(fabric, page_size=PAGE)
        sim = NPUSimulator(
            tiny_workload("solo"),
            neummu_config(),
            paging_tier=tier,
            memory_budget=64 * MB,
        )
        result = sim.run()
        assert result.total_cycles > 0
        tenant = tier.tenants[0]
        # Budget >> footprint: every distinct page faulted exactly once.
        expected_pages = sum(
            (seg.length + PAGE - 1) // PAGE
            for seg in sim.address_space.segments()
        )
        assert tenant.faults == expected_pages
        assert tenant.evictions == 0
        assert fabric.total_bytes == expected_pages * PAGE
        assert tenant.resident_bytes <= 64 * MB

    @pytest.mark.parametrize("eviction", EVICTION_POLICIES)
    def test_thrashing_budget_terminates(self, eviction):
        """Livelock regression: a budget far below the footprint thrashes
        (evict + refault) but must always make forward progress.  MRU
        order used to pick the just-faulted page as its first victim,
        refaulting the same VPN forever."""
        fabric = MigrationFabric(FixedLink(), slots=2)
        tier = LocalMemoryTier(fabric, page_size=PAGE, eviction=eviction)
        sim = NPUSimulator(
            tiny_workload("thrash"),
            neummu_config(),
            paging_tier=tier,
            memory_budget=2 * PAGE,
        )
        result = sim.run()
        assert result.total_cycles > 0
        tenant = tier.tenants[0]
        assert tenant.evictions > 0  # the run genuinely thrashed
        assert tenant.resident_bytes <= 2 * PAGE

    def test_paging_costs_cycles(self):
        fabric = MigrationFabric(FixedLink(), slots=2)
        tier = LocalMemoryTier(fabric, page_size=PAGE)
        paged = NPUSimulator(
            tiny_workload("p"), neummu_config(), paging_tier=tier
        ).run()
        mapped = NPUSimulator(tiny_workload("p"), neummu_config()).run()
        assert paged.total_cycles > mapped.total_cycles

    def test_inflight_migration_is_an_interaction_point(self):
        fabric = MigrationFabric(FixedLink(), slots=1)
        tier = LocalMemoryTier(fabric, page_size=PAGE)
        sim = NPUSimulator(
            tiny_workload("ip"), neummu_config(), paging_tier=tier
        )
        run = _TenantRun(sim)
        # A migration in flight past this run's clock pins the scheduler
        # to stepwise advances (no hoisted quiet stretch)...
        fabric._free_at[0] = run.clock + 1e9
        assert run.advance_quiet() == 0
        # ...and an idle fabric restores quiet-stretch batching.
        fabric._free_at[0] = 0.0
        while not run.done:
            if not run.advance_quiet():
                run.advance()
        assert run.done

    def test_run_multi_tenant_accepts_heterogeneous_lists(self):
        workloads = [tiny_workload("a"), tiny_workload("b", batch=2)]
        result = run_multi_tenant(workloads, neummu_config())
        assert [t.workload for t in result.tenants] == [
            "paged_a_b01",
            "paged_b_b02",
        ]
        # Factories in the list are called once each.
        result = run_multi_tenant(
            [lambda: tiny_workload("c"), lambda: tiny_workload("d")],
            neummu_config(),
        )
        assert [t.workload for t in result.tenants] == [
            "paged_c_b01",
            "paged_d_b01",
        ]

    def test_run_multi_tenant_validates_counts(self):
        with pytest.raises(ValueError, match="n_tenants is required"):
            run_multi_tenant(lambda: tiny_workload("x"), neummu_config())
        with pytest.raises(ValueError, match="does not match"):
            run_multi_tenant(
                [tiny_workload("x")], neummu_config(), n_tenants=2
            )
        with pytest.raises(ValueError, match="at least one"):
            run_multi_tenant([], neummu_config())

    def test_budget_validation(self):
        workloads = [tiny_workload("a"), tiny_workload("b")]
        with pytest.raises(ValueError, match="memory budgets"):
            MultiTenantSimulator(
                workloads, neummu_config(), memory_budgets=[MB]
            )
        with pytest.raises(ValueError, match="positive"):
            MultiTenantSimulator(
                workloads, neummu_config(), memory_budgets=[MB, 0]
            )

    @pytest.mark.parametrize("qos", ["full_share", "static_partition", "weighted"])
    def test_paging_contention_smoke(self, qos):
        """Fast-tier CI smoke: paged tenants over one shared fabric.

        Exact fabric byte conservation, per-tenant attribution, and the
        shared run never beating the isolated paged run.
        """
        config = baseline_iommu_config()
        workloads = [tiny_workload("a"), tiny_workload("b", batch=2)]
        budgets = [4 * MB, 4 * MB]
        isolated = []
        for workload, budget in zip(workloads, budgets):
            fabric = MigrationFabric(FixedLink(), slots=2)
            tier = LocalMemoryTier(fabric, page_size=PAGE)
            isolated.append(
                NPUSimulator(
                    workload, config, paging_tier=tier, memory_budget=budget
                ).run()
            )
        sim = MultiTenantSimulator(
            [tiny_workload("a"), tiny_workload("b", batch=2)],
            config,
            qos=qos,
            arbitration="weighted_quantum",
            weights=[2.0, 1.0],
            memory_budgets=budgets,
        )
        result = sim.run()
        tier = sim.paging
        fabric = tier.fabric
        per_tenant = {a: tier.migrated_bytes_of(a) for a in tier.tenants}
        assert sum(per_tenant.values()) == fabric.total_bytes
        assert fabric.total_bytes == fabric.total_migrations * PAGE
        assert all(bytes_moved > 0 for bytes_moved in per_tenant.values())
        for tenant, iso in zip(result.tenants, isolated):
            assert tenant.total_cycles >= iso.total_cycles * 0.99

    def test_mid_run_teardown_with_paging(self):
        """Removing a paged tenant leaves the survivor's tier state and
        the fabric's attribution intact."""
        sim = MultiTenantSimulator(
            [tiny_workload("a"), tiny_workload("b")],
            neummu_config(),
            memory_budgets=[8 * MB, 8 * MB],
        )
        runs = [_TenantRun(t) for t in sim.tenants]
        for _ in range(3):
            for run in runs:
                if not run.done:
                    run.advance()
        departed_bytes = sim.paging.migrated_bytes_of(1)
        sim.shared.remove_tenant(1)
        sim.paging.unregister_tenant(1)
        while not runs[0].done:
            if not runs[0].advance_quiet():
                runs[0].advance()
        sim.shared.mmu.drain()
        assert 1 not in sim.paging.tenants
        # The departed tenant's fabric attribution survives teardown.
        assert sim.paging.fabric.usage[1].bytes_moved == departed_bytes
        assert runs[0].done


class TestResidencyEpoch:
    """The per-tenant residency epoch (FAST timing-cache regime stamp)."""

    def test_unregistered_asid_reads_zero(self):
        mmu, tier, _ = two_context_tier()
        assert tier.residency_epoch(7) == 0

    def test_evictions_move_the_epoch_but_migrations_in_do_not(self):
        mmu, tier, spaces = two_context_tier(budget_pages_1=2)
        seg = spaces[1].segments()[0]
        vpns = [(seg.va + i * PAGE) >> 12 for i in range(4)]
        assert tier.residency_epoch(1) == 0
        cycle = 0.0
        for vpn in vpns[:2]:
            cycle = tier.handle_fault(vpn, cycle, asid=1)
        # Within budget: pages joined the resident set, nothing left it,
        # so earlier-measured timings are still valid.
        assert tier.residency_epoch(1) == 0
        tier.handle_fault(vpns[2], cycle, asid=1)
        # Over budget: the eviction is what can stale a cached timing.
        assert tier.residency_epoch(1) == 1
        assert tier.tenants[1].evictions == 1
        # The other tenant's regime never moved.
        assert tier.residency_epoch(0) == 0
