"""Regression guards for the hazards simlint enforces statically.

Three families:

* adversarial set order — the ``busy_by_asid`` sets in the walker pool
  are seeded with identical membership via different insertion/deletion
  histories (scrambling the hash-table layout), and every quantity the
  engine derives from them must be bit-identical;
* hash-seed independence — a full two-tenant simulation repeated under
  different ``PYTHONHASHSEED`` values must produce byte-identical cycle
  accounting (the end-to-end form of the same guarantee);
* epoch-bump discipline — the registry mutators and budget evictions
  must route *through* the designated bump methods (the simlint
  ``epoch-raw-write`` fix), and FAST timing caches must drop converged
  timings when the epochs move (FAST-vs-EXACT regime scoping).
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.mmu import MMU, MMUConfig, neummu_config
from repro.core.qos import make_share_policy
from repro.core.ptw import WalkerPool
from repro.memory.address import PAGE_SIZE_4K
from repro.memory.allocator import AddressSpace
from repro.memory.tiering import LocalMemoryTier, MigrationFabric
from repro.npu.simulator import MultiTenantSimulator, _TenantRun
from repro.workloads.cnn import Workload
from repro.workloads.layers import DenseLayer

REPO_ROOT = Path(__file__).resolve().parents[1]
PAGE = PAGE_SIZE_4K


def tiny_workload(tag, batch=1):
    return Workload(
        name=f"guard_{tag}_b{batch:02d}",
        batch=batch,
        layers=tuple(
            DenseLayer(f"fc{i}", batch, 512, 512) for i in range(6)
        ),
    )


# ------------------------------------------------------------------ #
# adversarial set order                                              #
# ------------------------------------------------------------------ #

def adversarial_set_histories(members):
    """Build sets with identical membership through different histories.

    Small-int hashes are the ints themselves, so membership alone often
    fixes iteration order; colliding histories (bulk-add then discard,
    reversed insertion, rebuild after clear) perturb the open-addressing
    layout and table size, which is exactly what production code must be
    insensitive to.
    """
    ascending = set()
    for m in sorted(members):
        ascending.add(m)

    descending = set()
    for m in sorted(members, reverse=True):
        descending.add(m)

    churned = set(range(max(members) + 33))   # oversize → bigger table
    for m in sorted(set(range(max(members) + 33)) - set(members)):
        churned.discard(m)                    # shrink back via deletion

    interleaved = set()
    for m in sorted(members):
        interleaved.add(m)
        interleaved.add(m + 8)                # 8-probes collide mod 8
    for m in sorted(members):
        interleaved.discard(m + 8)
    interleaved |= set(members)

    return [ascending, descending, churned, interleaved]


class TestAdversarialSetOrder:
    """WalkerPool quantities derived from busy-sets are order-blind."""

    MEMBERS = (1, 9, 17, 25)  # all collide mod 8: layout-sensitive

    def make_pool(self):
        policy = make_share_policy("static_partition")
        policy.register(0, 1.0)
        policy.register(1, 1.0)
        # Walker quota for ASID 0 is 8 // 2 = 4, so a 4-member busy set
        # takes the min-over-set branch in earliest_retry_for.
        return WalkerPool(8, prmb_slots=4, policy=policy)

    def test_earliest_retry_is_identical_across_histories(self):
        results = []
        for busy in adversarial_set_histories([1, 3, 5, 7]):
            pool = self.make_pool()
            for walker, completion in zip(
                sorted(busy), (40.0, 10.0, 30.0, 20.0)
            ):
                pool._completion_of[walker] = completion
            pool._busy_by_asid[0] = busy
            results.append(pool.earliest_retry_for(0))
        assert results[0] == 10.0
        assert all(r == results[0] for r in results), results

    def test_prmb_occupancy_is_identical_across_histories(self):
        results = []
        for busy in adversarial_set_histories([1, 3, 5, 7]):
            pool = self.make_pool()
            pool._policy = None  # occupancy path that scans busy walkers
            for walker, occupied in zip(sorted(busy), (3, 1, 4, 2)):
                pool._buffers[walker]._occupied = occupied
            pool._busy_by_asid[0] = busy
            results.append(pool.prmb_occupancy_of(0))
        assert results[0] == 10
        assert all(r == results[0] for r in results), results

    def test_histories_really_build_equal_sets(self):
        histories = adversarial_set_histories(list(self.MEMBERS))
        for built in histories[1:]:
            assert built == histories[0]


HASH_SEED_SCRIPT = textwrap.dedent(
    """
    from repro.core.mmu import baseline_iommu_config
    from repro.npu.simulator import MultiTenantSimulator
    from repro.workloads.cnn import Workload
    from repro.workloads.layers import DenseLayer

    def wl(tag, batch):
        return Workload(
            name=f"seed_{tag}",
            batch=batch,
            layers=tuple(
                DenseLayer(f"fc{i}", batch, 512, 512) for i in range(6)
            ),
        )

    # static_partition + two tenants on 8 walkers: per-tenant quotas are
    # exhausted, so retry scheduling takes the min-over-busy-set branch.
    result = MultiTenantSimulator(
        [wl("a", 1), wl("b", 2)],
        baseline_iommu_config(),
        qos="static_partition",
    ).run()
    for tenant in result.tenants:
        print(tenant.asid, repr(tenant.total_cycles),
              tenant.usage.walks, repr(tenant.usage.stall_cycles))
    print(repr(result.makespan_cycles))
    """
)


@pytest.mark.parametrize("seeds", [("1", "3407")])
def test_engine_is_hash_seed_independent(seeds):
    """Byte-identical accounting under different PYTHONHASHSEED values."""
    outputs = []
    for seed in seeds:
        proc = subprocess.run(
            [sys.executable, "-c", HASH_SEED_SCRIPT],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PYTHONHASHSEED": seed,
                "PATH": "/usr/bin:/bin",
            },
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]


# ------------------------------------------------------------------ #
# epoch-bump discipline                                              #
# ------------------------------------------------------------------ #

class CountingBump:
    """Wrap a bump method, counting delegated calls."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def __call__(self):
        self.calls += 1
        self.inner()


class TestContentionEpochRouting:
    """Registry mutators go through bump_contention_epoch, not raw writes."""

    def make_sim(self):
        return MultiTenantSimulator(
            [tiny_workload("a"), tiny_workload("b")],
            neummu_config(),
            qos="weighted",
            weights=[1.0, 1.0],
        )

    def test_every_registry_mutator_routes_through_bump(self):
        sim = self.make_sim()
        shared = sim.shared
        counter = CountingBump(shared.bump_contention_epoch)
        shared.bump_contention_epoch = counter
        before = shared.contention_epoch

        shared.set_tenant_weight(1, 4.0)
        assert counter.calls == 1
        shared.remove_tenant(1)
        assert counter.calls == 2
        space = AddressSpace(page_size=PAGE)
        shared.add_tenant(7, space.page_table)
        assert counter.calls == 3
        assert shared.contention_epoch == before + 3

    def test_weight_change_invalidates_fast_memoization(self):
        """FAST-vs-EXACT: a re-weight is a regime change like a removal."""
        sim = self.make_sim()
        runs = [_TenantRun(tenant) for tenant in sim.tenants]
        while (
            runs[0].step_counter < 12
            and not runs[0].done
            and not runs[0].timing_cache.converged
        ):
            if not runs[0].advance_quiet(1):
                runs[0].advance()
        assert not runs[0].done, "workload too small to stop mid-run"
        assert runs[0].timing_cache.history, "cache never warmed"

        sim.shared.set_tenant_weight(1, 4.0)
        assert runs[0].timing_cache.epoch != sim.shared.contention_epoch

        # The stale cache must refuse to drive a quiet stretch and drop
        # its converged timings wholesale (they were measured under the
        # old weight split).
        assert runs[0].advance_quiet() == 0
        assert not runs[0].timing_cache.history
        assert not runs[0].timing_cache.converged
        assert runs[0].timing_cache.epoch == sim.shared.contention_epoch


class FixedLink:
    def __init__(self, latency=100.0, bandwidth=64.0):
        self.latency = latency
        self.bandwidth = bandwidth

    def bulk_transfer_cycles(self, nbytes):
        return self.latency + nbytes / self.bandwidth


class TestResidencyEpochRouting:
    """Budget evictions go through TierTenant.bump_residency_epoch."""

    def make_tier(self, budget_pages=2):
        mmu = MMU(MMUConfig(name="x", n_walkers=8, prmb_slots=0), None)
        tier = LocalMemoryTier(
            MigrationFabric(FixedLink(), slots=2),
            page_size=PAGE,
            fault_overhead_cycles=10.0,
        )
        tier.bind(mmu)
        space = AddressSpace(page_size=PAGE)
        space.alloc_segment("seg", 8 * PAGE, populate=False)
        mmu.register_context(0, space.page_table)
        tier.register_tenant(0, space, budget_pages * PAGE)
        return tier, space

    def test_bump_method_is_the_only_epoch_mover(self):
        tier, space = self.make_tier(budget_pages=2)
        tenant = tier.tenants[0]
        counter = CountingBump(tenant.bump_residency_epoch)
        tenant.bump_residency_epoch = counter
        base_vpn = space.segments()[0].va >> 12

        # Two faults fit the budget: no eviction, no bump.
        tier.handle_fault(base_vpn, 0.0, asid=0)
        tier.handle_fault(base_vpn + 1, 100.0, asid=0)
        assert counter.calls == 0
        assert tenant.residency_epoch == 0

        # The third fault exceeds the budget: exactly one eviction,
        # routed through the bump method.
        tier.handle_fault(base_vpn + 2, 200.0, asid=0)
        assert tenant.evictions == 1
        assert counter.calls == 1
        assert tenant.residency_epoch == 1

    def test_real_eviction_invalidates_fast_memoization(self):
        """FAST-vs-EXACT: an actual budget eviction (not a simulated
        epoch write) drops the converged timings of the paged tenant."""
        mb = 1024 * 1024
        sim = MultiTenantSimulator(
            [tiny_workload("a"), tiny_workload("b")],
            neummu_config(),
            memory_budgets=(3 * mb, 256 * mb),
        )
        run = _TenantRun(sim.tenants[0])
        tier = sim.paging
        run._sync_timing_epochs()
        cache = run.timing_cache
        sig = ("warmed",)
        cache.history[sig] = [(100.0, 10.0)]
        cache.converged[sig] = (100.0, 10.0)

        before = tier.residency_epoch(0)
        while tier.tenants[0].evictions == 0 and not run.done:
            run.advance()
        assert tier.tenants[0].evictions > 0, "budget never forced eviction"
        assert tier.residency_epoch(0) > before

        run._sync_timing_epochs()
        assert cache.converged.get(sig) is None
        assert cache.residency_epoch == tier.residency_epoch(0)
