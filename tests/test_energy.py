"""Tests for energy tables, CACTI-style estimates, and accounting."""

import pytest

from repro.core.stats import RunSummary
from repro.energy.accounting import EnergyBreakdown, energy_ratio, translation_energy
from repro.energy.cacti import estimate_sram, neummu_overhead
from repro.energy.tables import DEFAULT_ENERGY_TABLE, EnergyTable


def summary(requests=100, tlb_hits=20, merges=30, walks=50, accesses=200, skipped=0):
    return RunSummary(
        requests=requests,
        tlb_hits=tlb_hits,
        tlb_hit_rate=tlb_hits / requests if requests else 0,
        merges=merges,
        walks=walks,
        redundant_walks=0,
        walk_level_accesses=accesses,
        walk_levels_skipped=skipped,
        stall_events=0,
        stall_cycles=0.0,
        faults=0,
        tpreg_l4_rate=0.0,
        tpreg_l3_rate=0.0,
        tpreg_l2_rate=0.0,
    )


class TestEnergyTable:
    def test_dram_dominates_sram(self):
        t = DEFAULT_ENERGY_TABLE
        assert t.dram_access_pj > 100 * t.tlb_access_pj
        assert t.tlb_access_pj > t.tpreg_access_pj

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyTable(dram_access_pj=-1)


class TestAccounting:
    def test_walk_dram_term(self):
        breakdown = translation_energy(summary(accesses=200))
        assert breakdown.walk_dram_pj == 200 * DEFAULT_ENERGY_TABLE.dram_access_pj

    def test_total_is_sum(self):
        b = translation_energy(summary())
        assert b.total_pj == pytest.approx(
            b.walk_dram_pj + b.tlb_pj + b.pts_pj + b.prmb_pj + b.path_cache_pj
        )
        assert b.total_uj == pytest.approx(b.total_pj / 1e6)

    def test_fewer_walk_accesses_less_energy(self):
        many = translation_energy(summary(accesses=400))
        few = translation_energy(summary(accesses=100))
        assert few.total_pj < many.total_pj

    def test_energy_ratio(self):
        baseline = translation_energy(summary(accesses=800))
        candidate = translation_energy(summary(accesses=100))
        assert energy_ratio(baseline, candidate) > 1.0

    def test_ratio_rejects_zero(self):
        zero = EnergyBreakdown(0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            energy_ratio(zero, zero)


class TestCacti:
    def test_paper_calibration_point(self):
        """Section IV-E: 32 KB PRMB + 2 KB TPreg + 768 B PTS ⇒ ~0.10 mm²,
        ~13.65 mW at 32 nm."""
        overhead = neummu_overhead()
        assert overhead.prmb.capacity_bytes == 32 * 1024
        assert overhead.tpreg.capacity_bytes == 2 * 1024
        assert overhead.pts.capacity_bytes == 768
        assert overhead.total.area_mm2 == pytest.approx(0.10, rel=0.1)
        assert overhead.total.leakage_mw == pytest.approx(13.65, rel=0.1)

    def test_area_scales_with_capacity(self):
        small = estimate_sram(1024)
        big = estimate_sram(64 * 1024)
        assert big.area_mm2 > small.area_mm2 * 10

    def test_node_scaling(self):
        at32 = estimate_sram(32 * 1024, node_nm=32)
        at45 = estimate_sram(32 * 1024, node_nm=45)
        assert at45.area_mm2 > at32.area_mm2
        assert at45.leakage_mw > at32.leakage_mw

    def test_estimates_add(self):
        total = estimate_sram(1024) + estimate_sram(2048)
        assert total.capacity_bytes == 3072

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_sram(0)
        with pytest.raises(ValueError):
            estimate_sram(100, node_nm=0)

    def test_custom_geometry(self):
        overhead = neummu_overhead(n_walkers=8, prmb_slots=4)
        assert overhead.prmb.capacity_bytes == 8 * 4 * 8
