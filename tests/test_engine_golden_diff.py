"""Golden diff: paper figures bit-identical across engine modes.

The columnar engine is a representation change, not a model change: every
figure must come out *bit-identical* (exact float equality, not approx)
whether the transaction core runs the structure-of-arrays fast path or
the per-object reference path.  Each experiment here runs twice on
trimmed grids — once per ``NEUMMU_ENGINE`` mode, with a fresh
:class:`~repro.analysis.runner.ExperimentRunner` per run so neither mode
reuses the other's oracle normalizations — and the rendered figures are
compared field for field.

The fast tier covers one figure per engine regime (oracle timeline,
demand paging, VA trace); the slow tier adds the dense sweeps, most
importantly Figure 8 — the saturated baseline-IOMMU regime the fused
FIFO runner advances analytically.
"""

import os

import pytest

from repro.analysis import (
    ExperimentRunner,
    fairness,
    fig7_translation_bursts,
    fig8_baseline_iommu,
    fig13_tpreg_hit_rates,
    fig14_va_trace,
    fig15_numa,
    fig16_demand_paging,
    large_pages_dense,
    multi_tenant_contention,
    paging_tenants,
)
from repro.sparse.demand_paging import DemandPagingConfig

B1 = (1,)
MB = 1024 * 1024


def run_in_mode(mode, experiment):
    """Run one experiment callable with ``NEUMMU_ENGINE`` pinned."""
    before = os.environ.get("NEUMMU_ENGINE")
    os.environ["NEUMMU_ENGINE"] = mode
    try:
        return experiment()
    finally:
        if before is None:
            os.environ.pop("NEUMMU_ENGINE", None)
        else:
            os.environ["NEUMMU_ENGINE"] = before


def assert_bit_identical(columnar, reference):
    assert columnar.figure_id == reference.figure_id
    assert columnar.columns == reference.columns
    assert [r.label for r in columnar.rows] == [
        r.label for r in reference.rows
    ], "row sets diverge between engine modes"
    for mine, theirs in zip(columnar.rows, reference.rows):
        # Exact equality on purpose: the modes must agree bit for bit.
        assert mine.values == theirs.values, mine.label
    assert columnar.notes == reference.notes
    assert columnar.render() == reference.render()


def golden_diff(experiment):
    assert_bit_identical(
        run_in_mode("columnar", experiment),
        run_in_mode("reference", experiment),
    )


class TestFastTier:
    def test_fig7_bursts(self):
        golden_diff(
            lambda: fig7_translation_bursts(workloads=("RNN-1",), batch=1)
        )

    def test_fig14_va_trace(self):
        golden_diff(lambda: fig14_va_trace(max_rows=10))

    def test_fig16_demand_paging(self):
        system = DemandPagingConfig(
            batches=10, warm_batches=4, table_rows=200_000,
            local_budget_bytes=48 * MB,
        )
        golden_diff(
            lambda: fig16_demand_paging(batches=(8,), system=system)
        )

    def test_multi_tenant_contention(self):
        golden_diff(
            lambda: multi_tenant_contention(
                "RNN-2", batch=1, tenants=2,
                arbitration="weighted_quantum", qos="weighted",
                weights=(2.0, 1.0),
            )
        )

    def test_fairness_contended(self):
        # The contended QoS figure: its static_partition / weighted cells
        # run the deepest quota regimes of the completion calendar, so
        # this diff pins the calendar's batched retires against the
        # reference engine's per-event discipline.
        golden_diff(lambda: fairness(workload="RNN-2", batch=1))


@pytest.mark.slow
class TestDenseSweeps:
    def test_fig8_baseline_iommu(self):
        # The satellite target: the closed-form saturated FIFO stretches
        # must reproduce the Figure 8 bench output exactly.
        golden_diff(
            lambda: fig8_baseline_iommu(
                batches=B1, runner=ExperimentRunner()
            )
        )

    def test_fig13_tpreg_hits(self):
        golden_diff(
            lambda: fig13_tpreg_hit_rates(
                batches=B1, runner=ExperimentRunner()
            )
        )

    def test_large_pages_dense(self):
        golden_diff(
            lambda: large_pages_dense(batches=B1, runner=ExperimentRunner())
        )

    def test_fig15_numa(self):
        golden_diff(lambda: fig15_numa(batches=(8,)))

    def test_paging_tenants_contended(self):
        # Heterogeneous tenants paging over one fabric, with demand
        # faults landing mid-stretch in the calendar's planned windows.
        golden_diff(lambda: paging_tenants(mix="rnn,recsys", batch=1))
