"""Unit + property tests for the 4-level radix page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address import PAGE_SIZE_2M, PAGE_SIZE_4K, AddressError
from repro.memory.page_table import PageFault, PageTable

BASE = 0x7F00_0000_0000


class TestMapping:
    def test_walk_unmapped_faults(self):
        pt = PageTable()
        with pytest.raises(PageFault):
            pt.walk(BASE)

    def test_map_and_walk_4k(self):
        pt = PageTable()
        pt.map_page(BASE, pfn=42)
        result = pt.walk(BASE + 123)
        assert result.pfn == 42
        assert result.page_size == PAGE_SIZE_4K
        assert result.levels_accessed == 4

    def test_translate_physical_address(self):
        pt = PageTable()
        pt.map_page(BASE, pfn=42)
        assert pt.translate(BASE + 123) == 42 * PAGE_SIZE_4K + 123

    def test_map_and_walk_2m(self):
        pt = PageTable()
        base = BASE  # 2 MB aligned
        pt.map_page(base, pfn=7, page_size=PAGE_SIZE_2M)
        result = pt.walk(base + 1_000_000)
        assert result.pfn == 7
        assert result.page_size == PAGE_SIZE_2M
        assert result.levels_accessed == 3  # L4, L3, L2 leaf

    def test_2m_requires_alignment(self):
        pt = PageTable()
        with pytest.raises(AddressError):
            pt.map_page(BASE + PAGE_SIZE_4K, pfn=1, page_size=PAGE_SIZE_2M)

    def test_remap_replaces(self):
        pt = PageTable()
        pt.map_page(BASE, pfn=1)
        pt.map_page(BASE, pfn=2)
        assert pt.walk(BASE).pfn == 2
        assert pt.mapped_bytes == PAGE_SIZE_4K  # not double counted

    def test_unmap(self):
        pt = PageTable()
        pt.map_page(BASE, pfn=1)
        pt.unmap_page(BASE)
        assert not pt.is_mapped(BASE)
        assert pt.mapped_bytes == 0

    def test_unmap_missing_is_noop(self):
        pt = PageTable()
        pt.unmap_page(BASE)  # must not raise

    def test_map_range(self):
        pt = PageTable()
        n = pt.map_range(BASE, 10 * PAGE_SIZE_4K, first_pfn=100)
        assert n == 10
        for i in range(10):
            assert pt.walk(BASE + i * PAGE_SIZE_4K).pfn == 100 + i

    def test_map_range_rejects_misaligned(self):
        pt = PageTable()
        with pytest.raises(AddressError):
            pt.map_range(BASE + 1, PAGE_SIZE_4K, first_pfn=0)

    def test_neighbouring_pages_share_upper_nodes(self):
        pt = PageTable()
        pt.map_page(BASE, 1)
        nodes_before = pt.node_count()
        pt.map_page(BASE + PAGE_SIZE_4K, 2)
        # Same L1 table: no new interior nodes needed.
        assert pt.node_count() == nodes_before


class TestWalkSteps:
    def test_steps_descend_levels(self):
        pt = PageTable()
        pt.map_page(BASE, 5)
        steps = pt.walk(BASE).steps
        assert [s.level for s in steps] == [4, 3, 2, 1]

    def test_entry_pa_is_within_node(self):
        pt = PageTable()
        pt.map_page(BASE, 5)
        for step in pt.walk(BASE).steps:
            assert step.node_pa <= step.entry_pa < step.node_pa + PAGE_SIZE_4K
            assert step.entry_pa == step.node_pa + 8 * step.index

    def test_same_2mb_region_shares_walk_prefix(self):
        pt = PageTable()
        pt.map_page(BASE, 1)
        pt.map_page(BASE + PAGE_SIZE_4K, 2)
        a = pt.walk(BASE).steps
        b = pt.walk(BASE + PAGE_SIZE_4K).steps
        # L4/L3/L2 reads identical; only the L1 entry differs.
        assert [s.entry_pa for s in a[:3]] == [s.entry_pa for s in b[:3]]
        assert a[3].entry_pa != b[3].entry_pa

    def test_fault_reports_level(self):
        pt = PageTable()
        pt.map_page(BASE, 1)
        # Unmapped VA in a totally different region faults at L4.
        with pytest.raises(PageFault) as exc:
            pt.walk(0x10_0000_0000)
        assert exc.value.level == 4
        # Unmapped page in the same L1 table faults at L1.
        with pytest.raises(PageFault) as exc:
            pt.walk(BASE + 5 * PAGE_SIZE_4K)
        assert exc.value.level == 1


class TestIntrospection:
    def test_iter_mappings_roundtrip(self):
        pt = PageTable()
        expected = {}
        for i in [0, 3, 9, 513]:  # 513 forces a second L1 node
            va = BASE + i * PAGE_SIZE_4K
            pt.map_page(va, pfn=i)
            expected[va] = i
        seen = {va: pfn for va, pfn, _size in pt.iter_mappings()}
        assert seen == expected

    def test_mixed_page_size_mappings(self):
        pt = PageTable()
        pt.map_page(BASE, 1, PAGE_SIZE_4K)
        pt.map_page(BASE + PAGE_SIZE_2M, 2, PAGE_SIZE_2M)
        sizes = {size for _va, _pfn, size in pt.iter_mappings()}
        assert sizes == {PAGE_SIZE_4K, PAGE_SIZE_2M}

    @given(
        st.lists(
            st.integers(0, 5000),
            min_size=1,
            max_size=60,
            unique=True,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_map_walk_consistency(self, page_indices):
        pt = PageTable()
        for i in page_indices:
            pt.map_page(BASE + i * PAGE_SIZE_4K, pfn=i + 1)
        for i in page_indices:
            result = pt.walk(BASE + i * PAGE_SIZE_4K + 17)
            assert result.pfn == i + 1
        assert pt.mapped_bytes == len(page_indices) * PAGE_SIZE_4K
