"""Tests for the experiment runner and the packages' public surfaces."""

import pytest

from repro.analysis.runner import ExperimentRunner, dense_pairs
from repro.core.mmu import neummu_config, oracle_config
from repro.workloads.cnn import Workload
from repro.workloads.layers import DenseLayer


def tiny_factory():
    return Workload(
        name="tiny_fc", batch=1, layers=(DenseLayer("fc", 1, 2048, 1024),)
    )


class TestExperimentRunner:
    def test_oracle_is_cached(self):
        runner = ExperimentRunner()
        first = runner.oracle("tiny", tiny_factory)
        second = runner.oracle("tiny", tiny_factory)
        assert first is second

    def test_oracle_cache_keyed_by_page_size(self):
        from repro.memory.address import PAGE_SIZE_2M

        runner = ExperimentRunner()
        small = runner.oracle("tiny", tiny_factory)
        large = runner.oracle("tiny", tiny_factory, page_size=PAGE_SIZE_2M)
        assert small is not large

    def test_normalized_in_unit_interval(self):
        runner = ExperimentRunner()
        norm, result = runner.normalized("tiny", tiny_factory, neummu_config())
        assert 0 < norm <= 1.001
        assert result.mmu_summary.requests > 0

    def test_dense_pairs_labels(self):
        labels = [label for label, _ in dense_pairs((1, 8))]
        assert "CNN-1/b01" in labels
        assert "RNN-3/b08" in labels
        assert len(labels) == 12

    def test_dense_pairs_factories_bind_batch(self):
        pairs = dict(dense_pairs((4,)))
        wl = pairs["CNN-1/b04"]()
        assert wl.batch == 4


class TestPublicSurfaces:
    def test_core_exports(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_memory_exports(self):
        import repro.memory as memory

        for name in memory.__all__:
            assert hasattr(memory, name), name

    def test_npu_exports(self):
        import repro.npu as npu

        for name in npu.__all__:
            assert hasattr(npu, name), name

    def test_workloads_exports(self):
        import repro.workloads as workloads

        for name in workloads.__all__:
            assert hasattr(workloads, name), name

    def test_sparse_exports(self):
        import repro.sparse as sparse

        for name in sparse.__all__:
            assert hasattr(sparse, name), name

    def test_energy_exports(self):
        import repro.energy as energy

        for name in energy.__all__:
            assert hasattr(energy, name), name

    def test_analysis_exports(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_version(self):
        import repro

        assert repro.__version__


class TestPublicDocstrings:
    def test_every_public_module_documented(self):
        import importlib
        import pkgutil

        import repro

        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name == "repro.__main__":
                continue  # importing it dispatches the CLI
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(info.name)
        assert not undocumented, f"missing module docstrings: {undocumented}"
