"""Tests for the pending-translation scoreboard, PRMB and walker pool."""

import pytest

from repro.core.prmb import MergeBuffer, MergeBufferStats
from repro.core.pts import PendingTranslationScoreboard
from repro.core.ptw import WalkerPool
from repro.core.walk_info import WalkInfo


def make_walk(vpn, levels=4):
    l1 = vpn & 511
    l2 = (vpn >> 9) & 511
    l3 = (vpn >> 18) & 511
    l4 = (vpn >> 27) & 511
    path = (l4, l3, l2) if levels == 4 else (l4, l3)
    return WalkInfo(
        vpn=vpn,
        pfn=vpn + 1,
        page_size=4096,
        levels=levels,
        path=path,
        entry_pas=tuple(0x1000 * (i + 1) + vpn for i in range(levels)),
    )


class TestPTS:
    def test_register_and_lookup(self):
        pts = PendingTranslationScoreboard(capacity=4)
        assert pts.lookup(10) is None
        pts.register(10, walker=0)
        assert pts.lookup(10) == [0]
        assert pts.hits == 1
        assert pts.lookups == 2

    def test_multiple_walkers_same_vpn(self):
        pts = PendingTranslationScoreboard(capacity=4)
        pts.register(10, 0)
        pts.register(10, 1)  # redundant walk
        assert pts.lookup(10) == [0, 1]
        assert pts.distinct_pages == 1
        assert pts.in_flight == 2

    def test_release(self):
        pts = PendingTranslationScoreboard(capacity=4)
        pts.register(10, 0)
        pts.register(10, 1)
        pts.release(10, 0)
        assert pts.lookup(10) == [1]
        pts.release(10, 1)
        assert pts.lookup(10) is None
        assert pts.in_flight == 0

    def test_release_unknown_raises(self):
        pts = PendingTranslationScoreboard(capacity=4)
        with pytest.raises(KeyError):
            pts.release(10, 0)

    def test_capacity_enforced(self):
        pts = PendingTranslationScoreboard(capacity=2)
        pts.register(1, 0)
        pts.register(2, 1)
        with pytest.raises(RuntimeError):
            pts.register(3, 2)

    def test_peek_no_stats(self):
        pts = PendingTranslationScoreboard(capacity=2)
        pts.register(1, 0)
        pts.peek(1)
        assert pts.lookups == 0


class TestMergeBuffer:
    def test_positions_are_drain_order(self):
        buf = MergeBuffer(slots=3)
        assert buf.try_merge() == 1
        assert buf.try_merge() == 2
        assert buf.try_merge() == 3
        assert buf.try_merge() == 0  # full

    def test_drain_resets(self):
        buf = MergeBuffer(slots=2)
        buf.try_merge()
        buf.try_merge()
        assert buf.drain() == 2
        assert buf.occupied == 0
        assert buf.try_merge() == 1

    def test_zero_slots_always_rejects(self):
        buf = MergeBuffer(slots=0)
        assert buf.try_merge() == 0
        assert buf.stats.rejects_full == 1

    def test_stats(self):
        stats = MergeBufferStats()
        buf = MergeBuffer(slots=2, stats=stats)
        buf.try_merge()
        buf.try_merge()
        buf.try_merge()
        assert stats.merges == 2
        assert stats.rejects_full == 1
        assert stats.peak_occupancy == 2

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            MergeBuffer(slots=-1)


class TestWalkerPool:
    def test_walk_duration_is_levels_times_latency(self):
        pool = WalkerPool(n_walkers=2, walk_latency_per_level=100)
        _, completion = pool.start_walk(make_walk(5), cycle=10.0)
        assert completion == pytest.approx(10.0 + 400.0)

    def test_2mb_walk_is_three_levels(self):
        pool = WalkerPool(n_walkers=1, walk_latency_per_level=100)
        _, completion = pool.start_walk(make_walk(5, levels=3), cycle=0.0)
        assert completion == pytest.approx(300.0)

    def test_allocation_exhaustion(self):
        pool = WalkerPool(n_walkers=2)
        pool.start_walk(make_walk(1), 0.0)
        pool.start_walk(make_walk(2), 0.0)
        assert pool.free_walkers == 0
        with pytest.raises(RuntimeError):
            pool.start_walk(make_walk(3), 0.0)

    def test_completion_frees_walker(self):
        pool = WalkerPool(n_walkers=1)
        _, completion = pool.start_walk(make_walk(1), 0.0)
        completions = list(pool.complete_until(completion))
        assert len(completions) == 1
        assert completions[0].walk.vpn == 1
        assert pool.free_walkers == 1

    def test_complete_until_respects_cycle(self):
        pool = WalkerPool(n_walkers=2)
        pool.start_walk(make_walk(1), 0.0)  # completes at 400
        pool.start_walk(make_walk(2), 100.0)  # completes at 500
        done = list(pool.complete_until(450.0))
        assert [c.walk.vpn for c in done] == [1]
        assert pool.earliest_completion() == pytest.approx(500.0)

    def test_merge_ready_cycles_follow_drain_order(self):
        pool = WalkerPool(n_walkers=1, prmb_slots=2)
        walker, completion = pool.start_walk(make_walk(1), 0.0)
        first = pool.merge_into(walker)
        second = pool.merge_into(walker)
        assert first == pytest.approx(completion + 1)
        assert second == pytest.approx(completion + 2)
        assert pool.merge_into(walker) == -1.0  # full

    def test_completion_reports_merged_count(self):
        pool = WalkerPool(n_walkers=1, prmb_slots=4)
        walker, completion = pool.start_walk(make_walk(1), 0.0)
        pool.merge_into(walker)
        pool.merge_into(walker)
        (done,) = pool.complete_until(completion)
        assert done.merged_requests == 2

    def test_tpreg_reduces_second_walk(self):
        pool = WalkerPool(n_walkers=1, walk_latency_per_level=100, use_tpreg=True)
        walker, completion = pool.start_walk(make_walk(100), 0.0)
        list(pool.complete_until(completion))
        # Adjacent page: same L4/L3/L2 path, so only the leaf is read.
        _, second = pool.start_walk(make_walk(101), completion)
        assert second - completion == pytest.approx(100.0)
        assert pool.stats.levels_skipped == 3

    def test_tpreg_is_per_walker(self):
        pool = WalkerPool(n_walkers=2, walk_latency_per_level=100, use_tpreg=True)
        w0, c0 = pool.start_walk(make_walk(100), 0.0)
        list(pool.complete_until(c0))
        # Walker 1 never walked: its register is cold even though walker 0's
        # is warm, so the walk takes all four levels.
        free = pool._free[:]  # first free walker will be used next
        _, c1 = pool.start_walk(make_walk(101), c0)
        used = free[-1]
        if used != w0:
            assert c1 - c0 == pytest.approx(400.0)

    def test_stats_accumulate(self):
        pool = WalkerPool(n_walkers=4)
        pool.start_walk(make_walk(1), 0.0)
        pool.start_walk(make_walk(1), 0.0, redundant=True)
        assert pool.stats.walks == 2
        assert pool.stats.redundant_walks == 1
        assert pool.stats.level_accesses == 8
        assert pool.stats.mean_levels_per_walk == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WalkerPool(0)
        with pytest.raises(ValueError):
            WalkerPool(1, walk_latency_per_level=0)
