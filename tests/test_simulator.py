"""Integration tests for the end-to-end NPU simulator.

These encode the paper's *ordering* truths on small workloads: oracle is an
upper bound, NeuMMU ≈ oracle ≫ baseline IOMMU, more walkers/merge slots
never hurt, and the FAST fidelity mode agrees with EXACT.
"""

import pytest

from repro.core.mmu import MMUConfig, baseline_iommu_config, neummu_config, oracle_config
from repro.npu.config import NPUConfig
from repro.npu.simulator import (
    Fidelity,
    NPUSimulator,
    normalized_performance,
    run_workload,
)
from repro.workloads.cnn import Workload
from repro.workloads.layers import ConvLayer, DenseLayer, RecurrentLayer


def tiny_cnn(batch=1):
    return Workload(
        name=f"tiny_cnn_b{batch}",
        batch=batch,
        layers=(
            ConvLayer("c1", batch, 28, 28, 16, 64, kernel=3, pad=1),
            ConvLayer("c2", batch, 28, 28, 64, 64, kernel=3, pad=1),
            DenseLayer("fc", batch, 28 * 28 * 64, 256),
        ),
    )


def tiny_rnn(batch=1):
    return Workload(
        name=f"tiny_rnn_b{batch}",
        batch=batch,
        layers=(RecurrentLayer("r", batch, 1024, 1024, seq_len=6, gates=4),),
    )


@pytest.fixture(scope="module")
def oracle_run():
    return run_workload(tiny_cnn(), oracle_config())


class TestBasicExecution:
    def test_oracle_produces_positive_cycles(self, oracle_run):
        assert oracle_run.total_cycles > 0
        assert oracle_run.mmu_summary.requests > 0
        assert len(oracle_run.layers) == 3

    def test_layer_results_sum_to_total(self, oracle_run):
        assert sum(l.cycles for l in oracle_run.layers) == pytest.approx(
            oracle_run.total_cycles
        )

    def test_fetch_bytes_at_least_model_size(self, oracle_run):
        weights = tiny_cnn().total_weight_bytes()
        assert oracle_run.total_fetch_bytes >= weights

    def test_request_count_identical_across_mmus(self):
        """The DMA stream is MMU-independent; only its timing changes."""
        oracle = run_workload(tiny_cnn(), oracle_config())
        iommu = run_workload(tiny_cnn(), baseline_iommu_config())
        assert oracle.mmu_summary.requests == iommu.mmu_summary.requests


class TestOrderings:
    def test_oracle_is_upper_bound(self, oracle_run):
        for config in (baseline_iommu_config(), neummu_config()):
            result = run_workload(tiny_cnn(), config)
            assert result.total_cycles >= oracle_run.total_cycles * 0.999

    def test_neummu_close_to_oracle(self, oracle_run):
        result = run_workload(tiny_cnn(), neummu_config())
        norm = normalized_performance(oracle_run, result)
        assert norm > 0.95

    def test_iommu_far_from_oracle(self, oracle_run):
        result = run_workload(tiny_cnn(), baseline_iommu_config())
        norm = normalized_performance(oracle_run, result)
        assert norm < 0.5

    def test_neummu_beats_iommu_on_rnn(self):
        oracle = run_workload(tiny_rnn(), oracle_config())
        iommu = run_workload(tiny_rnn(), baseline_iommu_config())
        neummu = run_workload(tiny_rnn(), neummu_config())
        assert neummu.total_cycles < iommu.total_cycles
        assert normalized_performance(oracle, neummu) > 0.9

    def test_more_walkers_never_hurt(self):
        previous = float("inf")
        for walkers in (8, 32, 128):
            config = MMUConfig(name=f"w{walkers}", n_walkers=walkers, prmb_slots=32)
            cycles = run_workload(tiny_cnn(), config).total_cycles
            assert cycles <= previous * 1.001
            previous = cycles

    def test_more_prmb_slots_never_hurt(self):
        previous = float("inf")
        for slots in (0, 4, 32):
            config = MMUConfig(name=f"s{slots}", n_walkers=8, prmb_slots=slots)
            cycles = run_workload(tiny_cnn(), config).total_cycles
            assert cycles <= previous * 1.001
            previous = cycles

    def test_prmb_cuts_walk_count(self):
        without = run_workload(tiny_cnn(), MMUConfig(n_walkers=128, prmb_slots=0))
        with_prmb = run_workload(tiny_cnn(), MMUConfig(n_walkers=128, prmb_slots=32))
        assert with_prmb.mmu_summary.walks < without.mmu_summary.walks / 2
        assert with_prmb.mmu_summary.merges > 0

    def test_tpreg_cuts_walk_memory_accesses(self):
        plain = run_workload(
            tiny_cnn(), MMUConfig(n_walkers=128, prmb_slots=32, path_cache="none")
        )
        tpreg = run_workload(
            tiny_cnn(), MMUConfig(n_walkers=128, prmb_slots=32, path_cache="tpreg")
        )
        assert (
            tpreg.mmu_summary.walk_level_accesses
            < plain.mmu_summary.walk_level_accesses / 2
        )


class TestFidelity:
    def test_fast_matches_exact_oracle(self):
        exact = NPUSimulator(
            tiny_cnn(), oracle_config(), fidelity=Fidelity.EXACT
        ).run()
        fast = NPUSimulator(tiny_cnn(), oracle_config(), fidelity=Fidelity.FAST).run()
        assert fast.total_cycles == pytest.approx(exact.total_cycles, rel=0.05)

    def test_fast_matches_exact_neummu(self):
        exact = NPUSimulator(
            tiny_rnn(), neummu_config(), fidelity=Fidelity.EXACT
        ).run()
        fast = NPUSimulator(tiny_rnn(), neummu_config(), fidelity=Fidelity.FAST).run()
        assert fast.total_cycles == pytest.approx(exact.total_cycles, rel=0.05)

    @pytest.mark.slow
    def test_fast_matches_exact_iommu(self):
        exact = NPUSimulator(
            tiny_rnn(), baseline_iommu_config(), fidelity=Fidelity.EXACT
        ).run()
        fast = NPUSimulator(
            tiny_rnn(), baseline_iommu_config(), fidelity=Fidelity.FAST
        ).run()
        assert fast.total_cycles == pytest.approx(exact.total_cycles, rel=0.10)

    def test_fast_simulates_fewer_steps(self):
        result = NPUSimulator(
            tiny_rnn(), oracle_config(), fidelity=Fidelity.FAST, warmup=2
        ).run()
        layer = result.layers[0]
        assert layer.simulated_steps < layer.steps


class TestInstrumentation:
    def test_page_divergence_streams(self):
        sim = NPUSimulator(tiny_cnn(), oracle_config())
        divergence = sim.page_divergence()
        assert "all" in divergence and "w" in divergence
        assert divergence["all"].max_pages >= divergence["all"].mean_pages

    def test_timeline_recording(self):
        sim = NPUSimulator(tiny_cnn(), oracle_config(), timeline_window=1000)
        result = sim.run()
        assert result.translation_timeline
        total = sum(count for _, count in result.translation_timeline)
        assert total == result.mmu_summary.requests

    def test_va_trace(self):
        sim = NPUSimulator(tiny_cnn(), oracle_config(), trace_va=True)
        result = sim.run()
        assert result.va_trace
        for _step, lo, hi, tensor in result.va_trace:
            assert hi > lo
            assert tensor in ("ia", "w")


class TestAlternativeConfigs:
    def test_spatial_compute_model_swaps_in(self):
        from repro.npu.spatial import SpatialArrayModel

        npu = NPUConfig()
        result = run_workload(
            tiny_cnn(),
            oracle_config(),
            npu_config=npu,
            compute_model=SpatialArrayModel(npu),
        )
        assert result.total_cycles > 0

    def test_large_pages_reduce_iommu_gap(self):
        from repro.memory.address import PAGE_SIZE_2M

        oracle_4k = run_workload(tiny_cnn(), oracle_config())
        iommu_4k = run_workload(tiny_cnn(), baseline_iommu_config())
        oracle_2m = run_workload(tiny_cnn(), oracle_config(PAGE_SIZE_2M))
        iommu_2m = run_workload(
            tiny_cnn(), baseline_iommu_config(page_size=PAGE_SIZE_2M)
        )
        norm_4k = normalized_performance(oracle_4k, iommu_4k)
        norm_2m = normalized_performance(oracle_2m, iommu_2m)
        # Section VI-A: large pages mostly fix dense workloads.
        assert norm_2m > norm_4k
        assert norm_2m > 0.8

    def test_scaled_npu_config(self):
        small = NPUConfig().scaled(0.25)
        assert small.ia_spm_bytes == NPUConfig().ia_spm_bytes // 4
        result = run_workload(tiny_cnn(), oracle_config(), npu_config=small)
        assert result.total_cycles > 0
