"""Tests for figure rendering and the small stats helpers."""

import pytest

from repro.analysis.figures import FigureResult, Series, geometric_mean
from repro.core.stats import TranslationStats, delta


class TestFigureResult:
    def make(self):
        fig = FigureResult("figX", "demo", columns=["a", "b"])
        fig.add("row1", a=1.0, b=2.0)
        fig.add("row2", a=3.0)
        return fig

    def test_value_lookup(self):
        fig = self.make()
        assert fig.value("row1", "a") == 1.0
        with pytest.raises(KeyError):
            fig.value("missing", "a")

    def test_column_skips_missing(self):
        fig = self.make()
        assert fig.column("b") == [2.0]

    def test_mean(self):
        fig = self.make()
        assert fig.mean("a") == pytest.approx(2.0)
        with pytest.raises(ValueError):
            fig.mean("zz")

    def test_render_contains_everything(self):
        fig = self.make()
        fig.notes.append("hello note")
        text = fig.render()
        assert "figX" in text
        assert "row1" in text and "row2" in text
        assert "hello note" in text
        assert "-" in text  # missing cell placeholder

    def test_render_alignment(self):
        text = self.make().render()
        lines = text.splitlines()
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestStatsDelta:
    def test_snapshot_delta(self):
        stats = TranslationStats()
        stats.requests = 5
        before = stats.snapshot()
        stats.requests = 12
        stats.merges = 3
        diff = delta(before, stats.snapshot())
        assert diff["requests"] == 7
        assert diff["merges"] == 3
